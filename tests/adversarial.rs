//! Adversarial and failure-injection-style inputs: extreme ranks,
//! degenerate shapes, and boundary conditions for every algorithm.

use pp_algos::activity::{self, Activity};
use pp_algos::huffman;
use pp_algos::knapsack::{max_value_par, max_value_seq, Item};
use pp_algos::lis::{self, PivotMode};
use pp_algos::mis;
use pp_algos::sssp;
use pp_algos::RunConfig;
use pp_graph::{gen, GraphBuilder};
use pp_parlay::shuffle::random_priorities;

// ---- maximum-rank (fully sequential dependence) instances ----

#[test]
fn lis_rank_equals_n_chain() {
    // Strictly increasing input: rank = n, the worst case for span —
    // but still correct and exactly n+1 rounds.
    let v: Vec<i64> = (0..2000).collect();
    let res = lis::lis_par(
        &v,
        &RunConfig::seeded(1).with_pivot_mode(PivotMode::RightMost),
    );
    assert_eq!(res.output, 2000);
    assert_eq!(res.stats.rounds, 2001);
}

#[test]
fn activity_rank_equals_n_chain() {
    let acts = activity::sort_by_end((0..1500u64).map(|i| Activity::new(i, i + 1, 1)).collect());
    let report = activity::max_weight_type2(&acts);
    assert_eq!(report.output, 1500);
    assert_eq!(report.stats.rounds, 1500);
}

#[test]
fn mis_priority_chain_worst_case() {
    // Path with monotone priorities: dependence depth ≈ n/2; the TAS
    // algorithm must still terminate and agree with greedy.
    let n = 2000usize;
    let mut b = GraphBuilder::new(n).symmetric();
    for i in 0..n - 1 {
        b.add(i as u32, i as u32 + 1);
    }
    let g = b.build();
    let pri: Vec<u32> = (0..n as u32).rev().collect();
    let set = mis::mis_tas(&g, &pri);
    assert_eq!(set, mis::mis_seq(&g, &pri));
    // Greedy with decreasing priorities selects every even vertex.
    assert!(set.iter().step_by(2).all(|&x| x));
    assert!(!set.iter().skip(1).step_by(2).any(|&x| x));
}

// ---- degenerate value distributions ----

#[test]
fn lis_all_equal_and_all_distinct_duplicated() {
    let v = vec![7i64; 3000];
    assert_eq!(lis::lis_par(&v, &RunConfig::seeded(0)).output, 1);
    // Two interleaved copies of 0..1500: LIS length is 1500.
    let mut v: Vec<i64> = Vec::new();
    for i in 0..1500 {
        v.push(i);
        v.push(i);
    }
    assert_eq!(lis::lis_seq(&v), 1500);
    let cfg = RunConfig::seeded(0).with_pivot_mode(PivotMode::RightMost);
    assert_eq!(lis::lis_par(&v, &cfg).output, 1500);
}

#[test]
fn activity_identical_intervals() {
    // n copies of the same interval: rank 1, pick the heaviest.
    let acts = activity::sort_by_end((0..1000u64).map(|w| Activity::new(10, 20, w + 1)).collect());
    let report = activity::max_weight_type1(&acts);
    assert_eq!(report.output, 1000);
    assert_eq!(report.stats.rounds, 1);
}

#[test]
fn huffman_extreme_skew_and_two_symbols() {
    // Powers of two force a path-shaped tree (max rank).
    let freqs: Vec<u64> = (0..40).map(|i| 1u64 << i).collect();
    let report = huffman::build_par_with_stats(&freqs);
    let (t, stats) = (report.output, report.stats);
    assert_eq!(t.height(), 39);
    assert!(stats.rounds <= 39);
    assert_eq!(
        t.weighted_path_length(&freqs),
        huffman::build_seq(&freqs).weighted_path_length(&freqs)
    );
}

#[test]
fn knapsack_boundary_weights() {
    // Item exactly equal to W, and items summing to just over W.
    let items = vec![Item::new(100, 7), Item::new(51, 4)];
    assert_eq!(max_value_seq(&items, 100), 7);
    assert_eq!(max_value_par(&items, 100).output, 7);
    assert_eq!(max_value_par(&items, 99).output, 4);
    assert_eq!(max_value_par(&items, 50).output, 0);
}

// ---- graph edge cases ----

#[test]
fn sssp_zero_is_source_only_component() {
    let mut b = GraphBuilder::new(3).weighted();
    // Directed-ish: builder without symmetric stores arcs as given.
    b.add_weighted(1, 2, 5);
    let g = b.build();
    let d = sssp::dijkstra(&g, 0);
    assert_eq!(d, vec![0, sssp::INF, sssp::INF]);
}

#[test]
fn sssp_parallel_heavy_multi_edges_collapse() {
    // Parallel edges with different weights: builder keeps the lightest.
    let mut b = GraphBuilder::new(2).symmetric().weighted();
    b.add_weighted(0, 1, 100);
    b.add_weighted(0, 1, 3);
    b.add_weighted(0, 1, 50);
    let g = b.build();
    assert_eq!(sssp::dijkstra(&g, 0), vec![0, 3]);
    let d = sssp::delta_stepping(&g, 0, &RunConfig::new().with_delta(1)).output;
    assert_eq!(d, vec![0, 3]);
}

#[test]
fn mis_on_complete_graph_selects_exactly_one() {
    let n = 60usize;
    let mut b = GraphBuilder::new(n).symmetric();
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            b.add(i, j);
        }
    }
    let g = b.build();
    let pri = random_priorities(n, 3);
    let set = mis::mis_tas(&g, &pri);
    assert_eq!(set.iter().filter(|&&x| x).count(), 1);
    let top = (0..n).max_by_key(|&v| pri[v]).unwrap();
    assert!(set[top]);
}

#[test]
fn self_loops_and_duplicates_cleaned_by_builder() {
    let mut b = GraphBuilder::new(3).symmetric();
    b.add(0, 0);
    b.add(1, 1);
    b.add(0, 1);
    b.add(0, 1);
    b.add(1, 0);
    let g = b.build();
    assert_eq!(g.num_edges(), 2);
    let pri = random_priorities(3, 1);
    let set = mis::mis_tas(&g, &pri);
    assert!(mis::is_maximal_independent(&g, &set));
}

// ---- overflow-adjacent values ----

#[test]
fn activity_huge_weights_no_overflow() {
    // Weights near u32::MAX as the paper's [1, 2^32) and long chains:
    // sums stay far below u64::MAX.
    let acts = activity::sort_by_end(
        (0..1000u64)
            .map(|i| Activity::new(i * 10, i * 10 + 10, u32::MAX as u64))
            .collect(),
    );
    assert_eq!(
        activity::max_weight_type1(&acts).output,
        1000 * (u32::MAX as u64)
    );
}

#[test]
fn huffman_large_frequencies_fit_u64() {
    // Total ~2^40: well within u64 during merging.
    let freqs: Vec<u64> = (0..1024).map(|_| 1u64 << 30).collect();
    let t = huffman::build_par(&freqs);
    assert_eq!(t.height(), 10);
}

#[test]
fn graphs_with_isolated_vertices_everywhere() {
    let g = gen::uniform(100, 30, 5); // sparse: many isolated vertices
    let pri = random_priorities(100, 6);
    let set = mis::mis_tas(&g, &pri);
    assert!(mis::is_maximal_independent(&g, &set));
    // Isolated vertices must all be selected.
    for v in 0..100u32 {
        if g.degree(v) == 0 {
            assert!(set[v as usize]);
        }
    }
}

// ---- newer modules under the same adversarial shapes ----

#[test]
fn list_contract_single_long_chain() {
    // One n-long list: deepest possible contraction recursion.
    let n = 200_000;
    let next: Vec<u32> = (0..n as u32).map(|i| (i + 1).min(n as u32 - 1)).collect();
    let weight = vec![3i64; n];
    let d = pp_parlay::list_contract::list_rank_contract(&next, &weight, 1);
    assert_eq!(d[n - 1], 3 * (n as i64 - 1));
    assert_eq!(d[0], 0);
}

#[test]
fn tree_contract_star_and_binary() {
    // Star: depth 1 everywhere; complete binary tree: depth = floor(log2(i+1)).
    let n = 100_000u32;
    let mut star = vec![0u32; n as usize];
    star[0] = 0;
    let d = pp_parlay::tree_contract::forest_depths_contract(&star);
    assert!(d[1..].iter().all(|&x| x == 1));

    let parent: Vec<u32> = (0..n)
        .map(|i| if i == 0 { 0 } else { (i - 1) / 2 })
        .collect();
    let d = pp_parlay::tree_contract::forest_depths_contract(&parent);
    for i in [0u32, 1, 2, 3, 6, 7, 62, 63, n - 1] {
        assert_eq!(d[i as usize], (u32::BITS - 1) - (i + 1).leading_zeros());
    }
}

#[test]
fn rho_stepping_path_graph_worst_case() {
    // A path forces ρ-stepping into ~n/ρ steps; distances must still be
    // exact even when ρ exceeds the frontier.
    let n = 3000usize;
    let mut b = GraphBuilder::new(n).symmetric().weighted();
    for i in 0..n - 1 {
        b.add_weighted(i as u32, i as u32 + 1, 7);
    }
    let g = b.build();
    for rho in [1usize, 3, 1000] {
        let d = sssp::rho_stepping(&g, 0, &RunConfig::new().with_rho(rho)).output;
        assert_eq!(d[n - 1], 7 * (n as u64 - 1), "rho={rho}");
    }
}

#[test]
fn crauser_uniform_weights_settle_bfs_layers() {
    // Uniform weights: OUT-criterion settles whole BFS layers per round,
    // so rounds = eccentricity of the source.
    let g = gen::grid2d(40, 40);
    let wg = gen::with_uniform_weights(&g, 9, 9, 1);
    let report = sssp::crauser_out(&wg, 0);
    assert_eq!(report.output, sssp::dijkstra(&wg, 0));
    assert_eq!(
        report.stats.rounds,
        78 + 1,
        "grid corner eccentricity + source round"
    );
}

#[test]
fn random_perm_reservations_tiny_and_duplicate_free() {
    use pp_algos::random_perm::random_permutation_reservations;
    for n in [0usize, 1, 2, 3] {
        let p = random_permutation_reservations(n, &RunConfig::seeded(5)).output;
        let mut q = p.clone();
        q.sort_unstable();
        assert_eq!(q, (0..n as u32).collect::<Vec<_>>());
    }
}

#[test]
fn whac2d_everything_at_origin() {
    use pp_algos::whac::{whac2d_par, whac2d_seq, Mole2d};
    // Same cell, increasing time: all hittable (pure waiting).
    let moles: Vec<Mole2d> = (0..500).map(|i| Mole2d { t: i, x: 0, y: 0 }).collect();
    assert_eq!(whac2d_seq(&moles), 500);
    let rm = RunConfig::seeded(0).with_pivot_mode(PivotMode::RightMost);
    assert_eq!(whac2d_par(&moles, &rm).output, 500);
    // Same cell, same time (duplicates): only one.
    let moles = vec![Mole2d { t: 1, x: 2, y: 3 }; 40];
    assert_eq!(whac2d_seq(&moles), 1);
    assert_eq!(whac2d_par(&moles, &RunConfig::seeded(1)).output, 1);
}

#[test]
fn radix_sort_adversarial_keys() {
    // All keys share high bits (late passes no-op) or low bits (early
    // passes no-op).
    let n = 150_000usize;
    let mut v: Vec<u64> = (0..n as u64).map(|i| (0xdead << 48) | (i % 97)).collect();
    let mut want = v.clone();
    want.sort_unstable();
    pp_parlay::radix_sort_u64(&mut v);
    assert_eq!(v, want);

    let mut v: Vec<u64> = (0..n as u64).map(|i| (i % 31) << 56).collect();
    let mut want = v.clone();
    want.sort_unstable();
    pp_parlay::radix_sort_u64(&mut v);
    assert_eq!(v, want);
}
