//! Property-based tests (proptest) on the substrates and algorithms:
//! tree invariants, structure-vs-model equivalence, and parallel-vs-
//! sequential agreement under arbitrary inputs.

use pp_algos::activity::{self, Activity};
use pp_algos::huffman;
use pp_algos::knapsack::{max_value_par, max_value_seq, Item};
use pp_algos::lis::{self, PivotMode};
use pp_algos::RunConfig;
use pp_pam::{AugTree, MaxAug, NoAug};
use pp_parlay::monoid::{sum_monoid, MaxMonoid};
use pp_ranges::{FenwickMax, RangeTree2d, SegTree};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- pp-parlay ----

    #[test]
    fn scan_matches_sequential(v in prop::collection::vec(0u64..1000, 0..500)) {
        let m = sum_monoid::<u64>();
        let (scan, total) = pp_parlay::scan_exclusive(&m, &v);
        let mut acc = 0u64;
        for i in 0..v.len() {
            prop_assert_eq!(scan[i], acc);
            acc += v[i];
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn sort_matches_std(mut v in prop::collection::vec(any::<i64>(), 0..600)) {
        let mut want = v.clone();
        want.sort();
        pp_parlay::par_sort(&mut v);
        prop_assert_eq!(v, want);
    }

    #[test]
    fn pack_matches_filter(v in prop::collection::vec((any::<u32>(), any::<bool>()), 0..500)) {
        let items: Vec<u32> = v.iter().map(|&(x, _)| x).collect();
        let flags: Vec<bool> = v.iter().map(|&(_, f)| f).collect();
        let got = pp_parlay::pack(&items, &flags);
        let want: Vec<u32> = v.iter().filter(|&&(_, f)| f).map(|&(x, _)| x).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn merge_of_sorted_is_sorted_union(mut a in prop::collection::vec(0u32..100, 0..200),
                                       mut b in prop::collection::vec(0u32..100, 0..200)) {
        a.sort_unstable();
        b.sort_unstable();
        let got = pp_parlay::merge::par_merge(&a, &b);
        let mut want = [a, b].concat();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn forest_depths_match_seq(parents in prop::collection::vec(0usize..50, 1..50)) {
        // Clamp to a valid forest: parent[i] <= i (self = root).
        let parent: Vec<u32> = parents.iter().enumerate()
            .map(|(i, &p)| p.min(i) as u32)
            .collect();
        prop_assert_eq!(
            pp_parlay::list_rank::forest_depths(&parent),
            pp_parlay::list_rank::forest_depths_seq(&parent)
        );
    }

    // ---- pp-ranges ----

    #[test]
    fn segtree_matches_naive(v in prop::collection::vec(0i64..1000, 1..300),
                             queries in prop::collection::vec((0usize..300, 0usize..300), 1..50)) {
        let t = SegTree::new(MaxMonoid(i64::MIN), &v);
        for (a, b) in queries {
            let (l, r) = (a.min(b).min(v.len()), a.max(b).min(v.len()));
            let want = v[l..r].iter().copied().max().unwrap_or(i64::MIN);
            prop_assert_eq!(t.query(l, r), want);
        }
    }

    #[test]
    fn fenwick_max_monotone(updates in prop::collection::vec((0usize..100, 0u64..10_000), 0..300)) {
        let mut naive = vec![0u64; 100];
        let mut fw = FenwickMax::new(100);
        for (i, v) in updates {
            naive[i] = naive[i].max(v);
            fw.update(i, v);
        }
        for q in 0..=100 {
            prop_assert_eq!(fw.prefix_max(q), naive[..q].iter().copied().max().unwrap_or(0));
        }
    }

    #[test]
    fn range2d_matches_bruteforce(n in 1usize..200, seed in any::<u64>(),
                                  finish_frac in 0u32..100) {
        let ys = pp_parlay::shuffle::random_permutation(n, seed);
        let mut tree = RangeTree2d::new(&ys, PivotMode::RightMost);
        // Finish a pseudo-random subset.
        let batch: Vec<(u32, u32)> = (0..n as u32)
            .filter(|&x| pp_parlay::hash64(seed, x as u64) % 100 < finish_frac as u64)
            .map(|x| (x, x % 17))
            .collect();
        tree.finish_batch(&batch);
        let finished: Vec<bool> = (0..n as u32)
            .map(|x| batch.iter().any(|&(b, _)| b == x)).collect();
        // Check a handful of rectangles.
        for k in 0..10u64 {
            let qx = (pp_parlay::hash64(seed ^ 1, k) % (n as u64 + 1)) as u32;
            let qy = (pp_parlay::hash64(seed ^ 2, k) % (n as u64 + 1)) as u32;
            let info = tree.query_prefix(qx, qy);
            let mut unfin = 0u32;
            let mut maxdp: Option<u32> = None;
            for x in 0..qx.min(n as u32) {
                if ys[x as usize] < qy {
                    if finished[x as usize] {
                        let d = x % 17;
                        maxdp = Some(maxdp.map_or(d, |m| m.max(d)));
                    } else {
                        unfin += 1;
                    }
                }
            }
            prop_assert_eq!(info.unfinished, unfin);
            prop_assert_eq!(info.max_dp, maxdp);
        }
    }

    // ---- pp-pam ----

    #[test]
    fn augtree_behaves_like_btreemap(ops in prop::collection::vec(
        (0u8..3, 0u64..200, 0u64..1000), 0..400)) {
        let mut t = AugTree::new(MaxAug);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, k, v) in ops {
            match op {
                0 => { t.insert(k, v); model.insert(k, v); }
                1 => { prop_assert_eq!(t.remove(&k), model.remove(&k)); }
                _ => { prop_assert_eq!(t.find(&k), model.get(&k)); }
            }
        }
        prop_assert_eq!(t.len(), model.len());
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(t.flatten(), want);
        let aug_want = model.values().copied().max().unwrap_or(0);
        prop_assert_eq!(t.aug(), aug_want);
    }

    #[test]
    fn augtree_union_equals_model_union(a in prop::collection::vec((0u64..300, 0u64..100), 0..200),
                                        b in prop::collection::vec((0u64..300, 0u64..100), 0..200)) {
        let ta = AugTree::build(NoAug, a.clone());
        let tb = AugTree::build(NoAug, b.clone());
        let t = ta.union(tb);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (k, v) in a { model.insert(k, v); }
        for (k, v) in b { model.insert(k, v); }
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(t.flatten(), want);
        t.check_invariants();
    }

    // ---- algorithms ----

    #[test]
    fn lis_par_equals_seq(v in prop::collection::vec(-100i64..100, 0..300), seed in any::<u64>()) {
        let want = lis::lis_seq(&v);
        let cfg = RunConfig::seeded(seed);
        prop_assert_eq!(lis::lis_par(&v, &cfg).output, want);
        let cfg = cfg.with_pivot_mode(PivotMode::RightMost);
        prop_assert_eq!(lis::lis_par(&v, &cfg).output, want);
    }

    #[test]
    fn activity_par_equals_seq(raw in prop::collection::vec((0u64..1000, 1u64..200, 1u64..50), 0..300)) {
        let acts: Vec<Activity> = raw.into_iter()
            .map(|(s, len, w)| Activity::new(s, s + len, w))
            .collect();
        let acts = activity::sort_by_end(acts);
        let want = activity::max_weight_seq(&acts);
        prop_assert_eq!(activity::max_weight_type1(&acts).output, want);
        prop_assert_eq!(activity::max_weight_type2(&acts).output, want);
    }

    #[test]
    fn knapsack_par_equals_seq(raw in prop::collection::vec((1u64..30, 0u64..100), 1..15),
                               w in 0u64..400) {
        let items: Vec<Item> = raw.into_iter().map(|(wt, v)| Item::new(wt, v)).collect();
        prop_assert_eq!(max_value_par(&items, w).output, max_value_seq(&items, w));
    }

    #[test]
    fn huffman_par_wpl_is_optimal(freqs in prop::collection::vec(1u64..10_000, 1..200)) {
        let seq = huffman::build_seq(&freqs);
        let par = huffman::build_par(&freqs);
        prop_assert_eq!(seq.weighted_path_length(&freqs), par.weighted_path_length(&freqs));
        prop_assert!(par.kraft_holds());
    }

    #[test]
    fn huffman_canonical_roundtrip(freqs in prop::collection::vec(1u64..500, 2..100),
                                   msg_seed in any::<u64>()) {
        let tree = huffman::build_par(&freqs);
        let code = huffman::CanonicalCode::from_tree(&tree);
        let n = freqs.len();
        let msg: Vec<usize> = (0..300)
            .map(|i| (pp_parlay::hash64(msg_seed, i) % n as u64) as usize)
            .collect();
        let bits = code.encode(&msg);
        prop_assert_eq!(code.decode(&bits, msg.len()), msg);
    }

    #[test]
    fn weighted_lis_matches_quadratic(raw in prop::collection::vec((-50i64..50, 1u32..30), 0..150),
                                      seed in any::<u64>()) {
        let values: Vec<i64> = raw.iter().map(|&(v, _)| v).collect();
        let weights: Vec<u32> = raw.iter().map(|&(_, w)| w).collect();
        let mut dp = vec![0u32; values.len()];
        let mut want = 0;
        for i in 0..values.len() {
            dp[i] = weights[i];
            for j in 0..i {
                if values[j] < values[i] {
                    dp[i] = dp[i].max(dp[j] + weights[i]);
                }
            }
            want = want.max(dp[i]);
        }
        prop_assert_eq!(lis::lis_weighted_seq(&values, &weights), want);
        let report = lis::lis_weighted_par(&values, &weights, &RunConfig::seeded(seed));
        prop_assert_eq!(report.output.0, want);
    }

    #[test]
    fn pam_intersection_difference_model(a in prop::collection::vec((0u64..100, 0u64..10), 0..150),
                                         b in prop::collection::vec((0u64..100, 0u64..10), 0..150)) {
        let (ma, mb): (BTreeMap<u64, u64>, BTreeMap<u64, u64>) =
            (a.iter().copied().collect(), b.iter().copied().collect());
        let ta = AugTree::build(NoAug, a.clone());
        let tb = AugTree::build(NoAug, b.clone());
        let ti = ta.intersect_with(tb, &|x, _| *x);
        let want: Vec<(u64, u64)> = ma.iter()
            .filter(|(k, _)| mb.contains_key(k))
            .map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(ti.flatten(), want);
        let ta = AugTree::build(NoAug, a.clone());
        let tb = AugTree::build(NoAug, b.clone());
        let td = ta.difference(tb);
        let want: Vec<(u64, u64)> = ma.iter()
            .filter(|(k, _)| !mb.contains_key(k))
            .map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(td.flatten(), want);
    }

    #[test]
    fn nested_multimap_matches_flat(pairs in prop::collection::vec((0u32..30, 0u32..50), 0..200)) {
        let nested = pp_pam::NestedMultimap::build(pairs.clone());
        let flat = pp_pam::Multimap::build(pairs);
        prop_assert_eq!(nested.len(), flat.len());
        let keys: Vec<u32> = (0..30).collect();
        prop_assert_eq!(nested.multi_find(&keys), flat.multi_find(&keys));
    }

    #[test]
    fn sssp_variants_agree(seed in 0u64..500, w_min in 1u64..100) {
        let g = pp_graph::gen::uniform(120, 500, seed);
        let wg = pp_graph::gen::with_uniform_weights(&g, w_min, w_min + 200, seed + 1);
        let base = pp_algos::sssp::dijkstra(&wg, 0);
        let d = pp_algos::sssp::delta_stepping(&wg, 0, &RunConfig::new().with_delta(w_min)).output;
        prop_assert_eq!(&d, &base);
        let d = pp_algos::sssp::sssp_pam(&wg, 0).output;
        prop_assert_eq!(&d, &base);
    }

    #[test]
    fn graph_greedy_trio_agree(seed in 0u64..500) {
        let g = pp_graph::gen::uniform(150, 600, seed);
        let pri = pp_parlay::shuffle::random_priorities(150, seed + 7);
        let set = pp_algos::mis::mis_seq(&g, &pri);
        prop_assert_eq!(&pp_algos::mis::mis_tas(&g, &pri), &set);
        prop_assert!(pp_algos::mis::is_maximal_independent(&g, &set));
        let col = pp_algos::coloring::coloring_seq(&g, &pri);
        prop_assert_eq!(&pp_algos::coloring::coloring_par(&g, &pri), &col);
        let epri = pp_algos::matching::random_edge_priorities(&g, seed + 9);
        let m = pp_algos::matching::matching_seq(&g, &epri);
        prop_assert_eq!(&pp_algos::matching::matching_par(&g, &epri).output, &m);
    }

    #[test]
    fn whac_matches_brute(raw in prop::collection::vec((0i64..120, -40i64..40), 0..120),
                          seed in any::<u64>()) {
        let moles: Vec<pp_algos::whac::Mole> = raw.into_iter()
            .map(|(t, p)| pp_algos::whac::Mole { t, p }).collect();
        let want = pp_algos::whac::whac_brute(&moles);
        prop_assert_eq!(pp_algos::whac::whac_seq(&moles), want);
        prop_assert_eq!(pp_algos::whac::whac_par(&moles, &RunConfig::seeded(seed)).output, want);
    }

    #[test]
    fn chain3d_matches_brute(raw in prop::collection::vec((0i64..40, 0i64..40, 0i64..40), 0..100),
                             seed in any::<u64>()) {
        let pts: Vec<pp_algos::chain3d::Point3> = raw.into_iter()
            .map(|(a, b, c)| pp_algos::chain3d::Point3 { a, b, c }).collect();
        let want = pp_algos::chain3d::chain3d_brute(&pts);
        prop_assert_eq!(pp_algos::chain3d::chain3d_seq(&pts), want);
        let cfg = RunConfig::seeded(seed);
        prop_assert_eq!(pp_algos::chain3d::chain3d_par(&pts, &cfg).output, want);
        let cfg = cfg.with_pivot_mode(PivotMode::RightMost);
        prop_assert_eq!(pp_algos::chain3d::chain3d_par(&pts, &cfg).output, want);
    }

    #[test]
    fn semisort_groups_completely(keys in prop::collection::vec(0u32..40, 0..400), seed in any::<u64>()) {
        let n = keys.len();
        let items: Vec<(u32, usize)> = keys.iter().copied().zip(0..n).collect();
        let (sorted, bounds) = pp_parlay::semisort::semisort_by(items.clone(), |&(k, _)| k, seed);
        // Every group is key-homogeneous; all elements survive.
        prop_assert_eq!(*bounds.last().unwrap(), n);
        let mut seen: Vec<(u32, usize)> = sorted.clone();
        seen.sort_unstable();
        let mut want = items;
        want.sort_unstable();
        prop_assert_eq!(seen, want);
        for g in 0..bounds.len() - 1 {
            let group = &sorted[bounds[g]..bounds[g + 1]];
            prop_assert!(group.iter().all(|&(k, _)| k == group[0].0));
            // Groups are maximal: adjacent groups have different keys.
            if g > 0 {
                prop_assert!(sorted[bounds[g] - 1].0 != group[0].0);
            }
        }
    }

    #[test]
    fn range3d_matches_bruteforce(n in 1usize..150, seed in any::<u64>()) {
        use pp_ranges::RangeTree3d;
        let a = pp_parlay::shuffle::random_permutation(n, seed);
        let b = pp_parlay::shuffle::random_permutation(n, seed + 1);
        let c = pp_parlay::shuffle::random_permutation(n, seed + 2);
        let mut tree = RangeTree3d::new(&a, &b, &c, PivotMode::Random);
        let batch: Vec<(u32, u32)> = (0..n as u32)
            .filter(|&i| pp_parlay::hash64(seed, i as u64).is_multiple_of(3))
            .map(|i| (i, i % 11))
            .collect();
        tree.finish_batch(&batch);
        for q in 0..8u64 {
            let qa = (pp_parlay::hash64(seed ^ 3, q) % (n as u64 + 1)) as u32;
            let qb = (pp_parlay::hash64(seed ^ 4, q) % (n as u64 + 1)) as u32;
            let qc = (pp_parlay::hash64(seed ^ 5, q) % (n as u64 + 1)) as u32;
            let info = tree.query_prefix(qa, qb, qc);
            let mut cnt = 0u32;
            let mut maxdp: Option<u32> = None;
            for i in 0..n as u32 {
                if a[i as usize] < qa && b[i as usize] < qb && c[i as usize] < qc {
                    if let Some(&(_, d)) = batch.iter().find(|&&(x, _)| x == i) {
                        maxdp = Some(maxdp.map_or(d, |m| m.max(d)));
                    } else {
                        cnt += 1;
                    }
                }
            }
            prop_assert_eq!(info.unfinished, cnt);
            prop_assert_eq!(info.max_dp, maxdp);
        }
    }

    // ---- newer substrates and algorithms ----

    #[test]
    fn radix_sort_matches_std(mut v in prop::collection::vec(any::<u64>(), 0..800)) {
        let mut want = v.clone();
        want.sort_unstable();
        pp_parlay::radix_sort_u64(&mut v);
        prop_assert_eq!(v, want);
    }

    #[test]
    fn radix_sort_i64_matches_std(mut v in prop::collection::vec(any::<i64>(), 0..800)) {
        let mut want = v.clone();
        want.sort_unstable();
        pp_parlay::radix_sort_i64(&mut v);
        prop_assert_eq!(v, want);
    }

    #[test]
    fn list_contract_matches_walk(n in 1usize..400, seed in any::<u64>()) {
        // A random set of disjoint lists: successor = next index within
        // random-length blocks.
        let mut next: Vec<u32> = (0..n as u32).collect();
        #[allow(clippy::needless_range_loop)] // the last index must stay a tail
        for i in 0..n - 1 {
            if !pp_parlay::hash64(seed, i as u64).is_multiple_of(4) {
                next[i] = i as u32 + 1;
            }
        }
        let weight: Vec<i64> = (0..n as u64)
            .map(|i| (pp_parlay::hash64(seed ^ 1, i) % 100) as i64 - 50)
            .collect();
        let got = pp_parlay::list_contract::list_rank_contract(&next, &weight, seed);
        let want = pp_parlay::list_contract::list_rank_seq(&next, &weight);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tree_contract_matches_pointer_jumping(n in 1usize..400, seed in any::<u64>()) {
        let parent: Vec<u32> = (0..n)
            .map(|i| {
                if i == 0 || pp_parlay::hash64(seed, i as u64).is_multiple_of(5) {
                    i as u32
                } else {
                    (pp_parlay::hash64(seed ^ 2, i as u64) % i as u64) as u32
                }
            })
            .collect();
        prop_assert_eq!(
            pp_parlay::tree_contract::forest_depths_contract(&parent),
            pp_parlay::list_rank::forest_depths_seq(&parent)
        );
    }

    #[test]
    fn random_perm_reservations_equals_knuth(n in 0usize..300, seed in any::<u64>()) {
        use pp_algos::random_perm::{knuth_shuffle_seq, random_permutation_reservations, swap_targets};
        let targets = swap_targets(n, seed);
        let got = random_permutation_reservations(n, &RunConfig::seeded(seed)).output;
        prop_assert_eq!(got, knuth_shuffle_seq(n, &targets));
    }

    #[test]
    fn whac2d_par_matches_brute(moles in prop::collection::vec((0i64..100, -30i64..30, -30i64..30), 1..60),
                                seed in any::<u64>()) {
        use pp_algos::whac::{whac2d_brute, whac2d_par, whac2d_seq, Mole2d};
        let moles: Vec<Mole2d> = moles.into_iter().map(|(t, x, y)| Mole2d { t, x, y }).collect();
        let want = whac2d_brute(&moles);
        prop_assert_eq!(whac2d_seq(&moles), want);
        prop_assert_eq!(whac2d_par(&moles, &RunConfig::seeded(seed)).output, want);
    }

    #[test]
    fn sssp_new_relaxed_ranks_agree(n in 2usize..120, m in 1usize..500, seed in any::<u64>()) {
        let g = pp_graph::gen::uniform(n, m, seed);
        let wg = pp_graph::gen::with_uniform_weights(&g, 1, 1000, seed ^ 7);
        let want = pp_algos::sssp::dijkstra(&wg, 0);
        let rho = pp_algos::sssp::rho_stepping(&wg, 0, &RunConfig::new().with_rho(8)).output;
        prop_assert_eq!(&rho, &want);
        let cr = pp_algos::sssp::crauser_out(&wg, 0).output;
        prop_assert_eq!(&cr, &want);
    }

    #[test]
    fn sssp_sparse_and_dense_frontiers_agree(size in 2usize..200, seed in any::<u64>()) {
        // The frontier engine's representation is a performance choice,
        // never a semantic one: for every SSSP registry entry, pinning
        // the engine sparse and dense must produce identical outputs
        // (each also checked against the sequential baseline by
        // `run_case`) across ≥ 3 scenario families.
        use phase_parallel::FrontierPolicy;
        use pp_algos::registry::{self, CaseSpec};
        for name in ["sssp/delta", "sssp/rho", "sssp/crauser", "sssp/pam",
                     "sssp/bellman-ford", "sssp/dijkstra"] {
            let entry = registry::lookup(name).expect("registered");
            let scenarios = entry.scenarios();
            prop_assert!(scenarios.len() >= 3, "{name}: {} scenarios", scenarios.len());
            for scenario in scenarios.into_iter().take(4) {
                let case = CaseSpec::new(size, seed).with_scenario(scenario);
                let sparse = entry.run_case(
                    &case,
                    &RunConfig::seeded(seed).with_frontier(FrontierPolicy::Sparse),
                );
                let dense = entry.run_case(
                    &case,
                    &RunConfig::seeded(seed).with_frontier(FrontierPolicy::Dense),
                );
                prop_assert!(sparse.agrees(), "{name}/{} sparse != seq", scenario.key());
                prop_assert!(dense.agrees(), "{name}/{} dense != seq", scenario.key());
                prop_assert_eq!(
                    sparse.observed_digest, dense.observed_digest,
                    "{}/{}: sparse and dense paths diverged", name, scenario.key()
                );
            }
        }
    }

    #[test]
    fn matching_reservations_equals_greedy(n in 2usize..100, m in 1usize..400, seed in any::<u64>()) {
        use pp_algos::matching;
        let g = pp_graph::gen::uniform(n, m, seed);
        let pri = matching::random_edge_priorities(&g, seed ^ 3);
        let want = matching::matching_seq(&g, &pri);
        let got = matching::matching_reservations(&g, &pri).output;
        prop_assert_eq!(got, want);
    }

    // ---- pp-workloads scenario generators ----

    #[test]
    fn scenario_graphs_deterministic_symmetric_bounded(
        fam in 0usize..5, n in 0usize..150, seed in any::<u64>()
    ) {
        let spec = pp_workloads::graph_scenarios()[fam];
        let a = spec.graph(n, seed).unwrap();
        let b = spec.graph(n, seed).unwrap();
        // Determinism: identical adjacency (and weighted view) per spec+seed.
        prop_assert_eq!(a.num_vertices(), b.num_vertices());
        prop_assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..a.num_vertices() as u32 {
            prop_assert_eq!(a.neighbors(v), b.neighbors(v));
        }
        let wa = spec.weighted_graph(n, seed).unwrap();
        let wb = spec.weighted_graph(n, seed).unwrap();
        for v in 0..wa.num_vertices() as u32 {
            prop_assert_eq!(wa.edge_weights(v), wb.edge_weights(v));
        }
        // Undirected families symmetrize.
        prop_assert!(a.is_symmetric(), "{} not symmetric", spec.key());
        // Vertex-count bounds: every shape covers n, rounding up at
        // most to the next power of two (rmat) or square (grid).
        let floor = n.max(1);
        prop_assert!(a.num_vertices() >= floor);
        prop_assert!(
            a.num_vertices() <= (2 * floor).max(4),
            "{}: {} vertices for n={n}", spec.key(), a.num_vertices()
        );
        // Edge-count bounds (arc counts; generators target avg degree
        // `spec.degree` except the constant-degree grid).
        let nv = a.num_vertices();
        let arc_cap = match spec.family {
            pp_workloads::Family::GraphGrid2d => 4 * nv,
            pp_workloads::Family::GraphStarHub => 2 * (2 * nv + spec.hubs * spec.hubs),
            // Uniform/rmat sample ≤ degree·n edges; geometric only
            // *targets* that average, so give it statistical headroom.
            pp_workloads::Family::GraphGeometric => 8 * spec.degree * nv + 64,
            _ => 2 * spec.degree * floor,
        };
        prop_assert!(
            a.num_edges() <= arc_cap,
            "{}: {} arcs for n={n} (cap {arc_cap})", spec.key(), a.num_edges()
        );
    }

    #[test]
    fn scenario_draws_deterministic_and_in_span(
        fam in 0usize..4, n in 0usize..300, span in 1u64..10_000, seed in any::<u64>()
    ) {
        let spec = pp_workloads::seq_scenarios()[fam];
        let a = spec.draws(n, span, seed).unwrap();
        prop_assert_eq!(&a, &spec.draws(n, span, seed).unwrap());
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.iter().all(|&v| v < span));
        match spec.family {
            pp_workloads::Family::SeqSorted => {
                prop_assert!(a.windows(2).all(|w| w[0] <= w[1]));
            }
            pp_workloads::Family::SeqAdversarialChain => {
                prop_assert!(a.windows(2).all(|w| w[0] <= w[1]));
                // Strictly increasing whenever the span allows it.
                if span >= n as u64 {
                    prop_assert!(a.windows(2).all(|w| w[0] < w[1]));
                }
            }
            _ => {}
        }
    }

    #[test]
    fn scenario_weighted_views_share_adjacency(
        fam in 0usize..5, n in 1usize..100, seed in any::<u64>()
    ) {
        // Applying a weight distribution must not change the topology.
        let spec = pp_workloads::graph_scenarios()[fam]
            .with_weights(pp_workloads::WeightDist::Exp { mean: 50 });
        let g = spec.graph(n, seed).unwrap();
        let wg = spec.weighted_graph(n, seed).unwrap();
        prop_assert_eq!(g.num_vertices(), wg.num_vertices());
        prop_assert_eq!(g.num_edges(), wg.num_edges());
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(g.neighbors(v), wg.neighbors(v));
        }
        if wg.num_edges() > 0 {
            prop_assert!(wg.is_weighted());
            prop_assert!(wg.min_weight().unwrap() >= 1);
        }
    }

    #[test]
    fn unweighted_activity_contraction_agrees(n in 1usize..300, seed in any::<u64>()) {
        let acts: Vec<Activity> = (0..n as u64)
            .map(|i| {
                let s = pp_parlay::hash64(seed, i) % 5000;
                Activity::new(s, s + 1 + pp_parlay::hash64(seed ^ 1, i) % 300, 1)
            })
            .collect();
        let acts = activity::sort_by_end(acts);
        prop_assert_eq!(
            activity::ranks_tree_contraction(&acts),
            activity::ranks(&acts)
        );
    }
}

// The prepare/query contract, checked exhaustively: the full registry ×
// a scratch-sharing query sequence is expensive per case, so this suite
// runs fewer cases than the block above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // N repeated `solve_prepared` calls against one prepared instance
    // (sharing one scratch workspace, so later queries run on recycled
    // buffers) each equal a fresh one-shot `solve_par` under the same
    // per-query config — for every registry entry.
    #[test]
    fn prepared_queries_equal_one_shot_for_every_entry(
        size in 0usize..120,
        seed in any::<u64>(),
        n_queries in 1usize..5,
    ) {
        use pp_algos::registry::{self, CaseSpec};

        let n_vertices = size.max(1) as u32; // graph families floor at 1
        let queries: Vec<RunConfig> = (0..n_queries as u64)
            .map(|i| {
                let mut cfg = RunConfig::seeded(seed.wrapping_add(i))
                    .with_source((pp_parlay::hash64(seed, i) % u64::from(n_vertices)) as u32);
                match i % 4 {
                    0 => cfg = cfg.with_delta(1 + pp_parlay::hash64(seed ^ 2, i) % 4096),
                    1 => cfg = cfg.with_rho(1 + (pp_parlay::hash64(seed ^ 3, i) % 256) as usize),
                    2 => cfg = cfg.with_pivot_mode(PivotMode::RightMost),
                    _ => {}
                }
                cfg
            })
            .collect();
        let case = CaseSpec::new(size, seed);
        let gen_cfg = RunConfig::seeded(seed);
        for entry in registry::registry() {
            let outcomes = entry.run_batch(&case, &queries, &gen_cfg);
            prop_assert_eq!(outcomes.len(), queries.len());
            for (i, outcome) in outcomes.iter().enumerate() {
                prop_assert!(
                    outcome.agrees(),
                    "{}: prepared query {} diverged (size={}, seed={})",
                    entry.name(), i, size, seed
                );
            }
        }
    }
}
