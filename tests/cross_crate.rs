//! Integration tests spanning crates: every parallel algorithm against
//! its sequential baseline on randomized inputs, exercising the full
//! stack (parlay primitives → range structures / PA-BSTs → framework
//! engines → algorithms).

use pp_algos::activity;
use pp_algos::coloring::{coloring_par, coloring_seq, is_proper_coloring};
use pp_algos::huffman;
use pp_algos::knapsack::{max_value_par, max_value_seq, Item};
use pp_algos::lis::{self, PivotMode};
use pp_algos::matching;
use pp_algos::mis;
use pp_algos::sssp;
use pp_algos::whac::{whac_par, whac_seq, Mole};
use pp_algos::RunConfig;
use pp_graph::gen;
use pp_parlay::rng::Rng;
use pp_parlay::shuffle::random_priorities;

#[test]
fn activity_pipeline_end_to_end() {
    for target in [1u64, 30, 3_000] {
        let acts = activity::workload::with_target_rank(30_000, target, target);
        let want = activity::max_weight_seq(&acts);
        let r1 = activity::max_weight_type1(&acts);
        let r1p = activity::max_weight_type1_pam(&acts);
        let r2 = activity::max_weight_type2(&acts);
        assert_eq!(r1.output, want);
        assert_eq!(r1p.output, want);
        assert_eq!(r2.output, want);
        // Round-efficiency: both engines run exactly rank(S) rounds.
        let rank = *activity::ranks(&acts).iter().max().unwrap() as usize;
        assert_eq!(r1.stats.rounds, rank);
        assert_eq!(r2.stats.rounds, rank);
        assert_eq!(r2.stats.failed_wakeups, 0, "Lemma 5.1: pivots are exact");
    }
}

#[test]
fn lis_pipeline_on_both_patterns() {
    let n = 30_000;
    for (series, label) in [
        (lis::patterns::segment(n, 100, 1), "segment"),
        (lis::patterns::line_with_target(n, 100, 2), "line"),
    ] {
        let want = lis::lis_seq(&series);
        for mode in [PivotMode::Random, PivotMode::RightMost] {
            let res = lis::lis_par(&series, &RunConfig::seeded(3).with_pivot_mode(mode));
            assert_eq!(res.output, want, "{label} {mode:?}");
            // Round-efficiency: rounds == LIS length + 1 (virtual round).
            assert_eq!(res.stats.rounds, want as usize + 1, "{label} {mode:?}");
        }
    }
}

#[test]
fn knapsack_par_matches_seq_large() {
    let mut r = Rng::new(4);
    let items: Vec<Item> = (0..40)
        .map(|_| Item::new(5 + r.range(50), 1 + r.range(1000)))
        .collect();
    let w = 20_000;
    let report = max_value_par(&items, w);
    assert_eq!(report.output, max_value_seq(&items, w));
    let w_star = items.iter().map(|i| i.weight).min().unwrap();
    assert_eq!(report.stats.rounds as u64, (w).div_ceil(w_star));
}

#[test]
fn huffman_par_optimal_on_all_distributions() {
    let mut r = Rng::new(5);
    let n = 50_000usize;
    // Uniform, Zipfian, exponential — the §6.2 distributions.
    let uniform: Vec<u64> = (0..n).map(|_| 1 + r.range(1000)).collect();
    let zipf: Vec<u64> = (0..n).map(|i| (1_000_000 / (i + 1)) as u64 + 1).collect();
    let expo: Vec<u64> = (0..n)
        .map(|_| (r.exponential(0.002) as u64).max(1))
        .collect();
    for (freqs, label) in [(uniform, "uniform"), (zipf, "zipf"), (expo, "exponential")] {
        let seq = huffman::build_seq(&freqs);
        let report = huffman::build_par_with_stats(&freqs);
        let (par, stats) = (report.output, report.stats);
        assert_eq!(
            seq.weighted_path_length(&freqs),
            par.weighted_path_length(&freqs),
            "{label}"
        );
        assert!(par.kraft_holds(), "{label}");
        // Round-efficiency: O(rank) rounds; the odd-frontier postponement
        // can add a couple of rounds beyond the height (§4.3 remark).
        assert!(
            stats.rounds as u32 <= par.height() + 3,
            "{label}: rounds {} vs height {}",
            stats.rounds,
            par.height()
        );
    }
}

#[test]
fn sssp_all_algorithms_on_all_graph_shapes() {
    let shapes: Vec<(&str, pp_graph::Graph)> = vec![
        ("uniform", gen::uniform(800, 4000, 1)),
        ("rmat", gen::rmat(10, 8192, 2)),
        ("grid", gen::grid2d(25, 32)),
        ("cycle", gen::cycle(500)),
    ];
    for (label, g) in shapes {
        let wg = gen::with_uniform_weights(&g, 1 << 10, 1 << 16, 3);
        let base = sssp::dijkstra(&wg, 0);
        assert_eq!(sssp::bellman_ford(&wg, 0), base, "{label} bellman-ford");
        let d = sssp::sssp_phase_parallel(&wg, 0).output;
        assert_eq!(d, base, "{label} phase-parallel");
        for delta in [1u64 << 8, 1 << 14, 1 << 20] {
            let d = sssp::delta_stepping(&wg, 0, &RunConfig::new().with_delta(delta)).output;
            assert_eq!(d, base, "{label} delta={delta}");
        }
    }
}

#[test]
fn graph_greedy_trio_agree_everywhere() {
    for seed in 0..3 {
        let g = gen::rmat(10, 16_384, seed);
        let n = g.num_vertices();
        let pri = random_priorities(n, seed + 10);
        // MIS.
        let set = mis::mis_seq(&g, &pri);
        assert_eq!(mis::mis_tas(&g, &pri), set);
        assert_eq!(mis::mis_rounds(&g, &pri).output, set);
        assert!(mis::is_maximal_independent(&g, &set));
        // Coloring.
        let col = coloring_seq(&g, &pri);
        assert_eq!(coloring_par(&g, &pri), col);
        assert!(is_proper_coloring(&g, &col));
        // Matching.
        let epri = matching::random_edge_priorities(&g, seed + 20);
        let m = matching::matching_seq(&g, &epri);
        assert_eq!(matching::matching_par(&g, &epri).output, m);
        assert!(matching::is_maximal_matching(&g, &m));
    }
}

#[test]
fn results_identical_across_thread_counts() {
    // The outputs are functions of the seeds alone — verify by running
    // under differently sized rayon pools (1, 2, 4 threads; pools larger
    // than the hardware still exercise different schedules).
    let series = lis::patterns::segment(20_000, 50, 1);
    let g = gen::rmat(9, 4096, 2);
    let pri = random_priorities(g.num_vertices(), 3);
    let acts = activity::workload::with_target_rank(20_000, 100, 4);
    let lis_cfg = RunConfig::seeded(5).with_pivot_mode(PivotMode::RightMost);
    let run_all = || {
        (
            lis::lis_par(&series, &lis_cfg).output,
            mis::mis_tas(&g, &pri),
            coloring_par(&g, &pri),
            activity::max_weight_type1(&acts).output,
            sssp::sssp_pam(&gen::with_uniform_weights(&g, 10, 100, 6), 0).output,
        )
    };
    let reference = run_all();
    for threads in [1usize, 2, 4] {
        let got = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(run_all);
        assert_eq!(got.0, reference.0, "lis, {threads} threads");
        assert_eq!(got.1, reference.1, "mis, {threads} threads");
        assert_eq!(got.2, reference.2, "coloring, {threads} threads");
        assert_eq!(got.3, reference.3, "activity, {threads} threads");
        assert_eq!(got.4, reference.4, "sssp, {threads} threads");
    }
}

#[test]
fn weighted_lis_and_coloring_orders_end_to_end() {
    // Weighted LIS on a realistic pattern.
    let values = lis::patterns::line_with_target(20_000, 100, 1);
    let weights: Vec<u32> = (0..values.len() as u64)
        .map(|i| 1 + (pp_parlay::hash64(2, i) % 100) as u32)
        .collect();
    let want = lis::lis_weighted_seq(&values, &weights);
    let cfg = RunConfig::seeded(3).with_pivot_mode(PivotMode::RightMost);
    let (best, _) = lis::lis_weighted_par(&values, &weights, &cfg).output;
    assert_eq!(best, want);

    // Coloring heuristics through the TAS engine.
    use pp_algos::coloring_orders::{
        num_colors, order_largest_degree_first, order_largest_log_degree_first, order_random,
    };
    let g = gen::rmat(11, 1 << 14, 4);
    for pri in [
        order_random(&g, 5),
        order_largest_degree_first(&g, 5),
        order_largest_log_degree_first(&g, 5),
    ] {
        let c = coloring_par(&g, &pri);
        assert_eq!(c, coloring_seq(&g, &pri));
        assert!(is_proper_coloring(&g, &c));
        assert!(num_colors(&c) <= g.max_degree() as u32 + 1);
    }
}

#[test]
fn whac_a_mole_reuses_lis_machinery() {
    let mut r = Rng::new(6);
    let moles: Vec<Mole> = (0..5000)
        .map(|_| Mole {
            t: r.range(100_000) as i64,
            p: r.range(1000) as i64 - 500,
        })
        .collect();
    let want = whac_seq(&moles);
    let report = whac_par(
        &moles,
        &RunConfig::seeded(7).with_pivot_mode(PivotMode::RightMost),
    );
    assert_eq!(report.output, want);
    assert_eq!(report.stats.rounds, want as usize + 1);
}

#[test]
fn grid_whac_exercises_the_full_4d_stack() {
    // Mole generation → rotation → slot compression (parlay sort) →
    // RangeTree4d (nesting 3D → 2D trees) → Type 2 engine.
    let mut r = Rng::new(8);
    let moles: Vec<pp_algos::whac::Mole2d> = (0..3000)
        .map(|_| pp_algos::whac::Mole2d {
            t: r.range(30_000) as i64,
            x: r.range(80) as i64 - 40,
            y: r.range(80) as i64 - 40,
        })
        .collect();
    let want = pp_algos::whac::whac2d_seq(&moles);
    for mode in [PivotMode::Random, PivotMode::RightMost] {
        let cfg = RunConfig::seeded(9).with_pivot_mode(mode);
        let report = pp_algos::whac::whac2d_par(&moles, &cfg);
        assert_eq!(report.output, want);
        assert_eq!(
            report.stats.rounds, want as usize,
            "round-efficiency: one per rank"
        );
    }
}

#[test]
fn reservations_framework_end_to_end() {
    // The prior-work baseline [10] drives both applications and agrees
    // with the sequential algorithms exactly.
    use pp_algos::random_perm::{knuth_shuffle_seq, random_permutation_reservations, swap_targets};
    let n = 40_000;
    let report = random_permutation_reservations(n, &RunConfig::seeded(11));
    assert_eq!(report.output, knuth_shuffle_seq(n, &swap_targets(n, 11)));
    assert!(report.stats.rounds < 100);

    let g = gen::rmat(10, 8192, 12);
    let pri = matching::random_edge_priorities(&g, 13);
    let mask = matching::matching_reservations(&g, &pri).output;
    assert_eq!(mask, matching::matching_seq(&g, &pri));
    assert!(matching::is_maximal_matching(&g, &mask));
}

#[test]
fn sssp_relaxed_rank_family_agrees_on_all_shapes() {
    for (g, src) in [
        (gen::uniform(2000, 8000, 14), 0u32),
        (gen::grid2d(30, 40), 599),
        (gen::rmat(10, 8192, 15), 0),
        (gen::star(500), 3),
    ] {
        let wg = gen::with_uniform_weights(&g, 1, 10_000, 16);
        let want = sssp::dijkstra(&wg, src);
        assert_eq!(
            sssp::rho_stepping(&wg, src, &RunConfig::new().with_rho(64)).output,
            want
        );
        assert_eq!(sssp::crauser_out(&wg, src).output, want);
        assert_eq!(sssp::sssp_phase_parallel(&wg, src).output, want);
    }
}

#[test]
fn mis_family_maximality_and_greedy_equality() {
    let g = gen::rmat(11, 1 << 14, 17);
    let pri = random_priorities(g.num_vertices(), 18);
    let greedy = mis::mis_seq(&g, &pri);
    assert_eq!(mis::mis_tas(&g, &pri), greedy);
    assert_eq!(mis::mis_rounds(&g, &pri).output, greedy);
    // Luby: maximal but a different (non-greedy) set is allowed.
    let luby = mis::mis_luby(&g, &RunConfig::seeded(19)).output;
    assert!(mis::is_maximal_independent(&g, &luby));
    assert!(mis::is_maximal_independent(&g, &greedy));
}
