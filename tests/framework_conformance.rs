//! Framework-conformance tests.
//!
//! Five layers:
//!
//! 1. **Registry conformance** — one generic suite that iterates the
//!    string-keyed algorithm registry and asserts `solve_par ==
//!    solve_seq` for *every* registered family on empty, singleton, and
//!    random instances across seeds and pivot modes. Adding a family to
//!    the registry automatically enrolls it here.
//! 2. **Prepared conformance** — for every registered family,
//!    `solve_prepared` against a once-built prepared instance (with a
//!    shared, buffer-recycling scratch workspace) must equal a fresh
//!    one-shot `solve_par` for each query config, including per-query
//!    source overrides for the SSSP family.
//! 3. **Scenario matrix** — every registry entry × every workload
//!    family applicable to it (`pp-workloads`): par == seq and
//!    prepared == one-shot on each scenario-drawn instance, so input
//!    diversity (power-law graphs, grids, meshes, hub skew, sorted and
//!    adversarial-chain sequences, zipf draws) is a tested axis, with
//!    SSSP additionally swept across edge-weight distributions.
//! 4. **Real-concurrency conformance** — the rayon shim runs a real
//!    fork-join pool, so the registry-wide digests are additionally
//!    pinned identical across 1-, 2- and 8-thread pools (one-shot and
//!    prepared), with a 16-iteration repeated-run race smoke over the
//!    SSSP family.
//! 5. **Rank specification** — the concrete algorithms' ranks match the
//!    brute-force independence-system specification of §3 (Definitions
//!    3.1, Theorems 3.2/3.4), tying the implementations back to the
//!    paper's formalism.

use phase_parallel::rank::IndependenceSystem;
use phase_parallel::{PivotMode, PrioritySource, RunConfig};
use pp_algos::activity::{self, Activity};
use pp_algos::lis;
use pp_algos::registry::{self, CaseSpec};
use pp_parlay::rng::Rng;
use pp_workloads::{ScenarioSpec, WeightDist};

// ---- layer 1: every registered algorithm is sequential-equivalent ----

/// Run every registry entry on one case and assert agreement.
fn assert_all_agree(case: CaseSpec, cfg: &RunConfig) {
    for entry in registry::registry() {
        let outcome = entry.run_case(&case, cfg);
        assert!(
            outcome.agrees(),
            "{}: parallel output diverged from sequential on size={} seed={} cfg={cfg:?}",
            entry.name(),
            case.size,
            case.seed,
        );
    }
}

#[test]
fn registry_covers_every_family() {
    // Guards against families silently dropping out of the registry.
    let names = registry::names();
    for family in [
        "lis",
        "lis/weighted",
        "activity/type1",
        "activity/type1-pam",
        "activity/type2",
        "activity/unweighted",
        "knapsack",
        "huffman",
        "sssp/delta",
        "sssp/dijkstra",
        "sssp/rho",
        "sssp/crauser",
        "sssp/pam",
        "sssp/bellman-ford",
        "mis/tas",
        "mis/rounds",
        "coloring",
        "matching",
        "matching/reservations",
        "whac",
        "whac/2d",
        "chain3d",
        "chain4d",
        "random-perm",
    ] {
        assert!(names.contains(&family), "{family} missing from registry");
    }
}

#[test]
fn conformance_on_empty_instances() {
    assert_all_agree(CaseSpec::new(0, 1), &RunConfig::seeded(1));
}

#[test]
fn conformance_on_singleton_instances() {
    assert_all_agree(CaseSpec::new(1, 2), &RunConfig::seeded(2));
    assert_all_agree(CaseSpec::new(1, 3), &RunConfig::seeded(9));
}

#[test]
fn conformance_on_random_instances() {
    let mut r = Rng::new(77);
    for trial in 0..6 {
        let size = 2 + r.range(250) as usize;
        let cfg = RunConfig::seeded(trial).with_pivot_mode(if trial % 2 == 0 {
            PivotMode::Random
        } else {
            PivotMode::RightMost
        });
        assert_all_agree(CaseSpec::new(size, trial + 10), &cfg);
    }
}

#[test]
fn conformance_with_per_algorithm_knobs() {
    // The typed knobs must not break sequential equivalence.
    let case = CaseSpec::new(150, 4);
    for cfg in [
        RunConfig::seeded(4).with_delta(3),
        RunConfig::seeded(4).with_delta(1 << 18),
        RunConfig::seeded(4).with_rho(1),
        RunConfig::seeded(4).with_rho(64),
        RunConfig::seeded(4).with_priority_source(PrioritySource::LargestDegreeFirst),
        RunConfig::seeded(4).with_priority_source(PrioritySource::SmallestDegreeLast),
    ] {
        assert_all_agree(case, &cfg);
    }
}

// ---- layer 2: prepared queries equal one-shot solves ----

/// Run every registry entry through the batched prepared path and
/// assert each query agrees with its fresh one-shot reference.
fn assert_all_prepared_agree(case: CaseSpec, queries: &[RunConfig]) {
    for entry in registry::registry() {
        let outcomes = entry.run_batch(&case, queries, &RunConfig::seeded(case.seed));
        assert_eq!(outcomes.len(), queries.len());
        for (i, outcome) in outcomes.iter().enumerate() {
            assert!(
                outcome.agrees(),
                "{}: prepared query {i} diverged from one-shot on size={} seed={} cfg={:?}",
                entry.name(),
                case.size,
                case.seed,
                queries[i],
            );
        }
    }
}

#[test]
fn prepared_conformance_on_edge_instances() {
    let queries = [RunConfig::seeded(1), RunConfig::seeded(2)];
    assert_all_prepared_agree(CaseSpec::new(0, 3), &queries);
    assert_all_prepared_agree(CaseSpec::new(1, 4), &queries);
}

#[test]
fn prepared_conformance_across_query_knobs() {
    // One prepared instance, queried under every per-algorithm knob the
    // config carries — each query must match its own one-shot run.
    let queries = [
        RunConfig::seeded(5),
        RunConfig::seeded(6).with_pivot_mode(PivotMode::RightMost),
        RunConfig::seeded(7).with_delta(2),
        RunConfig::seeded(8).with_delta(1 << 16),
        RunConfig::seeded(9).with_rho(1),
        RunConfig::seeded(10).with_rho(128),
    ];
    assert_all_prepared_agree(CaseSpec::new(140, 11), &queries);
}

#[test]
fn prepared_conformance_across_sources() {
    // The SSSP family serves per-source queries from one prepared
    // instance; non-SSSP families ignore the override. Instance size
    // 120 floors the graph at 120 vertices, so sources < 120 are valid.
    let queries: Vec<RunConfig> = (0..6)
        .map(|i| RunConfig::seeded(i).with_source((i as u32 * 19) % 120))
        .collect();
    assert_all_prepared_agree(CaseSpec::new(120, 13), &queries);
}

// ---- layer 3: the registry × scenario conformance matrix ----

/// Every registry entry, on every default-knob scenario family it can
/// consume (graph entries get the five `graph/…` shapes, sequence
/// entries the four `seq/…` distributions): the parallel execution must
/// reproduce the sequential baseline on the scenario-drawn instance.
#[test]
fn scenario_matrix_par_equals_seq() {
    for entry in registry::registry() {
        let scenarios = entry.scenarios();
        assert!(
            scenarios.len() >= 3,
            "{}: matrix requires ≥3 applicable scenario families, got {}",
            entry.name(),
            scenarios.len()
        );
        for scenario in scenarios {
            for (size, seed) in [(2usize, 4u64), (67, 5), (150, 6)] {
                let case = CaseSpec::new(size, seed).with_scenario(scenario);
                let outcome = entry
                    .try_run_case(&case, &RunConfig::seeded(seed))
                    .expect("applicable scenario");
                assert!(
                    outcome.agrees(),
                    "{} diverged on scenario {} size={size} seed={seed}",
                    entry.name(),
                    scenario.key(),
                );
            }
        }
    }
}

/// The prepared layer of the matrix: on every entry × scenario, queries
/// served from one prepared instance (shared scratch) must equal fresh
/// one-shot solves — including per-query knob and source overrides.
#[test]
fn scenario_matrix_prepared_equals_one_shot() {
    // Size 80 floors every graph scenario at ≥80 vertices, so the
    // source overrides below stay in range.
    let queries = [
        RunConfig::seeded(21),
        RunConfig::seeded(22).with_delta(7).with_source(19),
        RunConfig::seeded(23).with_rho(8).with_source(61),
        RunConfig::seeded(24).with_pivot_mode(PivotMode::RightMost),
    ];
    for entry in registry::registry() {
        for scenario in entry.scenarios() {
            let case = CaseSpec::new(80, 17).with_scenario(scenario);
            let outcomes = entry
                .try_run_batch(&case, &queries, &RunConfig::seeded(17))
                .expect("applicable scenario");
            assert_eq!(outcomes.len(), queries.len());
            for (i, outcome) in outcomes.iter().enumerate() {
                assert!(
                    outcome.agrees(),
                    "{}: prepared query {i} diverged on scenario {}",
                    entry.name(),
                    scenario.key(),
                );
            }
        }
    }
}

/// Scenario-drawn instances are deterministic end to end: the same
/// (entry, scenario, size, seed) always digests identically — the
/// registry-level form of the generator-determinism property.
#[test]
fn scenario_matrix_is_deterministic() {
    let cfg = RunConfig::seeded(8);
    for entry in registry::registry() {
        for scenario in entry.scenarios() {
            let case = CaseSpec::new(60, 8).with_scenario(scenario);
            let a = entry.try_run_case(&case, &cfg).unwrap();
            let b = entry.try_run_case(&case, &cfg).unwrap();
            assert_eq!(
                a.expected_digest,
                b.expected_digest,
                "{} scenario {} not deterministic",
                entry.name(),
                scenario.key(),
            );
            assert_eq!(a.observed_digest, b.observed_digest);
        }
    }
}

/// The SSSP family must stay conformant under every edge-weight
/// distribution crossed with every graph shape (weights change the
/// bucket structure Δ- and ρ-stepping phase over).
#[test]
fn scenario_matrix_weight_distributions() {
    let weight_dists = [
        WeightDist::Unit,
        WeightDist::Uniform { min: 1, max: 1000 },
        WeightDist::Exp { mean: 100 },
    ];
    for name in ["sssp/delta", "sssp/rho"] {
        let entry = registry::lookup(name).expect("registered");
        for scenario in entry.scenarios() {
            for dist in weight_dists {
                let case = CaseSpec::new(90, 3).with_scenario(scenario.with_weights(dist));
                let outcome = entry.try_run_case(&case, &RunConfig::seeded(3)).unwrap();
                assert!(
                    outcome.agrees(),
                    "{name} diverged on {} × {}",
                    scenario.key(),
                    dist.key(),
                );
            }
        }
    }
}

/// String-keyed dispatch end to end: entry key + scenario key, via
/// `run_named`, for a representative of each kind.
#[test]
fn scenario_matrix_by_string_keys() {
    for (entry_key, scenario_key) in [
        ("sssp/crauser", "graph/star-hub+w/exp"),
        ("mis/tas", "graph/geometric"),
        ("lis", "seq/adversarial-chain"),
        ("huffman", "seq/zipf"),
    ] {
        let case = CaseSpec::new(100, 11)
            .with_scenario_key(scenario_key)
            .unwrap();
        let outcome = registry::run_named(entry_key, &case, &RunConfig::seeded(11)).unwrap();
        assert!(outcome.agrees(), "{entry_key} on {scenario_key}");
    }
    // An adversarial chain drives LIS to its worst-case rank: the
    // scenario's promise (rank = n) is visible in the output digest.
    use pp_algos::registry::Digest;
    let chain = ScenarioSpec::parse("seq/adversarial-chain").unwrap();
    let case = CaseSpec::new(64, 1).with_scenario(chain);
    let outcome = registry::run_named("lis", &case, &RunConfig::seeded(1)).unwrap();
    assert_eq!(outcome.expected_digest, 64u32.digest());
}

/// Every entry's prepared query path must reuse its scratch buffers in
/// steady state: after two warm-up queries, a third query's `take_*`
/// calls are all served from parked buffers (no per-query scratch
/// allocations). The `scratch_smoke` bench bin runs the same probe as
/// a CI gate; this test keeps it enforced under plain `cargo test`.
#[test]
fn scenario_matrix_steady_state_scratch_reuse() {
    let cfg = RunConfig::seeded(5);
    for entry in registry::registry() {
        for scenario in entry.scenarios() {
            let case = CaseSpec::new(90, 4).with_scenario(scenario);
            let probe = entry.scratch_probe(&case, &cfg);
            assert!(
                probe.steady_state_reuse(),
                "{} on {}: steady-state query took {} buffers but reused only {}",
                entry.name(),
                scenario.key(),
                probe.takes,
                probe.reuses,
            );
        }
    }
}

// ---- layer 4: real-concurrency conformance ----
//
// The rayon shim runs a real fork-join pool, so these tests pin the
// property the paper's determinism claim promises under *actual*
// concurrency: outputs are a function of the instance and the seed,
// never of the worker count or the scheduling of a particular run.

/// Registry-wide: every entry's parallel output digest is identical
/// under dedicated 1-, 2- and 8-thread pools (and each agrees with the
/// sequential baseline). Real parallelism must not introduce
/// nondeterminism anywhere in the registry.
#[test]
fn digests_identical_across_thread_counts() {
    let case = CaseSpec::new(180, 21);
    for entry in registry::registry() {
        let reference = entry.run_case(&case, &RunConfig::seeded(21).with_threads(1));
        assert!(
            reference.agrees(),
            "{}: 1-thread run diverged",
            entry.name()
        );
        for threads in [2usize, 8] {
            let outcome = entry.run_case(&case, &RunConfig::seeded(21).with_threads(threads));
            assert!(
                outcome.agrees(),
                "{}: {threads}-thread run diverged from sequential",
                entry.name(),
            );
            assert_eq!(
                outcome.observed_digest,
                reference.observed_digest,
                "{}: digest changed between 1 and {threads} threads",
                entry.name(),
            );
        }
    }
}

/// The prepared path under real concurrency: for every entry, batched
/// prepared queries (which fan out across the pool with per-worker
/// scratch) must agree with fresh one-shot runs and digest identically
/// at every thread count.
#[test]
fn prepared_digests_identical_across_thread_counts() {
    let case = CaseSpec::new(130, 23);
    let queries = [
        RunConfig::seeded(31),
        RunConfig::seeded(32).with_delta(5),
        RunConfig::seeded(33).with_source(17),
        RunConfig::seeded(34).with_rho(16),
    ];
    for entry in registry::registry() {
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 8] {
            let outcomes = entry.run_batch(
                &case,
                &queries,
                &RunConfig::seeded(23).with_threads(threads),
            );
            for (i, outcome) in outcomes.iter().enumerate() {
                assert!(
                    outcome.agrees(),
                    "{}: prepared query {i} diverged at {threads} threads",
                    entry.name(),
                );
            }
            let digests: Vec<u64> = outcomes.iter().map(|o| o.observed_digest).collect();
            match &reference {
                None => reference = Some(digests),
                Some(want) => assert_eq!(
                    &digests,
                    want,
                    "{}: prepared digests changed at {threads} threads",
                    entry.name(),
                ),
            }
        }
    }
}

/// Race smoke: the same (entry, scenario, config) executed 16 times on
/// an 8-thread pool must digest identically every time, for every SSSP
/// entry across ≥3 scenario families. SSSP is the family whose inner
/// loops lean hardest on concurrent `fetch_min`/CAS relaxation — if a
/// scheduling-dependent result exists anywhere, it shows up here.
#[test]
fn sssp_repeated_runs_race_smoke() {
    let cfg = RunConfig::seeded(29).with_threads(8);
    for entry in registry::registry() {
        if !entry.name().starts_with("sssp/") {
            continue;
        }
        let scenarios = entry.scenarios();
        assert!(
            scenarios.len() >= 3,
            "{}: race smoke needs ≥3 scenario families",
            entry.name()
        );
        for scenario in scenarios.into_iter().take(3) {
            let case = CaseSpec::new(140, 9).with_scenario(scenario);
            let reference = entry
                .try_run_case(&case, &cfg)
                .expect("applicable scenario");
            assert!(reference.agrees());
            for iteration in 1..16 {
                let outcome = entry
                    .try_run_case(&case, &cfg)
                    .expect("applicable scenario");
                assert_eq!(
                    outcome.observed_digest,
                    reference.observed_digest,
                    "{} on {}: digest changed on iteration {iteration}",
                    entry.name(),
                    case.scenario.as_ref().map(|s| s.key()).unwrap_or_default(),
                );
            }
        }
    }
}

// ---- layer 5: rank specification (§3) ----

/// LIS as an independence system (the §3 running example).
struct LisSystem(Vec<i64>);

impl IndependenceSystem for LisSystem {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn is_feasible(&self, set: &[usize]) -> bool {
        set.windows(2).all(|w| self.0[w[0]] < self.0[w[1]])
    }
}

/// Activity selection as an independence system: feasible = pairwise
/// non-overlapping, objects ordered by end time.
struct ActivitySystem(Vec<Activity>);

impl IndependenceSystem for ActivitySystem {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn is_feasible(&self, set: &[usize]) -> bool {
        set.iter().all(|&i| {
            set.iter().all(|&j| {
                i == j || {
                    let (a, b) = (&self.0[i], &self.0[j]);
                    a.end <= b.start || b.end <= a.start
                }
            })
        })
    }
}

#[test]
fn lis_dp_values_are_ranks() {
    // dp[i] from the algorithms == rank(i) == DG depth (Thm 3.4).
    let mut r = Rng::new(1);
    for _ in 0..10 {
        let n = 3 + r.range(8) as usize;
        let v: Vec<i64> = (0..n).map(|_| r.range(10) as i64).collect();
        let sys = LisSystem(v.clone());
        let (_, dp) = lis::lis_seq_with_dp(&v);
        for (x, &d) in dp.iter().enumerate() {
            assert_eq!(d as usize, sys.rank_of(x), "rank mismatch at {x} in {v:?}");
            assert_eq!(sys.rank_of(x), sys.dg_depth(x), "Thm 3.4 violated at {x}");
        }
    }
}

#[test]
fn activity_ranks_match_specification() {
    let mut r = Rng::new(2);
    for _ in 0..10 {
        let n = 3 + r.range(7) as usize;
        let acts: Vec<Activity> = (0..n)
            .map(|_| {
                let s = r.range(20);
                Activity::new(s, s + 1 + r.range(10), 1)
            })
            .collect();
        let acts = activity::sort_by_end(acts);
        let sys = ActivitySystem(acts.clone());
        let ranks = activity::ranks(&acts);
        for (x, &rk) in ranks.iter().enumerate() {
            assert_eq!(rk as usize, sys.rank_of(x), "activity rank mismatch at {x}");
        }
    }
}

#[test]
fn theorem_3_2_holds_for_both_systems() {
    // Objects of equal rank never rely on each other.
    let v = vec![3i64, 1, 4, 1, 5, 9, 2, 6];
    let sys = LisSystem(v);
    for x in 0..sys.len() {
        for y in 0..x {
            if sys.rank_of(x) == sys.rank_of(y) {
                assert!(!sys.relies_on(x, y));
            }
        }
    }
}

/// The 2D-grid Whac-A-Mole as an independence system: feasible = a set
/// of moles that one hammer can hit in time order (pairwise L1
/// reachability in both rotated directions — strict, per Eq. (5)/(6)).
struct Whac2dSystem(Vec<pp_algos::whac::Mole2d>);

impl IndependenceSystem for Whac2dSystem {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn is_feasible(&self, set: &[usize]) -> bool {
        // Sort set members by time; every consecutive (hence every)
        // pair must satisfy the four strict rotated constraints.
        let mut s: Vec<&pp_algos::whac::Mole2d> = set.iter().map(|&i| &self.0[i]).collect();
        s.sort_by_key(|m| (m.t, m.x, m.y));
        s.windows(2).all(|w| {
            let (a, b) = (w[0], w[1]);
            a.t + a.x + a.y < b.t + b.x + b.y
                && a.t + a.x - a.y < b.t + b.x - b.y
                && a.t - a.x + a.y < b.t - b.x + b.y
                && a.t - a.x - a.y < b.t - b.x - b.y
        })
    }
}

#[test]
fn whac2d_rank_is_max_feasible_set() {
    // rank(S) from the solver == |MFS| from the brute-force system spec.
    let mut r = Rng::new(3);
    for _ in 0..8 {
        let n = 3 + r.range(7) as usize;
        let moles: Vec<pp_algos::whac::Mole2d> = (0..n)
            .map(|_| pp_algos::whac::Mole2d {
                t: r.range(12) as i64,
                x: r.range(6) as i64 - 3,
                y: r.range(6) as i64 - 3,
            })
            .collect();
        let sys = Whac2dSystem(moles.clone());
        let want = sys.rank_of_set();
        assert_eq!(
            pp_algos::whac::whac2d_seq(&moles) as usize,
            want,
            "whac2d MFS mismatch on {moles:?}"
        );
    }
}

#[test]
fn hereditary_property_sanity() {
    // Subsets of feasible sets are feasible (checked on LIS instances).
    let v = vec![2i64, 5, 3, 7];
    let sys = LisSystem(v);
    let feasible = vec![0usize, 2, 3]; // 2 < 3 < 7
    assert!(sys.is_feasible(&feasible));
    assert!(sys.is_feasible(&[0, 2]));
    assert!(sys.is_feasible(&[2, 3]));
    assert!(sys.is_feasible(&[]));
}
