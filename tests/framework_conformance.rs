//! Framework-conformance tests: the concrete algorithms' ranks match
//! the brute-force independence-system specification of §3
//! (Definitions 3.1, Theorems 3.2/3.4), tying the implementations back
//! to the paper's formalism.

use phase_parallel::rank::IndependenceSystem;
use pp_algos::activity::{self, Activity};
use pp_algos::lis;
use pp_parlay::rng::Rng;

/// LIS as an independence system (the §3 running example).
struct LisSystem(Vec<i64>);

impl IndependenceSystem for LisSystem {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn is_feasible(&self, set: &[usize]) -> bool {
        set.windows(2).all(|w| self.0[w[0]] < self.0[w[1]])
    }
}

/// Activity selection as an independence system: feasible = pairwise
/// non-overlapping, objects ordered by end time.
struct ActivitySystem(Vec<Activity>);

impl IndependenceSystem for ActivitySystem {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn is_feasible(&self, set: &[usize]) -> bool {
        set.iter().all(|&i| {
            set.iter().all(|&j| {
                i == j || {
                    let (a, b) = (&self.0[i], &self.0[j]);
                    a.end <= b.start || b.end <= a.start
                }
            })
        })
    }
}

#[test]
fn lis_dp_values_are_ranks() {
    // dp[i] from the algorithms == rank(i) == DG depth (Thm 3.4).
    let mut r = Rng::new(1);
    for _ in 0..10 {
        let n = 3 + r.range(8) as usize;
        let v: Vec<i64> = (0..n).map(|_| r.range(10) as i64).collect();
        let sys = LisSystem(v.clone());
        let (_, dp) = lis::lis_seq_with_dp(&v);
        for (x, &d) in dp.iter().enumerate() {
            assert_eq!(d as usize, sys.rank_of(x), "rank mismatch at {x} in {v:?}");
            assert_eq!(sys.rank_of(x), sys.dg_depth(x), "Thm 3.4 violated at {x}");
        }
    }
}

#[test]
fn activity_ranks_match_specification() {
    let mut r = Rng::new(2);
    for _ in 0..10 {
        let n = 3 + r.range(7) as usize;
        let acts: Vec<Activity> = (0..n)
            .map(|_| {
                let s = r.range(20);
                Activity::new(s, s + 1 + r.range(10), 1)
            })
            .collect();
        let acts = activity::sort_by_end(acts);
        let sys = ActivitySystem(acts.clone());
        let ranks = activity::ranks(&acts);
        for (x, &rk) in ranks.iter().enumerate() {
            assert_eq!(rk as usize, sys.rank_of(x), "activity rank mismatch at {x}");
        }
    }
}

#[test]
fn theorem_3_2_holds_for_both_systems() {
    // Objects of equal rank never rely on each other.
    let v = vec![3i64, 1, 4, 1, 5, 9, 2, 6];
    let sys = LisSystem(v);
    for x in 0..sys.len() {
        for y in 0..x {
            if sys.rank_of(x) == sys.rank_of(y) {
                assert!(!sys.relies_on(x, y));
            }
        }
    }
}

/// The 2D-grid Whac-A-Mole as an independence system: feasible = a set
/// of moles that one hammer can hit in time order (pairwise L1
/// reachability in both rotated directions — strict, per Eq. (5)/(6)).
struct Whac2dSystem(Vec<pp_algos::whac::Mole2d>);

impl IndependenceSystem for Whac2dSystem {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn is_feasible(&self, set: &[usize]) -> bool {
        // Sort set members by time; every consecutive (hence every)
        // pair must satisfy the four strict rotated constraints.
        let mut s: Vec<&pp_algos::whac::Mole2d> = set.iter().map(|&i| &self.0[i]).collect();
        s.sort_by_key(|m| (m.t, m.x, m.y));
        s.windows(2).all(|w| {
            let (a, b) = (w[0], w[1]);
            a.t + a.x + a.y < b.t + b.x + b.y
                && a.t + a.x - a.y < b.t + b.x - b.y
                && a.t - a.x + a.y < b.t - b.x + b.y
                && a.t - a.x - a.y < b.t - b.x - b.y
        })
    }
}

#[test]
fn whac2d_rank_is_max_feasible_set() {
    // rank(S) from the solver == |MFS| from the brute-force system spec.
    let mut r = Rng::new(3);
    for _ in 0..8 {
        let n = 3 + r.range(7) as usize;
        let moles: Vec<pp_algos::whac::Mole2d> = (0..n)
            .map(|_| pp_algos::whac::Mole2d {
                t: r.range(12) as i64,
                x: r.range(6) as i64 - 3,
                y: r.range(6) as i64 - 3,
            })
            .collect();
        let sys = Whac2dSystem(moles.clone());
        let want = sys.rank_of_set();
        assert_eq!(
            pp_algos::whac::whac2d_seq(&moles) as usize,
            want,
            "whac2d MFS mismatch on {moles:?}"
        );
    }
}

#[test]
fn hereditary_property_sanity() {
    // Subsets of feasible sets are feasible (checked on LIS instances).
    let v = vec![2i64, 5, 3, 7];
    let sys = LisSystem(v);
    let feasible = vec![0usize, 2, 3]; // 2 < 3 < 7
    assert!(sys.is_feasible(&feasible));
    assert!(sys.is_feasible(&[0, 2]));
    assert!(sys.is_feasible(&[2, 3]));
    assert!(sys.is_feasible(&[]));
}
