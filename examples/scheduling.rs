//! Conference-room scheduling with weighted activity selection.
//!
//! A venue receives booking requests (start, end, payment). We maximize
//! revenue with the paper's Type 1 and Type 2 phase-parallel algorithms
//! and compare against the classic sequential DP — the Fig. 5 setup at
//! example scale.
//!
//! Run with: `cargo run --release -p pp-algos --example scheduling`

use pp_algos::activity::{self, workload};
use std::time::Instant;

fn main() {
    let n = 2_000_000;
    println!("Generating {n} booking requests (truncated-normal lengths, §6.1 workload)…");

    for target_rank in [100u64, 10_000] {
        let acts = workload::with_target_rank(n, target_rank, 1);
        let rank = *activity::ranks(&acts).iter().max().unwrap();
        println!("\n== target rank {target_rank} (measured {rank}) ==");

        let t = Instant::now();
        let best_seq = activity::max_weight_seq(&acts);
        let t_seq = t.elapsed();
        println!("  classic sequential DP: {best_seq:>20}  in {t_seq:?}");

        let t = Instant::now();
        let r1 = activity::max_weight_type1(&acts);
        let (best_t1, s1) = (r1.output, r1.stats);
        let t_t1 = t.elapsed();
        println!(
            "  phase-parallel Type 1: {best_t1:>20}  in {t_t1:?}  ({} rounds)",
            s1.rounds
        );

        let t = Instant::now();
        let r2 = activity::max_weight_type2(&acts);
        let (best_t2, s2) = (r2.output, r2.stats);
        let t_t2 = t.elapsed();
        println!(
            "  phase-parallel Type 2: {best_t2:>20}  in {t_t2:?}  ({} rounds, {} wake-ups)",
            s2.rounds, s2.wakeup_attempts
        );

        assert_eq!(best_seq, best_t1);
        assert_eq!(best_seq, best_t2);
        println!(
            "  speedup vs sequential: type1 {:.2}x, type2 {:.2}x",
            t_seq.as_secs_f64() / t_t1.as_secs_f64(),
            t_seq.as_secs_f64() / t_t2.as_secs_f64()
        );
    }
}
