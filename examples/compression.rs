//! A complete Huffman coding pipeline on Zipfian text.
//!
//! Builds the code tree with the phase-parallel construction (§4.3),
//! verifies it against the sequential two-queue algorithm, and encodes /
//! decodes a message to show the tree actually works end-to-end.
//!
//! Run with: `cargo run --release -p pp-algos --example compression`

use pp_algos::huffman::{build_par_with_stats, build_seq, CanonicalCode};
use pp_parlay::rng::Rng;
use std::time::Instant;

fn main() {
    // Zipfian symbol frequencies over a large alphabet (§6.2 uses
    // Zipfian as one of its three distributions).
    let alphabet = 1_000_000usize;
    let freqs: Vec<u64> = (0..alphabet)
        .map(|i| (2_000_000.0 / (i + 1) as f64).ceil() as u64)
        .collect();

    let t = Instant::now();
    let seq_tree = build_seq(&freqs);
    let t_seq = t.elapsed();

    let t = Instant::now();
    let report = build_par_with_stats(&freqs);
    let (par_tree, stats) = (report.output, report.stats);
    let t_par = t.elapsed();

    let wpl_seq = seq_tree.weighted_path_length(&freqs);
    let wpl_par = par_tree.weighted_path_length(&freqs);
    assert_eq!(wpl_seq, wpl_par, "both trees must be optimal");
    println!("alphabet {alphabet}: optimal weighted path length = {wpl_seq}");
    println!("  sequential two-queue: {t_seq:?}");
    println!(
        "  phase-parallel:       {t_par:?}  ({} rounds, height {})",
        stats.rounds,
        par_tree.height()
    );

    // Full pipeline: canonical codes → encode → decode → verify.
    let code = CanonicalCode::from_tree(&par_tree);
    let mut rng = Rng::new(9);
    let message: Vec<usize> = (0..50_000)
        .map(|_| {
            // Zipf-ish sampling: low symbol ids are frequent.
            let r = rng.f64();
            ((alphabet as f64).powf(r) as usize).min(alphabet - 1)
        })
        .collect();
    let bits = code.encode(&message);
    let decoded = code.decode(&bits, message.len());
    assert_eq!(decoded, message, "lossless round-trip");
    let fixed_bits = message.len() * 20; // fixed 20-bit symbols
    println!(
        "round-trip OK: {} symbols → {} bits Huffman vs {} bits fixed ({:.1}% saved)",
        message.len(),
        bits.len(),
        fixed_bits,
        100.0 * (1.0 - bits.len() as f64 / fixed_bits as f64)
    );
    assert!(bits.len() < fixed_bits);
}
