//! Register allocation by parallel greedy graph coloring (§5.3).
//!
//! A compiler backend assigns virtual registers to a small set of
//! physical registers; two virtual registers need different physical
//! ones iff their live ranges overlap (an *interference graph*). Classic
//! allocators color this graph greedily — exactly the Jones–Plassmann
//! iterative algorithm the paper parallelizes with its Type 2 wake-up
//! machinery.
//!
//! This example synthesizes live ranges for a large straight-line
//! function (each virtual register live over an interval; intervals from
//! a truncated-geometric length distribution), builds the interval
//! interference graph, colors it with the parallel greedy algorithm
//! under the three ordering heuristics of Hasenplaugh et al. [48], and
//! verifies the coloring both against the sequential greedy and for
//! propriety.
//!
//! Run with: `cargo run --release -p pp-algos --example register_allocation`

use pp_algos::coloring::{coloring_par, coloring_seq, is_proper_coloring};
use pp_algos::coloring_orders::{
    num_colors, order_largest_degree_first, order_largest_log_degree_first, order_random,
};
use pp_graph::GraphBuilder;
use pp_parlay::rng::Rng;

/// A virtual register live over the half-open instruction range
/// `[start, end)`.
struct LiveRange {
    start: u32,
    end: u32,
}

/// Synthesize `n` live ranges over a program of `program_len`
/// instructions; most ranges are short (geometric-ish), a few span far.
fn synthesize_live_ranges(n: usize, program_len: u32, seed: u64) -> Vec<LiveRange> {
    let mut r = Rng::new(seed);
    (0..n)
        .map(|_| {
            let start = r.range(u64::from(program_len)) as u32;
            // 1 + min of three draws ⇒ mean ≈ len/4 with a long tail.
            let a = r.range(200) as u32;
            let b = r.range(200) as u32;
            let c = r.range(200) as u32;
            let len = 1 + a.min(b).min(c);
            LiveRange {
                start,
                end: (start + len).min(program_len),
            }
        })
        .collect()
}

/// Interference graph: an edge between every pair of overlapping ranges.
/// Sweep-line construction: O(n log n + edges).
fn interference_graph(ranges: &[LiveRange]) -> pp_graph::Graph {
    let n = ranges.len();
    // Events: (pos, is_end, id) — ends before starts at equal pos since
    // ranges are half-open.
    let mut events: Vec<(u32, bool, u32)> = Vec::with_capacity(2 * n);
    for (i, lr) in ranges.iter().enumerate() {
        events.push((lr.start, false, i as u32));
        events.push((lr.end, true, i as u32));
    }
    events.sort_unstable_by_key(|&(pos, is_end, id)| (pos, !is_end, id));
    let mut live: Vec<u32> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (_, is_end, id) in events {
        if is_end {
            live.retain(|&x| x != id);
        } else {
            for &other in &live {
                edges.push((other, id));
            }
            live.push(id);
        }
    }
    let mut b = GraphBuilder::new(n).symmetric();
    for (u, v) in edges {
        b.add(u, v);
    }
    b.build()
}

fn main() {
    let n = 30_000;
    let program_len = 200_000;
    println!("Synthesizing {n} virtual-register live ranges over {program_len} instructions…");
    let ranges = synthesize_live_ranges(n, program_len, 42);
    let g = interference_graph(&ranges);
    println!(
        "Interference graph: {} vertices, {} edges, max degree {}",
        g.num_vertices(),
        g.num_edges() / 2,
        g.max_degree()
    );

    // The interval-graph clique number = max simultaneous live registers:
    // the optimal color count (interval graphs are perfect), our yardstick.
    let mut depth = vec![0u32; program_len as usize + 1];
    for lr in &ranges {
        depth[lr.start as usize] += 1;
        depth[lr.end as usize] -= 1;
    }
    let mut cur = 0i64;
    let mut clique = 0i64;
    for d in depth {
        cur += i64::from(d as i32);
        clique = clique.max(cur);
    }
    println!("Maximum register pressure (optimal colors): {clique}");

    for (name, priority) in [
        ("random (R)", order_random(&g, 7)),
        (
            "largest-degree-first (LF)",
            order_largest_degree_first(&g, 7),
        ),
        (
            "largest-log-degree-first (LLF)",
            order_largest_log_degree_first(&g, 7),
        ),
    ] {
        let colors = coloring_par(&g, &priority);
        assert!(is_proper_coloring(&g, &colors), "{name}: improper coloring");
        assert_eq!(
            colors,
            coloring_seq(&g, &priority),
            "{name}: parallel differs from sequential greedy"
        );
        println!(
            "  {name:<28} → {} physical registers ({:.2}x optimal)",
            num_colors(&colors),
            f64::from(num_colors(&colors)) / clique as f64,
        );
    }
    println!("All colorings proper and identical to the sequential greedy. ✓");
}
