//! Whac-A-Mole solved with the phase-parallel framework (Appendix B).
//!
//! Simulates arcade sessions on a 1D strip and on a 2D grid and computes
//! the maximum number of moles a perfectly played hammer can hit:
//!
//! * **1D strip** — the appendix's setting: rotating `(t, p)` to
//!   `(t+p, t−p)` turns the DP into LIS, solved by Algorithm 3's pivot
//!   machinery (`O(n log^3 n)` work, `O(k log^2 n)` span).
//! * **2D grid** — the appendix's closing remark: the L1 reachability
//!   cone becomes four rotated dominance constraints, one extra range
//!   tree level, one extra `log` in work and span (`pp-ranges`'
//!   `RangeTree4d`).
//!
//! Run with: `cargo run --release -p pp-algos --example whack_a_mole`

use pp_algos::lis::PivotMode;
use pp_algos::whac::{whac2d_par, whac2d_seq, whac_par, whac_seq, Mole, Mole2d};
use pp_algos::RunConfig;
use pp_parlay::rng::Rng;
use std::time::Instant;

/// A 1D session: mole `i` pops up near a drifting hot spot, so a good
/// player strings long runs together (controls the rank).
fn session_1d(n: usize, drift: i64, seed: u64) -> Vec<Mole> {
    let mut r = Rng::new(seed);
    let mut hot = 0i64;
    (0..n)
        .map(|i| {
            hot += r.range(2 * drift as u64 + 1) as i64 - drift;
            Mole {
                t: 3 * i as i64,
                p: hot + r.range(5) as i64 - 2,
            }
        })
        .collect()
}

/// A 2D session on a `side × side` grid.
fn session_2d(n: usize, side: u64, seed: u64) -> Vec<Mole2d> {
    let mut r = Rng::new(seed);
    (0..n)
        .map(|_| Mole2d {
            t: r.range(6 * n as u64) as i64,
            x: r.range(side) as i64,
            y: r.range(side) as i64,
        })
        .collect()
}

fn main() {
    println!("— 1D strip (Appendix B, reduction to LIS) —");
    for (label, drift) in [("calm hot spot (long runs)", 1i64), ("jumpy hot spot", 40)] {
        let moles = session_1d(200_000, drift, 9);
        let t0 = Instant::now();
        let want = whac_seq(&moles);
        let t_seq = t0.elapsed();
        let t0 = Instant::now();
        let cfg = RunConfig::seeded(5).with_pivot_mode(PivotMode::RightMost);
        let report = whac_par(&moles, &cfg);
        let (got, stats) = (report.output, report.stats);
        let t_par = t0.elapsed();
        assert_eq!(got, want);
        println!(
            "  {label:<26} n=200000: hit {got} moles \
             (seq {t_seq:?}, par {t_par:?}, {} rounds, {:.2} avg wake-ups)",
            stats.rounds,
            stats.avg_wakeups()
        );
    }

    println!("\n— 2D grid (Appendix B closing remark, 4D dominance) —");
    for (label, side) in [
        ("small grid (dense play)", 8u64),
        ("large grid (sparse)", 1000),
    ] {
        let moles = session_2d(20_000, side, 10);
        let t0 = Instant::now();
        let want = whac2d_seq(&moles);
        let t_seq = t0.elapsed();
        let t0 = Instant::now();
        let cfg = RunConfig::seeded(6).with_pivot_mode(PivotMode::RightMost);
        let report = whac2d_par(&moles, &cfg);
        let (got, stats) = (report.output, report.stats);
        let t_par = t0.elapsed();
        assert_eq!(got, want);
        println!(
            "  {label:<26} n=20000:  hit {got} moles \
             (seq {t_seq:?}, par {t_par:?}, {} rounds)",
            stats.rounds
        );
    }
    println!("\nParallel answers matched the sequential DP on every session. ✓");
}
