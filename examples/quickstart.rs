//! Quickstart: a 60-second tour of the unified phase-parallel API.
//!
//! One calling convention for every algorithm family: build a
//! `RunConfig`, hand it to a `Solver` (or a family's free function),
//! get a `Report` back — output plus unified execution statistics.
//!
//! Run with: `cargo run --release -p pp-algos --example quickstart`

use phase_parallel::{PivotMode, RunConfig, Solver};
use pp_algos::api::{
    ActivityType1, ActivityType2, DeltaSssp, GraphPriorityInstance, GreedyMis, Lis, SsspInstance,
};
use pp_algos::registry::{self, CaseSpec};
use pp_algos::{activity, lis};
use pp_graph::gen;
use pp_parlay::shuffle::random_priorities;

fn main() {
    // --- The Solver handle: algorithm + configuration, reusable ---
    let cfg = RunConfig::seeded(7).with_pivot_mode(PivotMode::RightMost);
    let solver = Solver::new(Lis).with_config(cfg);

    // LIS: the paper's headline Type 2 algorithm (Algorithm 3).
    let series = lis::patterns::segment(100_000, 50, 42);
    let report = solver.solve(&series);
    println!(
        "LIS of 100k-element segment pattern: length={} ({} rounds, {:.2} avg wake-ups)",
        report.output,
        report.stats.rounds,
        report.stats.avg_wakeups()
    );
    assert_eq!(report.output, solver.solve_seq(&series));

    // --- Activity selection: Type 1 vs Type 2 (Algorithm 2, §5.1) ---
    let acts = activity::workload::with_target_rank(100_000, 100, 1);
    let r1 = Solver::new(ActivityType1).solve_checked(&acts);
    let r2 = Solver::new(ActivityType2).solve_checked(&acts);
    assert_eq!(r1.output, r2.output);
    println!(
        "Activity selection on 100k activities: best weight {} \
         (type1 {} rounds, type2 {} rounds, rank {})",
        r1.output,
        r1.stats.rounds,
        r2.stats.rounds,
        activity::ranks(&acts).iter().max().unwrap()
    );

    // --- Greedy MIS via TAS trees (Algorithm 4) ---
    let g = gen::rmat(14, 1 << 17, 3);
    let pri = random_priorities(g.num_vertices(), 4);
    let input = GraphPriorityInstance::new(g, pri);
    let report = Solver::new(GreedyMis).solve_checked(&input);
    let size = report.output.iter().filter(|&&x| x).count();
    println!(
        "Greedy MIS on an RMAT graph ({} vertices, {} arcs): |MIS| = {size}",
        input.graph.num_vertices(),
        input.graph.num_edges()
    );

    // --- Prepare once, query many: the engine calling convention ---
    let g = gen::uniform(20_000, 80_000, 5);
    let wg = gen::with_uniform_weights(&g, 1, 1000, 6);
    let instance = SsspInstance::new(wg, 0);
    let solver = Solver::new(DeltaSssp);
    // `prepare` builds the amortizable instance structure (w*, minimum
    // out-weights); `solve_batch` serves per-source queries against it
    // with recycled scratch buffers.
    let prepared = solver.prepare(&instance);
    let queries: Vec<RunConfig> = (0..8)
        .map(|s| RunConfig::seeded(s).with_source(s as u32 * 100))
        .collect();
    let batch = prepared.solve_batch(&queries);
    println!(
        "\nPrepared SSSP served {} per-source queries ({} total rounds, max frontier {})",
        batch.len(),
        batch.total_rounds(),
        batch.max_frontier()
    );

    // --- Generic dispatch: any algorithm by name, via the registry ---
    println!("\nRegistry sweep (size 2000, every family, par == seq):");
    let case = CaseSpec::new(2000, 9);
    let cfg = RunConfig::seeded(9);
    for entry in registry::registry() {
        let outcome = entry.run_case(&case, &cfg);
        assert!(outcome.agrees(), "{} diverged", entry.name());
        println!(
            "  {:<24} {:>5} rounds  [{:?}]",
            entry.name(),
            outcome.stats.rounds,
            entry.engine()
        );
    }
    println!("All registered algorithms reproduced their sequential baselines. ✓");
}
