//! Quickstart: a 60-second tour of the phase-parallel API.
//!
//! Run with: `cargo run --release -p pp-algos --example quickstart`

use pp_algos::activity::{self, Activity};
use pp_algos::lis::{self, PivotMode};
use pp_algos::mis;
use pp_graph::gen;
use pp_parlay::shuffle::random_priorities;

fn main() {
    // --- LIS: the paper's headline Type 2 algorithm (Algorithm 3) ---
    let series = lis::patterns::segment(100_000, 50, 42);
    let result = lis::lis_par(&series, PivotMode::RightMost, 7);
    println!(
        "LIS of 100k-element segment pattern: length={} ({} rounds, {:.2} avg wake-ups)",
        result.length,
        result.stats.rounds,
        result.stats.avg_wakeups()
    );
    assert_eq!(result.length, lis::lis_seq(&series));

    // --- Activity selection: Type 1 vs Type 2 (Algorithm 2, §5.1) ---
    let acts: Vec<Activity> = activity::workload::with_target_rank(100_000, 100, 1);
    let (w1, s1) = activity::max_weight_type1(&acts);
    let (w2, s2) = activity::max_weight_type2(&acts);
    assert_eq!(w1, w2);
    println!(
        "Activity selection on 100k activities: best weight {w1} \
         (type1 {} rounds, type2 {} rounds, rank {})",
        s1.rounds,
        s2.rounds,
        activity::ranks(&acts).iter().max().unwrap()
    );

    // --- Greedy MIS via TAS trees (Algorithm 4) ---
    let g = gen::rmat(14, 1 << 17, 3);
    let pri = random_priorities(g.num_vertices(), 4);
    let set = mis::mis_tas(&g, &pri);
    let size = set.iter().filter(|&&x| x).count();
    assert!(mis::is_maximal_independent(&g, &set));
    println!(
        "Greedy MIS on an RMAT graph ({} vertices, {} arcs): |MIS| = {size}",
        g.num_vertices(),
        g.num_edges()
    );
}
