//! Longest run of increasing prices in a simulated price series.
//!
//! Uses the §6.4 input patterns (segment and line) as "market regimes"
//! and compares the parallel LIS (Algorithm 3) against the classic
//! sequential DP, reporting the wake-up statistics of Table 2.
//!
//! Run with: `cargo run --release -p pp-algos --example stock_lis`

use pp_algos::lis::{lis_par, lis_seq, patterns, PivotMode};
use pp_algos::RunConfig;
use std::time::Instant;

fn main() {
    let n = 1_000_000;

    for (name, series) in [
        ("segment pattern, ~30 regimes", patterns::segment(n, 30, 1)),
        (
            "segment pattern, ~1000 regimes",
            patterns::segment(n, 1000, 2),
        ),
        (
            "line pattern (drift + noise)",
            patterns::line_with_target(n, 300, 3),
        ),
    ] {
        println!("\n== {name} ({n} ticks) ==");
        let t = Instant::now();
        let k_seq = lis_seq(&series);
        let t_seq = t.elapsed();
        println!("  classic sequential: k={k_seq:<6} in {t_seq:?}");

        for mode in [PivotMode::RightMost, PivotMode::Random] {
            let t = Instant::now();
            let res = lis_par(&series, &RunConfig::seeded(4).with_pivot_mode(mode));
            let dt = t.elapsed();
            assert_eq!(res.output, k_seq);
            println!(
                "  parallel {mode:?}: k={} in {dt:?} ({} rounds, avg wake-ups {:.2})",
                res.output,
                res.stats.rounds,
                res.stats.avg_wakeups()
            );
        }
    }
}
