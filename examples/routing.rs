//! SSSP routing: the Δ = w* phase-parallel choice on two graph shapes.
//!
//! §6.3's finding: on low-diameter graphs with large w*, Δ = w* (the
//! phase-parallel relaxed rank) is both work-efficient and parallel; on
//! high-diameter road-like graphs small frontiers dominate and larger Δ
//! wins. This example reproduces that contrast on a synthetic social
//! network (RMAT) and a synthetic road grid.
//!
//! The closing section is the engine view: the road network is
//! **prepared once** (`Solver::prepare`) and then serves a whole batch
//! of per-source queries (`PreparedSolver::solve_batch`) with recycled
//! scratch buffers — the calling convention a routing service uses.
//!
//! Run with: `cargo run --release -p pp-algos --example routing`

use phase_parallel::Solver;
use pp_algos::api::{DeltaSssp, SsspInstance};
use pp_algos::sssp::{delta_stepping, dijkstra};
use pp_algos::RunConfig;
use pp_graph::gen;
use std::time::Instant;

fn run(name: &str, g: &pp_graph::Graph) {
    let w_star = g.min_weight().unwrap();
    let w_max = g.max_weight().unwrap();
    println!(
        "\n== {name}: {} vertices, {} arcs, weights [{w_star}, {w_max}] ==",
        g.num_vertices(),
        g.num_edges()
    );
    let t = Instant::now();
    let base = dijkstra(g, 0);
    println!("  dijkstra (sequential): {:?}", t.elapsed());

    for (label, delta) in [
        ("Δ = w*   (phase-parallel)", w_star),
        ("Δ = 4 w*", 4 * w_star),
        ("Δ = w_max (≈ Bellman-Ford)", w_max * 1024),
    ] {
        let t = Instant::now();
        let report = delta_stepping(g, 0, &RunConfig::new().with_delta(delta));
        assert_eq!(report.output, base);
        println!(
            "  {label:28}: {:>10?}  buckets={:<6} substeps={:<6} relaxations={}",
            t.elapsed(),
            report.stats.rounds,
            report.stats.counter("substeps").unwrap_or(0),
            report.stats.counter("relaxations").unwrap_or(0)
        );
    }
}

fn main() {
    // Social-network stand-in: low diameter, skewed degrees (§6.3 /
    // DESIGN.md substitution for Twitter/Friendster).
    let social = gen::rmat(16, 1 << 20, 1);
    let social = gen::with_uniform_weights(&social, 1 << 21, 1 << 23, 2);
    run("RMAT social network", &social);

    // Road-network stand-in: high diameter, constant degree.
    let road = gen::grid2d(400, 400);
    let road = gen::with_uniform_weights(&road, 1 << 21, 1 << 23, 3);
    run("road grid 400x400", &road);

    // The engine view: prepare the road network once, then serve a
    // batch of per-source queries against it.
    let n = road.num_vertices();
    let instance = SsspInstance::new(road, 0);
    let queries: Vec<RunConfig> = (0..16u64)
        .map(|i| RunConfig::seeded(i).with_source((pp_parlay::hash64(9, i) % n as u64) as u32))
        .collect();
    let solver = Solver::new(DeltaSssp);

    let t = Instant::now();
    let one_shot_reach: usize = queries
        .iter()
        .map(|q| {
            solver
                .solve_with(&instance, q)
                .output
                .iter()
                .filter(|&&d| d != u64::MAX)
                .count()
        })
        .sum();
    let one_shot_time = t.elapsed();

    let prepared = solver.prepare(&instance);
    let t = Instant::now();
    let batch = prepared.solve_batch(&queries);
    let batch_time = t.elapsed();
    let batch_reach: usize = batch
        .outputs()
        .map(|d| d.iter().filter(|&&x| x != u64::MAX).count())
        .sum();
    assert_eq!(one_shot_reach, batch_reach);

    println!(
        "\n== prepared routing service: {} queries ==",
        queries.len()
    );
    println!("  one-shot solve_par per query : {one_shot_time:?}");
    println!(
        "  prepare once + solve_batch   : {batch_time:?}  ({} total rounds, speedup {:.2}x)",
        batch.total_rounds(),
        one_shot_time.as_secs_f64() / batch_time.as_secs_f64()
    );
}
