//! SSSP routing: the Δ = w* phase-parallel choice on two graph shapes.
//!
//! §6.3's finding: on low-diameter graphs with large w*, Δ = w* (the
//! phase-parallel relaxed rank) is both work-efficient and parallel; on
//! high-diameter road-like graphs small frontiers dominate and larger Δ
//! wins. This example reproduces that contrast on a synthetic social
//! network (RMAT) and a synthetic road grid.
//!
//! The closing section is the engine view: the road network is
//! **prepared once** (`Solver::prepare`) and then serves a whole batch
//! of per-source queries (`PreparedSolver::solve_batch`) with recycled
//! scratch buffers — the calling convention a routing service uses.
//!
//! Run with: `cargo run --release -p pp-algos --example routing`

use phase_parallel::Solver;
use pp_algos::api::{DeltaSssp, SsspInstance};
use pp_algos::sssp::{delta_stepping, dijkstra};
use pp_algos::RunConfig;
use pp_workloads::{ScenarioSpec, WeightDist};
use std::time::Instant;

fn run(name: &str, g: &pp_graph::Graph) {
    let w_star = g.min_weight().unwrap();
    let w_max = g.max_weight().unwrap();
    println!(
        "\n== {name}: {} vertices, {} arcs, weights [{w_star}, {w_max}] ==",
        g.num_vertices(),
        g.num_edges()
    );
    let t = Instant::now();
    let base = dijkstra(g, 0);
    println!("  dijkstra (sequential): {:?}", t.elapsed());

    for (label, delta) in [
        ("Δ = w*   (phase-parallel)", w_star),
        ("Δ = 4 w*", 4 * w_star),
        ("Δ = w_max (≈ Bellman-Ford)", w_max * 1024),
    ] {
        let t = Instant::now();
        let report = delta_stepping(g, 0, &RunConfig::new().with_delta(delta));
        assert_eq!(report.output, base);
        println!(
            "  {label:28}: {:>10?}  buckets={:<6} substeps={:<6} relaxations={}",
            t.elapsed(),
            report.stats.rounds,
            report.stats.counter("substeps").unwrap_or(0),
            report.stats.counter("relaxations").unwrap_or(0)
        );
    }
}

fn main() {
    // Both inputs come from the string-keyed scenario layer; the §6.3
    // weighting scheme (uniform in [2^21, 2^23]) is the weight knob.
    let weights = WeightDist::Uniform {
        min: 1 << 21,
        max: 1 << 23,
    };

    // Social-network stand-in: low diameter, skewed degrees (§6.3 /
    // DESIGN.md substitution for Twitter/Friendster).
    let social = ScenarioSpec::parse("graph/rmat")
        .unwrap()
        .with_weights(weights)
        .with_degree(16)
        .weighted_graph(1 << 16, 1)
        .unwrap();
    run("RMAT social network (graph/rmat)", &social);

    // Road-network stand-in: high diameter, constant degree.
    let road = ScenarioSpec::parse("graph/grid2d")
        .unwrap()
        .with_weights(weights)
        .weighted_graph(400 * 400, 3)
        .unwrap();
    run("road grid 400x400 (graph/grid2d)", &road);

    // The engine view: prepare the road network once, then serve a
    // batch of per-source queries against it.
    let n = road.num_vertices();
    let instance = SsspInstance::new(road, 0);
    let queries: Vec<RunConfig> = (0..16u64)
        .map(|i| RunConfig::seeded(i).with_source((pp_parlay::hash64(9, i) % n as u64) as u32))
        .collect();
    let solver = Solver::new(DeltaSssp);

    let t = Instant::now();
    let one_shot_reach: usize = queries
        .iter()
        .map(|q| {
            solver
                .solve_with(&instance, q)
                .output
                .iter()
                .filter(|&&d| d != u64::MAX)
                .count()
        })
        .sum();
    let one_shot_time = t.elapsed();

    let prepared = solver.prepare(&instance);
    let t = Instant::now();
    let batch = prepared.solve_batch(&queries);
    let batch_time = t.elapsed();
    let batch_reach: usize = batch
        .outputs()
        .map(|d| d.iter().filter(|&&x| x != u64::MAX).count())
        .sum();
    assert_eq!(one_shot_reach, batch_reach);

    println!(
        "\n== prepared routing service: {} queries ==",
        queries.len()
    );
    println!("  one-shot solve_par per query : {one_shot_time:?}");
    println!(
        "  prepare once + solve_batch   : {batch_time:?}  ({} total rounds, speedup {:.2}x)",
        batch.total_rounds(),
        one_shot_time.as_secs_f64() / batch_time.as_secs_f64()
    );
}
