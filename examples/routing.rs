//! SSSP routing: the Δ = w* phase-parallel choice on two graph shapes.
//!
//! §6.3's finding: on low-diameter graphs with large w*, Δ = w* (the
//! phase-parallel relaxed rank) is both work-efficient and parallel; on
//! high-diameter road-like graphs small frontiers dominate and larger Δ
//! wins. This example reproduces that contrast on a synthetic social
//! network (RMAT) and a synthetic road grid.
//!
//! Run with: `cargo run --release -p pp-algos --example routing`

use pp_algos::sssp::{delta_stepping, dijkstra};
use pp_algos::RunConfig;
use pp_graph::gen;
use std::time::Instant;

fn run(name: &str, g: &pp_graph::Graph) {
    let w_star = g.min_weight().unwrap();
    let w_max = g.max_weight().unwrap();
    println!(
        "\n== {name}: {} vertices, {} arcs, weights [{w_star}, {w_max}] ==",
        g.num_vertices(),
        g.num_edges()
    );
    let t = Instant::now();
    let base = dijkstra(g, 0);
    println!("  dijkstra (sequential): {:?}", t.elapsed());

    for (label, delta) in [
        ("Δ = w*   (phase-parallel)", w_star),
        ("Δ = 4 w*", 4 * w_star),
        ("Δ = w_max (≈ Bellman-Ford)", w_max * 1024),
    ] {
        let t = Instant::now();
        let report = delta_stepping(g, 0, &RunConfig::new().with_delta(delta));
        assert_eq!(report.output, base);
        println!(
            "  {label:28}: {:>10?}  buckets={:<6} substeps={:<6} relaxations={}",
            t.elapsed(),
            report.stats.rounds,
            report.stats.counter("substeps").unwrap_or(0),
            report.stats.counter("relaxations").unwrap_or(0)
        );
    }
}

fn main() {
    // Social-network stand-in: low diameter, skewed degrees (§6.3 /
    // DESIGN.md substitution for Twitter/Friendster).
    let social = gen::rmat(16, 1 << 20, 1);
    let social = gen::with_uniform_weights(&social, 1 << 21, 1 << 23, 2);
    run("RMAT social network", &social);

    // Road-network stand-in: high diameter, constant degree.
    let road = gen::grid2d(400, 400);
    let road = gen::with_uniform_weights(&road, 1 << 21, 1 << 23, 3);
    run("road grid 400x400", &road);
}
