//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary prints the same rows/series the paper reports, at a
//! laptop-friendly default scale. Set `PP_SCALE` (default 1) to scale
//! input sizes up (e.g. `PP_SCALE=10` for a 10× larger run) and
//! `RAYON_NUM_THREADS` to control parallelism, mirroring the paper's
//! thread-count experiments.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Input-size multiplier from the `PP_SCALE` env var (default 1).
pub fn scale() -> usize {
    std::env::var("PP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Smoke mode from the `PP_SMOKE` env var: benches shrink to tiny
/// sizes so CI can run them per-PR purely as a regression tripwire
/// (the numbers are not meaningful, the shape of the output is).
pub fn smoke() -> bool {
    std::env::var("PP_SMOKE").is_ok_and(|s| !s.is_empty() && s != "0")
}

/// Time a closure: best of `reps` runs (the paper averages the last five
/// of six; at our scale best-of is less noisy for short runs).
pub fn time_best<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

/// Run a closure on a single-threaded rayon pool — the "Ours seq."
/// column of Table 2 (the parallel algorithm on one core).
pub fn run_single_threaded<R: Send>(f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool")
        .install(f)
}

/// Format a duration in seconds with 4 significant digits.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
}

impl Table {
    /// Start a table and print its header row.
    pub fn new(headers: &[&str]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(12)).collect();
        let t = Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            widths,
        };
        t.print_header();
        t
    }

    fn print_header(&self) {
        let row: Vec<String> = self
            .headers
            .iter()
            .zip(&self.widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("{}", row.join("  "));
        println!("{}", "-".repeat(row.join("  ").len()));
    }

    /// Print one data row.
    pub fn row(&self, cells: &[String]) {
        let row: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", row.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        // (Unless the env var is set in the test environment.)
        if std::env::var("PP_SCALE").is_err() {
            assert_eq!(scale(), 1);
        }
    }

    #[test]
    fn single_threaded_pool_runs() {
        let v = run_single_threaded(rayon::current_num_threads);
        assert_eq!(v, 1);
    }

    #[test]
    fn time_best_positive() {
        let d = time_best(2, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d > Duration::ZERO);
    }
}
