//! Table 1 empirical check: work scaling and round-efficiency of every
//! algorithm.
//!
//! Table 1 states the work/span bounds; absolute constants don't
//! transfer across machines, but two *shapes* are checkable:
//!
//! 1. **Near-linear work**: time per element stays ~flat as n doubles
//!    (work-efficiency; the LIS algorithm is allowed its polylog factor).
//! 2. **Round-efficiency**: rounds executed equals the rank (± the
//!    documented slack for the relaxed-rank algorithms).
//!
//! `cargo run --release -p pp-bench --bin table1_scaling`

#![forbid(unsafe_code)]

use pp_algos::activity::{self, workload};
use pp_algos::huffman;
use pp_algos::knapsack::{max_value_par, Item};
use pp_algos::lis::{self, PivotMode};
use pp_algos::mis;
use pp_algos::sssp;
use pp_algos::RunConfig;
use pp_bench::{scale, secs, time_best, Table};
use pp_graph::gen;
use pp_parlay::shuffle::random_priorities;

fn main() {
    let s = scale();
    println!("Table 1 empirical scaling: per-element time across doubling n\n");
    let table = Table::new(&["algorithm", "n", "time_s", "ns_per_elem", "rounds", "rank"]);

    for base in [250_000usize, 500_000, 1_000_000] {
        let n = base * s;
        // Activity selection (Type 1), rank fixed.
        let acts = workload::with_target_rank(n, 1000, 1);
        let rank = *activity::ranks(&acts).iter().max().unwrap();
        let t = time_best(1, || {
            std::hint::black_box(activity::max_weight_type1(&acts));
        });
        let st = activity::max_weight_type1(&acts).stats;
        table.row(&[
            "activity_t1".into(),
            n.to_string(),
            secs(t),
            format!("{:.1}", t.as_nanos() as f64 / n as f64),
            st.rounds.to_string(),
            rank.to_string(),
        ]);

        // LIS (Type 2), output fixed.
        let series = lis::patterns::segment(n, 100, 2);
        let lis_cfg = RunConfig::seeded(3).with_pivot_mode(PivotMode::RightMost);
        let t = time_best(1, || {
            std::hint::black_box(lis::lis_par(&series, &lis_cfg));
        });
        let res = lis::lis_par(&series, &lis_cfg);
        table.row(&[
            "lis_par".into(),
            n.to_string(),
            secs(t),
            format!("{:.1}", t.as_nanos() as f64 / n as f64),
            res.stats.rounds.to_string(),
            (res.output + 1).to_string(),
        ]);

        // Huffman.
        let freqs: Vec<u64> = (0..n as u64)
            .map(|i| 1 + pp_parlay::hash64(4, i) % 1000)
            .collect();
        let t = time_best(1, || {
            std::hint::black_box(huffman::build_par(&freqs));
        });
        let report = huffman::build_par_with_stats(&freqs);
        let (tree, st) = (report.output, report.stats);
        table.row(&[
            "huffman_par".into(),
            n.to_string(),
            secs(t),
            format!("{:.1}", t.as_nanos() as f64 / n as f64),
            st.rounds.to_string(),
            tree.height().to_string(),
        ]);

        // MIS on uniform graph, m = 5n.
        let g = gen::uniform(n, 5 * n, 5);
        let pri = random_priorities(n, 6);
        let t = time_best(1, || {
            std::hint::black_box(mis::mis_tas(&g, &pri));
        });
        table.row(&[
            "mis_tas".into(),
            n.to_string(),
            secs(t),
            format!("{:.1}", t.as_nanos() as f64 / g.num_edges() as f64),
            "-".into(),
            "-".into(),
        ]);
    }

    // Knapsack: work O(nW); rounds = W/w*.
    println!("\nKnapsack (Type 1): rounds = W / w* exactly\n");
    let items: Vec<Item> = (0..50)
        .map(|i| Item::new(20 + (i * 13) % 80, 1 + i))
        .collect();
    let w = 200_000u64;
    let st = max_value_par(&items, w).stats;
    println!(
        "  W = {w}, w* = 20 → rounds = {} (expected {})",
        st.rounds,
        w / 20
    );

    // SSSP: buckets = relaxed rank.
    println!("\nSSSP (relaxed rank): Δ = w* buckets ≈ d_max / w*\n");
    let g = gen::rmat(14, 1 << 17, 7);
    let g = gen::with_uniform_weights(&g, 1 << 20, 1 << 23, 8);
    let report = sssp::sssp_phase_parallel(&g, 0);
    let d_max = report
        .output
        .iter()
        .filter(|&&x| x != sssp::INF)
        .max()
        .unwrap();
    println!(
        "  d_max = {d_max}, w* = 2^20 → buckets processed = {} (d_max/w* = {})",
        report.stats.rounds,
        d_max >> 20
    );
}
