//! Figure 10: sample the LIS input patterns as CSV for plotting.
//!
//! Emits (index, value) samples of the segment pattern (output sizes 10
//! and 300) and the line pattern (1000 and 3000), mirroring the four
//! panels of Fig. 10.
//!
//! `cargo run --release -p pp-bench --bin fig10 > fig10.csv`

#![forbid(unsafe_code)]

use pp_algos::lis::{lis_seq, patterns};

fn emit(panel: &str, data: &[i64]) {
    let k = lis_seq(data);
    let step = (data.len() / 2000).max(1);
    for (i, &v) in data.iter().enumerate().step_by(step) {
        println!("{panel},{k},{i},{v}");
    }
}

fn main() {
    let n = 1_000_000;
    println!("panel,measured_lis,i,a_i");
    emit("a_segment_10", &patterns::segment(n, 10, 1));
    emit("b_segment_300", &patterns::segment(n, 300, 1));
    emit("c_line_1000", &patterns::line_with_target(n, 1000, 2));
    emit("d_line_3000", &patterns::line_with_target(n, 3000, 2));
}
