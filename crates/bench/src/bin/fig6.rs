//! Figure 6: parallel SSSP — Δ-stepping time as a function of Δ for
//! several minimum edge weights w*.
//!
//! Paper setup: Twitter (41.7M/1.47B) and Friendster (65.6M/3.61B)
//! graphs, w_max = 2^23, w* ∈ {2^17..2^22}, Δ ∈ {2^16..2^26}. Finding:
//! the best Δ tracks w* (within 2×) while w* is close to w_max — the
//! phase-parallel work-efficiency argument — and drifts above w* when
//! w* is small (parallelism starves).
//!
//! Substitution (DESIGN.md §2): RMAT power-law graphs stand in for the
//! social networks, at a laptop scale (2^16 vertices, ~2^20 edges by
//! default; PP_SCALE multiplies edges).
//!
//! `cargo run --release -p pp-bench --bin fig6`

#![forbid(unsafe_code)]

use pp_algos::sssp::delta_stepping;
use pp_algos::RunConfig;
use pp_bench::{scale, secs, time_best};
use pp_graph::gen;

fn main() {
    let w_max: u64 = 1 << 23;
    for (name, scale_log, edges) in [
        ("Twitter-like RMAT", 16u32, (1usize << 20) * scale()),
        ("Friendster-like RMAT", 17u32, (1usize << 21) * scale()),
    ] {
        let base = gen::rmat(scale_log, edges, 1);
        println!(
            "\nFig 6: {name} ({} vertices, {} arcs), w_max = 2^23",
            base.num_vertices(),
            base.num_edges()
        );
        // Header: Δ exponents.
        let deltas: Vec<u32> = (16..=26).collect();
        let mut head = vec!["log2_w*".to_string(), "best_Δ".to_string()];
        head.extend(deltas.iter().map(|d| format!("Δ=2^{d}")));
        println!("{}", head.join("  "));
        for wlog in [17u32, 18, 19, 20, 21, 22] {
            let g = gen::with_uniform_weights(&base, 1 << wlog, w_max, 5 + wlog as u64);
            let mut cells = Vec::new();
            let mut best = (f64::MAX, 0u32);
            for &dlog in &deltas {
                let cfg = RunConfig::new().with_delta(1 << dlog);
                let t = time_best(1, || {
                    std::hint::black_box(delta_stepping(&g, 0, &cfg));
                });
                let s = t.as_secs_f64();
                if s < best.0 {
                    best = (s, dlog);
                }
                cells.push(secs(t));
            }
            println!(
                "{:>7}  {:>6}  {}",
                wlog,
                format!("2^{}", best.1),
                cells.join("  ")
            );
        }
        println!("Shape check: the best Δ column should track log2_w* (within ~2x) for large w*.");
    }
}
