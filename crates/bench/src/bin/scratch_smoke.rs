//! Scratch steady-state gate: fails (exit 1) if any registry entry's
//! prepared query path allocates per-query scratch in steady state.
//!
//! For every registry entry × every scenario family it supports, the
//! entry's instance is prepared once, two warm-up queries populate the
//! [`Scratch`](phase_parallel::Scratch) workspace, and the third
//! query's take/reuse counter delta is inspected: in steady state every
//! `take_*` must be served from a parked buffer (`takes == reuses`).
//! An entry that trips this gate re-allocates hot buffers on every
//! query — exactly the regression the prepare/query split exists to
//! prevent.
//!
//! Run in CI with `PP_SMOKE=1` (tiny instances; the property is
//! size-independent). `PP_SCALE` scales instances up for local runs.
//!
//! Run with: `cargo run --release -p pp-bench --bin scratch_smoke`

#![forbid(unsafe_code)]

use phase_parallel::RunConfig;
use pp_algos::registry::{self, CaseSpec};

fn main() {
    let size = if pp_bench::smoke() {
        120
    } else {
        800 * pp_bench::scale()
    };
    let cfg = RunConfig::seeded(7);
    let mut failures = 0usize;
    let table = pp_bench::Table::new(&["entry", "scenario", "takes", "reuses", "steady"]);
    for entry in registry::registry() {
        for scenario in entry.scenarios() {
            let case = CaseSpec::new(size, 3).with_scenario(scenario);
            let probe = entry.scratch_probe(&case, &cfg);
            let ok = probe.steady_state_reuse();
            if !ok {
                failures += 1;
            }
            table.row(&[
                entry.name().to_string(),
                scenario.key(),
                probe.takes.to_string(),
                probe.reuses.to_string(),
                if ok { "ok".into() } else { "ALLOCATES".into() },
            ]);
        }
    }
    if failures > 0 {
        eprintln!("scratch_smoke: {failures} entry/scenario pairs allocate steady-state scratch");
        std::process::exit(1);
    }
    println!("scratch_smoke: all prepared paths reuse their scratch in steady state");
}
