//! Figure 7: Huffman tree construction.
//!
//! (a) time vs number of rounds at fixed n (uniform & exponential
//!     frequency distributions; the max frequency controls the tree
//!     height and therefore the round count; times should be nearly
//!     flat because every round is fully parallel — §6.2).
//! (b) time vs input size at max frequency 1000 for uniform / Zipfian /
//!     exponential, plus the sequential baseline; 10–20× speedups on
//!     large inputs in the paper.
//!
//! `cargo run --release -p pp-bench --bin fig7`

#![forbid(unsafe_code)]

use pp_algos::huffman::{build_par_with_stats, build_seq};
use pp_bench::{scale, secs, time_best, Table};
use pp_parlay::rng::{bounded, hash64};
use rayon::prelude::*;

fn uniform_freqs(n: usize, max: u64, seed: u64) -> Vec<u64> {
    (0..n as u64)
        .into_par_iter()
        .map(|i| 1 + bounded(hash64(seed, i), max))
        .collect()
}

fn zipf_freqs(n: usize, seed: u64) -> Vec<u64> {
    (0..n as u64)
        .into_par_iter()
        .map(|i| {
            let rank = 1 + bounded(hash64(seed, i), n as u64);
            ((n as f64 / rank as f64).ceil() as u64).clamp(1, 1 << 32)
        })
        .collect()
}

fn expo_freqs(n: usize, lambda: f64, seed: u64) -> Vec<u64> {
    (0..n as u64)
        .into_par_iter()
        .map(|i| {
            let u = (hash64(seed, i) >> 11) as f64 / (1u64 << 53) as f64;
            ((-u.max(1e-12).ln() / lambda) as u64).clamp(1, 1 << 32)
        })
        .collect()
}

fn main() {
    let n = 4_000_000 * scale();

    println!("Fig 7(a): Huffman, n = {n}, time vs rounds (max frequency controls height)\n");
    let table = Table::new(&["dist", "max_freq", "rounds", "height", "par_time_s"]);
    for (dist, freqs_of) in [("uniform", true), ("exponential", false)] {
        for flog in [10u32, 16, 22, 28, 31] {
            let freqs = if freqs_of {
                uniform_freqs(n, 1 << flog, 3)
            } else {
                expo_freqs(n, 1.0 / (1u64 << (flog / 2)) as f64, 3)
            };
            let report = build_par_with_stats(&freqs);
            let (tree, stats) = (report.output, report.stats);
            let t = time_best(1, || {
                std::hint::black_box(build_par_with_stats(&freqs));
            });
            table.row(&[
                dist.to_string(),
                format!("2^{flog}"),
                stats.rounds.to_string(),
                tree.height().to_string(),
                secs(t),
            ]);
        }
    }
    println!("Shape check: time ~flat across round counts (30–60 rounds, all parallel).\n");

    println!("Fig 7(b): Huffman, max freq = 1000, time vs input size\n");
    let table = Table::new(&["dist", "n", "par_time_s", "seq_time_s", "speedup"]);
    for base in [100_000usize, 400_000, 1_600_000, 6_400_000] {
        let n = base * scale();
        for (dist, freqs) in [
            ("uniform", uniform_freqs(n, 1000, 4)),
            ("zipf", zipf_freqs(n, 4)),
            ("exponential", expo_freqs(n, 0.01, 4)),
        ] {
            let tp = time_best(1, || {
                std::hint::black_box(build_par_with_stats(&freqs));
            });
            let ts = time_best(1, || {
                std::hint::black_box(build_seq(&freqs));
            });
            table.row(&[
                dist.to_string(),
                n.to_string(),
                secs(tp),
                secs(ts),
                format!("{:.2}", ts.as_secs_f64() / tp.as_secs_f64()),
            ]);
        }
    }
}
