//! Serving-tier gate: fails (exit 1) if any registry entry's
//! cache-served Zipf trace diverges from the freshly-prepared
//! reference, or if the cache fails to absorb a skewed trace.
//!
//! For every registry entry, a deterministic Zipf query trace over the
//! entry's scenario families is replayed through a [`ServingTier`] —
//! shared prepared instances behind the scenario-keyed LRU cache — at
//! 1 and 8 worker threads. Each replay's digest chain must equal the
//! one-shot (prepare-per-query, uncached) reference digest, and the
//! cache hit rate must clear 0.9: a Zipf-skewed trace that misses the
//! cache more than a tenth of the time means the keying or the LRU is
//! broken.
//!
//! Run in CI with `PP_SMOKE=1` (tiny instances; the properties are
//! size-independent). `PP_SCALE` scales instances up for local runs.
//!
//! Run with: `cargo run --release -p pp-bench --bin serve_smoke`

#![forbid(unsafe_code)]

use pp_serve::{ServeOptions, ServingTier};
use pp_workloads::{QueryTrace, ScenarioSpec, TraceConfig};

fn main() {
    let size = if pp_bench::smoke() {
        120
    } else {
        800 * pp_bench::scale()
    };
    let queries = 64usize;
    let mut failures = 0usize;
    let table = pp_bench::Table::new(&[
        "entry", "threads", "queries", "prepares", "hit_rate", "p50_ns", "served",
    ]);
    for entry in pp_algos::registry::registry() {
        // Up to three of the entry's scenario families, Zipf-mixed into
        // one trace (kind-matched, so graph entries get graph scenarios
        // and sequence entries sequence scenarios).
        let scenarios: Vec<ScenarioSpec> = entry.scenarios().into_iter().take(3).collect();
        let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(queries, 17));
        for threads in [1usize, 8] {
            let tier = ServingTier::new(
                entry.name(),
                ServeOptions::new(size, 3).with_threads(threads),
            )
            .expect("registry entry");
            let report = tier.serve_trace(&trace);
            let conforms = report.digest == tier.reference_digest(&trace);
            let hit_rate = report.counters.hit_rate();
            let ok = conforms && hit_rate >= 0.9;
            if !ok {
                failures += 1;
            }
            table.row(&[
                entry.name().to_string(),
                threads.to_string(),
                report.queries.to_string(),
                report.counters.prepares.to_string(),
                format!("{hit_rate:.3}"),
                report.latency.quantile(0.5).unwrap_or(0).to_string(),
                if !conforms {
                    "DIVERGED".into()
                } else if !ok {
                    "COLD".into()
                } else {
                    "ok".into()
                },
            ]);
        }
    }
    if failures > 0 {
        eprintln!(
            "serve_smoke: {failures} entry/thread legs diverged from the \
             freshly-prepared reference or missed the cache"
        );
        std::process::exit(1);
    }
    println!("serve_smoke: every cache-served trace matches its freshly-prepared reference");
}
