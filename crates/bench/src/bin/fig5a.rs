//! Figure 5(a): activity selection — running time vs input rank.
//!
//! Paper setup: n = 10^9 activities, rank swept 10^2..4·10^6; Type 1 and
//! Type 2 beat the classic sequential DP up to rank ≈ 4·10^6 (up to 80×
//! at small ranks). Here n defaults to 10^6 (PP_SCALE multiplies); the
//! shape to check: both parallel algorithms win at small rank, their
//! time grows (sublinearly) with rank, the sequential baseline is flat
//! or slightly improving.
//!
//! `cargo run --release -p pp-bench --bin fig5a`

#![forbid(unsafe_code)]

use pp_algos::activity::{self, workload};
use pp_bench::{scale, secs, time_best, Table};

fn main() {
    let n = 1_000_000 * scale();
    println!("Fig 5(a): activity selection, n = {n}, varying rank\n");
    let table = Table::new(&[
        "target_rank",
        "measured_rank",
        "seq_time_s",
        "type1_time_s",
        "type2_time_s",
        "speedup_t1",
        "speedup_t2",
    ]);
    for target in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
        let acts = workload::with_target_rank(n, target, 42 + target);
        let rank = *activity::ranks(&acts).iter().max().unwrap();
        let t_seq = time_best(2, || {
            std::hint::black_box(activity::max_weight_seq(&acts));
        });
        let t1 = time_best(2, || {
            std::hint::black_box(activity::max_weight_type1(&acts));
        });
        let t2 = time_best(2, || {
            std::hint::black_box(activity::max_weight_type2(&acts));
        });
        table.row(&[
            target.to_string(),
            rank.to_string(),
            secs(t_seq),
            secs(t1),
            secs(t2),
            format!("{:.2}", t_seq.as_secs_f64() / t1.as_secs_f64()),
            format!("{:.2}", t_seq.as_secs_f64() / t2.as_secs_f64()),
        ]);
    }
}
