//! Ablations for the design choices DESIGN.md §5 calls out:
//!
//! 1. LIS pivot strategy: uniformly random (analyzed, Lemma 5.5) vs
//!    right-most unfinished (§6.4 heuristic) — wake-up counts and time.
//! 2. MIS: asynchronous TAS trees (Algorithm 4) vs round-synchronous
//!    deterministic reservations — time and total edge checks.
//! 3. Activity selection Type 1: flat arrays (§6.4 engineering) vs the
//!    literal PA-BST Algorithm 2.
//!
//! `cargo run --release -p pp-bench --bin ablations`

#![forbid(unsafe_code)]

use pp_algos::activity::{self, workload};
use pp_algos::lis::{lis_par, patterns, PivotMode};
use pp_algos::mis;
use pp_algos::RunConfig;
use pp_bench::{scale, secs, time_best, Table};
use pp_graph::gen;
use pp_parlay::shuffle::random_priorities;

fn main() {
    let s = scale();

    println!(
        "Ablation 1: LIS pivot strategy (n = {}, segment pattern)\n",
        1_000_000 * s
    );
    let table = Table::new(&[
        "output_k",
        "random_wakeups",
        "rightmost_wakeups",
        "random_s",
        "rightmost_s",
    ]);
    for k in [10usize, 100, 1000] {
        let series = patterns::segment(1_000_000 * s, k, 1);
        let cfg_ra = RunConfig::seeded(2).with_pivot_mode(PivotMode::Random);
        let cfg_rm = RunConfig::seeded(2).with_pivot_mode(PivotMode::RightMost);
        let ra = lis_par(&series, &cfg_ra);
        let rm = lis_par(&series, &cfg_rm);
        assert_eq!(ra.output, rm.output);
        let t_ra = time_best(1, || {
            std::hint::black_box(lis_par(&series, &cfg_ra));
        });
        let t_rm = time_best(1, || {
            std::hint::black_box(lis_par(&series, &cfg_rm));
        });
        table.row(&[
            k.to_string(),
            format!("{:.2}", ra.stats.avg_wakeups()),
            format!("{:.2}", rm.stats.avg_wakeups()),
            secs(t_ra),
            secs(t_rm),
        ]);
    }
    println!("Expected: right-most needs fewer wake-ups (§6.4: \"almost always the last blocking object\").\n");

    println!("Ablation 2: MIS wake-up mechanism\n");
    // A path with monotone priorities has dependence depth n/2: the
    // round-synchronous baseline re-checks all edges every round
    // (O(D·m) work), which is exactly what the TAS trees remove.
    let deep_path = {
        let n = 50_000 * s;
        let mut b = pp_graph::GraphBuilder::new(n).symmetric();
        for i in 0..n - 1 {
            b.add(i as u32, i as u32 + 1);
        }
        b.build()
    };
    let deep_pri: Vec<u32> = (0..deep_path.num_vertices() as u32).rev().collect();
    let table = Table::new(&["graph", "tas_time_s", "rounds_time_s", "edge_checks/m"]);
    for (name, g, pri) in [
        (
            "uniform 1M/5M (random pri, depth O(log n))",
            gen::uniform(1_000_000 * s, 5_000_000 * s, 3),
            None,
        ),
        (
            "rmat 2^18 (random pri)",
            gen::rmat(18, (1usize << 21) * s, 4),
            None,
        ),
        (
            "path 50k (monotone pri, depth n/2)",
            deep_path,
            Some(deep_pri),
        ),
    ] {
        let pri = pri.unwrap_or_else(|| random_priorities(g.num_vertices(), 5));
        let t_tas = time_best(1, || {
            std::hint::black_box(mis::mis_tas(&g, &pri));
        });
        let t_rounds = time_best(1, || {
            std::hint::black_box(mis::mis_rounds(&g, &pri));
        });
        let rs = mis::mis_rounds(&g, &pri).stats;
        table.row(&[
            name.to_string(),
            secs(t_tas),
            secs(t_rounds),
            format!(
                "{:.2}",
                rs.counter("edge_checks").unwrap_or(0) as f64 / g.num_edges() as f64
            ),
        ]);
    }
    println!(
        "Expected: edge_checks/m ≈ 1 + depth·(live fraction): small on random\n\
         priorities, Θ(n) on the adversarial path — the O(D·m) vs O(m) gap\n\
         the TAS trees close.\n"
    );

    println!("Ablation 3: activity selection Type 1 — flat arrays vs PA-BSTs\n");
    let table = Table::new(&["rank", "flat_time_s", "pam_time_s", "pam/flat"]);
    for target in [100u64, 10_000] {
        let acts = workload::with_target_rank(500_000 * s, target, 6);
        let t_flat = time_best(1, || {
            std::hint::black_box(activity::max_weight_type1(&acts));
        });
        let t_pam = time_best(1, || {
            std::hint::black_box(activity::max_weight_type1_pam(&acts));
        });
        table.row(&[
            target.to_string(),
            secs(t_flat),
            secs(t_pam),
            format!("{:.2}", t_pam.as_secs_f64() / t_flat.as_secs_f64()),
        ]);
    }
    println!("Expected: flat arrays win (§6.4: nested arrays for locality), same answers.\n");

    println!("Ablation 4: SSSP — flat Δ-stepping (Δ = w*) vs the PA-BST Dijkstra (Thm 4.5)\n");
    let table = Table::new(&[
        "graph",
        "flat_Δ=w*_s",
        "pam_tree_s",
        "rounds_flat",
        "rounds_pam",
    ]);
    for (name, g) in [
        ("rmat 2^15", gen::rmat(15, (1 << 18) * s, 7)),
        ("grid 300x300", pp_graph::gen::grid2d(300, 300)),
    ] {
        let wg = gen::with_uniform_weights(&g, 1 << 21, 1 << 23, 8);
        let flat = pp_algos::sssp::sssp_phase_parallel(&wg, 0);
        let pam = pp_algos::sssp::sssp_pam(&wg, 0);
        assert_eq!(flat.output, pam.output);
        let t_flat = time_best(1, || {
            std::hint::black_box(pp_algos::sssp::sssp_phase_parallel(&wg, 0));
        });
        let t_pam = time_best(1, || {
            std::hint::black_box(pp_algos::sssp::sssp_pam(&wg, 0));
        });
        table.row(&[
            name.to_string(),
            secs(t_flat),
            secs(t_pam),
            flat.stats.rounds.to_string(),
            pam.stats.rounds.to_string(),
        ]);
    }
    println!("Expected: same distances & round counts; flat arrays faster (§6.3 footnote 5).\n");

    println!("Ablation 5: unweighted activity ranks — pointer jumping vs Euler-tour tree contraction (Thm 5.3)\n");
    let table = Table::new(&["rank", "jump_time_s", "contract_time_s", "contract/jump"]);
    for target in [100u64, 10_000, 1_000_000] {
        let acts = workload::with_target_rank(2_000_000 * s, target, 9);
        let a = activity::unweighted::ranks(&acts);
        let b = activity::unweighted::ranks_tree_contraction(&acts);
        assert_eq!(a, b);
        let t_jump = time_best(1, || {
            std::hint::black_box(activity::unweighted::ranks(&acts));
        });
        let t_con = time_best(1, || {
            std::hint::black_box(activity::unweighted::ranks_tree_contraction(&acts));
        });
        table.row(&[
            target.to_string(),
            secs(t_jump),
            secs(t_con),
            format!("{:.2}", t_con.as_secs_f64() / t_jump.as_secs_f64()),
        ]);
    }
    println!(
        "Expected: pointer jumping does O(n log d) work (grows with rank d);\n\
         contraction stays O(n) — the gap should widen as rank grows.\n"
    );

    println!("Ablation 6: SSSP relaxed-rank choices — Δ = w* vs ρ-stepping vs Crauser OUT [31]\n");
    let table = Table::new(&[
        "graph",
        "Δ=w*_s",
        "ρ=default_s",
        "crauser_s",
        "Δ_rounds",
        "ρ_steps",
        "crauser_rounds",
    ]);
    for (name, g) in [
        ("rmat 2^15 (low diameter)", gen::rmat(15, (1 << 18) * s, 7)),
        (
            "grid 300x300 (high diameter)",
            pp_graph::gen::grid2d(300, 300),
        ),
    ] {
        let wg = gen::with_uniform_weights(&g, 1 << 21, 1 << 23, 8);
        let rho_cfg = RunConfig::new().with_rho(pp_algos::sssp::DEFAULT_RHO);
        let delta = pp_algos::sssp::sssp_phase_parallel(&wg, 0);
        let rho = pp_algos::sssp::rho_stepping(&wg, 0, &rho_cfg);
        let cr = pp_algos::sssp::crauser_out(&wg, 0);
        assert_eq!(delta.output, rho.output);
        assert_eq!(delta.output, cr.output);
        let t_delta = time_best(1, || {
            std::hint::black_box(pp_algos::sssp::sssp_phase_parallel(&wg, 0));
        });
        let t_rho = time_best(1, || {
            std::hint::black_box(pp_algos::sssp::rho_stepping(&wg, 0, &rho_cfg));
        });
        let t_cr = time_best(1, || {
            std::hint::black_box(pp_algos::sssp::crauser_out(&wg, 0));
        });
        table.row(&[
            name.to_string(),
            secs(t_delta),
            secs(t_rho),
            secs(t_cr),
            delta.stats.rounds.to_string(),
            rho.stats.rounds.to_string(),
            cr.stats.rounds.to_string(),
        ]);
    }
    println!(
        "Expected: identical distances; all three are relaxed ranks (§4.3).\n\
         Crauser adapts to local weights (fewest rounds when weights are\n\
         non-uniform); ρ trades re-relaxation work for step count."
    );
}
