//! Figure 5(b): activity selection — running time vs input size at
//! fixed rank.
//!
//! Paper setup: rank fixed at 45 000, n swept 10^8..2.6·10^9; the
//! parallel algorithms grow almost linearly in n (parallelism improves
//! with frontier size) while the sequential DP grows superlinearly
//! (n log n). Here the rank is scaled to 4 500 and n sweeps
//! 2.5·10^5..4·10^6 by default.
//!
//! `cargo run --release -p pp-bench --bin fig5b`

#![forbid(unsafe_code)]

use pp_algos::activity::{self, workload};
use pp_bench::{scale, secs, time_best, Table};

fn main() {
    let rank = 4_500u64;
    println!("Fig 5(b): activity selection, rank ≈ {rank}, varying n\n");
    let table = Table::new(&[
        "n",
        "measured_rank",
        "seq_time_s",
        "type1_time_s",
        "type2_time_s",
        "t1_per_elem_ns",
    ]);
    for base in [250_000usize, 500_000, 1_000_000, 2_000_000, 4_000_000] {
        let n = base * scale();
        let acts = workload::with_target_rank(n, rank, 7);
        let measured = *activity::ranks(&acts).iter().max().unwrap();
        let t_seq = time_best(2, || {
            std::hint::black_box(activity::max_weight_seq(&acts));
        });
        let t1 = time_best(2, || {
            std::hint::black_box(activity::max_weight_type1(&acts));
        });
        let t2 = time_best(2, || {
            std::hint::black_box(activity::max_weight_type2(&acts));
        });
        table.row(&[
            n.to_string(),
            measured.to_string(),
            secs(t_seq),
            secs(t1),
            secs(t2),
            format!("{:.1}", t1.as_nanos() as f64 / n as f64),
        ]);
    }
    println!("\nShape check: t1_per_elem_ns should stay ~flat (near-linear scaling in n).");
}
