//! Figures 8/9 and Table 2: parallel LIS on the segment and line
//! patterns — time, self-speedup, and average wake-up counts vs output
//! size.
//!
//! Paper setup: n = 10^8, output sizes 3..10^4; "Classic seq" is the
//! `O(n log n)` DP, "Ours seq." the parallel algorithm on one core,
//! "Ours par." on all cores. Shapes to check: the parallel algorithm
//! wins for small output sizes and loses to the classic DP as the rank
//! grows; self-speedup stays >15×; average wake-ups ≤ ~8.
//!
//! Usage: `cargo run --release -p pp-bench --bin fig8_9_table2 -- [segment|line|both]`

#![forbid(unsafe_code)]

use pp_algos::lis::{lis_par, lis_seq, patterns, PivotMode};
use pp_algos::RunConfig;
use pp_bench::{run_single_threaded, scale, secs, time_best, Table};

fn run_pattern(name: &str, gen: impl Fn(usize, usize) -> Vec<i64>) {
    let n = 1_000_000 * scale();
    println!("\nFig 8/9 + Table 2 — the {name} pattern, n = {n}\n");
    let table = Table::new(&[
        "output_k",
        "classic_seq_s",
        "ours_seq_s",
        "ours_par_s",
        "self_speedup",
        "vs_classic",
        "avg_wakeups",
        "rounds",
    ]);
    for target in [3usize, 10, 30, 100, 300, 1000] {
        let series = gen(n, target);
        let k = lis_seq(&series);
        let t_classic = time_best(1, || {
            std::hint::black_box(lis_seq(&series));
        });
        let cfg = RunConfig::seeded(3).with_pivot_mode(PivotMode::RightMost);
        let t_par = time_best(1, || {
            std::hint::black_box(lis_par(&series, &cfg));
        });
        let t_ours_seq = run_single_threaded(|| {
            time_best(1, || {
                std::hint::black_box(lis_par(&series, &cfg));
            })
        });
        let res = lis_par(&series, &cfg);
        assert_eq!(res.output, k);
        table.row(&[
            k.to_string(),
            secs(t_classic),
            secs(t_ours_seq),
            secs(t_par),
            format!("{:.2}", t_ours_seq.as_secs_f64() / t_par.as_secs_f64()),
            format!("{:.2}", t_classic.as_secs_f64() / t_par.as_secs_f64()),
            format!("{:.2}", res.stats.avg_wakeups()),
            res.stats.rounds.to_string(),
        ]);
    }
    println!(
        "\nShape check: vs_classic decreases as k grows (crossover), avg_wakeups stays small."
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    if which == "segment" || which == "both" {
        run_pattern("segment", |n, k| patterns::segment(n, k, 1));
    }
    if which == "line" || which == "both" {
        run_pattern("line", |n, k| patterns::line_with_target(n, k, 2));
    }
}
