//! Fault-injection gate: a served trace with injected query panics and
//! forced deadline expiry (fixed seed) must complete without aborting
//! the process, resolve every fault to a typed outcome row, and replay
//! to the **identical** outcome sequence when re-run under the same
//! seed — including across different worker counts.
//!
//! This binary does real damage on purpose: roughly a fifth of query
//! attempts panic inside the serve boundary and another fifth have
//! their deadline force-expired, under the fixed plan seed
//! `"pr9-fault-smoke"`. The gate fails (exit 1) if any of the
//! resilience invariants break:
//!
//! * no abort — every query resolves to a typed [`QueryOutcome`];
//! * the injected faults actually landed (`panics_isolated` and
//!   `deadline_exceeded` counters are nonzero, and every isolated panic
//!   quarantined its scratch workspace);
//! * determinism — a second replay under the same seed, at a different
//!   thread count, yields the same outcome sequence and trace digest.
//!
//! Requires the fault probes to be compiled in: build with
//! `RUSTFLAGS="--cfg pp_fault"`. Without the cfg the binary reports the
//! probes are compiled out and exits 0, so it is safe in any CI leg.
//!
//! Run in CI with `PP_SMOKE=1` (the invariants are size-independent).
//!
//! Run with: `RUSTFLAGS="--cfg pp_fault" cargo run --release -p pp-bench --bin fault_smoke`

#![forbid(unsafe_code)]

use pp_check::fault::{self, FaultPlan};
use pp_serve::{QueryOutcome, ServeOptions, ServingTier, TraceReport};
use pp_workloads::{QueryTrace, ScenarioSpec, TraceConfig};

/// The gate's fixed fault seed: change it and you are testing a
/// different (but equally reproducible) fault schedule.
const FAULT_SEED: &str = "pr9-fault-smoke";

fn serve(trace: &QueryTrace, size: usize, threads: usize) -> TraceReport {
    let tier = ServingTier::new(
        "sssp/delta",
        ServeOptions::new(size, 7)
            .with_threads(threads)
            .with_max_retries(1),
    )
    .expect("serving entry");
    tier.serve_trace(trace)
}

fn main() {
    if !fault::ENABLED {
        println!(
            "fault_smoke: fault probes compiled out \
             (build with RUSTFLAGS=\"--cfg pp_fault\" to arm them); nothing to gate"
        );
        return;
    }

    let size = if pp_bench::smoke() {
        120
    } else {
        800 * pp_bench::scale()
    };
    let scenarios = [
        ScenarioSpec::parse("graph/rmat+w/uniform").expect("scenario"),
        ScenarioSpec::parse("graph/grid2d+w/unit").expect("scenario"),
    ];
    let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(96, 23));

    fault::install(
        FaultPlan::new(FAULT_SEED)
            .with_rule("serve.query.panic", 5)
            .with_rule("serve.query.deadline", 5),
    );
    let first = serve(&trace, size, 1);
    let again = serve(&trace, size, 8);
    fault::clear();

    let count = |r: &TraceReport, o| r.outcome_count(o);
    let counter = |name| first.stats.counter(name).unwrap_or(0);
    let mut failures = Vec::new();

    // Every query resolved to exactly one typed row; the process is
    // still here, so nothing aborted.
    if first.outcomes.len() != trace.len() {
        failures.push(format!(
            "typed outcomes missing: {} rows for {} queries",
            first.outcomes.len(),
            trace.len()
        ));
    }
    // The injected faults landed and were absorbed as typed outcomes.
    if counter("panics_isolated") == 0 {
        failures.push("no panic was injected/isolated — probes dead?".into());
    }
    if counter("deadline_exceeded") == 0 {
        failures.push("no deadline was force-expired — probes dead?".into());
    }
    if counter("scratch_quarantined") != counter("panics_isolated") {
        failures.push(format!(
            "quarantine mismatch: {} panics isolated but {} workspaces quarantined",
            counter("panics_isolated"),
            counter("scratch_quarantined"),
        ));
    }
    if count(&first, QueryOutcome::Completed) == 0 {
        failures.push("every query failed — the tier absorbed nothing".into());
    }
    // Same seed ⇒ same fault schedule ⇒ identical outcome sequence and
    // digest, even at a different worker count.
    if first.outcomes != again.outcomes {
        failures.push("outcome sequence diverged between same-seed replays".into());
    }
    if first.digest != again.digest {
        failures.push(format!(
            "trace digest diverged between same-seed replays: {:#x} vs {:#x}",
            first.digest, again.digest
        ));
    }

    let table = pp_bench::Table::new(&[
        "run",
        "threads",
        "completed",
        "panic",
        "deadline",
        "retries",
    ]);
    for (label, threads, report) in [("first", 1usize, &first), ("again", 8, &again)] {
        table.row(&[
            label.to_string(),
            threads.to_string(),
            count(report, QueryOutcome::Completed).to_string(),
            count(report, QueryOutcome::PanicIsolated).to_string(),
            count(report, QueryOutcome::DeadlineExceeded).to_string(),
            report.stats.counter("retries").unwrap_or(0).to_string(),
        ]);
    }

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("fault_smoke: {failure}");
        }
        std::process::exit(1);
    }
    println!(
        "fault_smoke: seed \"{FAULT_SEED}\" absorbed {} panics and {} blown deadlines \
         into typed outcomes, twice, identically",
        counter("panics_isolated"),
        counter("deadline_exceeded"),
    );
}
