//! Span theorems, measured in the executable binary-forking model
//! (`pp-model`): exact work/span accounting per §2, no wall-clock noise.
//!
//! Checks (a) Theorem 5.7's `O(log n · log d_max)` MIS span on random
//! priorities vs the `Θ(n)` adversarial chain, and (b) Algorithm 1's
//! round-skeleton span `O(rank · log n)` on real LIS rank vectors.
//!
//! `cargo run --release -p pp-bench --bin model_check`

#![forbid(unsafe_code)]

use pp_bench::Table;
use pp_graph::gen;
use pp_model::mis_sim::mis_tas_sim;
use pp_model::phase::{lis_ranks, phase_parallel_sim};
use pp_parlay::rng::Rng;
use pp_parlay::shuffle::random_priorities;

fn main() {
    println!("Model check (a): Algorithm 4 span in the binary-forking model\n");
    let table = Table::new(&["n", "m", "span_random_pri", "lg(n)·lg(dmax)", "work/m"]);
    for exp in [12u32, 13, 14, 15] {
        let n = 1usize << exp;
        let g = gen::uniform(n, 4 * n, 1);
        let pri = random_priorities(n, 2);
        let (_, stats) = mis_tas_sim(&g, &pri);
        let dmax = g.max_degree().max(2);
        let lglg = u64::from(exp) * (64 - (dmax as u64).leading_zeros()) as u64;
        table.row(&[
            n.to_string(),
            g.num_edges().to_string(),
            stats.cost.span.to_string(),
            lglg.to_string(),
            format!("{:.2}", stats.cost.work as f64 / g.num_edges() as f64),
        ]);
    }
    println!(
        "Expected: span grows additively with n (polylog), work/m stays\n\
         constant — Theorem 5.7's two halves.\n"
    );

    println!("Model check (b): adversarial chain forces Θ(n) span\n");
    let table = Table::new(&["n (path)", "span", "span/n"]);
    for n in [1000usize, 2000, 4000] {
        let mut b = pp_graph::GraphBuilder::new(n).symmetric();
        for i in 0..n - 1 {
            b.add(i as u32, i as u32 + 1);
        }
        let g = b.build();
        let pri: Vec<u32> = (0..n as u32).rev().collect();
        let (_, stats) = mis_tas_sim(&g, &pri);
        table.row(&[
            n.to_string(),
            stats.cost.span.to_string(),
            format!("{:.2}", stats.cost.span as f64 / n as f64),
        ]);
    }
    println!("Expected: span/n constant — no wake-up strategy beats the DG depth.\n");

    println!("Model check (c): Algorithm 1 skeleton span = O(rank · log n)\n");
    let table = Table::new(&["n", "rank", "rounds", "span", "rank·(q+p+2lg f*)"]);
    let mut r = Rng::new(3);
    for n in [10_000usize, 40_000, 160_000] {
        let values: Vec<i64> = (0..n).map(|_| r.range(1 << 30) as i64).collect();
        let ranks = lis_ranks(&values);
        let (q, p) = (16u64, 4u64);
        let st = phase_parallel_sim(&ranks, q, p);
        let bound = u64::from(st.rounds) * (q + p + 2 * pp_model::log2_ceil(st.max_frontier) + 4);
        table.row(&[
            n.to_string(),
            st.rounds.to_string(),
            st.rounds.to_string(),
            st.cost.span.to_string(),
            bound.to_string(),
        ]);
    }
    println!(
        "Expected: span ≤ the modeled bound; rank ≈ 2√n so span is\n\
         strongly sublinear — round-efficiency, measured."
    );
}
