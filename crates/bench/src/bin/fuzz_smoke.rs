//! Structure-aware fuzz gate: hostile inputs under a fixed seed must
//! resolve to **typed** outcomes — no abort, no hang, no digest drift
//! on accepted inputs — identically across worker counts.
//!
//! The gate drives `pp_check::fuzz`'s three mutator families (≥ 200
//! mutated inputs total, fixed plan seed `"pr10-fuzz-smoke"`) into the
//! workspace's input boundaries:
//!
//! * **CSR arrays** → [`Graph::try_from_csr`]: every mutated triple is
//!   either accepted (a well-formed graph — `validate()` agrees) or a
//!   typed [`GraphError`](pp_graph::GraphError); identity cases must be accepted with arrays
//!   byte-identical to `from_csr`'s.
//! * **Scenario keys** → [`ScenarioSpec::parse`]: mutated keys parse or
//!   fail typed; identity keys round-trip to the original scenario, and
//!   accepted mutants re-parse to themselves via their canonical key.
//! * **Query knobs** → the registry's validated run path: deadline
//!   zero, Δ/ρ at the `u64` extremes, and out-of-range sources on
//!   `sssp/delta` and `sssp/rho` all come back as a typed `CaseOutcome`
//!   or typed [`RegistryError`](pp_algos::registry::RegistryError) — never a panic.
//!
//! A hostile serve trace (valid graph scenarios interleaved with an
//! incompatible `seq/…` tenant) then replays at 1 and at 8 workers: the
//! outcome sequences must be identical, `validation_rejected` must be
//! nonzero (the hostile tenant's queries land as `InvalidInput` rows),
//! and valid queries must still digest to the tier's reference.
//!
//! Run in CI with `PP_SMOKE=1` (the invariants are size-independent).
//!
//! Run with: `cargo run --release -p pp-bench --bin fuzz_smoke`

#![forbid(unsafe_code)]

use phase_parallel::RunConfig;
use pp_algos::registry::{self, CaseSpec};
use pp_check::fuzz::{FuzzPlan, CSR_MUTATIONS, KEY_MUTATIONS, KNOB_MUTATIONS};
use pp_graph::{gen, Graph};
use pp_serve::{QueryOutcome, ServeOptions, ServingTier, TraceReport};
use pp_workloads::{QueryTrace, ScenarioSpec, TraceConfig, TraceQuery};
use std::time::Duration;

/// The gate's fixed plan seed: any failure replays from
/// `(FUZZ_SEED, case index, mutation)` alone.
const FUZZ_SEED: &str = "pr10-fuzz-smoke";

/// A graph's CSR arrays, reassembled from the public accessors.
fn csr_of(g: &Graph) -> (Vec<usize>, Vec<u32>, Vec<u64>) {
    let offsets = g.offsets().to_vec();
    let mut targets = Vec::with_capacity(g.num_edges());
    let mut weights = Vec::new();
    for v in 0..g.num_vertices() as u32 {
        targets.extend_from_slice(g.neighbors(v));
        if g.is_weighted() {
            weights.extend_from_slice(g.edge_weights(v));
        }
    }
    (offsets, targets, weights)
}

fn run_csr_family(plan: &FuzzPlan, cases: u64, failures: &mut Vec<String>) -> (u64, u64) {
    let bases = [
        gen::with_uniform_weights(&gen::uniform(60, 240, 3), 1, 100, 3),
        gen::with_unit_weights(&gen::grid2d(8, 9)),
        gen::uniform(40, 160, 5), // unweighted
        pp_graph::GraphBuilder::new(0).build(),
    ];
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..cases {
        let mut rng = plan.rng(i);
        let base = &bases[rng.index_in(&bases)];
        let (offsets, targets, weights) = csr_of(base);
        let case = plan.csr_case(i, &offsets, &targets, &weights);
        let verdict = Graph::try_from_csr(
            case.offsets.clone(),
            case.targets.clone(),
            case.weights.clone(),
        );
        match verdict {
            Ok(g) => {
                accepted += 1;
                if g.validate().is_err() {
                    failures.push(format!(
                        "csr case {i} ({}): accepted graph fails re-validation",
                        case.mutation
                    ));
                }
                if case.mutation == "identity"
                    && (g.offsets() != offsets.as_slice() || g.num_edges() != targets.len())
                {
                    failures.push(format!("csr case {i}: identity case altered the graph"));
                }
            }
            Err(_) => {
                rejected += 1;
                if case.mutation == "identity" {
                    failures.push(format!("csr case {i}: identity case rejected"));
                }
            }
        }
    }
    (accepted, rejected)
}

fn run_key_family(plan: &FuzzPlan, cases: u64, failures: &mut Vec<String>) -> (u64, u64) {
    let bases = [
        "graph/rmat+w/uniform",
        "graph/grid2d+w/unit",
        "graph/uniform",
        "seq/uniform",
        "seq/zipf",
    ];
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..cases {
        let mut rng = plan.rng(i ^ 0x5eed);
        let base = bases[rng.index_in(&bases)];
        let case = plan.key_case(i, base);
        match ScenarioSpec::parse(&case.key) {
            Ok(spec) => {
                accepted += 1;
                // Accepted keys canonicalize: the canonical key must
                // re-parse to the same scenario (no digest drift).
                let canon = spec.key();
                if ScenarioSpec::parse(&canon) != Ok(spec) {
                    failures.push(format!(
                        "key case {i} ({}): canonical key {canon:?} does not round-trip",
                        case.mutation
                    ));
                }
                // Identity keys must mean exactly what the base key
                // means (aliases may canonicalize to a longer spelling).
                if case.mutation == "identity" && ScenarioSpec::parse(base).ok() != Some(spec) {
                    failures.push(format!(
                        "key case {i}: identity key {:?} parsed away from its base",
                        case.key
                    ));
                }
            }
            Err(_) => {
                rejected += 1;
                if case.mutation == "identity" {
                    failures.push(format!(
                        "key case {i}: identity key {:?} rejected",
                        case.key
                    ));
                }
            }
        }
    }
    (accepted, rejected)
}

fn run_knob_family(plan: &FuzzPlan, cases: u64, failures: &mut Vec<String>) -> (u64, u64) {
    let size = 80usize;
    let case_spec = CaseSpec::new(size, 7);
    let entries = ["sssp/delta", "sssp/rho", "mis/tas", "lis"];
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..cases {
        let mut rng = plan.rng(i ^ 0x6b6e_6f62);
        let entry = registry::lookup(entries[rng.index_in(&entries)]).expect("entry");
        let knobs = plan.knob_case(i, size);
        let mut cfg = RunConfig::seeded(i);
        if let Some(nanos) = knobs.deadline_nanos {
            cfg = cfg.with_deadline(Duration::from_nanos(nanos));
        }
        if let Some(delta) = knobs.delta {
            cfg = cfg.with_delta(delta);
        }
        if let Some(rho) = knobs.rho {
            cfg = cfg.with_rho(rho.min(usize::MAX as u64) as usize);
        }
        if let Some(source) = knobs.source {
            cfg = cfg.with_source(source);
        }
        match entry.try_run_case(&case_spec, &cfg) {
            Ok(outcome) => {
                accepted += 1;
                // A run that was not cancelled must still agree with
                // the sequential reference; a cancelled run may not,
                // but it *returned* — that is the invariant.
                if knobs.deadline_nanos.is_none() && !outcome.agrees() {
                    failures.push(format!(
                        "knob case {i} ({} on {}): digests disagree without a deadline",
                        knobs,
                        entry.name()
                    ));
                }
            }
            Err(_) => {
                rejected += 1;
                if knobs.source.is_none() {
                    failures.push(format!(
                        "knob case {i} ({} on {}): rejected without a hostile knob",
                        knobs,
                        entry.name()
                    ));
                }
            }
        }
    }
    (accepted, rejected)
}

fn serve_hostile_trace(threads: usize) -> TraceReport {
    // Tenants: two valid graph scenarios plus an incompatible seq
    // tenant — its queries must land as typed `InvalidInput` rows.
    let scenarios = vec![
        ScenarioSpec::parse("graph/rmat+w/uniform").expect("scenario"),
        ScenarioSpec::parse("graph/grid2d+w/unit").expect("scenario"),
        ScenarioSpec::parse("seq/uniform").expect("scenario"),
    ];
    let mut trace = QueryTrace::generate(&scenarios[..2], &TraceConfig::new(72, 29));
    trace.scenarios = scenarios;
    // Interleave hostile queries deterministically: every fifth query
    // targets the incompatible tenant.
    for (i, q) in trace.queries.iter_mut().enumerate() {
        if i % 5 == 4 {
            q.scenario = 2;
        }
    }
    trace.queries.push(TraceQuery {
        scenario: 2,
        source_rank: 0,
        seed: 999,
    });
    let tier = ServingTier::new(
        "sssp/delta",
        ServeOptions::new(96, 11).with_threads(threads),
    )
    .expect("serving entry");
    tier.serve_trace(&trace)
}

fn main() {
    let plan = FuzzPlan::new(FUZZ_SEED);
    let per_family: u64 = if pp_bench::smoke() {
        70
    } else {
        70 * pp_bench::scale() as u64
    };
    let mut failures = Vec::new();

    let (csr_ok, csr_rej) = run_csr_family(&plan, per_family, &mut failures);
    let (key_ok, key_rej) = run_key_family(&plan, per_family, &mut failures);
    let (knob_ok, knob_rej) = run_knob_family(&plan, per_family, &mut failures);

    let total = 3 * per_family;
    if total < 200 {
        failures.push(format!(
            "only {total} mutated inputs; the gate requires >= 200"
        ));
    }
    // The case index strides each mutation table, so a family of at
    // least table-length cases exercises every mutation at least once.
    let widest = CSR_MUTATIONS
        .len()
        .max(KEY_MUTATIONS.len())
        .max(KNOB_MUTATIONS.len());
    if per_family < widest as u64 {
        failures.push(format!(
            "{per_family} cases per family cannot cover all {widest} mutations"
        ));
    }
    // Every family must have exercised both sides of its boundary.
    for (family, ok, rej) in [
        ("csr", csr_ok, csr_rej),
        ("key", key_ok, key_rej),
        ("knob", knob_ok, knob_rej),
    ] {
        if ok == 0 || rej == 0 {
            failures.push(format!(
                "{family} family one-sided: {ok} accepted / {rej} rejected"
            ));
        }
    }

    // The hostile trace: typed rows only, nonzero validation
    // rejections, identical outcome sequences across worker counts.
    let first = serve_hostile_trace(1);
    let again = serve_hostile_trace(8);
    let invalid = first.outcome_count(QueryOutcome::InvalidInput);
    if invalid == 0 {
        failures.push("hostile tenant produced no InvalidInput rows".into());
    }
    if first.stats.counter("validation_rejected") != Some(invalid as u64) {
        failures.push(format!(
            "validation_rejected counter {:?} != {invalid} InvalidInput rows",
            first.stats.counter("validation_rejected")
        ));
    }
    if first.outcome_count(QueryOutcome::Completed) == 0 {
        failures.push("hostile tenant poisoned every query".into());
    }
    if first.outcomes != again.outcomes {
        failures.push("outcome sequence diverged between 1 and 8 workers".into());
    }
    if first.digest != again.digest {
        failures.push(format!(
            "trace digest diverged between 1 and 8 workers: {:#x} vs {:#x}",
            first.digest, again.digest
        ));
    }

    let table = pp_bench::Table::new(&["family", "cases", "accepted", "rejected"]);
    for (family, ok, rej) in [
        ("csr", csr_ok, csr_rej),
        ("scenario-key", key_ok, key_rej),
        ("config-knob", knob_ok, knob_rej),
    ] {
        table.row(&[
            family.to_string(),
            per_family.to_string(),
            ok.to_string(),
            rej.to_string(),
        ]);
    }

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("fuzz_smoke: seed {FUZZ_SEED:?}: {failure}");
        }
        std::process::exit(1);
    }
    println!(
        "fuzz_smoke: seed {FUZZ_SEED:?}: {total} mutated inputs all typed \
         ({} accepted / {} rejected), {invalid} hostile queries rejected as \
         InvalidInput, outcome sequences identical at 1 and 8 workers",
        csr_ok + key_ok + knob_ok,
        csr_rej + key_rej + knob_rej,
    );
}
