//! Self-speedup sweep (the "Self-speedup" column of Table 2): run the
//! parallel algorithms on thread pools of growing size and report the
//! scaling.
//!
//! On the paper's 96-core machine self-speedups reach 40–63×; on this
//! container the ceiling is the available core count (1 core ⇒ all
//! ratios ≈ 1, which the output will show — the *measurement machinery*
//! is what this binary demonstrates; run on a multicore host for real
//! curves).
//!
//! `cargo run --release -p pp-bench --bin threads_sweep`

#![forbid(unsafe_code)]

use pp_algos::activity::{self, workload};
use pp_algos::lis::{lis_par, patterns, PivotMode};
use pp_algos::mis;
use pp_algos::RunConfig;
use pp_bench::{scale, secs, time_best, Table};
use pp_graph::gen;
use pp_parlay::shuffle::random_priorities;
use std::time::Duration;

fn with_threads<R: Send>(t: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(t)
        .build()
        .expect("pool")
        .install(f)
}

fn main() {
    let n = 500_000 * scale();
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut threads = vec![1usize];
    while *threads.last().unwrap() < hw {
        threads.push((threads.last().unwrap() * 2).min(hw));
    }
    println!("Self-speedup sweep (hardware threads: {hw}), n = {n}\n");

    let series = patterns::segment(n, 100, 1);
    let acts = workload::with_target_rank(n, 1000, 2);
    let g = gen::rmat(16, (1 << 19) * scale(), 3);
    let pri = random_priorities(g.num_vertices(), 4);

    let table = Table::new(&["threads", "lis_par_s", "activity_t1_s", "mis_tas_s"]);
    let mut base: Option<(Duration, Duration, Duration)> = None;
    for &t in &threads {
        let lis_cfg = RunConfig::seeded(5).with_pivot_mode(PivotMode::RightMost);
        let t_lis = with_threads(t, || {
            time_best(1, || {
                std::hint::black_box(lis_par(&series, &lis_cfg));
            })
        });
        let t_act = with_threads(t, || {
            time_best(1, || {
                std::hint::black_box(activity::max_weight_type1(&acts));
            })
        });
        let t_mis = with_threads(t, || {
            time_best(1, || {
                std::hint::black_box(mis::mis_tas(&g, &pri));
            })
        });
        base.get_or_insert((t_lis, t_act, t_mis));
        let (b_lis, b_act, b_mis) = base.unwrap();
        table.row(&[
            t.to_string(),
            format!(
                "{} ({:.2}x)",
                secs(t_lis),
                b_lis.as_secs_f64() / t_lis.as_secs_f64()
            ),
            format!(
                "{} ({:.2}x)",
                secs(t_act),
                b_act.as_secs_f64() / t_act.as_secs_f64()
            ),
            format!(
                "{} ({:.2}x)",
                secs(t_mis),
                b_mis.as_secs_f64() / t_mis.as_secs_f64()
            ),
        ]);
    }
}
