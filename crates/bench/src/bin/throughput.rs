//! Throughput bench: queries/sec for **prepared** vs **unprepared**
//! SSSP serving repeated per-source queries against one fixed network —
//! the ROADMAP's heavy-traffic scenario (millions of SSSP queries
//! against one graph) — swept across the workload scenario families of
//! `pp-workloads`, so amortization is measured on every input shape,
//! not just the uniform case.
//!
//! Three service tiers, worst to best:
//!
//! * *unprepared* — the pre-redesign calling convention: a stateless
//!   service holds the weighted edge list and each `solve_par` query
//!   rebuilds the instance's dependence structure (CSR construction,
//!   w\* scan) and reallocates every hot buffer.
//! * *reused* — the CSR is kept across queries but each query is still
//!   a one-shot `solve_par` (fresh buffers, per-call w\* scan).
//! * *prepared* — `Solver::prepare` builds the instance structure once;
//!   queries run through `PreparedSolver::solve_batch`, recycling
//!   distance arrays, bucket queues and the frontier engine through a
//!   `Scratch` workspace.
//!
//! On top of the sweep, **served** rows measure the `pp-serve` tier: a
//! deterministic Zipf query trace replayed through the scenario-keyed
//! instance cache on a worker pool, reported as latency percentiles
//! (`p50_ns` / `p99_ns`), aggregate `qps`, and `cache_hit_rate` — one
//! trace per scenario family plus a mixed trace across all of them.
//! Every served leg is digest-checked against the freshly-prepared
//! reference before its row is emitted.
//!
//! Output: one JSON document with a stable row schema — `(scenario,
//! family, tier, threads, backend, ns_per_query, qps, speedup_vs_1t)`,
//! with `prepared` rows additionally carrying the pool's scheduler
//! counters (`sched_queue_locks` / `sched_steals` / `sched_parks` /
//! `sched_injector_pushes` / `sched_jobs`, asserted present before the
//! JSON is written) — printed to stdout *and* written to `BENCH_throughput.json` at the
//! repository root (override the path with `PP_BENCH_OUT`). The
//! committed copy of that file is the perf trajectory: each PR's CI
//! archives its own run, and the in-repo baseline records the numbers
//! the current code was measured at (older baselines stay reachable in
//! git history). `PP_SCALE` scales the graphs; `PP_SMOKE=1` shrinks
//! everything to CI-tripwire sizes.
//!
//! Thread counts are requested via `RunConfig::threads` and are *real*
//! since the rayon shim grew a fork-join pool: the `backend` field
//! records `"parallel"`, and `speedup_vs_1t` derives each row's
//! scaling against the same (scenario, family, tier) at one thread.
//! The run warns — deliberately without failing, because CI containers
//! are routinely pinned to a single hardware core where 8 workers
//! cannot beat one — if 8-thread prepared throughput fails to exceed
//! 1-thread on the largest measured graph.
//!
//! Run with: `cargo run --release -p pp-bench --bin throughput`

#![forbid(unsafe_code)]

use phase_parallel::{PhaseAlgorithm, RunConfig, Solver};
use pp_algos::api::{DeltaSssp, DijkstraSssp, SsspInstance};
use pp_graph::{Graph, GraphBuilder};
use pp_serve::{ServeOptions, ServingTier};
use pp_workloads::{QueryTrace, ScenarioSpec, TraceConfig};
use std::time::Instant;

/// The scenario families the tiers sweep: one per qualitatively
/// different input shape, each with the weight distribution that
/// stresses it best.
const SCENARIOS: [&str; 5] = [
    "graph/uniform+w/uniform",
    "graph/rmat+w/uniform",
    "graph/grid2d+w/unit",
    "graph/geometric+w/exp",
    "graph/star-hub+w/uniform",
];

/// The service's stored form: the raw weighted edge list (`u < v`).
fn edge_triples(g: &Graph) -> Vec<(u32, u32, u64)> {
    let mut edges = Vec::with_capacity(g.num_edges() / 2);
    for u in 0..g.num_vertices() as u32 {
        let ws = g.edge_weights(u);
        for (i, &v) in g.neighbors(u).iter().enumerate() {
            if u < v {
                edges.push((u, v, ws[i]));
            }
        }
    }
    edges
}

fn build_instance(n: usize, edges: &[(u32, u32, u64)]) -> SsspInstance {
    let mut b = GraphBuilder::new(n).symmetric().weighted();
    b.extend(edges.iter().copied());
    SsspInstance::new(b.build(), 0)
}

/// Nanoseconds per query over one timed pass, plus the scheduler
/// activity the prepared batch produced (from the pool's `sched_*`
/// counters — the behavioral signal nproc=1 CI can still assert on
/// when speedups are unobservable).
struct Tier {
    unprepared: f64,
    reused: f64,
    prepared: f64,
    sched_queue_locks: u64,
    sched_steals: u64,
    sched_parks: u64,
    sched_injector_pushes: u64,
    sched_jobs: u64,
}

fn bench_family<A>(
    algo: A,
    n: usize,
    edges: &[(u32, u32, u64)],
    queries: &[RunConfig],
    threads: usize,
) -> Tier
where
    A: PhaseAlgorithm<Input = SsspInstance, Output = Vec<u64>> + Sync,
    for<'q> A::Prepared<'q>: Sync,
{
    let solver = Solver::new(algo).configure(|c| c.with_threads(threads));
    let checksum = |d: &Vec<u64>| d.iter().copied().fold(0u64, u64::wrapping_add);
    // Clamp away a zero elapsed (coarse clocks on degenerate smoke
    // runs) so neither ns_per_query nor the derived qps can go
    // infinite and corrupt the JSON.
    let per_query = |elapsed: f64| elapsed.max(1e-12) * 1e9 / queries.len() as f64;

    // Tier 1 — unprepared: rebuild the instance per query (the old
    // one-shot calling convention for a stateless service).
    let t = Instant::now();
    let mut sum_unprepared = 0u64;
    for q in queries {
        let instance = build_instance(n, edges);
        sum_unprepared =
            sum_unprepared.wrapping_add(checksum(&solver.solve_with(&instance, q).output));
    }
    let unprepared = per_query(t.elapsed().as_secs_f64());

    // Tier 2 — instance kept, but every query still a one-shot solve.
    let instance = build_instance(n, edges);
    let t = Instant::now();
    let mut sum_reused = 0u64;
    for q in queries {
        sum_reused = sum_reused.wrapping_add(checksum(&solver.solve_with(&instance, q).output));
    }
    let reused = per_query(t.elapsed().as_secs_f64());

    // Tier 3 — prepared once, queried as a batch with recycled scratch.
    let prepared_solver = solver.prepare(&instance);
    let t = Instant::now();
    let batch = prepared_solver.solve_batch(queries);
    let prepared = per_query(t.elapsed().as_secs_f64());

    // All three tiers must serve identical answers.
    let sum_prepared = batch.outputs().map(checksum).fold(0u64, u64::wrapping_add);
    assert_eq!(sum_unprepared, sum_reused, "tier outputs diverged");
    assert_eq!(sum_reused, sum_prepared, "prepared outputs diverged");

    let sched = |name: &str| batch.stats.counter(name).unwrap_or(0);
    Tier {
        unprepared,
        reused,
        prepared,
        sched_queue_locks: sched("sched_queue_locks"),
        sched_steals: sched("sched_steals"),
        sched_parks: sched("sched_parks"),
        sched_injector_pushes: sched("sched_injector_pushes"),
        sched_jobs: sched("sched_jobs"),
    }
}

/// One serving-tier measurement: replay a Zipf trace through a
/// [`ServingTier`] (instance cache + shared prepared instances) and
/// append a row with the latency percentiles, throughput, and the cache
/// hit rate. The served digest is checked against the freshly-prepared
/// reference on every leg — a bench row is only worth keeping if the
/// answers behind it are right.
#[allow(clippy::too_many_arguments)]
fn bench_serving(
    rows: &mut Vec<String>,
    scenario_label: &str,
    specs: &[ScenarioSpec],
    n_target: usize,
    trace_queries: usize,
    threads: usize,
    unprepared_1t_ns: f64,
) {
    let trace = QueryTrace::generate(specs, &TraceConfig::new(trace_queries, 42));
    let tier = ServingTier::new(
        "sssp/delta",
        ServeOptions::new(n_target, 1).with_threads(threads),
    )
    .expect("serving entry");
    let report = tier.serve_trace(&trace);
    assert_eq!(
        report.digest,
        tier.reference_digest(&trace),
        "{scenario_label}: served trace diverged from the freshly-prepared reference"
    );
    let p50 = report.latency.quantile(0.5).unwrap_or(0);
    let p99 = report.latency.quantile(0.99).unwrap_or(0);
    // The amortization tripwire the serving tier exists for: a served
    // median query must leave the rebuild-per-query tier far behind.
    if threads == 1 && unprepared_1t_ns > 0.0 {
        let speedup = unprepared_1t_ns / p50.max(1) as f64;
        if speedup < 3.0 {
            eprintln!(
                "warning: {scenario_label}: served p50 ({p50} ns) only {speedup:.1}x \
                 faster than the unprepared rebuild tier ({unprepared_1t_ns:.0} ns)"
            );
        }
    }
    // The six resilience counters are always exported by the tier
    // (zero on this fault-free leg); surfacing them in every served row
    // keeps the JSON schema identical between clean and fault-injected
    // runs.
    let resilience = |name: &str| report.stats.counter(name).unwrap_or(0);
    rows.push(format!(
        "    {{\"scenario\": \"{scenario_label}\", \"family\": \"sssp/delta\", \
         \"tier\": \"served\", \"threads\": {threads}, \
         \"backend\": \"parallel\", \"vertices\": {n_target}, \
         \"queries\": {}, \"p50_ns\": {p50}, \"p99_ns\": {p99}, \
         \"qps\": {:.2}, \"cache_hit_rate\": {:.4}, \
         \"deadline_exceeded\": {}, \"panics_isolated\": {}, \
         \"queries_rejected\": {}, \"retries\": {}, \
         \"scratch_quarantined\": {}, \"validation_rejected\": {}}}",
        trace.len(),
        report.qps(),
        report.counters.hit_rate(),
        resilience("deadline_exceeded"),
        resilience("panics_isolated"),
        resilience("queries_rejected"),
        resilience("retries"),
        resilience("scratch_quarantined"),
        resilience("validation_rejected"),
    ));
}

/// Repository root, resolved relative to this crate's manifest so the
/// JSON lands in the same place no matter the working directory.
fn default_out_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json")
}

fn main() {
    let smoke = pp_bench::smoke();
    let (n_target, n_queries) = if smoke {
        (300usize, 8usize)
    } else {
        (4000 * pp_bench::scale(), 40)
    };
    // Zipf trace length for the serving rows: long enough that the cold
    // misses (leaders + any coalesced followers) stay under a tenth of
    // the trace.
    let serve_queries = if smoke { 64 } else { 200 };
    // Smoke keeps the 1- and 8-thread legs so the scaling tripwire
    // below still observes the real pool on every CI run.
    let thread_counts: &[usize] = if smoke { &[1, 8] } else { &[1, 4, 8] };

    let mut rows = Vec::new();
    let mut scaling_warnings = 0usize;
    for key in SCENARIOS {
        let spec = ScenarioSpec::parse(key).expect("scenario key");
        let wg = spec.weighted_graph(n_target, 1).expect("graph scenario");
        let n = wg.num_vertices();
        let edges = edge_triples(&wg);
        let queries: Vec<RunConfig> = (0..n_queries as u64)
            .map(|i| RunConfig::seeded(i).with_source((pp_parlay::hash64(7, i) % n as u64) as u32))
            .collect();
        let mut delta_unprepared_1t_ns = 0.0f64;
        for (family, runner) in [
            (
                "sssp/delta",
                Box::new(|t| bench_family(DeltaSssp, n, &edges, &queries, t))
                    as Box<dyn Fn(usize) -> Tier>,
            ),
            (
                "sssp/dijkstra",
                Box::new(|t| bench_family(DijkstraSssp, n, &edges, &queries, t)),
            ),
        ] {
            // Measure every thread count first: `speedup_vs_1t`
            // derives each row against the 1-thread leg of its tier.
            let tiers: Vec<(usize, Tier)> = thread_counts.iter().map(|&t| (t, runner(t))).collect();
            assert_eq!(
                tiers[0].0, 1,
                "first thread leg must be the 1-thread baseline"
            );
            if family == "sssp/delta" {
                delta_unprepared_1t_ns = tiers[0].1.unprepared;
            }
            let mut prepared_qps_1t = 0.0f64;
            let mut prepared_qps_max = 0.0f64;
            for (threads, tier) in &tiers {
                let base = &tiers[0].1;
                for (tier_name, ns, base_ns) in [
                    ("unprepared", tier.unprepared, base.unprepared),
                    ("reused", tier.reused, base.reused),
                    ("prepared", tier.prepared, base.prepared),
                ] {
                    if tier_name == "prepared" {
                        if *threads == 1 {
                            prepared_qps_1t = 1e9 / ns;
                        }
                        prepared_qps_max = 1e9 / ns;
                    }
                    // Prepared rows carry the batch's scheduler
                    // activity: lock traffic per task is the metric
                    // that must drop under the deque scheduler even
                    // when a single-core runner shows no speedup.
                    let sched_fields = if tier_name == "prepared" {
                        format!(
                            ", \"sched_queue_locks\": {}, \"sched_steals\": {}, \
                             \"sched_parks\": {}, \"sched_injector_pushes\": {}, \
                             \"sched_jobs\": {}",
                            tier.sched_queue_locks,
                            tier.sched_steals,
                            tier.sched_parks,
                            tier.sched_injector_pushes,
                            tier.sched_jobs,
                        )
                    } else {
                        String::new()
                    };
                    rows.push(format!(
                        "    {{\"scenario\": \"{key}\", \"family\": \"{family}\", \
                         \"tier\": \"{tier_name}\", \"threads\": {threads}, \
                         \"backend\": \"parallel\", \
                         \"vertices\": {n}, \"edges\": {}, \
                         \"ns_per_query\": {ns:.1}, \"qps\": {:.2}, \
                         \"speedup_vs_1t\": {:.3}{sched_fields}}}",
                        edges.len(),
                        1e9 / ns,
                        base_ns / ns,
                    ));
                }
            }
            // Thread-scaling tripwire: warn (never fail) when the
            // widest pool cannot beat one thread — expected on
            // single-core containers, a real signal elsewhere.
            if prepared_qps_max <= prepared_qps_1t {
                scaling_warnings += 1;
                eprintln!(
                    "warning: {key} {family}: prepared qps at {} threads \
                     ({prepared_qps_max:.0}) <= 1-thread qps ({prepared_qps_1t:.0}) — \
                     no thread scaling observed (nproc={}; expected on single-core runners)",
                    thread_counts.last().unwrap(),
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1),
                );
            }
        }
        // Serving tier: a Zipf source trace against this one scenario
        // through the instance cache — the cold query pays the
        // preparation, the steady state is all hits.
        for &threads in thread_counts {
            bench_serving(
                &mut rows,
                key,
                std::slice::from_ref(&spec),
                n_target,
                serve_queries,
                threads,
                delta_unprepared_1t_ns,
            );
        }
    }
    // One mixed trace across every scenario family: scenario choice and
    // source choice both Zipf-skewed, the LRU cache holding the hot
    // working set of prepared instances.
    let all_specs: Vec<ScenarioSpec> = SCENARIOS
        .iter()
        .map(|key| ScenarioSpec::parse(key).expect("scenario key"))
        .collect();
    for &threads in thread_counts {
        bench_serving(
            &mut rows,
            "trace:zipf-mixed",
            &all_specs,
            n_target,
            2 * serve_queries,
            threads,
            0.0,
        );
    }
    if scaling_warnings > 0 {
        eprintln!("warning: {scaling_warnings} scenario/family pairs showed no thread scaling");
    }
    // The smoke gate's counter tripwire: every prepared row must carry
    // the scheduler counters — a refactor that silently stops plumbing
    // them through `ExecutionStats` fails here, not in a dashboard
    // months later.
    let prepared_rows = rows
        .iter()
        .filter(|r| r.contains("\"tier\": \"prepared\""))
        .collect::<Vec<_>>();
    assert!(
        !prepared_rows.is_empty(),
        "no prepared rows were emitted at all"
    );
    for row in prepared_rows {
        assert!(
            row.contains("\"sched_steals\"") && row.contains("\"sched_parks\""),
            "prepared row missing scheduler counters: {row}"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"smoke\": {smoke},\n  \
         \"scale\": {},\n  \"target_vertices\": {n_target},\n  \
         \"queries\": {n_queries},\n  \"rows\": [\n{}\n  ]\n}}",
        pp_bench::scale(),
        rows.join(",\n"),
    );
    println!("{json}");

    let out_path = std::env::var_os("PP_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_out_path);
    match std::fs::write(&out_path, json + "\n") {
        Ok(()) => eprintln!("wrote {}", out_path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
}
