//! Throughput bench: queries/sec for **prepared** vs **unprepared**
//! SSSP serving repeated per-source queries against one fixed network —
//! the ROADMAP's heavy-traffic scenario (millions of SSSP queries
//! against one graph) — swept across the workload scenario families of
//! `pp-workloads`, so amortization is measured on every input shape,
//! not just the uniform case.
//!
//! Three service tiers, worst to best:
//!
//! * *unprepared* — the pre-redesign calling convention: a stateless
//!   service holds the weighted edge list and each `solve_par` query
//!   rebuilds the instance's dependence structure (CSR construction,
//!   w\* scan) and reallocates every hot buffer.
//! * *reused instance* — the CSR is kept across queries but each query
//!   is still a one-shot `solve_par` (fresh buffers, per-call w\* scan).
//! * *prepared* — `Solver::prepare` builds the instance structure once;
//!   queries run through `PreparedSolver::solve_batch`, recycling
//!   distance arrays and bucket queues through a `Scratch` workspace.
//!
//! Prints a JSON summary: one object per (scenario family × algorithm
//! family × thread count), each row carrying the scenario key so
//! per-scenario regressions are attributable. `PP_SCALE` scales the
//! graphs; `PP_SMOKE=1` shrinks everything to CI-tripwire sizes.
//! Thread counts are requested via `RunConfig::threads` (under the
//! sequential rayon shim they all execute on one core, so the speedups
//! shown there are pure amortization, not parallelism).
//!
//! Run with: `cargo run --release -p pp-bench --bin throughput`

use phase_parallel::{PhaseAlgorithm, RunConfig, Solver};
use pp_algos::api::{DeltaSssp, DijkstraSssp, SsspInstance};
use pp_graph::{Graph, GraphBuilder};
use pp_workloads::ScenarioSpec;
use std::time::Instant;

/// The scenario families the tiers sweep: one per qualitatively
/// different input shape, each with the weight distribution that
/// stresses it best.
const SCENARIOS: [&str; 5] = [
    "graph/uniform+w/uniform",
    "graph/rmat+w/uniform",
    "graph/grid2d+w/unit",
    "graph/geometric+w/exp",
    "graph/star-hub+w/uniform",
];

/// Queries per second, measured over one pass of `queries`.
fn qps(elapsed_secs: f64, queries: usize) -> f64 {
    queries as f64 / elapsed_secs.max(1e-12)
}

/// The service's stored form: the raw weighted edge list (`u < v`).
fn edge_triples(g: &Graph) -> Vec<(u32, u32, u64)> {
    let mut edges = Vec::with_capacity(g.num_edges() / 2);
    for u in 0..g.num_vertices() as u32 {
        let ws = g.edge_weights(u);
        for (i, &v) in g.neighbors(u).iter().enumerate() {
            if u < v {
                edges.push((u, v, ws[i]));
            }
        }
    }
    edges
}

fn build_instance(n: usize, edges: &[(u32, u32, u64)]) -> SsspInstance {
    let mut b = GraphBuilder::new(n).symmetric().weighted();
    b.extend(edges.iter().copied());
    SsspInstance::new(b.build(), 0)
}

struct Tier {
    unprepared: f64,
    reused: f64,
    prepared: f64,
}

fn bench_family<A>(
    algo: A,
    n: usize,
    edges: &[(u32, u32, u64)],
    queries: &[RunConfig],
    threads: usize,
) -> Tier
where
    A: PhaseAlgorithm<Input = SsspInstance, Output = Vec<u64>> + Sync,
    for<'q> A::Prepared<'q>: Sync,
{
    let solver = Solver::new(algo).configure(|c| c.with_threads(threads));
    let checksum = |d: &Vec<u64>| d.iter().copied().fold(0u64, u64::wrapping_add);

    // Tier 1 — unprepared: rebuild the instance per query (the old
    // one-shot calling convention for a stateless service).
    let t = Instant::now();
    let mut sum_unprepared = 0u64;
    for q in queries {
        let instance = build_instance(n, edges);
        sum_unprepared =
            sum_unprepared.wrapping_add(checksum(&solver.solve_with(&instance, q).output));
    }
    let unprepared = qps(t.elapsed().as_secs_f64(), queries.len());

    // Tier 2 — instance kept, but every query still a one-shot solve.
    let instance = build_instance(n, edges);
    let t = Instant::now();
    let mut sum_reused = 0u64;
    for q in queries {
        sum_reused = sum_reused.wrapping_add(checksum(&solver.solve_with(&instance, q).output));
    }
    let reused = qps(t.elapsed().as_secs_f64(), queries.len());

    // Tier 3 — prepared once, queried as a batch with recycled scratch.
    let prepared_solver = solver.prepare(&instance);
    let t = Instant::now();
    let batch = prepared_solver.solve_batch(queries);
    let prepared = qps(t.elapsed().as_secs_f64(), queries.len());

    // All three tiers must serve identical answers.
    let sum_prepared = batch.outputs().map(checksum).fold(0u64, u64::wrapping_add);
    assert_eq!(sum_unprepared, sum_reused, "tier outputs diverged");
    assert_eq!(sum_reused, sum_prepared, "prepared outputs diverged");

    Tier {
        unprepared,
        reused,
        prepared,
    }
}

fn main() {
    let smoke = pp_bench::smoke();
    let (n_target, n_queries) = if smoke {
        (300usize, 8usize)
    } else {
        (4000 * pp_bench::scale(), 40)
    };
    let thread_counts: &[usize] = if smoke { &[1] } else { &[1, 4, 8] };

    println!("{{");
    println!("  \"bench\": \"throughput\",");
    println!("  \"smoke\": {smoke},");
    println!("  \"target_vertices\": {n_target},");
    println!("  \"queries\": {n_queries},");
    println!("  \"results\": [");
    let mut rows = Vec::new();
    for key in SCENARIOS {
        let spec = ScenarioSpec::parse(key).expect("scenario key");
        let wg = spec.weighted_graph(n_target, 1).expect("graph scenario");
        let n = wg.num_vertices();
        let edges = edge_triples(&wg);
        let queries: Vec<RunConfig> = (0..n_queries as u64)
            .map(|i| RunConfig::seeded(i).with_source((pp_parlay::hash64(7, i) % n as u64) as u32))
            .collect();
        for (family, runner) in [
            (
                "sssp/delta",
                Box::new(|t| bench_family(DeltaSssp, n, &edges, &queries, t))
                    as Box<dyn Fn(usize) -> Tier>,
            ),
            (
                "sssp/dijkstra",
                Box::new(|t| bench_family(DijkstraSssp, n, &edges, &queries, t)),
            ),
        ] {
            for &threads in thread_counts {
                let tier = runner(threads);
                rows.push(format!(
                    "    {{\"scenario\": \"{key}\", \"family\": \"{family}\", \
                     \"vertices\": {n}, \"edges\": {}, \"threads\": {threads}, \
                     \"unprepared_qps\": {:.2}, \"reused_instance_qps\": {:.2}, \
                     \"prepared_qps\": {:.2}, \"speedup_vs_unprepared\": {:.3}, \
                     \"speedup_vs_reused\": {:.3}}}",
                    edges.len(),
                    tier.unprepared,
                    tier.reused,
                    tier.prepared,
                    tier.prepared / tier.unprepared,
                    tier.prepared / tier.reused,
                ));
            }
        }
    }
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
