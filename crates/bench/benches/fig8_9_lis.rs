//! Criterion microbenchmarks for Figs. 8/9: LIS on segment and line
//! patterns across output sizes, both pivot modes, vs the classic DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_algos::lis::{lis_par, lis_seq, patterns, PivotMode};
use pp_algos::RunConfig;

fn bench_lis(c: &mut Criterion) {
    let n = 200_000;
    let mut group = c.benchmark_group("fig8_9_lis");
    group.sample_size(10);
    for k in [10usize, 300] {
        for (pat, series) in [
            ("segment", patterns::segment(n, k, 1)),
            ("line", patterns::line_with_target(n, k, 2)),
        ] {
            let id = format!("{pat}_k{k}");
            group.bench_with_input(BenchmarkId::new("classic_seq", &id), &series, |b, s| {
                b.iter(|| lis_seq(s))
            });
            let rightmost = RunConfig::seeded(3).with_pivot_mode(PivotMode::RightMost);
            group.bench_with_input(BenchmarkId::new("par_rightmost", &id), &series, |b, s| {
                b.iter(|| lis_par(s, &rightmost))
            });
            let random = RunConfig::seeded(3).with_pivot_mode(PivotMode::Random);
            group.bench_with_input(BenchmarkId::new("par_random", &id), &series, |b, s| {
                b.iter(|| lis_par(s, &random))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lis);
criterion_main!(benches);
