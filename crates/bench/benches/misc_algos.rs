//! Criterion microbenchmarks for the remaining algorithms: unlimited
//! knapsack (§4.2), Whac-A-Mole (Appendix B), weighted LIS (§5.2
//! generalization), and the multimap substrates (flat vs nested).

use criterion::{criterion_group, criterion_main, Criterion};
use pp_algos::chain3d::{chain3d_par, chain3d_seq, Point3};
use pp_algos::knapsack::{max_value_par, max_value_seq, Item};
use pp_algos::lis::{lis_weighted_par, lis_weighted_seq, patterns, PivotMode};
use pp_algos::random_perm::random_permutation_reservations;
use pp_algos::whac::{whac2d_par, whac2d_seq, whac_par, whac_seq, Mole, Mole2d};
use pp_algos::RunConfig;
use pp_pam::{Multimap, NestedMultimap};
use pp_parlay::rng::{bounded, hash64};

fn bench_misc(c: &mut Criterion) {
    let mut group = c.benchmark_group("misc_algos");
    group.sample_size(10);

    // Knapsack: 60 items, W = 100k, w* = 25.
    let items: Vec<Item> = (0..60u64)
        .map(|i| Item::new(25 + hash64(1, i) % 200, 1 + hash64(2, i) % 1000))
        .collect();
    group.bench_function("knapsack_par", |b| {
        b.iter(|| max_value_par(&items, 100_000))
    });
    group.bench_function("knapsack_seq", |b| {
        b.iter(|| max_value_seq(&items, 100_000))
    });

    // Whac-A-Mole: 100k moles.
    let moles: Vec<Mole> = (0..100_000u64)
        .map(|i| Mole {
            t: (hash64(3, i) % 1_000_000) as i64,
            p: (hash64(4, i) % 10_000) as i64 - 5_000,
        })
        .collect();
    let rm5 = RunConfig::seeded(5).with_pivot_mode(PivotMode::RightMost);
    group.bench_function("whac_par", |b| b.iter(|| whac_par(&moles, &rm5)));
    group.bench_function("whac_seq", |b| b.iter(|| whac_seq(&moles)));

    // Weighted LIS: 100k elements, k ≈ 100.
    let values = patterns::segment(100_000, 100, 6);
    let weights: Vec<u32> = (0..values.len() as u64)
        .map(|i| 1 + (hash64(7, i) % 50) as u32)
        .collect();
    let rm8 = RunConfig::seeded(8).with_pivot_mode(PivotMode::RightMost);
    group.bench_function("lis_weighted_par", |b| {
        b.iter(|| lis_weighted_par(&values, &weights, &rm8))
    });
    group.bench_function("lis_weighted_seq", |b| {
        b.iter(|| lis_weighted_seq(&values, &weights))
    });

    // 3D dominance chain (Appendix B's 3D range-query extension).
    let pts: Vec<Point3> = (0..20_000u64)
        .map(|i| Point3 {
            a: (hash64(11, i) % 100_000) as i64,
            b: (hash64(12, i) % 100_000) as i64,
            c: (hash64(13, i) % 100_000) as i64,
        })
        .collect();
    let rm14 = RunConfig::seeded(14).with_pivot_mode(PivotMode::RightMost);
    group.bench_function("chain3d_par", |b| b.iter(|| chain3d_par(&pts, &rm14)));
    group.bench_function("chain3d_seq", |b| b.iter(|| chain3d_seq(&pts)));

    // 2D-grid Whac-A-Mole (4D dominance, one more tree level).
    let moles2d: Vec<Mole2d> = (0..10_000u64)
        .map(|i| Mole2d {
            t: (hash64(15, i) % 60_000) as i64,
            x: (hash64(16, i) % 200) as i64 - 100,
            y: (hash64(17, i) % 200) as i64 - 100,
        })
        .collect();
    let rm18 = RunConfig::seeded(18).with_pivot_mode(PivotMode::RightMost);
    group.bench_function("whac2d_par", |b| b.iter(|| whac2d_par(&moles2d, &rm18)));
    group.bench_function("whac2d_seq", |b| b.iter(|| whac2d_seq(&moles2d)));

    // Random permutation via deterministic reservations vs sort-based.
    let cfg19 = RunConfig::seeded(19);
    group.bench_function("random_perm_reservations", |b| {
        b.iter(|| random_permutation_reservations(200_000, &cfg19))
    });
    group.bench_function("random_perm_sortbased", |b| {
        b.iter(|| pp_parlay::random_permutation(200_000, 19))
    });

    // Multimap substrates: build + multi_find, flat vs nested (App. A).
    let pairs: Vec<(u32, u32)> = (0..100_000u64)
        .map(|i| {
            (
                (hash64(9, i) % 1000) as u32,
                bounded(hash64(10, i), 1 << 30) as u32,
            )
        })
        .collect();
    let keys: Vec<u32> = (0..1000).collect();
    group.bench_function("multimap_flat_build_find", |b| {
        b.iter(|| {
            let m = Multimap::build(pairs.clone());
            m.multi_find(&keys).len()
        })
    });
    group.bench_function("multimap_nested_build_find", |b| {
        b.iter(|| {
            let m = NestedMultimap::build(pairs.clone());
            m.multi_find(&keys).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_misc);
criterion_main!(benches);
