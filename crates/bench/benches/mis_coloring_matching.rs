//! Criterion microbenchmarks for §5.3: MIS (TAS trees vs rounds vs
//! sequential), Jones–Plassmann coloring, and greedy matching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_algos::RunConfig;
use pp_algos::{coloring, matching, mis};
use pp_graph::gen;
use pp_parlay::shuffle::random_priorities;

fn bench_graph_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis_coloring_matching");
    group.sample_size(10);
    for (name, g) in [
        ("uniform_100k", gen::uniform(100_000, 500_000, 1)),
        ("rmat_2^15", gen::rmat(15, 1 << 18, 2)),
    ] {
        let pri = random_priorities(g.num_vertices(), 3);
        group.bench_with_input(BenchmarkId::new("mis_seq", name), &g, |b, g| {
            b.iter(|| mis::mis_seq(g, &pri))
        });
        group.bench_with_input(BenchmarkId::new("mis_tas", name), &g, |b, g| {
            b.iter(|| mis::mis_tas(g, &pri))
        });
        group.bench_with_input(BenchmarkId::new("mis_rounds", name), &g, |b, g| {
            b.iter(|| mis::mis_rounds(g, &pri))
        });
        let luby_cfg = RunConfig::seeded(5);
        group.bench_with_input(BenchmarkId::new("mis_luby", name), &g, |b, g| {
            b.iter(|| mis::mis_luby(g, &luby_cfg))
        });
        group.bench_with_input(BenchmarkId::new("coloring_seq", name), &g, |b, g| {
            b.iter(|| coloring::coloring_seq(g, &pri))
        });
        group.bench_with_input(BenchmarkId::new("coloring_par", name), &g, |b, g| {
            b.iter(|| coloring::coloring_par(g, &pri))
        });
        let epri = matching::random_edge_priorities(&g, 4);
        group.bench_with_input(BenchmarkId::new("matching_seq", name), &g, |b, g| {
            b.iter(|| matching::matching_seq(g, &epri))
        });
        group.bench_with_input(BenchmarkId::new("matching_par", name), &g, |b, g| {
            b.iter(|| matching::matching_par(g, &epri))
        });
        group.bench_with_input(
            BenchmarkId::new("matching_reservations", name),
            &g,
            |b, g| b.iter(|| matching::matching_reservations(g, &epri)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph_greedy);
criterion_main!(benches);
