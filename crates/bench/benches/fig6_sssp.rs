//! Criterion microbenchmarks for Fig. 6: Δ-stepping across Δ choices on
//! an RMAT social-network stand-in, plus the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_algos::sssp;
use pp_algos::RunConfig;
use pp_graph::gen;

fn bench_sssp(c: &mut Criterion) {
    let g = gen::rmat(13, 1 << 16, 1);
    let w_star = 1u64 << 20;
    let g = gen::with_uniform_weights(&g, w_star, 1 << 23, 2);
    let mut group = c.benchmark_group("fig6_sssp");
    group.sample_size(10);
    group.bench_function("dijkstra_seq", |b| b.iter(|| sssp::dijkstra(&g, 0)));
    group.bench_function("bellman_ford", |b| b.iter(|| sssp::bellman_ford(&g, 0)));
    for dlog in [18u32, 20, 22, 26] {
        let cfg = RunConfig::new().with_delta(1 << dlog);
        group.bench_with_input(
            BenchmarkId::new("delta_stepping", format!("2^{dlog}")),
            &g,
            |b, g| b.iter(|| sssp::delta_stepping(g, 0, &cfg)),
        );
    }
    group.bench_function("phase_parallel_w_star", |b| {
        b.iter(|| sssp::sssp_phase_parallel(&g, 0))
    });
    group.finish();
}

criterion_group!(benches, bench_sssp);
criterion_main!(benches);
