//! Criterion microbenchmarks for Fig. 7: Huffman construction on the
//! three §6.2 distributions, parallel vs sequential.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_algos::huffman;
use pp_parlay::rng::{bounded, hash64};

fn bench_huffman(c: &mut Criterion) {
    let n = 500_000usize;
    let uniform: Vec<u64> = (0..n as u64)
        .map(|i| 1 + bounded(hash64(1, i), 1000))
        .collect();
    let zipf: Vec<u64> = (0..n).map(|i| (n / (i + 1)) as u64 + 1).collect();
    let expo: Vec<u64> = (0..n as u64)
        .map(|i| {
            let u = (hash64(2, i) >> 11) as f64 / (1u64 << 53) as f64;
            ((-u.max(1e-12).ln() * 100.0) as u64).max(1)
        })
        .collect();
    let mut group = c.benchmark_group("fig7_huffman");
    group.sample_size(10);
    for (name, freqs) in [("uniform", uniform), ("zipf", zipf), ("exponential", expo)] {
        group.bench_with_input(BenchmarkId::new("parallel", name), &freqs, |b, f| {
            b.iter(|| huffman::build_par(f))
        });
        group.bench_with_input(BenchmarkId::new("sequential", name), &freqs, |b, f| {
            b.iter(|| huffman::build_seq(f))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_huffman);
criterion_main!(benches);
