//! Criterion microbenchmarks for the substrates behind Table 1's
//! bounds: PA-BST bulk operations (Theorems 2.1/2.2), the 2D range
//! tree, and the parallel primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use pp_pam::{AugTree, MaxAug};
use pp_parlay::monoid::sum_monoid;
use pp_ranges::{PivotMode, RangeTree2d};

fn bench_substrates(c: &mut Criterion) {
    let n = 200_000usize;
    let mut group = c.benchmark_group("table1_substrates");
    group.sample_size(10);

    // parlay primitives.
    let v: Vec<u64> = (0..n as u64).collect();
    group.bench_function("parlay_scan", |b| {
        b.iter(|| pp_parlay::scan_exclusive(&sum_monoid::<u64>(), &v))
    });
    let mut unsorted: Vec<u64> = (0..n as u64).map(|i| pp_parlay::hash64(1, i)).collect();
    group.bench_function("parlay_sort", |b| {
        b.iter(|| {
            let mut w = unsorted.clone();
            pp_parlay::par_sort(&mut w);
            w
        })
    });
    group.bench_function("parlay_radix_sort", |b| {
        b.iter(|| {
            let mut w = unsorted.clone();
            pp_parlay::radix_sort_u64(&mut w);
            w
        })
    });
    unsorted.sort_unstable();
    group.bench_function("parlay_random_permutation", |b| {
        b.iter(|| pp_parlay::random_permutation(n, 3))
    });
    group.bench_function("parlay_list_contract_rank", |b| {
        let next: Vec<u32> = (0..n as u32).map(|i| (i + 1).min(n as u32 - 1)).collect();
        let weight = vec![1i64; n];
        b.iter(|| pp_parlay::list_contract::list_rank_contract(&next, &weight, 11))
    });
    group.bench_function("parlay_tree_contract_depths", |b| {
        let parent: Vec<u32> = (0..n as u32)
            .map(|i| {
                if i == 0 {
                    0
                } else {
                    pp_parlay::hash64(8, u64::from(i)) as u32 % i
                }
            })
            .collect();
        b.iter(|| pp_parlay::tree_contract::forest_depths_contract(&parent))
    });

    // PA-BST: build, union, multi_insert, range query (Thm 2.1/2.2).
    let entries: Vec<(u64, u64)> = (0..n as u64).map(|i| (i * 2, i % 97)).collect();
    group.bench_function("pam_build", |b| {
        b.iter(|| AugTree::from_sorted(MaxAug, entries.clone()))
    });
    let batch: Vec<(u64, u64)> = (0..n as u64 / 10).map(|i| (i * 20 + 1, i)).collect();
    group.bench_function("pam_multi_insert_10pct", |b| {
        b.iter(|| {
            let mut t = AugTree::from_sorted(MaxAug, entries.clone());
            t.multi_insert(batch.clone());
            t
        })
    });
    let tree = AugTree::from_sorted(MaxAug, entries.clone());
    group.bench_function("pam_range_query", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc ^= tree.aug_range(&(i * 37), &(i * 37 + 10_000));
            }
            acc
        })
    });

    // 2D range tree: build + query + batch finish (Algorithm 3's T_range).
    let ys = pp_parlay::random_permutation(n, 5);
    group.bench_function("range2d_build", |b| {
        b.iter(|| RangeTree2d::new(&ys, PivotMode::RightMost))
    });
    let tree2d = RangeTree2d::new(&ys, PivotMode::RightMost);
    group.bench_function("range2d_query_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..1000u64 {
                let qx = pp_parlay::hash64(6, i) % n as u64;
                let qy = pp_parlay::hash64(7, i) % n as u64;
                acc ^= tree2d.query_prefix(qx as u32, qy as u32).unfinished;
            }
            acc
        })
    });
    group.bench_function("range2d_finish_batch_10pct", |b| {
        b.iter(|| {
            let mut t = RangeTree2d::new(&ys, PivotMode::RightMost);
            let batch: Vec<(u32, u32)> = (0..n as u32).step_by(10).map(|x| (x, 1)).collect();
            t.finish_batch(&batch);
            t
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
