//! Criterion microbenchmarks for Fig. 5: activity selection at two
//! ranks, sequential vs Type 1 vs Type 2 (plus the PA-BST reference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_algos::activity::{self, workload};

fn bench_activity(c: &mut Criterion) {
    let n = 200_000;
    let mut group = c.benchmark_group("fig5_activity");
    group.sample_size(10);
    for rank in [100u64, 10_000] {
        let acts = workload::with_target_rank(n, rank, 1);
        group.bench_with_input(BenchmarkId::new("classic_seq", rank), &acts, |b, a| {
            b.iter(|| activity::max_weight_seq(a))
        });
        group.bench_with_input(BenchmarkId::new("type1_flat", rank), &acts, |b, a| {
            b.iter(|| activity::max_weight_type1(a))
        });
        group.bench_with_input(BenchmarkId::new("type1_pam", rank), &acts, |b, a| {
            b.iter(|| activity::max_weight_type1_pam(a))
        });
        group.bench_with_input(BenchmarkId::new("type2", rank), &acts, |b, a| {
            b.iter(|| activity::max_weight_type2(a))
        });
        group.bench_with_input(
            BenchmarkId::new("unweighted_logn_span", rank),
            &acts,
            |b, a| b.iter(|| activity::max_count_unweighted(a)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_activity);
criterion_main!(benches);
