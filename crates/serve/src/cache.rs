//! [`InstanceCache`]: the scenario-keyed LRU cache of shared prepared
//! instances, with single-flight preparation.
//!
//! The serving tier's working set is a set of prepared instances — one
//! per `(registry entry, scenario, size, seed)` — each costing real
//! memory (CSR mirrors, edge lists, precomputed weights). The cache
//! holds them under a configurable **cost budget**: every resident
//! instance carries its bytes-estimate, and inserting past the budget
//! evicts least-recently-used instances until the total fits again.
//! Eviction is safe at any moment because residents are
//! [`SharedPrepared`] handles: a worker that checked an instance out
//! keeps it alive through its own `Arc` clone, the eviction merely
//! drops the cache's.
//!
//! **Single-flight:** preparation is expensive (that is the whole point
//! of caching it), so a burst of misses on one key must not prepare the
//! instance once per waiter. The first miss installs a *pending* slot
//! and prepares outside the map lock; later arrivals find the pending
//! slot and block on its condvar, then share the leader's instance.
//! The `prepares` counter counts actual `prepare()` executions — the
//! single-flight property test asserts it stays at 1 under a
//! same-key stampede (the `pool_builds`-style diagnostic the ISSUE
//! calls for).
//!
//! Counters (hits / misses / coalesced / evictions / prepares) are
//! monotone, lock-free to read, and exportable into the workspace's
//! [`ExecutionStats`] named-counter currency via
//! [`InstanceCache::export_counters`].

use phase_parallel::ExecutionStats;
use pp_algos::serving::SharedPrepared;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

thread_local! {
    /// Number of single-flight preparations currently executing on this
    /// thread's stack. While it is non-zero this thread must never
    /// block on another flight: the workspace pool is a *helping*
    /// scheduler (a thread waiting on a fork-join latch drains the
    /// shared job queue), so a leader whose `prepare()` spawns parallel
    /// work can end up executing an unrelated serving job mid-prepare —
    /// and if that job then waited on the very flight pinned lower on
    /// this stack, both would deadlock. Such lookups prepare a private
    /// uncached instance instead (see [`InstanceCache::get_or_prepare`]).
    static LEADING: Cell<usize> = const { Cell::new(0) };
}

/// One in-flight preparation: the leader resolves `slot` and notifies;
/// followers wait on the condvar and act on the outcome.
struct Flight {
    slot: Mutex<FlightOutcome>,
    ready: Condvar,
}

enum FlightOutcome {
    /// The leader is still preparing.
    Waiting,
    /// The prepared instance, ready to clone.
    Done(SharedPrepared),
    /// The leader's `prepare()` unwound; followers retry the lookup.
    Abandoned,
}

/// A cache slot: a resident instance, or a preparation in flight.
enum Slot {
    Ready {
        instance: SharedPrepared,
        cost: usize,
        last_used: u64,
        /// Queries against this resident that unwound ([`
        /// InstanceCache::record_query_panic`]). At
        /// [`InstanceCache::POISON_EVICT_AFTER`] the instance is deemed
        /// poisoned and evicted, so a corrupt prepared structure cannot
        /// keep taking workers down from the cache forever.
        panics: u64,
    },
    Pending(Arc<Flight>),
}

/// The locked interior: the key → slot map plus the LRU clock and the
/// resident-cost accumulator.
struct State {
    slots: HashMap<String, Slot>,
    /// Monotone use clock; each touch stamps `last_used`.
    tick: u64,
    /// Total cost of `Ready` residents (pending slots cost nothing
    /// until installed).
    resident: usize,
}

/// Monotone counter snapshot — see [`InstanceCache::snapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from a resident instance.
    pub hits: u64,
    /// Lookups that found no resident instance (leaders + followers).
    pub misses: u64,
    /// The subset of misses that piggybacked on another lookup's
    /// in-flight preparation (the inflight-dedup counter).
    pub coalesced: u64,
    /// Resident instances dropped to fit the budget.
    pub evictions: u64,
    /// Actual `prepare()` executions — `misses - coalesced` when no
    /// instance was ever evicted and re-prepared.
    pub prepares: u64,
    /// Prepared instances rejected from residency because their cost
    /// alone exceeds the whole budget — served uncached by a typed
    /// decision, not installed-then-self-evicted.
    pub oversized: u64,
    /// Residents evicted through the poison path: their queries
    /// panicked [`InstanceCache::POISON_EVICT_AFTER`] times.
    pub poison_evictions: u64,
    /// Current resident cost in bytes (not monotone; diagnostics).
    pub resident_bytes: u64,
    /// Current resident instance count (not monotone; diagnostics).
    pub entries: u64,
}

impl CacheCounters {
    /// `hits / (hits + misses)`, 0 when idle — the serving bench's
    /// `cache_hit_rate` column.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// The scenario-keyed LRU instance cache. All methods take `&self`;
/// one cache is shared by every worker of a serving tier.
pub struct InstanceCache {
    budget: usize,
    state: Mutex<State>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    prepares: AtomicU64,
    oversized: AtomicU64,
    poison_evictions: AtomicU64,
}

impl InstanceCache {
    /// Query-panic count at which a resident instance is deemed
    /// poisoned and evicted (see [`InstanceCache::record_query_panic`]).
    pub const POISON_EVICT_AFTER: u64 = 3;

    /// A cache evicting LRU-first past `budget_bytes` of resident
    /// instance cost. A single instance costing more than the whole
    /// budget is still served — it is rejected from residency up front
    /// (the `oversized` counter) rather than cached.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget: budget_bytes,
            state: Mutex::new(State {
                slots: HashMap::new(),
                tick: 0,
                resident: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            prepares: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
            poison_evictions: AtomicU64::new(0),
        }
    }

    /// The configured cost budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Look `key` up; on a miss, prepare via `prepare` (at most one
    /// concurrent execution per key — a stampede of misses coalesces
    /// onto the leader's flight) and install the result under the LRU
    /// budget. Returns a handle the caller owns outright: eviction can
    /// never invalidate it.
    ///
    /// Deadlock freedom on the helping scheduler: a thread already
    /// executing a `prepare()` (see the `LEADING` thread-local) never waits on a
    /// flight — it prepares a private, uncached instance. That costs an
    /// extra preparation in a rare re-entrant corner but can never
    /// block the leader the waiter might be stacked on.
    pub fn get_or_prepare(
        &self,
        key: &str,
        prepare: impl FnOnce() -> SharedPrepared,
    ) -> SharedPrepared {
        let mut prepare = Some(prepare);
        loop {
            let flight = {
                let mut state = self.state.lock().expect("cache lock");
                state.tick += 1;
                let tick = state.tick;
                match state.slots.get_mut(key) {
                    Some(Slot::Ready {
                        instance,
                        last_used,
                        ..
                    }) => {
                        *last_used = tick;
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return instance.clone();
                    }
                    Some(Slot::Pending(flight)) => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        if LEADING.with(Cell::get) > 0 {
                            // Mid-prepare re-entrancy: waiting could
                            // deadlock on our own stack. Serve a
                            // private instance; the leader's result
                            // becomes the cached one.
                            drop(state);
                            self.prepares.fetch_add(1, Ordering::Relaxed);
                            let prepare = prepare.take().expect("bypass happens once");
                            return prepare();
                        }
                        // Coalesce onto the in-flight preparation.
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        let flight = Arc::clone(flight);
                        drop(state);
                        let mut slot = flight.slot.lock().expect("flight lock");
                        loop {
                            match &*slot {
                                FlightOutcome::Waiting => {
                                    slot = flight.ready.wait(slot).expect("flight wait");
                                }
                                FlightOutcome::Done(instance) => return instance.clone(),
                                FlightOutcome::Abandoned => break,
                            }
                        }
                        // The leader unwound; retry from the top (we may
                        // become the new leader).
                        continue;
                    }
                    None => {
                        // Miss leader: claim the key with a pending slot
                        // so the stampede coalesces, then prepare
                        // *outside* the map lock.
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        let flight = Arc::new(Flight {
                            slot: Mutex::new(FlightOutcome::Waiting),
                            ready: Condvar::new(),
                        });
                        state
                            .slots
                            .insert(key.to_string(), Slot::Pending(Arc::clone(&flight)));
                        flight
                    }
                }
            };

            self.prepares.fetch_add(1, Ordering::Relaxed);
            let guard = FlightGuard::enter(self, key, &flight);
            let prepare = prepare.take().expect("at most one leadership per call");
            let instance = prepare();
            guard.disarm();

            {
                let mut state = self.state.lock().expect("cache lock");
                state.tick += 1;
                let tick = state.tick;
                let cost = instance.cost_bytes();
                if cost > self.budget {
                    // Typed rejection: an instance whose cost alone
                    // exceeds the whole budget can never be retained, so
                    // it is served uncached — the pending claim is
                    // withdrawn (followers still get the instance via
                    // the flight below) instead of installing a resident
                    // that the next insert would evict anyway.
                    self.oversized.fetch_add(1, Ordering::Relaxed);
                    if matches!(state.slots.get(key),
                                Some(Slot::Pending(pending)) if Arc::ptr_eq(pending, &flight))
                    {
                        state.slots.remove(key);
                    }
                } else {
                    state.slots.insert(
                        key.to_string(),
                        Slot::Ready {
                            instance: instance.clone(),
                            cost,
                            last_used: tick,
                            panics: 0,
                        },
                    );
                    state.resident += cost;
                    self.evict_to_budget(&mut state);
                }
            }

            let mut slot = flight.slot.lock().expect("flight lock");
            *slot = FlightOutcome::Done(instance.clone());
            flight.ready.notify_all();
            drop(slot);

            return instance;
        }
    }

    /// Drop LRU residents until the budget holds. Pending slots are
    /// never evicted (their cost is not yet counted), and an instance
    /// larger than the whole budget never reaches here — it is rejected
    /// from residency before insertion (the `oversized` counter).
    fn evict_to_budget(&self, state: &mut State) {
        while state.resident > self.budget {
            let victim = state
                .slots
                .iter()
                .filter_map(|(key, slot)| match slot {
                    Slot::Ready {
                        last_used, cost, ..
                    } => Some((*last_used, key.clone(), *cost)),
                    Slot::Pending(_) => None,
                })
                .min()
                .map(|(_, key, cost)| (key, cost));
            let Some((key, cost)) = victim else {
                break; // nothing evictable (all pending)
            };
            state.slots.remove(&key);
            state.resident -= cost;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record that a query against the resident instance under `key`
    /// panicked. At [`InstanceCache::POISON_EVICT_AFTER`] strikes the
    /// resident is evicted (counted under both `evictions` and
    /// `poison_evictions`) so the next lookup prepares a fresh
    /// instance. Returns `true` iff this call evicted. Workers that
    /// checked the instance out keep their handles — eviction only
    /// drops the cache's.
    pub fn record_query_panic(&self, key: &str) -> bool {
        let mut state = self.state.lock().expect("cache lock");
        if let Some(Slot::Ready { panics, cost, .. }) = state.slots.get_mut(key) {
            *panics += 1;
            if *panics >= Self::POISON_EVICT_AFTER {
                let cost = *cost;
                state.slots.remove(key);
                state.resident -= cost;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.poison_evictions.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// A consistent snapshot of the counters.
    pub fn snapshot(&self) -> CacheCounters {
        let state = self.state.lock().expect("cache lock");
        let entries = state
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count() as u64;
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            oversized: self.oversized.load(Ordering::Relaxed),
            poison_evictions: self.poison_evictions.load(Ordering::Relaxed),
            resident_bytes: state.resident as u64,
            entries,
        }
    }

    /// Export the counters as `ExecutionStats` named counters
    /// (`"cache_hits"`, `"cache_misses"`, `"cache_coalesced"`,
    /// `"cache_evictions"`, `"cache_prepares"`, `"cache_oversized"`,
    /// `"cache_poison_evictions"`, `"cache_resident_bytes"`) — the
    /// workspace's uniform stats currency, so bench rows and reports
    /// carry cache behavior alongside rounds and frontier sizes.
    pub fn export_counters(&self, stats: &mut ExecutionStats) {
        let snap = self.snapshot();
        stats.set_counter("cache_hits", snap.hits);
        stats.set_counter("cache_misses", snap.misses);
        stats.set_counter("cache_coalesced", snap.coalesced);
        stats.set_counter("cache_evictions", snap.evictions);
        stats.set_counter("cache_prepares", snap.prepares);
        stats.set_counter("cache_oversized", snap.oversized);
        stats.set_counter("cache_poison_evictions", snap.poison_evictions);
        stats.set_counter("cache_resident_bytes", snap.resident_bytes);
    }
}

/// Leader-side RAII: marks this thread as mid-prepare (see [`LEADING`])
/// and, if the preparation unwinds instead of completing, withdraws the
/// pending slot and wakes the followers so they retry rather than wait
/// forever on a flight nobody will finish.
struct FlightGuard<'a> {
    cache: &'a InstanceCache,
    key: &'a str,
    flight: &'a Arc<Flight>,
    completed: bool,
}

impl<'a> FlightGuard<'a> {
    fn enter(cache: &'a InstanceCache, key: &'a str, flight: &'a Arc<Flight>) -> Self {
        LEADING.with(|depth| depth.set(depth.get() + 1));
        Self {
            cache,
            key,
            flight,
            completed: false,
        }
    }

    fn disarm(mut self) {
        self.completed = true;
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        LEADING.with(|depth| depth.set(depth.get() - 1));
        if self.completed {
            return;
        }
        // Unwinding out of `prepare()`: withdraw our pending claim (if
        // it is still ours) and tell the followers to retry. Poisoned
        // locks are fine to enter — the protected state was written
        // only under short panic-free sections.
        let mut state = match self.cache.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if matches!(state.slots.get(self.key),
                    Some(Slot::Pending(pending)) if Arc::ptr_eq(pending, self.flight))
        {
            state.slots.remove(self.key);
        }
        drop(state);
        let mut slot = match self.flight.slot.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *slot = FlightOutcome::Abandoned;
        self.flight.ready.notify_all();
    }
}

impl std::fmt::Debug for InstanceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("InstanceCache")
            .field("budget_bytes", &self.budget)
            .field("counters", &snap)
            .finish()
    }
}
