//! # `pp-serve` — the concurrent serving tier
//!
//! The production-scale step the prepare/query split was built for:
//! one process serving a heavy stream of point queries across many
//! scenarios, the way a routing or analytics service would — prepare
//! each instance **once**, share it immutably across every worker, keep
//! the hot instances resident, and report tail latency, not just
//! aggregate throughput.
//!
//! Three layers:
//!
//! * **Shared instances** — [`SharedPrepared`] (from
//!   `pp_algos::serving`): an `Arc`-owned prepared instance any number
//!   of workers query concurrently, each with its own
//!   [`Scratch`]. The conformance contract —
//!   shared-concurrent digests equal single-threaded prepared digests
//!   equal one-shot digests, registry-wide — is enforced by this
//!   crate's test suite.
//! * **Instance cache** — [`InstanceCache`]: scenario-keyed LRU under a
//!   cost budget, with single-flight preparation and monotone
//!   hit/miss/coalesced/eviction counters (exported through
//!   [`ExecutionStats`] named counters).
//! * **Trace driver** — [`ServingTier`]: replays a deterministic
//!   Zipf-skewed [`QueryTrace`] (from `pp_workloads::trace`) through
//!   the cache on a worker pool, timing every query into an HDR-style
//!   [`LatencyHistogram`] and digesting every answer so a served trace
//!   can be checked against the freshly-prepared path bit-for-bit.
//!
//! Plus a **resilience layer** at the driver boundary: per-query
//! deadlines (cooperative cancellation polled inside the engines),
//! panic isolation with scratch quarantine and instance poison
//! eviction, bounded-in-flight admission control, and deterministic
//! seeded retry. Every query resolves to a typed [`QueryOutcome`] row,
//! and every fault the tier absorbs is counted in the report stats
//! (`deadline_exceeded`, `panics_isolated`, `queries_rejected`,
//! `retries`, `scratch_quarantined`, `validation_rejected`). Faults
//! themselves are injected —
//! deterministically, seeded — through `pp_check::fault` probes
//! compiled in under `--cfg pp_fault`.
//!
//! ```
//! use pp_serve::{ServeOptions, ServingTier};
//! use pp_workloads::{QueryTrace, ScenarioSpec, TraceConfig};
//!
//! let scenarios = [
//!     ScenarioSpec::parse("graph/rmat+w/uniform").unwrap(),
//!     ScenarioSpec::parse("graph/grid2d+w/unit").unwrap(),
//! ];
//! let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(40, 7));
//! let tier = ServingTier::new("sssp/delta", ServeOptions::new(200, 3)).unwrap();
//! let report = tier.serve_trace(&trace);
//! assert_eq!(report.queries, 40);
//! assert_eq!(report.digest, tier.reference_digest(&trace)); // served == fresh
//! assert!(report.counters.hit_rate() > 0.9); // two tenants, forty queries
//! ```

#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod hist;

pub use admission::{AdmissionGate, AdmissionPermit};
pub use cache::{CacheCounters, InstanceCache};
pub use hist::LatencyHistogram;
pub use pp_algos::serving::{estimated_cost_bytes, PreparedService, ServedQuery, SharedPrepared};

use phase_parallel::{CancelToken, ExecutionStats, RunConfig, Scratch};
use pp_algos::registry::{self, AlgorithmEntry, CaseSpec, Digest, RegistryError};
use pp_check::fault;
use pp_workloads::{QueryTrace, TraceQuery};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Serving-tier knobs: instance sizing, worker pool width, the cache
/// budget, and the resilience policy (deadline, admission, retry).
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Nominal instance size every cached instance is generated at
    /// (vertices / elements — the `CaseSpec::size`).
    pub instance_size: usize,
    /// Instance-generation seed (`CaseSpec::seed`).
    pub instance_seed: u64,
    /// Worker threads replaying the trace. 1 = sequential.
    pub threads: usize,
    /// Cache cost budget in bytes. The default fits every default
    /// scenario of one entry at once (16 instances' worth).
    pub cache_budget_bytes: usize,
    /// Per-query wall-clock budget. `None` (the default) runs
    /// unbounded; `Some` arms a [`CancelToken`] the engine loops poll,
    /// turning a blown budget into a typed
    /// [`QueryOutcome::DeadlineExceeded`] row instead of a stuck worker.
    pub deadline: Option<Duration>,
    /// Bounded in-flight budget. `None` (the default) admits
    /// everything; `Some(limit)` sheds queries over the limit as typed
    /// [`QueryOutcome::Rejected`] rows (see [`AdmissionGate`]).
    pub admission_limit: Option<usize>,
    /// Retries after a failed attempt (deadline blown, panic isolated)
    /// before the failure becomes the query's final outcome. Retries
    /// back off deterministically from the query seed.
    pub max_retries: u32,
}

impl ServeOptions {
    pub fn new(instance_size: usize, instance_seed: u64) -> Self {
        Self {
            instance_size,
            instance_seed,
            threads: 1,
            cache_budget_bytes: 16 * estimated_cost_bytes(instance_size),
            deadline: None,
            admission_limit: None,
            max_retries: 2,
        }
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn with_cache_budget_bytes(mut self, budget: usize) -> Self {
        self.cache_budget_bytes = budget;
        self
    }

    /// Arm a per-query wall-clock budget.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Bound concurrent in-flight queries, shedding the excess.
    pub fn with_admission_limit(mut self, limit: usize) -> Self {
        self.admission_limit = Some(limit);
        self
    }

    /// Retries after a failed attempt (0 = fail fast).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }
}

/// A served query's final, typed disposition — one row per trace query
/// in [`TraceReport::outcomes`], in trace order. Every fault the tier
/// absorbs surfaces here; nothing is swallowed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryOutcome {
    /// The query completed; its digest participates in the trace digest.
    Completed,
    /// Every attempt blew its deadline (armed or fault-forced). The
    /// digest contribution is a fixed sentinel — partial outputs never
    /// enter the conformance chain.
    DeadlineExceeded,
    /// Every retry budgeted attempt ended in an isolated panic; the
    /// worker, pool and process all survived.
    PanicIsolated,
    /// Shed by admission control before any work ran.
    Rejected,
    /// The query failed typed input validation
    /// ([`AlgorithmEntry::validate_case`](pp_algos::registry::AlgorithmEntry::validate_case))
    /// before any work ran: an incompatible scenario, a hostile knob
    /// (e.g. an out-of-range source vertex), or a graph that failed CSR
    /// validation. Never a panic, never a poison strike against the
    /// resident instance.
    InvalidInput,
}

/// The result of replaying one trace through a [`ServingTier`].
#[derive(Debug)]
pub struct TraceReport {
    /// FNV digest over the per-query output digests, in trace order —
    /// thread-count independent, comparable against
    /// [`ServingTier::reference_digest`].
    pub digest: u64,
    /// Per-query service latency (cache lookup + query; a cold query
    /// pays its instance's preparation here, which is exactly what the
    /// tail percentiles should show).
    pub latency: LatencyHistogram,
    /// Merged per-query execution stats plus the cache counters.
    pub stats: ExecutionStats,
    /// Cache counter snapshot after the replay.
    pub counters: CacheCounters,
    /// Per-query typed outcomes, in trace order. Under a fixed fault
    /// seed this sequence is reproducible run to run — the `fault_smoke`
    /// gate's replay invariant.
    pub outcomes: Vec<QueryOutcome>,
    /// Queries served.
    pub queries: usize,
    /// Wall-clock for the whole replay.
    pub elapsed: Duration,
}

impl TraceReport {
    /// Aggregate queries per second over the replay.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// How many queries ended in `outcome`.
    pub fn outcome_count(&self, outcome: QueryOutcome) -> usize {
        self.outcomes.iter().filter(|&&o| o == outcome).count()
    }
}

/// One query's fully-resolved result inside `serve_trace`'s fan-out.
struct Row {
    digest: u64,
    nanos: u64,
    stats: ExecutionStats,
    outcome: QueryOutcome,
    /// Attempts beyond the first.
    retries: u64,
    /// Panics caught across all attempts.
    panics: u64,
    /// Attempts that observed a tripped deadline.
    deadline_hits: u64,
    /// Scratch workspaces quarantined across all attempts.
    quarantined: u64,
}

impl Row {
    /// The admission-shed row: no work ran, nothing to account.
    fn shed() -> Self {
        Row {
            digest: 0,
            nanos: 0,
            stats: ExecutionStats::default(),
            outcome: QueryOutcome::Rejected,
            retries: 0,
            panics: 0,
            deadline_hits: 0,
            quarantined: 0,
        }
    }

    /// The typed validation-rejection row: the input never reached the
    /// cache or an engine, so nothing is retried and nothing is
    /// poisoned.
    fn invalid() -> Self {
        Row {
            outcome: QueryOutcome::InvalidInput,
            ..Row::shed()
        }
    }
}

/// Deterministic retry backoff: a short pause (< 66 µs) derived purely
/// from the query seed and attempt index, doubling per attempt. Enough
/// to de-synchronize a retry stampede without slowing smoke traces.
fn retry_backoff(seed: u64, attempt: u64) -> Duration {
    let jitter = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48; // 0..65536
    Duration::from_nanos(jitter << attempt.min(4))
}

/// One registry entry served behind a cache and a worker pool.
pub struct ServingTier {
    entry: &'static AlgorithmEntry,
    options: ServeOptions,
    cache: InstanceCache,
    pool: rayon::ThreadPool,
    /// Sequential pool cold preparations run under. Keeping a miss
    /// leader's `prepare()` off the serving pool matters on the
    /// workspace's helping scheduler: a leader that waited on nested
    /// fork-join latches *inside* the serving pool would drain that
    /// pool's queue and could execute another serving job mid-prepare —
    /// which must then bypass the leader's own in-flight slot (it may
    /// be stacked on it) and pay a redundant preparation. Preparing
    /// under a one-thread pool runs the nested regions inline instead,
    /// so flights always have exactly one leader making progress.
    prep_pool: rayon::ThreadPool,
}

impl ServingTier {
    /// A tier serving `entry_name` under `options`. Unknown entries
    /// surface as [`RegistryError::UnknownEntry`].
    pub fn new(entry_name: &str, options: ServeOptions) -> Result<Self, RegistryError> {
        let entry = registry::lookup(entry_name)
            .ok_or_else(|| RegistryError::UnknownEntry(entry_name.to_string()))?;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(options.threads)
            .build()
            .expect("serving pool");
        let prep_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("preparation pool");
        Ok(Self {
            entry,
            options,
            cache: InstanceCache::new(options.cache_budget_bytes),
            pool,
            prep_pool,
        })
    }

    /// The served registry entry.
    pub fn entry(&self) -> &'static AlgorithmEntry {
        self.entry
    }

    /// The instance cache (counters, diagnostics).
    pub fn cache(&self) -> &InstanceCache {
        &self.cache
    }

    /// The cache key a trace query resolves to: entry name + the
    /// scenario's canonical
    /// [`cache_key`](pp_workloads::ScenarioSpec::cache_key) + the
    /// instance sizing, so distinct materializations never collide and
    /// equal ones never double-prepare.
    fn cache_key_for(&self, trace: &QueryTrace, query: &TraceQuery) -> String {
        format!(
            "{}|{}|n={}|seed={}",
            self.entry.name(),
            trace.scenarios[query.scenario].cache_key(),
            self.options.instance_size,
            self.options.instance_seed,
        )
    }

    fn case_for(&self, trace: &QueryTrace, query: &TraceQuery) -> CaseSpec {
        CaseSpec::new(self.options.instance_size, self.options.instance_seed)
            .with_scenario(trace.scenarios[query.scenario])
    }

    /// The per-query run configuration: the trace's per-query seed and
    /// the Zipf source rank mapped into the instance universe (scenario
    /// graphs materialize at least `instance_size` vertices, so the
    /// mapped source always exists; sequence entries ignore it).
    fn config_for(&self, query: &TraceQuery) -> RunConfig {
        RunConfig::seeded(query.seed).with_source(query.source_in(self.options.instance_size))
    }

    /// Replay `trace` through the cache on the tier's worker pool: each
    /// worker resolves the query's instance (hit, coalesced wait, or
    /// single-flight preparation), runs it against its own scratch, and
    /// times the whole service. Per-query digests chain in trace order,
    /// so the report digest is independent of the worker count.
    ///
    /// Resilience semantics (all policy knobs on [`ServeOptions`]):
    ///
    /// * A query that panics is caught at this boundary
    ///   ([`QueryOutcome::PanicIsolated`]): its scratch workspace is
    ///   quarantined (dropped and replaced — buffers checked out at
    ///   unwind are in unknown state), the resident instance takes a
    ///   poison strike ([`InstanceCache::record_query_panic`]), and the
    ///   attempt is retried up to `max_retries` times.
    /// * A blown deadline is a typed
    ///   [`QueryOutcome::DeadlineExceeded`], also retried.
    /// * Over the admission limit, queries shed as
    ///   [`QueryOutcome::Rejected`] without running.
    ///
    /// Failed queries contribute a fixed sentinel (0) to the digest
    /// chain, so the trace digest stays deterministic under faults; the
    /// happy path (no faults, generous or absent deadline) is
    /// byte-identical to [`ServingTier::reference_digest`]. Attempt
    /// accounting lands in the report stats under `deadline_exceeded`,
    /// `panics_isolated`, `queries_rejected`, `retries`,
    /// `scratch_quarantined` and `validation_rejected` (always
    /// exported, zero or not).
    ///
    /// * An input that fails typed validation (incompatible scenario,
    ///   hostile knob, invalid graph) is a
    ///   [`QueryOutcome::InvalidInput`] row before any attempt runs.
    pub fn serve_trace(&self, trace: &QueryTrace) -> TraceReport {
        let started = Instant::now();
        let gate = self.options.admission_limit.map(AdmissionGate::new);
        let served: Vec<Row> = self.pool.install(|| {
            trace
                .queries
                .par_iter()
                .map_init(Scratch::new, |scratch, query| {
                    let t = Instant::now();
                    let mut row = self.serve_one(trace, query, scratch, gate.as_ref());
                    row.nanos = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    row
                })
                .collect()
        });
        let elapsed = started.elapsed();

        let mut latency = LatencyHistogram::new();
        let mut stats = ExecutionStats::default();
        let mut outcomes = Vec::with_capacity(served.len());
        let mut deadline_exceeded = 0u64;
        let mut panics_isolated = 0u64;
        let mut retries = 0u64;
        let mut quarantined = 0u64;
        let digests: Vec<u64> = served
            .into_iter()
            .map(|row| {
                latency.record(row.nanos);
                stats.merge(&row.stats);
                outcomes.push(row.outcome);
                deadline_exceeded += row.deadline_hits;
                panics_isolated += row.panics;
                retries += row.retries;
                quarantined += row.quarantined;
                row.digest
            })
            .collect();
        self.cache.export_counters(&mut stats);
        stats.set_counter("deadline_exceeded", deadline_exceeded);
        stats.set_counter("panics_isolated", panics_isolated);
        stats.set_counter(
            "queries_rejected",
            gate.as_ref().map_or(0, AdmissionGate::rejected),
        );
        stats.set_counter("retries", retries);
        stats.set_counter("scratch_quarantined", quarantined);
        stats.set_counter(
            "validation_rejected",
            outcomes
                .iter()
                .filter(|&&o| o == QueryOutcome::InvalidInput)
                .count() as u64,
        );

        TraceReport {
            digest: digests.digest(),
            latency,
            stats,
            counters: self.cache.snapshot(),
            outcomes,
            queries: trace.len(),
            elapsed,
        }
    }

    /// One query, end to end: admission, then up to `1 + max_retries`
    /// attempts, each under its own cancellation token and fault keys,
    /// with panics caught (and the workspace quarantined) at this
    /// boundary. Returns the final typed row; `nanos` is filled by the
    /// caller.
    fn serve_one(
        &self,
        trace: &QueryTrace,
        query: &TraceQuery,
        scratch: &mut Scratch,
        gate: Option<&AdmissionGate>,
    ) -> Row {
        let _permit = match gate {
            Some(gate) => match gate.try_enter() {
                Some(permit) => Some(permit),
                None => return Row::shed(),
            },
            None => None,
        };

        let key = self.cache_key_for(trace, query);
        let case = self.case_for(trace, query);
        let base_cfg = self.config_for(query);

        // Typed validation gate: a hostile or incompatible input is
        // rejected here — before the cache, before any attempt — as an
        // `InvalidInput` row. It never panics a worker and never counts
        // as a poison strike against a resident instance.
        if self.entry.validate_case(&case, &base_cfg).is_err() {
            return Row::invalid();
        }

        let mut retries = 0u64;
        let mut panics = 0u64;
        let mut deadline_hits = 0u64;
        let mut quarantined = 0u64;
        let mut last_failure = QueryOutcome::DeadlineExceeded;
        let mut last_stats = ExecutionStats::default();

        for attempt in 0..=u64::from(self.options.max_retries) {
            if attempt > 0 {
                retries += 1;
                std::thread::sleep(retry_backoff(query.seed, attempt));
            }
            // Every fault decision for this attempt keys off the query
            // seed salted by the attempt index: pure-hash faults
            // (pp_check::fault) fire identically across runs and thread
            // counts, yet a retry rolls fresh decisions.
            let attempt_key = query.seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut cfg = base_cfg.clone();
            if let Some(budget) = self.options.deadline {
                cfg = cfg.with_deadline(budget);
            }
            if fault::fires("serve.query.deadline", attempt_key) {
                // Forced expiry: a pre-tripped token, so even entries
                // whose engines never poll take the deadline path.
                let token = CancelToken::new();
                token.cancel();
                cfg = cfg.with_cancel_token(token);
            }
            // Driver-level poll: catches pre-expired budgets and forced
            // expiry uniformly, for polling and non-polling entries.
            if cfg.is_cancelled() {
                deadline_hits += 1;
                last_failure = QueryOutcome::DeadlineExceeded;
                last_stats = ExecutionStats::default();
                continue;
            }
            // UnwindSafe assertion: on a caught panic the only state the
            // closure could have torn — the worker's scratch — is
            // quarantined below, and the cache's own unwind paths
            // (FlightGuard, poison strikes) restore its invariants.
            let attempt_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let instance = self.cache.get_or_prepare(&key, || {
                    fault::panic_point("serve.prepare.panic", attempt_key);
                    self.prep_pool
                        .install(|| self.entry.prepare_shared(&case, &cfg))
                });
                fault::panic_point("serve.query.panic", attempt_key);
                instance.query(scratch, &cfg)
            }));
            match attempt_result {
                Ok(answer) => {
                    if answer.outcome.is_complete() {
                        return Row {
                            digest: answer.digest,
                            nanos: 0,
                            stats: answer.stats,
                            outcome: QueryOutcome::Completed,
                            retries,
                            panics,
                            deadline_hits,
                            quarantined,
                        };
                    }
                    // The engine stopped at a cancellation poll: keep
                    // its partial stats, retry if budget remains.
                    deadline_hits += 1;
                    last_failure = QueryOutcome::DeadlineExceeded;
                    last_stats = answer.stats;
                }
                Err(_panic) => {
                    panics += 1;
                    // Quarantine: buffers checked out when the unwind
                    // tore through are unaccounted for, so the whole
                    // workspace is dropped rather than trusted.
                    *scratch = Scratch::new();
                    quarantined += 1;
                    self.cache.record_query_panic(&key);
                    last_failure = QueryOutcome::PanicIsolated;
                    last_stats = ExecutionStats::default();
                }
            }
        }

        Row {
            digest: 0,
            nanos: 0,
            stats: last_stats,
            outcome: last_failure,
            retries,
            panics,
            deadline_hits,
            quarantined,
        }
    }

    /// The freshly-prepared reference for `trace`: every query answered
    /// by a one-shot solve on a fresh instance (no cache, no sharing,
    /// no scratch reuse), digests chained in trace order. A correct
    /// serving tier replays to exactly this digest. Each distinct
    /// scenario's instance is generated once (generation is
    /// deterministic, so this loses nothing) but *queried* through the
    /// uncached one-shot path.
    pub fn reference_digest(&self, trace: &QueryTrace) -> u64 {
        let fresh: Vec<SharedPrepared> = (0..trace.scenarios.len())
            .map(|scenario| {
                let probe = TraceQuery {
                    scenario,
                    source_rank: 0,
                    seed: 0,
                };
                let case = self.case_for(trace, &probe);
                self.entry.prepare_shared(&case, &RunConfig::seeded(0))
            })
            .collect();
        let digests: Vec<u64> = trace
            .queries
            .iter()
            .map(|query| fresh[query.scenario].one_shot_digest(&self.config_for(query)))
            .collect();
        digests.digest()
    }
}

impl std::fmt::Debug for ServingTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingTier")
            .field("entry", &self.entry.name())
            .field("options", &self.options)
            .field("cache", &self.cache)
            .finish()
    }
}
