//! # `pp-serve` — the concurrent serving tier
//!
//! The production-scale step the prepare/query split was built for:
//! one process serving a heavy stream of point queries across many
//! scenarios, the way a routing or analytics service would — prepare
//! each instance **once**, share it immutably across every worker, keep
//! the hot instances resident, and report tail latency, not just
//! aggregate throughput.
//!
//! Three layers:
//!
//! * **Shared instances** — [`SharedPrepared`] (from
//!   `pp_algos::serving`): an `Arc`-owned prepared instance any number
//!   of workers query concurrently, each with its own
//!   [`Scratch`]. The conformance contract —
//!   shared-concurrent digests equal single-threaded prepared digests
//!   equal one-shot digests, registry-wide — is enforced by this
//!   crate's test suite.
//! * **Instance cache** — [`InstanceCache`]: scenario-keyed LRU under a
//!   cost budget, with single-flight preparation and monotone
//!   hit/miss/coalesced/eviction counters (exported through
//!   [`ExecutionStats`] named counters).
//! * **Trace driver** — [`ServingTier`]: replays a deterministic
//!   Zipf-skewed [`QueryTrace`] (from `pp_workloads::trace`) through
//!   the cache on a worker pool, timing every query into an HDR-style
//!   [`LatencyHistogram`] and digesting every answer so a served trace
//!   can be checked against the freshly-prepared path bit-for-bit.
//!
//! ```
//! use pp_serve::{ServeOptions, ServingTier};
//! use pp_workloads::{QueryTrace, ScenarioSpec, TraceConfig};
//!
//! let scenarios = [
//!     ScenarioSpec::parse("graph/rmat+w/uniform").unwrap(),
//!     ScenarioSpec::parse("graph/grid2d+w/unit").unwrap(),
//! ];
//! let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(40, 7));
//! let tier = ServingTier::new("sssp/delta", ServeOptions::new(200, 3)).unwrap();
//! let report = tier.serve_trace(&trace);
//! assert_eq!(report.queries, 40);
//! assert_eq!(report.digest, tier.reference_digest(&trace)); // served == fresh
//! assert!(report.counters.hit_rate() > 0.9); // two tenants, forty queries
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod hist;

pub use cache::{CacheCounters, InstanceCache};
pub use hist::LatencyHistogram;
pub use pp_algos::serving::{estimated_cost_bytes, PreparedService, ServedQuery, SharedPrepared};

use phase_parallel::{ExecutionStats, RunConfig, Scratch};
use pp_algos::registry::{self, AlgorithmEntry, CaseSpec, Digest, RegistryError};
use pp_workloads::{QueryTrace, TraceQuery};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Serving-tier knobs: instance sizing, worker pool width, and the
/// cache budget.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Nominal instance size every cached instance is generated at
    /// (vertices / elements — the `CaseSpec::size`).
    pub instance_size: usize,
    /// Instance-generation seed (`CaseSpec::seed`).
    pub instance_seed: u64,
    /// Worker threads replaying the trace. 1 = sequential.
    pub threads: usize,
    /// Cache cost budget in bytes. The default fits every default
    /// scenario of one entry at once (16 instances' worth).
    pub cache_budget_bytes: usize,
}

impl ServeOptions {
    pub fn new(instance_size: usize, instance_seed: u64) -> Self {
        Self {
            instance_size,
            instance_seed,
            threads: 1,
            cache_budget_bytes: 16 * estimated_cost_bytes(instance_size),
        }
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn with_cache_budget_bytes(mut self, budget: usize) -> Self {
        self.cache_budget_bytes = budget;
        self
    }
}

/// The result of replaying one trace through a [`ServingTier`].
#[derive(Debug)]
pub struct TraceReport {
    /// FNV digest over the per-query output digests, in trace order —
    /// thread-count independent, comparable against
    /// [`ServingTier::reference_digest`].
    pub digest: u64,
    /// Per-query service latency (cache lookup + query; a cold query
    /// pays its instance's preparation here, which is exactly what the
    /// tail percentiles should show).
    pub latency: LatencyHistogram,
    /// Merged per-query execution stats plus the cache counters.
    pub stats: ExecutionStats,
    /// Cache counter snapshot after the replay.
    pub counters: CacheCounters,
    /// Queries served.
    pub queries: usize,
    /// Wall-clock for the whole replay.
    pub elapsed: Duration,
}

impl TraceReport {
    /// Aggregate queries per second over the replay.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// One registry entry served behind a cache and a worker pool.
pub struct ServingTier {
    entry: &'static AlgorithmEntry,
    options: ServeOptions,
    cache: InstanceCache,
    pool: rayon::ThreadPool,
    /// Sequential pool cold preparations run under. Keeping a miss
    /// leader's `prepare()` off the serving pool matters on the
    /// workspace's helping scheduler: a leader that waited on nested
    /// fork-join latches *inside* the serving pool would drain that
    /// pool's queue and could execute another serving job mid-prepare —
    /// which must then bypass the leader's own in-flight slot (it may
    /// be stacked on it) and pay a redundant preparation. Preparing
    /// under a one-thread pool runs the nested regions inline instead,
    /// so flights always have exactly one leader making progress.
    prep_pool: rayon::ThreadPool,
}

impl ServingTier {
    /// A tier serving `entry_name` under `options`. Unknown entries
    /// surface as [`RegistryError::UnknownEntry`].
    pub fn new(entry_name: &str, options: ServeOptions) -> Result<Self, RegistryError> {
        let entry = registry::lookup(entry_name)
            .ok_or_else(|| RegistryError::UnknownEntry(entry_name.to_string()))?;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(options.threads)
            .build()
            .expect("serving pool");
        let prep_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("preparation pool");
        Ok(Self {
            entry,
            options,
            cache: InstanceCache::new(options.cache_budget_bytes),
            pool,
            prep_pool,
        })
    }

    /// The served registry entry.
    pub fn entry(&self) -> &'static AlgorithmEntry {
        self.entry
    }

    /// The instance cache (counters, diagnostics).
    pub fn cache(&self) -> &InstanceCache {
        &self.cache
    }

    /// The cache key a trace query resolves to: entry name + the
    /// scenario's canonical
    /// [`cache_key`](pp_workloads::ScenarioSpec::cache_key) + the
    /// instance sizing, so distinct materializations never collide and
    /// equal ones never double-prepare.
    fn cache_key_for(&self, trace: &QueryTrace, query: &TraceQuery) -> String {
        format!(
            "{}|{}|n={}|seed={}",
            self.entry.name(),
            trace.scenarios[query.scenario].cache_key(),
            self.options.instance_size,
            self.options.instance_seed,
        )
    }

    fn case_for(&self, trace: &QueryTrace, query: &TraceQuery) -> CaseSpec {
        CaseSpec::new(self.options.instance_size, self.options.instance_seed)
            .with_scenario(trace.scenarios[query.scenario])
    }

    /// The per-query run configuration: the trace's per-query seed and
    /// the Zipf source rank mapped into the instance universe (scenario
    /// graphs materialize at least `instance_size` vertices, so the
    /// mapped source always exists; sequence entries ignore it).
    fn config_for(&self, query: &TraceQuery) -> RunConfig {
        RunConfig::seeded(query.seed).with_source(query.source_in(self.options.instance_size))
    }

    /// Replay `trace` through the cache on the tier's worker pool: each
    /// worker resolves the query's instance (hit, coalesced wait, or
    /// single-flight preparation), runs it against its own scratch, and
    /// times the whole service. Per-query digests chain in trace order,
    /// so the report digest is independent of the worker count.
    pub fn serve_trace(&self, trace: &QueryTrace) -> TraceReport {
        let started = Instant::now();
        let served: Vec<(u64, u64, ExecutionStats)> = self.pool.install(|| {
            trace
                .queries
                .par_iter()
                .map_init(Scratch::new, |scratch, query| {
                    let cfg = self.config_for(query);
                    let key = self.cache_key_for(trace, query);
                    let case = self.case_for(trace, query);
                    let t = Instant::now();
                    let instance = self.cache.get_or_prepare(&key, || {
                        self.prep_pool
                            .install(|| self.entry.prepare_shared(&case, &cfg))
                    });
                    let answer = instance.query(scratch, &cfg);
                    let nanos = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    (answer.digest, nanos, answer.stats)
                })
                .collect()
        });
        let elapsed = started.elapsed();

        let mut latency = LatencyHistogram::new();
        let mut stats = ExecutionStats::default();
        let digests: Vec<u64> = served
            .into_iter()
            .map(|(digest, nanos, query_stats)| {
                latency.record(nanos);
                stats.merge(&query_stats);
                digest
            })
            .collect();
        self.cache.export_counters(&mut stats);

        TraceReport {
            digest: digests.digest(),
            latency,
            stats,
            counters: self.cache.snapshot(),
            queries: trace.len(),
            elapsed,
        }
    }

    /// The freshly-prepared reference for `trace`: every query answered
    /// by a one-shot solve on a fresh instance (no cache, no sharing,
    /// no scratch reuse), digests chained in trace order. A correct
    /// serving tier replays to exactly this digest. Each distinct
    /// scenario's instance is generated once (generation is
    /// deterministic, so this loses nothing) but *queried* through the
    /// uncached one-shot path.
    pub fn reference_digest(&self, trace: &QueryTrace) -> u64 {
        let fresh: Vec<SharedPrepared> = (0..trace.scenarios.len())
            .map(|scenario| {
                let probe = TraceQuery {
                    scenario,
                    source_rank: 0,
                    seed: 0,
                };
                let case = self.case_for(trace, &probe);
                self.entry.prepare_shared(&case, &RunConfig::seeded(0))
            })
            .collect();
        let digests: Vec<u64> = trace
            .queries
            .iter()
            .map(|query| fresh[query.scenario].one_shot_digest(&self.config_for(query)))
            .collect();
        digests.digest()
    }
}

impl std::fmt::Debug for ServingTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingTier")
            .field("entry", &self.entry.name())
            .field("options", &self.options)
            .field("cache", &self.cache)
            .finish()
    }
}
