//! [`LatencyHistogram`]: an HDR-style log-linear histogram for
//! per-query latencies in nanoseconds.
//!
//! The classic high-dynamic-range layout: values are bucketed by
//! (power-of-two magnitude × linear sub-bucket), so the histogram
//! covers the full `u64` nanosecond range — sub-microsecond scratch
//! hits and multi-second cold preparations in one structure — at a
//! bounded relative error of `1 / 2^SUB_BITS` (≈ 3%), in a fixed
//! ~15 KiB of counts. Recording is a single increment (no allocation,
//! no floating point), so it sits directly on the serving tier's hot
//! path; percentile extraction walks the cumulative counts once.
//!
//! Per-worker histograms [`merge`](LatencyHistogram::merge) by bucket
//! addition, which is exact — the merged percentiles equal those of a
//! histogram that had recorded every sample itself.

/// Linear sub-bucket resolution: each power-of-two magnitude splits
/// into `2^SUB_BITS` buckets, bounding relative quantization error at
/// `1 / 2^SUB_BITS` ≈ 3%.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: u32 = 1 << SUB_BITS;

/// Bucket count for the full `u64` range: one linear region for values
/// below `2^SUB_BITS`, then `SUB_BUCKETS` buckets per remaining octave.
const BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS) * SUB_BUCKETS) as usize;

/// Fixed-range log-linear latency histogram (nanosecond domain).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    /// Exact extremes (the tails percentile queries clamp to).
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index for `value`: identity in the linear region, then
/// `(octave, sub-bucket)` above it.
fn bucket_index(value: u64) -> usize {
    if value < u64::from(SUB_BUCKETS) {
        value as usize
    } else {
        let magnitude = 63 - value.leading_zeros(); // ≥ SUB_BITS
        let sub = (value >> (magnitude - SUB_BITS)) & u64::from(SUB_BUCKETS - 1);
        ((magnitude - SUB_BITS + 1) * SUB_BUCKETS) as usize + sub as usize
    }
}

/// The largest value mapping to `index`.
fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        index as u64
    } else {
        let octave = index as u32 / SUB_BUCKETS - 1;
        let sub = (index as u32 % SUB_BUCKETS) as u64;
        let base = 1u64 << (octave + SUB_BITS);
        let width = 1u64 << octave;
        // `base - 1` first: the topmost bucket's bound is exactly
        // `u64::MAX`, and adding before subtracting would overflow.
        base - 1 + (sub + 1) * width
    }
}

/// The midpoint of bucket `index` — the representative percentile
/// queries report. The midpoint splits the quantization error both
/// ways, bounding it at half a sub-bucket width (`1 / 2^(SUB_BITS+1)`
/// relative); reporting the upper bound instead overstated every
/// quantile by up to a full sub-bucket width.
fn bucket_midpoint(index: usize) -> u64 {
    let upper = bucket_upper_bound(index);
    let lower = if index == 0 {
        0
    } else {
        bucket_upper_bound(index - 1) + 1
    };
    lower + (upper - lower) / 2
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, nanos: u64) {
        self.counts[bucket_index(nanos)] += 1;
        self.total += 1;
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Fold another histogram into this one (exact).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// The value at quantile `q` in `[0, 1]` (`None` when empty):
    /// the midpoint of the first bucket whose cumulative count reaches
    /// `q · total`, clamped to the exact observed extremes — so the
    /// reported value is within half a sub-bucket width
    /// (`1 / 2^(SUB_BITS+1)` ≈ 1.6% relative) of the true quantile.
    /// `quantile(0.5)` is p50, `quantile(0.99)` p99.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q · total), floored at 1: the rank of the sample sought.
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(bucket_midpoint(index).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_upper_bound(bucket_index(v)), v);
            h.record(v);
        }
        assert_eq!(h.count(), u64::from(SUB_BUCKETS));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(SUB_BUCKETS as u64 - 1));
    }

    #[test]
    fn buckets_bound_relative_error() {
        for v in [
            40u64,
            1_000,
            12_345,
            1_000_000,
            987_654_321,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let upper = bucket_upper_bound(bucket_index(v));
            assert!(upper >= v, "upper bound must not undershoot {v}");
            let error = (upper - v) as f64 / v as f64;
            assert!(error <= 1.0 / SUB_BUCKETS as f64, "{v}: error {error}");
        }
    }

    #[test]
    fn index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = (0..64)
            .flat_map(|shift| [0u64, 1, 3].map(|wiggle| (1u64 << shift).saturating_add(wiggle)))
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "{v} → {idx}");
            assert!(idx >= last, "index must not decrease at {v}");
            last = idx;
        }
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let mut h = LatencyHistogram::new();
        // 90 fast queries at ~1µs, 10 slow at ~1ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((1_000..=1_100).contains(&p50), "p50 {p50}");
        assert!((1_000_000..=1_100_000).contains(&p99), "p99 {p99}");
        assert!(h.quantile(0.0).unwrap() >= 1_000);
        assert_eq!(h.max(), Some(1_000_000));
    }

    /// Pin the quantile error bound: the midpoint is within half a
    /// sub-bucket width of any sample in its bucket, i.e. within
    /// `1 / (2 · SUB_BUCKETS)` relative — half the upper bound's bias.
    #[test]
    fn quantile_midpoint_halves_the_error_bound() {
        for v in [40u64, 1_000, 12_345, 1_000_000, 987_654_321, u64::MAX / 3] {
            let mid = bucket_midpoint(bucket_index(v));
            let error = v.abs_diff(mid) as f64 / v as f64;
            assert!(
                error <= 1.0 / (2.0 * SUB_BUCKETS as f64),
                "{v}: midpoint {mid} error {error}"
            );
        }
    }

    #[test]
    fn quantile_reports_bucket_midpoints_not_upper_bounds() {
        let mut h = LatencyHistogram::new();
        // Both samples land in the same [992, 1007] bucket.
        assert_eq!(bucket_index(992), bucket_index(1_007));
        h.record(992);
        h.record(1_007);
        // The midpoint (999) splits the quantization error both ways;
        // the upper bound (1007) overstated the sample at 992 by a
        // full sub-bucket width.
        assert_eq!(h.quantile(0.5), Some(999));
        assert_eq!(h.quantile(1.0), Some(999));
        // Clamping to the exact extremes keeps single-sample queries
        // exact even when the midpoint falls outside the observed
        // range.
        let mut solo = LatencyHistogram::new();
        solo.record(1_007);
        assert_eq!(solo.quantile(0.5), Some(1_007));
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 37 + 11;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.count(), 0);
    }
}
