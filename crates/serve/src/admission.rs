//! [`AdmissionGate`]: bounded in-flight admission with load-shedding.
//!
//! A serving tier under overload has two choices: queue without bound
//! (latency grows until everything times out) or **shed** — reject the
//! excess up front with a typed outcome the client can see and retry
//! against. The gate implements the shedding half: a fixed in-flight
//! limit, a lock-free entry counter, and an RAII [`AdmissionPermit`]
//! that releases the slot however the query ends — completion, deadline
//! or panic (the permit drops during unwinding too).
//!
//! Rejection here is *deterministic per load state*, not randomized:
//! whether a query is shed depends only on how many permits are live at
//! its admission attempt. Under a single-threaded replay the sequence
//! is exactly reproducible; under a parallel replay the counts still
//! add up (every rejection increments `rejected`, every admission is
//! eventually released).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A bounded in-flight gate. One gate guards one serving tier replay;
/// workers call [`AdmissionGate::try_enter`] per attempt.
#[derive(Debug)]
pub struct AdmissionGate {
    limit: usize,
    inflight: AtomicUsize,
    rejected: AtomicU64,
}

impl AdmissionGate {
    /// A gate admitting at most `limit` concurrent holders (`limit` is
    /// clamped to ≥ 1 — a gate that admits nothing would wedge the
    /// replay).
    pub fn new(limit: usize) -> Self {
        Self {
            limit: limit.max(1),
            inflight: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Try to claim an in-flight slot: `Some(permit)` admits (release
    /// by dropping the permit), `None` sheds and counts the rejection.
    pub fn try_enter(&self) -> Option<AdmissionPermit<'_>> {
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.limit {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(AdmissionPermit { gate: self })
    }

    /// The configured in-flight limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Permits currently live.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Admission attempts shed so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// An in-flight slot, released on drop — including a drop that happens
/// because the query panicked, so an unwinding worker can never leak
/// serving capacity.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_limit_then_sheds() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_enter().expect("slot 1");
        let b = gate.try_enter().expect("slot 2");
        assert!(gate.try_enter().is_none(), "over limit");
        assert_eq!(gate.rejected(), 1);
        assert_eq!(gate.inflight(), 2);
        drop(a);
        let c = gate.try_enter().expect("slot freed");
        drop(b);
        drop(c);
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn permit_released_on_unwind() {
        let gate = AdmissionGate::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = gate.try_enter().expect("slot");
            panic!("query died holding a permit");
        }));
        assert!(result.is_err());
        assert_eq!(gate.inflight(), 0, "unwind released the slot");
        assert!(gate.try_enter().is_some());
    }

    #[test]
    fn zero_limit_is_clamped() {
        let gate = AdmissionGate::new(0);
        assert_eq!(gate.limit(), 1);
        assert!(gate.try_enter().is_some());
    }
}
