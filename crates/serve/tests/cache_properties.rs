//! Property tests for the instance cache: the LRU budget invariant,
//! counter monotonicity, and the single-flight guarantee (N concurrent
//! misses on one key run `prepare()` exactly once).

#![forbid(unsafe_code)]

use pp_algos::api::Lis;
use pp_serve::{CacheCounters, InstanceCache, SharedPrepared};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// A cheap instance with an arbitrary advertised cost — preparation
/// cost is irrelevant to the cache invariants under test.
fn stub_instance(cost: usize) -> SharedPrepared {
    SharedPrepared::new("lis", Lis, vec![3i64, 1, 4, 1, 5], cost)
}

/// Each counter the docs call monotone must never decrease.
fn assert_monotone(before: &CacheCounters, after: &CacheCounters) {
    assert!(after.hits >= before.hits, "hits shrank");
    assert!(after.misses >= before.misses, "misses shrank");
    assert!(after.coalesced >= before.coalesced, "coalesced shrank");
    assert!(after.evictions >= before.evictions, "evictions shrank");
    assert!(after.prepares >= before.prepares, "prepares shrank");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // After every single operation: resident bytes never exceed the
    // budget, the counters never decrease, and coalesced/prepares
    // stay consistent with misses.
    #[test]
    fn lru_budget_and_counter_monotonicity_hold_under_random_ops(
        budget in 1usize..4096,
        ops in prop::collection::vec((0u64..12, 1usize..1024), 1..80),
    ) {
        let cache = InstanceCache::new(budget);
        let mut last = cache.snapshot();
        for (key_id, cost) in ops {
            let key = format!("entry|scenario-{key_id}");
            let instance = cache.get_or_prepare(&key, || stub_instance(cost));
            // The returned handle is usable regardless of eviction.
            prop_assert_eq!(instance.entry_name(), "lis");

            let snap = cache.snapshot();
            prop_assert!(
                snap.resident_bytes <= budget as u64,
                "resident {} exceeds budget {budget}",
                snap.resident_bytes
            );
            assert_monotone(&last, &snap);
            prop_assert!(snap.coalesced <= snap.misses);
            // Every lookup is exactly one hit or one miss.
            prop_assert_eq!(snap.hits + snap.misses, last.hits + last.misses + 1);
            last = snap;
        }
        // Sequential use never coalesces.
        prop_assert_eq!(last.coalesced, 0);
        // Every miss was a leader, so each ran a prepare.
        prop_assert_eq!(last.prepares, last.misses);
    }

    // Re-requesting a resident key is always a hit and never evicts.
    #[test]
    fn resident_rerequests_hit(key_count in 1u64..6, cost in 1usize..64) {
        // Budget comfortably fits every key.
        let cache = InstanceCache::new(cost * 8);
        for id in 0..key_count {
            cache.get_or_prepare(&format!("k{id}"), || stub_instance(cost));
        }
        let before = cache.snapshot();
        for id in 0..key_count {
            cache.get_or_prepare(&format!("k{id}"), || stub_instance(cost));
        }
        let after = cache.snapshot();
        prop_assert_eq!(after.hits, before.hits + key_count);
        prop_assert_eq!(after.misses, before.misses);
        prop_assert_eq!(after.evictions, before.evictions);
    }
}

/// The single-flight guarantee: a stampede of concurrent misses on one
/// key executes `prepare()` exactly once — the `pool_builds`-style
/// build counter proves the followers coalesced onto the leader's
/// flight instead of preparing their own instance.
#[test]
fn concurrent_misses_prepare_exactly_once() {
    const THREADS: usize = 8;
    for round in 0..16 {
        let cache = Arc::new(InstanceCache::new(1 << 20));
        let builds = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(THREADS));
        let key = format!("stampede-{round}");

        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                let barrier = Arc::clone(&barrier);
                let key = key.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_prepare(&key, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        stub_instance(256)
                    })
                })
            })
            .collect();
        let instances: Vec<SharedPrepared> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "round {round}: stampede must prepare exactly once"
        );
        let snap = cache.snapshot();
        assert_eq!(snap.prepares, 1, "round {round}: {snap:?}");
        assert_eq!(snap.hits + snap.misses, THREADS as u64, "round {round}");
        assert_eq!(
            snap.misses,
            snap.coalesced + 1,
            "round {round}: every miss but the leader coalesces: {snap:?}"
        );
        // Everyone got a handle to the same underlying instance: the
        // cache's resident clone + THREADS caller clones.
        assert!(instances[0].handle_count() >= 2, "shared, not duplicated");
    }
}

/// An instance larger than the entire budget is a typed rejection: it
/// is served uncached (`oversized` counter), never installed, and
/// smaller residents are untouched — no evict-everything-then-insert.
#[test]
fn over_budget_instance_is_served_not_retained() {
    let cache = InstanceCache::new(100);
    cache.get_or_prepare("small", || stub_instance(40));
    let big = cache.get_or_prepare("big", || stub_instance(1000));
    assert_eq!(big.cost_bytes(), 1000);

    let snap = cache.snapshot();
    assert_eq!(snap.oversized, 1, "{snap:?}");
    assert_eq!(
        snap.evictions, 0,
        "oversized insert must not evict: {snap:?}"
    );
    assert_eq!(snap.resident_bytes, 40, "{snap:?}");
    assert_eq!(snap.entries, 1, "{snap:?}");
    // The small resident survived the oversized arrival...
    cache.get_or_prepare("small", || {
        panic!("small was evicted by an oversized insert")
    });
    // ...and the oversized key is prepared afresh each time (served,
    // never retained).
    let again = cache.get_or_prepare("big", || stub_instance(1000));
    assert_eq!(again.cost_bytes(), 1000);
    assert_eq!(cache.snapshot().oversized, 2);
    assert_eq!(big.entry_name(), "lis");
}

/// Eviction follows recency: with a budget of two, touching the older
/// resident flips which key the next insert evicts.
#[test]
fn eviction_is_least_recently_used() {
    let cache = InstanceCache::new(200);
    cache.get_or_prepare("a", || stub_instance(100));
    cache.get_or_prepare("b", || stub_instance(100));
    // Touch "a" so "b" becomes LRU.
    cache.get_or_prepare("a", || panic!("a is resident"));
    cache.get_or_prepare("c", || stub_instance(100));

    let before = cache.snapshot();
    // "a" must still be resident (hit); "b" must have been evicted.
    cache.get_or_prepare("a", || panic!("a was evicted out of LRU order"));
    let miss_was_b = cache.snapshot();
    cache.get_or_prepare("b", || stub_instance(100));
    let after = cache.snapshot();
    assert_eq!(miss_was_b.hits, before.hits + 1);
    assert_eq!(after.misses, miss_was_b.misses + 1, "b was gone: {after:?}");
}
