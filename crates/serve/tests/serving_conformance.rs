//! Registry-wide serving conformance: for **every** registry entry, a
//! shared prepared instance queried concurrently from worker pools must
//! produce exactly the digests of the single-threaded prepared path and
//! of the one-shot (prepare-per-query) path — sharing and concurrency
//! must be invisible in the answers. On top of that, a full cache-backed
//! [`ServingTier`] replay must reproduce the freshly-prepared reference
//! digest for both graph and sequence entries.

#![forbid(unsafe_code)]

use phase_parallel::{RunConfig, Scratch};
use pp_algos::registry::{self, CaseSpec};
use pp_serve::{ServeOptions, ServingTier};
use pp_workloads::{QueryTrace, ScenarioSpec, TraceConfig};
use rayon::prelude::*;

/// A small but non-trivial query mix: varied sources and seeds so
/// source-sensitive entries (SSSP, BFS) and seed-sensitive entries
/// (Luby, matching) both get real coverage.
fn query_set() -> Vec<RunConfig> {
    let mut cfgs = Vec::new();
    for (i, source) in [0u32, 1, 7, 19, 42, 63].into_iter().enumerate() {
        cfgs.push(RunConfig::seeded(100 + i as u64).with_source(source));
    }
    cfgs
}

#[test]
fn shared_concurrent_digests_match_prepared_registry_wide() {
    let case = CaseSpec::new(120, 11);
    let cfgs = query_set();

    for entry in registry::registry() {
        let shared = entry.prepare_shared(&case, &RunConfig::seeded(11));
        assert_eq!(shared.entry_name(), entry.name());

        // Single-threaded prepared reference: one scratch, queries in
        // order through the shared handle.
        let mut scratch = Scratch::new();
        let reference: Vec<u64> = cfgs
            .iter()
            .map(|cfg| shared.query(&mut scratch, cfg).digest)
            .collect();

        // One-shot (fresh solve per query, no prepared reuse).
        for (cfg, &expected) in cfgs.iter().zip(&reference) {
            assert_eq!(
                shared.one_shot_digest(cfg),
                expected,
                "{}: one-shot digest diverged",
                entry.name()
            );
        }

        // Concurrent workers sharing the one instance, each with its
        // own scratch, at two pool widths.
        for threads in [2usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let concurrent: Vec<u64> = pool.install(|| {
                cfgs.par_iter()
                    .map_init(Scratch::new, |scratch, cfg| {
                        shared.query(scratch, cfg).digest
                    })
                    .collect()
            });
            assert_eq!(
                concurrent,
                reference,
                "{}: {threads}-thread shared digests diverged",
                entry.name()
            );
        }
    }
}

/// The full stack for a graph entry: Zipf trace through the cache on 1
/// and 8 worker threads, digest-checked against the freshly-prepared
/// reference, with the cache actually getting exercised.
#[test]
fn cache_served_trace_matches_fresh_for_graph_entry() {
    let scenarios = [
        ScenarioSpec::parse("graph/rmat+w/uniform").unwrap(),
        ScenarioSpec::parse("graph/grid2d+w/unit").unwrap(),
        ScenarioSpec::parse("graph/uniform+w/exp").unwrap(),
    ];
    let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(200, 5));

    let mut digests = Vec::new();
    for threads in [1usize, 8] {
        let tier = ServingTier::new(
            "sssp/delta",
            ServeOptions::new(150, 9).with_threads(threads),
        )
        .unwrap();
        let report = tier.serve_trace(&trace);
        assert_eq!(report.queries, trace.len());
        assert_eq!(
            report.digest,
            tier.reference_digest(&trace),
            "{threads}-thread served trace diverged from fresh"
        );
        assert_eq!(report.counters.prepares, scenarios.len() as u64);
        // Misses are the flight leaders plus whoever coalesced onto
        // them while a preparation was in flight.
        assert_eq!(
            report.counters.misses,
            report.counters.prepares + report.counters.coalesced,
            "{:?}",
            report.counters
        );
        assert!(report.counters.hit_rate() > 0.9, "{:?}", report.counters);
        assert_eq!(report.latency.count(), trace.len() as u64);
        digests.push(report.digest);
    }
    // Worker count must not change the answers.
    assert_eq!(digests[0], digests[1]);
}

/// Same contract for a sequence entry over sequence scenario families.
#[test]
fn cache_served_trace_matches_fresh_for_seq_entry() {
    let scenarios = [
        ScenarioSpec::parse("seq/uniform").unwrap(),
        ScenarioSpec::parse("seq/zipf").unwrap(),
    ];
    let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(40, 13));

    for threads in [1usize, 8] {
        let tier =
            ServingTier::new("lis", ServeOptions::new(200, 3).with_threads(threads)).unwrap();
        let report = tier.serve_trace(&trace);
        assert_eq!(
            report.digest,
            tier.reference_digest(&trace),
            "{threads}-thread served trace diverged from fresh"
        );
        assert!(report.counters.hit_rate() > 0.9, "{:?}", report.counters);
    }
}

/// Re-serving the same trace through one tier is pure cache hits and
/// reproduces the digest.
#[test]
fn reserving_a_trace_is_all_hits_and_deterministic() {
    let scenarios = [ScenarioSpec::parse("graph/star-hub+w/uniform").unwrap()];
    let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(20, 21));
    let tier =
        ServingTier::new("sssp/dijkstra", ServeOptions::new(100, 2).with_threads(4)).unwrap();

    let first = tier.serve_trace(&trace);
    let again = tier.serve_trace(&trace);
    assert_eq!(first.digest, again.digest);
    assert_eq!(again.counters.prepares, 1, "{:?}", again.counters);
    // First replay: one leader, the rest hits or coalesced followers.
    assert_eq!(
        first.counters.misses,
        first.counters.coalesced + 1,
        "{:?}",
        first.counters
    );
    // Second replay: the instance is resident, so every query hits.
    assert_eq!(
        again.counters.hits,
        first.counters.hits + trace.len() as u64,
        "second replay must be all hits: first {:?}, again {:?}",
        first.counters,
        again.counters
    );
    assert_eq!(again.counters.misses, first.counters.misses);
}
