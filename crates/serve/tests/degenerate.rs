//! Degenerate-instance sweep: the smallest inputs an operator can ask
//! for — the empty instance, a single element, all-isolated vertices,
//! a zero-draw sequence scenario — must flow through **every** registry
//! entry's one-shot, prepared, and deadlined paths as typed, agreeing
//! outcomes. No panic, no hang, no digest drift.

#![forbid(unsafe_code)]

use phase_parallel::{RunConfig, Scratch};
use pp_algos::api::{
    Coloring, DeltaSssp, GraphPriorityInstance, GreedyMis, Matching, SsspInstance,
};
use pp_algos::registry::{self, CaseSpec};
use pp_serve::SharedPrepared;
use pp_workloads::ScenarioKind;
use std::time::Duration;

/// Sizes 0, 1, 2: the empty instance (graph families floor at one
/// vertex), the singleton, and the smallest instance that can hold a
/// dependence. Every entry must agree with its sequential reference
/// and serve the same digest from the prepared path.
#[test]
fn every_entry_survives_degenerate_sizes() {
    for entry in registry::registry() {
        for size in [0usize, 1, 2] {
            let case = CaseSpec::new(size, 3);
            let cfg = RunConfig::seeded(3);
            let outcome = entry
                .try_run_case(&case, &cfg)
                .unwrap_or_else(|e| panic!("{} size {size}: {e}", entry.name()));
            assert!(outcome.agrees(), "{} size {size}", entry.name());

            let shared = entry.prepare_shared(&case, &cfg);
            let mut scratch = Scratch::new();
            let served = shared.query(&mut scratch, &cfg);
            assert!(served.outcome.is_complete(), "{} size {size}", entry.name());
            assert_eq!(
                served.digest,
                shared.one_shot_digest(&cfg),
                "{} size {size}: prepared diverged",
                entry.name()
            );
        }
    }
}

/// A zero-deadline query against a degenerate instance must still be a
/// typed outcome — either it tripped (DeadlineExceeded) or the run was
/// trivially over before the first poll (Completed); both are legal,
/// panicking or wedging is not.
#[test]
fn zero_deadline_on_degenerate_instances_is_typed() {
    for entry in registry::registry() {
        for size in [0usize, 1] {
            let case = CaseSpec::new(size, 5);
            let shared = entry.prepare_shared(&case, &RunConfig::seeded(5));
            let mut scratch = Scratch::new();
            let cfg = RunConfig::seeded(5).with_deadline(Duration::ZERO);
            let served = shared.query(&mut scratch, &cfg);
            // Typed either way; and the next undeadlined query on the
            // same scratch must still be exact.
            let clean = shared.query(&mut scratch, &RunConfig::seeded(5));
            assert!(clean.outcome.is_complete(), "{} size {size}", entry.name());
            assert_eq!(
                clean.digest,
                shared.one_shot_digest(&RunConfig::seeded(5)),
                "{} size {size} after outcome {:?}",
                entry.name(),
                served.outcome
            );
        }
    }
}

/// A zero-draw sequence scenario (`seq/…` at size 0) is a legal empty
/// input for every sequence-kind entry.
#[test]
fn zero_draw_seq_scenario_is_accepted() {
    for key in ["seq/uniform", "seq/zipf"] {
        let case = CaseSpec::new(0, 7).with_scenario_key(key).unwrap();
        for entry in registry::registry() {
            if entry.scenario_kind() != ScenarioKind::Seq {
                continue;
            }
            let outcome = entry
                .try_run_case(&case, &RunConfig::seeded(7))
                .unwrap_or_else(|e| panic!("{} on {key}: {e}", entry.name()));
            assert!(outcome.agrees(), "{} on zero-draw {key}", entry.name());
        }
    }
}

/// All-isolated vertices (a builder graph with no edges) through the
/// graph families' serve cells: MIS selects everything, coloring is
/// all-zero, matching is empty, SSSP is source-only — and every
/// prepared digest matches its one-shot.
#[test]
fn isolated_vertices_serve_exactly() {
    let n = 8usize;
    let edgeless = || pp_graph::GraphBuilder::new(n).build();
    let priority: Vec<u32> = (0..n as u32).rev().collect();
    let cfg = RunConfig::seeded(9);
    let mut scratch = Scratch::new();

    let cells: Vec<SharedPrepared> = vec![
        SharedPrepared::new(
            "mis/tas",
            GreedyMis,
            GraphPriorityInstance::new(edgeless(), priority.clone()),
            1 << 12,
        ),
        SharedPrepared::new(
            "coloring",
            Coloring,
            GraphPriorityInstance::new(edgeless(), priority),
            1 << 12,
        ),
        // Matching takes *per-edge* priorities; the edgeless graph has
        // none.
        SharedPrepared::new(
            "matching",
            Matching,
            GraphPriorityInstance::new(edgeless(), Vec::new()),
            1 << 12,
        ),
        SharedPrepared::new(
            "sssp/delta",
            DeltaSssp,
            SsspInstance::new(edgeless(), 0),
            1 << 12,
        ),
    ];
    for cell in &cells {
        let served = cell.query(&mut scratch, &cfg);
        assert!(served.outcome.is_complete(), "{}", cell.entry_name());
        assert_eq!(
            served.digest,
            cell.one_shot_digest(&cfg),
            "{} on the edgeless graph",
            cell.entry_name()
        );
    }
}
