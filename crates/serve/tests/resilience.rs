//! Resilience-layer conformance: deadlines must be observation-free on
//! the happy path (registry-wide), blown deadlines / panics / shed
//! queries must surface as typed outcomes without taking the process
//! down, the cache's single-flight path must survive a leader that
//! panics mid-`prepare`, and fault injection (when compiled in with
//! `--cfg pp_fault`) must be seeded and replayable.

#![forbid(unsafe_code)]

use phase_parallel::{RunConfig, Scratch};
use pp_algos::registry::{self, CaseSpec};
use pp_check::fault::{self, FaultPlan};
use pp_serve::{InstanceCache, QueryOutcome, ServeOptions, ServingTier};
use pp_workloads::{QueryTrace, ScenarioSpec, TraceConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// An hour: a deadline that can never fire in a test-sized query.
const GENEROUS: Duration = Duration::from_secs(3600);

/// Satellite: cancellation polling must be observation-free. For every
/// registry entry, a query run under a generous deadline produces the
/// exact digest of the no-deadline run — prepared and one-shot paths
/// both.
#[test]
fn generous_deadline_digests_match_no_deadline_registry_wide() {
    let case = CaseSpec::new(120, 11);
    for entry in registry::registry() {
        let shared = entry.prepare_shared(&case, &RunConfig::seeded(11));
        let mut scratch = Scratch::new();
        for (i, source) in [0u32, 7, 42].into_iter().enumerate() {
            let plain = RunConfig::seeded(100 + i as u64).with_source(source);
            let deadlined = plain.clone().with_deadline(GENEROUS);
            let a = shared.query(&mut scratch, &plain);
            let b = shared.query(&mut scratch, &deadlined);
            assert!(
                b.outcome.is_complete(),
                "{}: generous deadline fired",
                entry.name()
            );
            assert_eq!(
                a.digest,
                b.digest,
                "{}: deadline polling changed the answer",
                entry.name()
            );
            assert_eq!(
                shared.one_shot_digest(&deadlined),
                a.digest,
                "{}: one-shot with deadline diverged",
                entry.name()
            );
        }
    }
}

/// Tentpole conformance: cancellation is *registry-wide*. Under an
/// already-expired deadline every entry resolves to a typed
/// `DeadlineExceeded` — no entry ignores the token and runs to
/// completion, none panics or wedges — on both the prepared serve path
/// and the one-shot path.
#[test]
fn zero_deadline_returns_deadline_exceeded_registry_wide() {
    let case = CaseSpec::new(120, 13);
    for entry in registry::registry() {
        let shared = entry.prepare_shared(&case, &RunConfig::seeded(13));
        let mut scratch = Scratch::new();
        let cfg = RunConfig::seeded(5).with_deadline(Duration::ZERO);
        let served = shared.query(&mut scratch, &cfg);
        assert!(
            !served.outcome.is_complete(),
            "{}: prepared query ignored an expired deadline",
            entry.name()
        );
        // The partial output still digests (no panic, no hang) and a
        // second query on the same scratch is unaffected — an abandoned
        // run must not corrupt the recycled workspace.
        let clean = shared.query(&mut scratch, &RunConfig::seeded(5));
        assert!(clean.outcome.is_complete(), "{}", entry.name());
        assert_eq!(
            clean.digest,
            shared.one_shot_digest(&RunConfig::seeded(5)),
            "{}: query after a cancelled run diverged",
            entry.name()
        );
    }
}

/// The full tier under a generous deadline still replays to the fresh
/// reference digest, and every outcome row is `Completed`.
#[test]
fn deadlined_tier_matches_reference_on_happy_path() {
    let scenarios = [
        ScenarioSpec::parse("graph/rmat+w/uniform").unwrap(),
        ScenarioSpec::parse("graph/grid2d+w/unit").unwrap(),
    ];
    let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(60, 5));
    for threads in [1usize, 4] {
        let tier = ServingTier::new(
            "sssp/delta",
            ServeOptions::new(150, 9)
                .with_threads(threads)
                .with_deadline(GENEROUS),
        )
        .unwrap();
        let report = tier.serve_trace(&trace);
        assert_eq!(
            report.digest,
            tier.reference_digest(&trace),
            "{threads} threads"
        );
        assert_eq!(report.outcome_count(QueryOutcome::Completed), trace.len());
        // The six resilience counters are always exported, zero here.
        for name in [
            "deadline_exceeded",
            "panics_isolated",
            "queries_rejected",
            "retries",
            "scratch_quarantined",
            "validation_rejected",
        ] {
            assert_eq!(report.stats.counter(name), Some(0), "{name}");
        }
    }
}

/// A zero deadline expires before any work: every query resolves to a
/// typed `DeadlineExceeded` row (after its retry budget), no worker
/// wedges, and the attempt counters add up.
#[test]
fn zero_deadline_is_typed_not_stuck() {
    let scenarios = [ScenarioSpec::parse("graph/grid2d+w/unit").unwrap()];
    let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(12, 3));
    let tier = ServingTier::new(
        "sssp/delta",
        ServeOptions::new(80, 1)
            .with_threads(2)
            .with_deadline(Duration::ZERO)
            .with_max_retries(1),
    )
    .unwrap();
    let report = tier.serve_trace(&trace);
    assert_eq!(
        report.outcome_count(QueryOutcome::DeadlineExceeded),
        trace.len(),
        "{:?}",
        report.outcomes
    );
    // Each query: 2 attempts (1 retry), both expired at the driver poll.
    assert_eq!(
        report.stats.counter("deadline_exceeded"),
        Some(2 * trace.len() as u64)
    );
    assert_eq!(report.stats.counter("retries"), Some(trace.len() as u64));
    assert_eq!(report.stats.counter("panics_isolated"), Some(0));
}

/// Satellite: panic during `prepare` under single-flight with ≥ 2
/// concurrent followers. The leader dies, the followers observe the
/// abandoned flight and retry, exactly one becomes the new leader, and
/// nobody is ever handed a half-built instance.
#[test]
fn prepare_panic_under_single_flight_recovers_with_one_new_leader() {
    let entry = registry::lookup("lis").unwrap();
    let cache = Arc::new(InstanceCache::new(1 << 20));
    let attempts = Arc::new(AtomicUsize::new(0));
    // Leader + 2 followers, all racing the same key.
    let barrier = Arc::new(Barrier::new(3));
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let attempts = Arc::clone(&attempts);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // A worker whose prepare attempt panics reports Err —
                // the panic unwinds out of get_or_prepare (the serve
                // driver catches it there); everyone else returns the
                // shared instance.
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_prepare("contended", || {
                        // First prepare execution dies; later ones
                        // (the re-elected leader's) succeed.
                        if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                            panic!("injected prepare failure");
                        }
                        entry.prepare_shared(&CaseSpec::new(64, 1), &RunConfig::seeded(1))
                    })
                }))
            })
        })
        .collect();

    let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let survivors: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    assert_eq!(
        survivors.len(),
        2,
        "exactly the leader's thread observed the panic"
    );
    // Exactly one re-preparation: the abandoned flight elected one new
    // leader, the other follower coalesced or hit.
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        2,
        "one dead leader + one new leader"
    );
    for instance in &survivors {
        assert_eq!(
            instance.entry_name(),
            "lis",
            "no half-built instance served"
        );
    }
    // The key is resident and healthy now.
    cache.get_or_prepare("contended", || panic!("must be resident after recovery"));
    let snap = cache.snapshot();
    assert_eq!(snap.prepares, 2, "{snap:?}");
}

/// Repeated query panics against one resident poison-evict it; the next
/// lookup prepares a fresh instance.
#[test]
fn query_panics_poison_evict_the_resident() {
    let entry = registry::lookup("lis").unwrap();
    let case = CaseSpec::new(64, 2);
    let cfg = RunConfig::seeded(2);
    let cache = InstanceCache::new(1 << 20);
    cache.get_or_prepare("poisoned", || entry.prepare_shared(&case, &cfg));

    for strike in 1..=InstanceCache::POISON_EVICT_AFTER {
        let evicted = cache.record_query_panic("poisoned");
        assert_eq!(
            evicted,
            strike == InstanceCache::POISON_EVICT_AFTER,
            "strike {strike}"
        );
    }
    let snap = cache.snapshot();
    assert_eq!(snap.poison_evictions, 1, "{snap:?}");
    assert_eq!(snap.entries, 0, "{snap:?}");
    // Strikes against a non-resident key are inert.
    assert!(!cache.record_query_panic("poisoned"));

    // The next lookup re-prepares.
    let prepares_before = snap.prepares;
    cache.get_or_prepare("poisoned", || entry.prepare_shared(&case, &cfg));
    assert_eq!(cache.snapshot().prepares, prepares_before + 1);
}

/// Admission control: a permissive limit is invisible (reference digest
/// intact, zero rejections); outcome accounting always balances.
#[test]
fn admission_accounting_balances() {
    let scenarios = [ScenarioSpec::parse("graph/grid2d+w/unit").unwrap()];
    let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(40, 7));

    // Limit >= worker count: nothing can ever be shed.
    let tier = ServingTier::new(
        "sssp/delta",
        ServeOptions::new(80, 1)
            .with_threads(4)
            .with_admission_limit(8),
    )
    .unwrap();
    let report = tier.serve_trace(&trace);
    assert_eq!(report.digest, tier.reference_digest(&trace));
    assert_eq!(report.stats.counter("queries_rejected"), Some(0));

    // Limit 1 under 4 workers: shedding may occur; whatever happens,
    // every query has exactly one typed outcome and the counter matches
    // the rows.
    let tight = ServingTier::new(
        "sssp/delta",
        ServeOptions::new(80, 1)
            .with_threads(4)
            .with_admission_limit(1),
    )
    .unwrap();
    let report = tight.serve_trace(&trace);
    assert_eq!(report.outcomes.len(), trace.len());
    let rejected = report.outcome_count(QueryOutcome::Rejected) as u64;
    assert_eq!(report.stats.counter("queries_rejected"), Some(rejected));
    assert_eq!(
        report.outcome_count(QueryOutcome::Completed) + rejected as usize,
        trace.len(),
        "{:?}",
        report.outcomes
    );
}

/// Fault-injection replay (runs only under `--cfg pp_fault`): injected
/// query panics and forced deadline expiry under a fixed seed produce
/// typed outcome rows, nonzero resilience counters, and a re-run under
/// the same seed reproduces the identical outcome sequence and digest.
#[test]
fn seeded_faults_are_typed_and_replayable() {
    if !fault::ENABLED {
        return; // compiled out; the fault_smoke CI leg compiles it in
    }
    let scenarios = [ScenarioSpec::parse("graph/grid2d+w/unit").unwrap()];
    let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(60, 17));
    fault::install(
        FaultPlan::new("pr9-resilience")
            .with_rule("serve.query.panic", 5)
            .with_rule("serve.query.deadline", 5),
    );
    let serve = |threads: usize| {
        let tier = ServingTier::new(
            "sssp/delta",
            ServeOptions::new(80, 1)
                .with_threads(threads)
                .with_max_retries(1),
        )
        .unwrap();
        tier.serve_trace(&trace)
    };
    let first = serve(1);
    let again = serve(4);
    fault::clear();

    // Fault decisions are pure hashes of (seed, site, query seed ^
    // attempt): the outcome sequence and digest are identical across
    // runs and thread counts.
    assert_eq!(first.outcomes, again.outcomes);
    assert_eq!(first.digest, again.digest);
    assert!(
        first.stats.counter("panics_isolated").unwrap() > 0,
        "{:?}",
        first.stats.counters()
    );
    assert!(first.stats.counter("deadline_exceeded").unwrap() > 0);
    assert_eq!(
        first.stats.counter("scratch_quarantined"),
        first.stats.counter("panics_isolated"),
        "every isolated panic quarantined its workspace"
    );
    // Every query still resolved to a typed row.
    assert_eq!(first.outcomes.len(), trace.len());
    assert!(first.outcome_count(QueryOutcome::Completed) > 0);
}
