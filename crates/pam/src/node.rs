//! Tree nodes and the `join` primitive.
//!
//! `join(L, k, R)` concatenates two AVL trees around a middle entry,
//! assuming every key of `L` < `k` < every key of `R`, in
//! `O(|h(L) - h(R)|)` time while restoring the AVL invariant — the
//! algorithm of Blelloch, Ferizovic & Sun (SPAA '16), Fig. 2 (AVL
//! variant). Everything else in the crate reduces to `join`.

use crate::augment::Augment;

/// An owned subtree.
pub type Link<K, V, A> = Option<Box<Node<K, V, A>>>;

/// A tree node: entry, cached height/size, augmented value, children.
pub struct Node<K, V, A> {
    pub key: K,
    pub val: V,
    pub aug: A,
    pub height: u32,
    pub size: usize,
    pub left: Link<K, V, A>,
    pub right: Link<K, V, A>,
}

impl<K: Clone, V: Clone, A: Clone> Clone for Node<K, V, A> {
    fn clone(&self) -> Self {
        // Recursive deep copy; depth is the tree height, O(log n) for a
        // balanced tree, so no stack concerns.
        Node {
            key: self.key.clone(),
            val: self.val.clone(),
            aug: self.aug.clone(),
            height: self.height,
            size: self.size,
            left: self.left.clone(),
            right: self.right.clone(),
        }
    }
}

/// Height of a link (0 for empty).
#[inline]
pub fn height<K, V, A>(t: &Link<K, V, A>) -> u32 {
    t.as_ref().map_or(0, |n| n.height)
}

/// Size of a link (0 for empty).
#[inline]
pub fn size<K, V, A>(t: &Link<K, V, A>) -> usize {
    t.as_ref().map_or(0, |n| n.size)
}

/// Augmented value of a link (identity for empty).
#[inline]
pub fn aug_of<K, V, G: Augment<K, V>>(g: &G, t: &Link<K, V, G::A>) -> G::A {
    t.as_ref().map_or_else(|| g.identity(), |n| n.aug.clone())
}

/// Recompute a node's cached height, size and augmented value from its
/// children; returns the boxed node.
pub fn mk<K, V, G: Augment<K, V>>(
    g: &G,
    left: Link<K, V, G::A>,
    key: K,
    val: V,
    right: Link<K, V, G::A>,
) -> Box<Node<K, V, G::A>> {
    let h = height(&left).max(height(&right)) + 1;
    let s = size(&left) + size(&right) + 1;
    let mut a = g.base(&key, &val);
    if let Some(l) = &left {
        a = g.combine(&l.aug, &a);
    }
    if let Some(r) = &right {
        a = g.combine(&a, &r.aug);
    }
    Box::new(Node {
        key,
        val,
        aug: a,
        height: h,
        size: s,
        left,
        right,
    })
}

/// Refresh an existing node's caches in place (children already correct).
pub fn refresh<K, V, G: Augment<K, V>>(g: &G, n: &mut Node<K, V, G::A>) {
    n.height = height(&n.left).max(height(&n.right)) + 1;
    n.size = size(&n.left) + size(&n.right) + 1;
    let mut a = g.base(&n.key, &n.val);
    if let Some(l) = &n.left {
        a = g.combine(&l.aug, &a);
    }
    if let Some(r) = &n.right {
        a = g.combine(&a, &r.aug);
    }
    n.aug = a;
}

/// Right rotation: `(L x R)` with `L = (A y B)` becomes `(A y (B x R))`.
fn rotate_right<K, V, G: Augment<K, V>>(
    g: &G,
    mut x: Box<Node<K, V, G::A>>,
) -> Box<Node<K, V, G::A>> {
    let mut y = x.left.take().expect("rotate_right needs a left child");
    x.left = y.right.take();
    refresh(g, &mut x);
    y.right = Some(x);
    refresh(g, &mut y);
    y
}

/// Left rotation: mirror of [`rotate_right`].
fn rotate_left<K, V, G: Augment<K, V>>(
    g: &G,
    mut x: Box<Node<K, V, G::A>>,
) -> Box<Node<K, V, G::A>> {
    let mut y = x.right.take().expect("rotate_left needs a right child");
    x.right = y.left.take();
    refresh(g, &mut x);
    y.left = Some(x);
    refresh(g, &mut y);
    y
}

/// `join(L, k/v, R)`: all keys in `L` < `k` < all keys in `R`.
pub fn join<K, V, G: Augment<K, V>>(
    g: &G,
    left: Link<K, V, G::A>,
    key: K,
    val: V,
    right: Link<K, V, G::A>,
) -> Box<Node<K, V, G::A>> {
    let (hl, hr) = (height(&left), height(&right));
    if hl > hr + 1 {
        join_right(g, left.unwrap(), key, val, right)
    } else if hr > hl + 1 {
        join_left(g, left, key, val, right.unwrap())
    } else {
        mk(g, left, key, val, right)
    }
}

/// `h(l) > h(r) + 1`: descend the right spine of `l`.
fn join_right<K, V, G: Augment<K, V>>(
    g: &G,
    mut l: Box<Node<K, V, G::A>>,
    key: K,
    val: V,
    r: Link<K, V, G::A>,
) -> Box<Node<K, V, G::A>> {
    let c = l.right.take();
    if height(&c) <= height(&r) + 1 {
        let t = mk(g, c, key, val, r);
        if t.height <= height(&l.left) + 1 {
            l.right = Some(t);
            refresh(g, &mut l);
            l
        } else {
            // Double rotation: t is right-heavy relative to l.left.
            let t = rotate_right(g, t);
            l.right = Some(t);
            refresh(g, &mut l);
            rotate_left(g, l)
        }
    } else {
        let t = join_right(g, c.unwrap(), key, val, r);
        let t_h = t.height;
        l.right = Some(t);
        refresh(g, &mut l);
        if t_h <= height(&l.left) + 1 {
            l
        } else {
            rotate_left(g, l)
        }
    }
}

/// Mirror of [`join_right`].
fn join_left<K, V, G: Augment<K, V>>(
    g: &G,
    l: Link<K, V, G::A>,
    key: K,
    val: V,
    mut r: Box<Node<K, V, G::A>>,
) -> Box<Node<K, V, G::A>> {
    let c = r.left.take();
    if height(&c) <= height(&l) + 1 {
        let t = mk(g, l, key, val, c);
        if t.height <= height(&r.right) + 1 {
            r.left = Some(t);
            refresh(g, &mut r);
            r
        } else {
            let t = rotate_left(g, t);
            r.left = Some(t);
            refresh(g, &mut r);
            rotate_right(g, r)
        }
    } else {
        let t = join_left(g, l, key, val, c.unwrap());
        let t_h = t.height;
        r.left = Some(t);
        refresh(g, &mut r);
        if t_h <= height(&r.right) + 1 {
            r
        } else {
            rotate_right(g, r)
        }
    }
}

/// `join2(L, R)`: concatenate without a middle entry (splits out the
/// last entry of `L` to use as the pivot).
pub fn join2<K, V, G: Augment<K, V>>(
    g: &G,
    left: Link<K, V, G::A>,
    right: Link<K, V, G::A>,
) -> Link<K, V, G::A> {
    match left {
        None => right,
        Some(l) => {
            let (rest, k, v) = split_last(g, l);
            Some(join(g, rest, k, v, right))
        }
    }
}

/// Remove and return the greatest entry of a subtree.
#[allow(clippy::boxed_local)] // the box is consumed; unboxing would just re-box
pub fn split_last<K, V, G: Augment<K, V>>(
    g: &G,
    mut n: Box<Node<K, V, G::A>>,
) -> (Link<K, V, G::A>, K, V) {
    match n.right.take() {
        None => (n.left.take(), n.key, n.val),
        Some(r) => {
            let (rest, k, v) = split_last(g, r);
            let left = n.left.take();
            (Some(join(g, left, n.key, n.val, rest)), k, v)
        }
    }
}

/// Check the AVL invariant, key ordering, and cache consistency; for
/// tests. Returns the subtree height.
#[cfg(any(test, feature = "validate"))]
pub fn validate<K: Ord + Clone, V, G: Augment<K, V>>(
    g: &G,
    t: &Link<K, V, G::A>,
    lo: Option<&K>,
    hi: Option<&K>,
) -> u32
where
    G::A: PartialEq + std::fmt::Debug,
{
    let Some(n) = t else { return 0 };
    if let Some(lo) = lo {
        assert!(n.key > *lo, "key ordering violated");
    }
    if let Some(hi) = hi {
        assert!(n.key < *hi, "key ordering violated");
    }
    let hl = validate(g, &n.left, lo, Some(&n.key));
    let hr = validate(g, &n.right, Some(&n.key), hi);
    assert!(hl.abs_diff(hr) <= 1, "AVL invariant violated: {hl} vs {hr}");
    assert_eq!(n.height, hl.max(hr) + 1, "stale height");
    assert_eq!(n.size, size(&n.left) + size(&n.right) + 1, "stale size");
    let mut a = g.base(&n.key, &n.val);
    if let Some(l) = &n.left {
        a = g.combine(&l.aug, &a);
    }
    if let Some(r) = &n.right {
        a = g.combine(&a, &r.aug);
    }
    assert_eq!(n.aug, a, "stale augmented value");
    n.height
}
