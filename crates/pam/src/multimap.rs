//! A multimap on top of [`AugTree`]: multiple values per key.
//!
//! This is the `T_pivot` structure of the Type 2 algorithms (§5.1,
//! Algorithm 3 line 21): a map from *pivot* to the set of objects waiting
//! on it. The paper implements it as a nested BST (Appendix A, "Parallel
//! Nested BSTs"); we store entries keyed by the `(key, value)` pair, which
//! gives the same Theorem 2.2 bounds with one tree level — `multi_find`
//! of a batch of `m` keys returning `s` total values costs
//! `O((m + s) log n)` work.

use crate::augment::{Augment, NoAug};
use crate::tree::AugTree;
use rayon::prelude::*;

/// Pair augmentation adapter: exposes a `(K, V)`-keyed tree as `K → {V}`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PairAug;

impl<K, V> Augment<(K, V), ()> for PairAug {
    type A = ();
    fn identity(&self) {}
    fn base(&self, _: &(K, V), _: &()) {}
    fn combine(&self, _: &(), _: &()) {}
}

/// An ordered multimap `K → {V}` with parallel batch operations.
pub struct Multimap<K, V> {
    inner: AugTree<(K, V), (), NoAug>,
}

impl<K, V> Default for Multimap<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Ord + Clone + Send + Sync,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Multimap<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Ord + Clone + Send + Sync,
{
    /// An empty multimap.
    pub fn new() -> Self {
        Self {
            inner: AugTree::new(NoAug),
        }
    }

    /// Build from `(key, value)` pairs (duplicate pairs collapse).
    pub fn build(pairs: Vec<(K, V)>) -> Self {
        Self {
            inner: AugTree::build(NoAug, pairs.into_par_iter().map(|p| (p, ())).collect()),
        }
    }

    /// Total number of stored pairs.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True iff no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Insert one pair. `O(log n)`.
    pub fn insert(&mut self, key: K, val: V) {
        self.inner.insert((key, val), ());
    }

    /// Insert a batch of pairs in parallel (Theorem 2.2).
    pub fn multi_insert(&mut self, pairs: Vec<(K, V)>) {
        self.inner
            .multi_insert(pairs.into_par_iter().map(|p| (p, ())).collect());
    }

    /// All values stored under `key`, in order.
    pub fn find_all(&self, key: &K) -> Vec<V>
    where
        V: Bounded,
    {
        self.inner
            .range_entries(&(key.clone(), V::min_val()), &(key.clone(), V::max_val()))
            .into_iter()
            .map(|((_, v), ())| v)
            .collect()
    }

    /// All values stored under any key in `keys`, concatenated
    /// (Algorithm 3 line 27: `T_pivot.multi_find(frontier)`).
    /// `O((m + s) log n)` work for `m` keys and `s` results.
    pub fn multi_find(&self, keys: &[K]) -> Vec<V>
    where
        V: Bounded,
    {
        let per_key: Vec<Vec<V>> = keys.par_iter().map(|k| self.find_all(k)).collect();
        let mut out = Vec::with_capacity(per_key.iter().map(Vec::len).sum());
        for mut v in per_key {
            out.append(&mut v);
        }
        out
    }

    /// Remove every pair with a key in `keys`.
    pub fn multi_delete_keys(&mut self, keys: &[K])
    where
        V: Bounded,
    {
        let pairs: Vec<(K, V)> = keys
            .par_iter()
            .flat_map_iter(|k| {
                let vals = self.find_all(k);
                let k = k.clone();
                vals.into_iter().map(move |v| (k.clone(), v))
            })
            .collect();
        self.inner.multi_delete(pairs.into_iter().collect());
    }
}

/// Types with min/max sentinels, needed for key-range extraction.
pub trait Bounded {
    /// The least value of the type.
    fn min_val() -> Self;
    /// The greatest value of the type.
    fn max_val() -> Self;
}

macro_rules! impl_bounded {
    ($($t:ty),*) => {$(
        impl Bounded for $t {
            fn min_val() -> Self { <$t>::MIN }
            fn max_val() -> Self { <$t>::MAX }
        }
    )*};
}
impl_bounded!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_find_all() {
        let mut m: Multimap<u64, u32> = Multimap::new();
        m.insert(1, 10);
        m.insert(1, 20);
        m.insert(2, 30);
        m.insert(1, 15);
        assert_eq!(m.find_all(&1), vec![10, 15, 20]);
        assert_eq!(m.find_all(&2), vec![30]);
        assert_eq!(m.find_all(&3), Vec::<u32>::new());
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn multi_find_like_tpivot() {
        // Algorithm 3 line 21: T_pivot = {(0, i) : i = 1..n}.
        let n = 1000u32;
        let m = Multimap::build((1..=n).map(|i| (0u64, i)).collect());
        let todo = m.multi_find(&[0]);
        assert_eq!(todo.len(), n as usize);
        // Keys without entries contribute nothing.
        let todo = m.multi_find(&[1, 2, 3]);
        assert!(todo.is_empty());
    }

    #[test]
    fn multi_insert_and_delete() {
        let mut m: Multimap<u32, u32> = Multimap::new();
        m.multi_insert((0..500).map(|i| (i % 10, i)).collect());
        assert_eq!(m.len(), 500);
        assert_eq!(m.find_all(&3).len(), 50);
        m.multi_delete_keys(&[3, 4]);
        assert_eq!(m.len(), 400);
        assert!(m.find_all(&3).is_empty());
        assert_eq!(m.find_all(&5).len(), 50);
    }

    #[test]
    fn duplicate_pairs_collapse() {
        let m = Multimap::build(vec![(1u32, 5u32), (1, 5), (1, 6)]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.find_all(&1), vec![5, 6]);
    }
}
