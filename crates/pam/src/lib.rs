//! # `pp-pam` — join-based Parallel Augmented BSTs (PA-BST)
//!
//! A from-scratch Rust implementation of the PAM-style parallel augmented
//! balanced binary search trees the paper relies on (§2, Theorems 2.1 and
//! 2.2; Appendix A), after Sun, Ferizovic & Blelloch (PPoPP '18) and
//! Blelloch, Ferizovic & Sun, *Just Join for Parallel Ordered Sets*
//! (SPAA '16).
//!
//! The single primitive is `join(L, k, R)`; every other operation —
//! `split`, `insert`, `delete`, `union`, `intersection`, `difference`,
//! batch (`multi_`) operations and parallel construction — is built on it,
//! and the bulk operations parallelize with `rayon::join` exactly as the
//! divide-and-conquer schemes of \[9, 66\] describe.
//!
//! Trees are AVL-balanced (join maintains the AVL invariant), store
//! subtree sizes for `O(log n)` rank/select, and carry an *augmented
//! value* per subtree defined by an [`Augment`] structure — the monoid
//! `(A, f, I_A)` with a base function `g : K × V → A` of §2. Range
//! aggregation (`aug_range`) answers the 1D range-sum queries of
//! Theorem 2.1 in `O(log n)`.
//!
//! [`Multimap`] layers duplicate-key storage on top (the `T_pivot`
//! structure of the Type 2 algorithms, Theorem 2.2), and
//! [`NestedMultimap`] is the literal two-level nested-BST form of
//! Appendix A.
//!
//! ```
//! use pp_pam::{AugTree, MaxAug};
//!
//! // T_DP of Algorithm 2: end-time -> DP value, augmented on the max.
//! let mut t = AugTree::build(MaxAug, vec![(10u64, 5u64), (20, 9), (30, 7)]);
//! assert_eq!(t.aug(), 9);
//! // "max dp among activities ending by 25":
//! assert_eq!(t.aug_left(&25), 9);
//! t.multi_insert(vec![(15, 20), (25, 1)]);
//! assert_eq!(t.aug_left(&25), 20);
//! ```

#![forbid(unsafe_code)]

pub mod augment;
pub mod multimap;
pub mod nested;
pub mod node;
pub mod tree;

pub use augment::{Augment, MaxAug, MinAug, NoAug, SizeAug, SumAug};
pub use multimap::Multimap;
pub use nested::NestedMultimap;
pub use tree::AugTree;
