//! Augmentation structures: the `(A, f, I_A)` monoid plus base function
//! `g : K × V → A` of §2 / Appendix A.

/// An augmentation over key-value pairs: maps each entry to an augmented
/// value and combines augmented values associatively.
pub trait Augment<K, V>: Send + Sync {
    /// The augmented value type.
    type A: Clone + Send + Sync;

    /// The identity of [`Augment::combine`].
    fn identity(&self) -> Self::A;

    /// Base function `g`: augmented value of a single entry.
    fn base(&self, k: &K, v: &V) -> Self::A;

    /// Associative combine `f`.
    fn combine(&self, a: &Self::A, b: &Self::A) -> Self::A;
}

/// No augmentation (unit); for plain ordered maps/sets.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoAug;

impl<K, V> Augment<K, V> for NoAug {
    type A = ();
    fn identity(&self) {}
    fn base(&self, _: &K, _: &V) {}
    fn combine(&self, _: &(), _: &()) {}
}

/// Subtree sizes as the augmented value (rank/select support beyond the
/// built-in size field; mostly used to test augmentation plumbing).
#[derive(Clone, Copy, Debug, Default)]
pub struct SizeAug;

impl<K, V> Augment<K, V> for SizeAug {
    type A = usize;
    fn identity(&self) -> usize {
        0
    }
    fn base(&self, _: &K, _: &V) -> usize {
        1
    }
    fn combine(&self, a: &usize, b: &usize) -> usize {
        a + b
    }
}

/// Sum of values (requires `V: Into<u64>`-like access via a projection).
#[derive(Clone, Copy, Debug, Default)]
pub struct SumAug;

impl<K> Augment<K, u64> for SumAug {
    type A = u64;
    fn identity(&self) -> u64 {
        0
    }
    fn base(&self, _: &K, v: &u64) -> u64 {
        *v
    }
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        a + b
    }
}

/// Maximum of values — e.g. `T_DP` in Algorithm 2, "augmented on the
/// maximum DP value".
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxAug;

impl<K> Augment<K, u64> for MaxAug {
    type A = u64;
    fn identity(&self) -> u64 {
        0
    }
    fn base(&self, _: &K, v: &u64) -> u64 {
        *v
    }
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        *a.max(b)
    }
}

/// Minimum of values — e.g. `T_time` in Algorithm 2, "augmented on the
/// minimum end time".
#[derive(Clone, Copy, Debug, Default)]
pub struct MinAug;

impl<K> Augment<K, u64> for MinAug {
    type A = u64;
    fn identity(&self) -> u64 {
        u64::MAX
    }
    fn base(&self, _: &K, v: &u64) -> u64 {
        *v
    }
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        *a.min(b)
    }
}
