//! The [`AugTree`] map: join-based ordered map with augmentation and
//! parallel bulk operations.

use crate::augment::Augment;
use crate::node::{aug_of, join, join2, mk, size, Link};
use pp_parlay::sort::par_sort_by;
use rayon::prelude::*;
use std::cmp::Ordering;

/// Bulk operations go parallel above this size.
const PAR_CUTOFF: usize = 1 << 11;

/// An ordered map of `K → V` with subtree augmentation `G`.
///
/// All single-entry operations are `O(log n)`. Bulk operations (`union`,
/// `multi_insert`, `build`, `flatten`, …) are parallel divide-and-conquer
/// over `join`/`split` and meet the bounds of Theorems 2.1 and 2.2.
pub struct AugTree<K, V, G: Augment<K, V>> {
    root: Link<K, V, G::A>,
    g: G,
}

impl<K, V, G> Clone for AugTree<K, V, G>
where
    K: Clone,
    V: Clone,
    G: Augment<K, V> + Clone,
    G::A: Clone,
{
    fn clone(&self) -> Self {
        Self {
            root: self.root.clone(),
            g: self.g.clone(),
        }
    }
}

impl<K, V, G> AugTree<K, V, G>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    G: Augment<K, V>,
{
    /// An empty map with augmentation `g`.
    pub fn new(g: G) -> Self {
        Self { root: None, g }
    }

    /// Build from entries; on duplicate keys, the *last* occurrence wins
    /// (matching PAM's `build`). `O(n log n)` work, polylog span.
    pub fn build(g: G, mut entries: Vec<(K, V)>) -> Self {
        // Stable sort by key, then keep the last entry of each run.
        par_sort_by(&mut entries, |a, b| a.0 < b.0);
        let n = entries.len();
        let keep: Vec<bool> = (0..n)
            .into_par_iter()
            .map(|i| i + 1 == n || entries[i].0 != entries[i + 1].0)
            .collect();
        let entries = pp_parlay::pack(&entries, &keep);
        Self::from_sorted(g, entries)
    }

    /// Build from strictly-increasing entries. `O(n)` work, `O(log n)` span.
    pub fn from_sorted(g: G, entries: Vec<(K, V)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let root = build_sorted(&g, &entries);
        Self { root, g }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// True iff the map is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The augmented value of the whole map (identity if empty).
    pub fn aug(&self) -> G::A {
        aug_of(&self.g, &self.root)
    }

    /// Look up a key.
    pub fn find(&self, key: &K) -> Option<&V> {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Less => cur = &n.left,
                Ordering::Greater => cur = &n.right,
                Ordering::Equal => return Some(&n.val),
            }
        }
        None
    }

    /// Insert (replacing any existing value). `O(log n)`.
    pub fn insert(&mut self, key: K, val: V) {
        let root = self.root.take();
        let (l, _, r) = split(&self.g, root, &key);
        self.root = Some(join(&self.g, l, key, val, r));
    }

    /// Remove a key, returning its value if present. `O(log n)`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let root = self.root.take();
        let (l, found, r) = split(&self.g, root, key);
        self.root = join2(&self.g, l, r);
        found
    }

    /// Smallest entry.
    pub fn first(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_ref()?;
        while let Some(l) = cur.left.as_ref() {
            cur = l;
        }
        Some((&cur.key, &cur.val))
    }

    /// Greatest entry.
    pub fn last(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_ref()?;
        while let Some(r) = cur.right.as_ref() {
            cur = r;
        }
        Some((&cur.key, &cur.val))
    }

    /// Number of keys strictly less than `key`.
    pub fn rank(&self, key: &K) -> usize {
        let mut cur = &self.root;
        let mut acc = 0;
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Less | Ordering::Equal => cur = &n.left,
                Ordering::Greater => {
                    acc += size(&n.left) + 1;
                    cur = &n.right;
                }
            }
        }
        acc
    }

    /// The `i`-th smallest entry (0-based).
    pub fn select(&self, mut i: usize) -> Option<(&K, &V)> {
        let mut cur = self.root.as_ref()?;
        loop {
            let ls = size(&cur.left);
            match i.cmp(&ls) {
                Ordering::Less => cur = cur.left.as_ref()?,
                Ordering::Equal => return Some((&cur.key, &cur.val)),
                Ordering::Greater => {
                    i -= ls + 1;
                    cur = cur.right.as_ref()?;
                }
            }
        }
    }

    /// Split into (`keys < key`, value at `key` if any, `keys > key`).
    pub fn split_at(mut self, key: &K) -> (Self, Option<V>, Self)
    where
        G: Clone,
    {
        let root = self.root.take();
        let (l, found, r) = split(&self.g, root, key);
        (
            Self {
                root: l,
                g: self.g.clone(),
            },
            found,
            Self { root: r, g: self.g },
        )
    }

    /// Augmented value over keys in `[lo, hi]` (inclusive). `O(log n)`.
    pub fn aug_range(&self, lo: &K, hi: &K) -> G::A {
        aug_range_rec(&self.g, &self.root, Some(lo), Some(hi))
    }

    /// Augmented value over keys `<= hi`. `O(log n)`.
    pub fn aug_left(&self, hi: &K) -> G::A {
        aug_range_rec(&self.g, &self.root, None, Some(hi))
    }

    /// Augmented value over keys `>= lo`. `O(log n)`.
    pub fn aug_right(&self, lo: &K) -> G::A {
        aug_range_rec(&self.g, &self.root, Some(lo), None)
    }

    /// Union with `other`; on key collisions `combine(self_v, other_v)`
    /// decides the value. `O(m log(n/m + 1))` work, polylog span.
    pub fn union_with<F>(self, other: Self, combine: &F) -> Self
    where
        F: Fn(&V, &V) -> V + Send + Sync,
        G: Clone,
    {
        let g = self.g.clone();
        let root = union(&g, self.root, other.root, combine);
        Self { root, g }
    }

    /// Union; `other`'s value wins on collisions.
    pub fn union(self, other: Self) -> Self
    where
        G: Clone,
    {
        self.union_with(other, &|_, b| b.clone())
    }

    /// Intersection: keys present in both maps, with values combined by
    /// `combine(self_v, other_v)`. Same split-based parallel recursion
    /// and bounds as `union`.
    pub fn intersect_with<F>(self, other: Self, combine: &F) -> Self
    where
        F: Fn(&V, &V) -> V + Send + Sync,
        G: Clone,
    {
        let g = self.g.clone();
        let root = intersect(&g, self.root, other.root, combine);
        Self { root, g }
    }

    /// Difference: entries of `self` whose keys are *not* in `other`.
    pub fn difference(self, other: Self) -> Self
    where
        G: Clone,
    {
        let g = self.g.clone();
        let root = difference(&g, self.root, other.root);
        Self { root, g }
    }

    /// Insert a batch of entries (duplicates within the batch: last wins;
    /// collisions with the map: batch wins). Theorem 2.2 bounds.
    pub fn multi_insert(&mut self, entries: Vec<(K, V)>)
    where
        G: Clone,
    {
        let g = self.g.clone();
        let batch = Self::build(g, entries);
        let me = std::mem::replace(self, Self::new(self.g.clone()));
        *self = me.union(batch);
    }

    /// Remove a batch of keys.
    pub fn multi_delete(&mut self, mut keys: Vec<K>)
    where
        G: Clone,
    {
        pp_parlay::par_sort(&mut keys);
        keys.dedup();
        let root = self.root.take();
        self.root = multi_delete_rec(&self.g, root, &keys);
    }

    /// Look up a batch of keys in parallel: returns `(key, value)` for
    /// each present key, in key order. `O(m log n)` work.
    pub fn multi_find(&self, mut keys: Vec<K>) -> Vec<(K, V)> {
        pp_parlay::par_sort(&mut keys);
        keys.dedup();
        let found: Vec<Option<(K, V)>> = keys
            .into_par_iter()
            .map(|k| self.find(&k).map(|v| (k.clone(), v.clone())))
            .collect();
        found.into_iter().flatten().collect()
    }

    /// Flatten into a sorted vector of entries. `O(n)` work, `O(log n)` span.
    pub fn flatten(&self) -> Vec<(K, V)> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        flatten_rec(&self.root, &mut out);
        out
    }

    /// Apply `f` to every entry in parallel (read-only traversal).
    pub fn for_each_par<F>(&self, f: &F)
    where
        F: Fn(&K, &V) + Send + Sync,
    {
        for_each_rec(&self.root, f);
    }

    /// Greatest key `<= key` with its value.
    pub fn prev(&self, key: &K) -> Option<(&K, &V)> {
        let mut cur = &self.root;
        let mut best = None;
        while let Some(n) = cur {
            if n.key <= *key {
                best = Some((&n.key, &n.val));
                cur = &n.right;
            } else {
                cur = &n.left;
            }
        }
        best
    }

    /// Smallest key `>= key` with its value.
    pub fn next(&self, key: &K) -> Option<(&K, &V)> {
        let mut cur = &self.root;
        let mut best = None;
        while let Some(n) = cur {
            if n.key >= *key {
                best = Some((&n.key, &n.val));
                cur = &n.left;
            } else {
                cur = &n.right;
            }
        }
        best
    }

    /// Entries with keys in `[lo, hi]`, in order.
    pub fn range_entries(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        range_collect(&self.root, lo, hi, &mut out);
        out
    }

    /// Validate structural invariants (tests / debugging).
    #[cfg(any(test, feature = "validate"))]
    pub fn check_invariants(&self)
    where
        G::A: PartialEq + std::fmt::Debug,
        K: std::fmt::Debug,
    {
        crate::node::validate(&self.g, &self.root, None, None);
    }
}

fn build_sorted<K, V, G>(g: &G, entries: &[(K, V)]) -> Link<K, V, G::A>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    G: Augment<K, V>,
{
    if entries.is_empty() {
        return None;
    }
    let mid = entries.len() / 2;
    let (k, v) = entries[mid].clone();
    let (le, re) = (&entries[..mid], &entries[mid + 1..]);
    let (l, r) = if entries.len() > PAR_CUTOFF {
        rayon::join(|| build_sorted(g, le), || build_sorted(g, re))
    } else {
        (build_sorted(g, le), build_sorted(g, re))
    };
    Some(mk(g, l, k, v, r))
}

/// The result of a split: left subtree, the key's value, right subtree.
pub(crate) type Split<K, V, A> = (Link<K, V, A>, Option<V>, Link<K, V, A>);

/// `split(t, k)`: trees of keys `< k` and `> k`, plus `k`'s value if present.
pub(crate) fn split<K, V, G>(g: &G, t: Link<K, V, G::A>, key: &K) -> Split<K, V, G::A>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    G: Augment<K, V>,
{
    let Some(mut n) = t else {
        return (None, None, None);
    };
    let (left, right) = (n.left.take(), n.right.take());
    match key.cmp(&n.key) {
        Ordering::Equal => (left, Some(n.val), right),
        Ordering::Less => {
            let (ll, found, lr) = split(g, left, key);
            (ll, found, Some(join(g, lr, n.key, n.val, right)))
        }
        Ordering::Greater => {
            let (rl, found, rr) = split(g, right, key);
            (Some(join(g, left, n.key, n.val, rl)), found, rr)
        }
    }
}

fn union<K, V, G, F>(
    g: &G,
    t1: Link<K, V, G::A>,
    t2: Link<K, V, G::A>,
    combine: &F,
) -> Link<K, V, G::A>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    G: Augment<K, V>,
    F: Fn(&V, &V) -> V + Send + Sync,
{
    match (t1, t2) {
        (None, t2) => t2,
        (t1, None) => t1,
        (Some(n1), Some(n2)) => {
            // Split t1 by t2's root; recurse on both sides in parallel.
            let mut n2 = n2;
            let (l2, r2) = (n2.left.take(), n2.right.take());
            let big = n1.size > PAR_CUTOFF;
            let (l1, found, r1) = split(g, Some(n1), &n2.key);
            let val = match &found {
                Some(v1) => combine(v1, &n2.val),
                None => n2.val.clone(),
            };
            let (l, r) = if big {
                rayon::join(|| union(g, l1, l2, combine), || union(g, r1, r2, combine))
            } else {
                (union(g, l1, l2, combine), union(g, r1, r2, combine))
            };
            Some(join(g, l, n2.key, val, r))
        }
    }
}

fn intersect<K, V, G, F>(
    g: &G,
    t1: Link<K, V, G::A>,
    t2: Link<K, V, G::A>,
    combine: &F,
) -> Link<K, V, G::A>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    G: Augment<K, V>,
    F: Fn(&V, &V) -> V + Send + Sync,
{
    match (t1, t2) {
        (None, _) | (_, None) => None,
        (Some(n1), Some(n2)) => {
            let mut n2 = n2;
            let (l2, r2) = (n2.left.take(), n2.right.take());
            let big = n1.size > PAR_CUTOFF;
            let (l1, found, r1) = split(g, Some(n1), &n2.key);
            let (l, r) = if big {
                rayon::join(
                    || intersect(g, l1, l2, combine),
                    || intersect(g, r1, r2, combine),
                )
            } else {
                (intersect(g, l1, l2, combine), intersect(g, r1, r2, combine))
            };
            match found {
                Some(v1) => Some(join(g, l, n2.key, combine(&v1, &n2.val), r)),
                None => join2(g, l, r),
            }
        }
    }
}

fn difference<K, V, G>(g: &G, t1: Link<K, V, G::A>, t2: Link<K, V, G::A>) -> Link<K, V, G::A>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    G: Augment<K, V>,
{
    match (t1, t2) {
        (t1, None) => t1,
        (None, _) => None,
        (Some(n1), Some(n2)) => {
            let mut n2 = n2;
            let (l2, r2) = (n2.left.take(), n2.right.take());
            let big = n1.size > PAR_CUTOFF;
            let (l1, _, r1) = split(g, Some(n1), &n2.key);
            let (l, r) = if big {
                rayon::join(|| difference(g, l1, l2), || difference(g, r1, r2))
            } else {
                (difference(g, l1, l2), difference(g, r1, r2))
            };
            join2(g, l, r)
        }
    }
}

fn multi_delete_rec<K, V, G>(g: &G, t: Link<K, V, G::A>, keys: &[K]) -> Link<K, V, G::A>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    G: Augment<K, V>,
{
    if keys.is_empty() {
        return t;
    }
    let t = t?;
    let mid = keys.len() / 2;
    let key = &keys[mid];
    let (l, _, r) = split(g, Some(t), key);
    let (lk, rk) = (&keys[..mid], &keys[mid + 1..]);
    let (l, r) = if size(&l) + size(&r) > PAR_CUTOFF {
        rayon::join(|| multi_delete_rec(g, l, lk), || multi_delete_rec(g, r, rk))
    } else {
        (multi_delete_rec(g, l, lk), multi_delete_rec(g, r, rk))
    };
    join2(g, l, r)
}

fn aug_range_rec<K, V, G>(g: &G, t: &Link<K, V, G::A>, lo: Option<&K>, hi: Option<&K>) -> G::A
where
    K: Ord,
    G: Augment<K, V>,
{
    let Some(n) = t else { return g.identity() };
    // Entire subtree inside the range?
    if lo.is_none() && hi.is_none() {
        return n.aug.clone();
    }
    let in_lo = lo.is_none_or(|l| n.key >= *l);
    let in_hi = hi.is_none_or(|h| n.key <= *h);
    let mut acc = g.identity();
    if in_lo {
        // Left subtree may intersect; if lo bounds nothing there, take it whole.
        let l_part = aug_range_rec(g, &n.left, lo, if in_hi { None } else { hi });
        acc = g.combine(&acc, &l_part);
    } else {
        // Node below lo: only the right subtree matters.
        return aug_range_rec(g, &n.right, lo, hi);
    }
    if in_hi {
        acc = g.combine(&acc, &g.base(&n.key, &n.val));
        let r_part = aug_range_rec(g, &n.right, if in_lo { None } else { lo }, hi);
        acc = g.combine(&acc, &r_part);
        acc
    } else {
        // Node above hi: discard node and right subtree; but we already
        // recursed left with hi retained, so acc is the answer.
        acc
    }
}

fn flatten_rec<K: Clone, V: Clone, A>(t: &Link<K, V, A>, out: &mut Vec<(K, V)>) {
    if let Some(n) = t {
        flatten_rec(&n.left, out);
        out.push((n.key.clone(), n.val.clone()));
        flatten_rec(&n.right, out);
    }
}

fn for_each_rec<K, V, A, F>(t: &Link<K, V, A>, f: &F)
where
    K: Sync,
    V: Sync,
    A: Sync,
    F: Fn(&K, &V) + Send + Sync,
{
    let Some(n) = t else { return };
    if n.size > PAR_CUTOFF {
        rayon::join(|| for_each_rec(&n.left, f), || for_each_rec(&n.right, f));
    } else {
        for_each_rec(&n.left, f);
        for_each_rec(&n.right, f);
    }
    f(&n.key, &n.val);
}

fn range_collect<K: Ord + Clone, V: Clone, A>(
    t: &Link<K, V, A>,
    lo: &K,
    hi: &K,
    out: &mut Vec<(K, V)>,
) {
    let Some(n) = t else { return };
    if n.key >= *lo {
        range_collect(&n.left, lo, hi, out);
    }
    if n.key >= *lo && n.key <= *hi {
        out.push((n.key.clone(), n.val.clone()));
    }
    if n.key <= *hi {
        range_collect(&n.right, lo, hi, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::{MaxAug, MinAug, NoAug, SumAug};
    use pp_parlay::rng::Rng;
    use std::collections::BTreeMap;

    #[test]
    fn insert_find_remove() {
        let mut t = AugTree::new(NoAug);
        for i in [5u64, 3, 8, 1, 4, 9, 2] {
            t.insert(i, i * 10);
        }
        t.check_invariants();
        assert_eq!(t.len(), 7);
        assert_eq!(t.find(&4), Some(&40));
        assert_eq!(t.find(&7), None);
        assert_eq!(t.remove(&3), Some(30));
        assert_eq!(t.remove(&3), None);
        assert_eq!(t.len(), 6);
        t.check_invariants();
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        let mut r = Rng::new(21);
        let mut t = AugTree::new(SumAug);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..4000 {
            let k = r.range(200);
            match r.range(3) {
                0 => {
                    let v = r.range(1000);
                    t.insert(k, v);
                    model.insert(k, v);
                }
                1 => {
                    assert_eq!(t.remove(&k), model.remove(&k), "step {step}");
                }
                _ => {
                    assert_eq!(t.find(&k), model.get(&k), "step {step}");
                }
            }
            if step % 500 == 0 {
                t.check_invariants();
                assert_eq!(t.len(), model.len());
                assert_eq!(t.aug(), model.values().sum::<u64>());
            }
        }
        let flat = t.flatten();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(flat, want);
    }

    #[test]
    fn build_large_and_rank_select() {
        let n = 100_000u64;
        let entries: Vec<(u64, u64)> = (0..n).map(|i| (i * 2, i)).collect();
        let t = AugTree::from_sorted(NoAug, entries);
        assert_eq!(t.len(), n as usize);
        t.check_invariants();
        assert_eq!(t.rank(&100), 50);
        assert_eq!(t.rank(&101), 51);
        assert_eq!(t.select(50), Some((&100, &50)));
        assert_eq!(t.first(), Some((&0, &0)));
        assert_eq!(t.last(), Some((&(2 * (n - 1)), &(n - 1))));
    }

    #[test]
    fn build_dedups_last_wins() {
        let entries = vec![(1u64, 10u64), (2, 20), (1, 11), (3, 30), (2, 22)];
        let t = AugTree::build(NoAug, entries);
        assert_eq!(t.len(), 3);
        assert_eq!(t.find(&1), Some(&11));
        assert_eq!(t.find(&2), Some(&22));
    }

    #[test]
    fn aug_range_max() {
        let entries: Vec<(u64, u64)> = (0..1000).map(|i| (i, (i * 7919) % 1000)).collect();
        let t = AugTree::from_sorted(MaxAug, entries.clone());
        let mut r = Rng::new(3);
        for _ in 0..300 {
            let a = r.range(1000);
            let b = r.range(1000);
            let (lo, hi) = (a.min(b), a.max(b));
            let want = entries
                .iter()
                .filter(|(k, _)| *k >= lo && *k <= hi)
                .map(|(_, v)| *v)
                .max()
                .unwrap_or(0);
            assert_eq!(t.aug_range(&lo, &hi), want, "range [{lo},{hi}]");
        }
        // Prefix and suffix forms.
        assert_eq!(
            t.aug_left(&499),
            entries[..500].iter().map(|e| e.1).max().unwrap()
        );
        assert_eq!(
            t.aug_right(&500),
            entries[500..].iter().map(|e| e.1).max().unwrap()
        );
    }

    #[test]
    fn aug_min_like_t_time() {
        // T_time semantics: keys are start times, values are end times,
        // augmented on minimum end time (Algorithm 2 line 1).
        let entries: Vec<(u64, u64)> = vec![(10, 100), (20, 35), (30, 90), (40, 60)];
        let t = AugTree::build(MinAug, entries);
        assert_eq!(t.aug(), 35);
        assert_eq!(t.aug_range(&25, &45), 60);
    }

    #[test]
    fn union_disjoint_and_overlapping() {
        let a: Vec<(u64, u64)> = (0..5000).map(|i| (2 * i, i)).collect();
        let b: Vec<(u64, u64)> = (0..5000).map(|i| (2 * i + 1, i + 10)).collect();
        let ta = AugTree::from_sorted(SumAug, a.clone());
        let tb = AugTree::from_sorted(SumAug, b);
        let t = ta.union(tb);
        t.check_invariants();
        assert_eq!(t.len(), 10_000);
        // Overlapping union with value combine.
        let ta = AugTree::from_sorted(SumAug, a.clone());
        let tc = AugTree::from_sorted(SumAug, a.iter().map(|&(k, v)| (k, v + 1)).collect());
        let t = ta.union_with(tc, &|x, y| x + y);
        t.check_invariants();
        assert_eq!(t.len(), 5000);
        assert_eq!(t.find(&0), Some(&1));
        assert_eq!(t.find(&4), Some(&(2 + 3)));
    }

    #[test]
    fn intersection_and_difference_match_model() {
        use std::collections::BTreeMap;
        let mut r = Rng::new(55);
        for trial in 0..10 {
            let a: Vec<(u64, u64)> = (0..500).map(|_| (r.range(300), r.range(50))).collect();
            let b: Vec<(u64, u64)> = (0..500).map(|_| (r.range(300), r.range(50))).collect();
            let (ma, mb): (BTreeMap<u64, u64>, BTreeMap<u64, u64>) =
                (a.iter().copied().collect(), b.iter().copied().collect());
            let ta = AugTree::build(SumAug, a.clone());
            let tb = AugTree::build(SumAug, b.clone());
            let ti = ta.intersect_with(tb, &|x, y| x + y);
            ti.check_invariants();
            let want: Vec<(u64, u64)> = ma
                .iter()
                .filter_map(|(k, v)| mb.get(k).map(|w| (*k, v + w)))
                .collect();
            assert_eq!(ti.flatten(), want, "intersect trial {trial}");

            let ta = AugTree::build(SumAug, a.clone());
            let tb = AugTree::build(SumAug, b.clone());
            let td = ta.difference(tb);
            td.check_invariants();
            let want: Vec<(u64, u64)> = ma
                .iter()
                .filter(|(k, _)| !mb.contains_key(k))
                .map(|(&k, &v)| (k, v))
                .collect();
            assert_eq!(td.flatten(), want, "difference trial {trial}");
        }
    }

    #[test]
    fn clone_is_deep() {
        let mut t = AugTree::build(SumAug, (0..100u64).map(|i| (i, i)).collect());
        let snapshot = t.clone();
        t.insert(1000, 1);
        t.remove(&5);
        assert_eq!(snapshot.len(), 100);
        assert_eq!(snapshot.find(&5), Some(&5));
        assert_eq!(snapshot.find(&1000), None);
        snapshot.check_invariants();
    }

    #[test]
    fn disjoint_intersection_is_empty() {
        let ta = AugTree::build(NoAug, (0..100u64).map(|i| (2 * i, ())).collect());
        let tb = AugTree::build(NoAug, (0..100u64).map(|i| (2 * i + 1, ())).collect());
        let ti = ta.intersect_with(tb, &|_, _| ());
        assert!(ti.is_empty());
    }

    #[test]
    fn multi_insert_and_delete() {
        let mut t = AugTree::build(SumAug, (0..1000u64).map(|i| (i, 1u64)).collect());
        t.multi_insert((1000..2000u64).map(|i| (i, 2u64)).collect());
        assert_eq!(t.len(), 2000);
        assert_eq!(t.aug(), 1000 + 2000);
        t.check_invariants();
        t.multi_delete((0..2000u64).step_by(2).collect());
        assert_eq!(t.len(), 1000);
        t.check_invariants();
        assert_eq!(t.find(&0), None);
        assert_eq!(t.find(&1), Some(&1));
    }

    #[test]
    fn multi_find() {
        let t = AugTree::build(NoAug, (0..100u64).map(|i| (i * 3, i)).collect());
        let found = t.multi_find(vec![0, 1, 3, 9, 300, 297]);
        assert_eq!(found, vec![(0, 0), (3, 1), (9, 3), (297, 99)]);
    }

    #[test]
    fn prev_next() {
        let t = AugTree::build(NoAug, vec![(10u64, 0u64), (20, 1), (30, 2)]);
        assert_eq!(t.prev(&25).map(|(k, _)| *k), Some(20));
        assert_eq!(t.prev(&20).map(|(k, _)| *k), Some(20));
        assert_eq!(t.prev(&5), None);
        assert_eq!(t.next(&25).map(|(k, _)| *k), Some(30));
        assert_eq!(t.next(&31), None);
    }

    #[test]
    fn split_at() {
        let t = AugTree::build(SumAug, (0..100u64).map(|i| (i, i)).collect());
        let (l, found, r) = t.split_at(&50);
        assert_eq!(found, Some(50));
        assert_eq!(l.len(), 50);
        assert_eq!(r.len(), 49);
        l.check_invariants();
        r.check_invariants();
        assert_eq!(l.aug(), (0..50).sum::<u64>());
        assert_eq!(r.aug(), (51..100).sum::<u64>());
    }

    #[test]
    fn range_entries() {
        let t = AugTree::build(NoAug, (0..50u64).map(|i| (i, i * i)).collect());
        let got = t.range_entries(&10, &14);
        let want: Vec<(u64, u64)> = (10..=14).map(|i| (i, i * i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_tree_ops() {
        let t: AugTree<u64, u64, SumAug> = AugTree::new(SumAug);
        assert!(t.is_empty());
        assert_eq!(t.aug(), 0);
        assert_eq!(t.find(&1), None);
        assert_eq!(t.first(), None);
        assert_eq!(t.flatten(), vec![]);
        assert_eq!(t.aug_range(&0, &100), 0);
    }
}
