//! Parallel Nested BSTs (Appendix A): a two-level multimap where each
//! key of the *primary* tree owns a *secondary* tree of values.
//!
//! This is the paper's literal multimap structure ("All elements with
//! the same key will be organized as another BST ... associating with
//! the corresponding key in the outer tree"), with the primary tree
//! augmented by the total pair count. [`crate::Multimap`] is the flat
//! pair-keyed alternative used in the hot paths; this nested form is
//! kept as the faithful Appendix-A reference and is cross-checked
//! against the flat one in tests.

use crate::augment::{Augment, NoAug};
use crate::tree::AugTree;
use rayon::prelude::*;
use std::marker::PhantomData;

/// Secondary (inner) tree: an ordered set of values.
pub type Inner<V> = AugTree<V, (), NoAug>;

/// Primary-tree augmentation: total number of stored pairs.
pub struct CountAug<V>(PhantomData<V>);

impl<V> Clone for CountAug<V> {
    fn clone(&self) -> Self {
        CountAug(PhantomData)
    }
}

impl<V> Default for CountAug<V> {
    fn default() -> Self {
        CountAug(PhantomData)
    }
}

impl<K, V> Augment<K, Inner<V>> for CountAug<V>
where
    V: Ord + Clone + Send + Sync,
{
    type A = usize;
    fn identity(&self) -> usize {
        0
    }
    fn base(&self, _: &K, inner: &Inner<V>) -> usize {
        inner.len()
    }
    fn combine(&self, a: &usize, b: &usize) -> usize {
        a + b
    }
}

/// The nested multimap `K → BST(V)`.
pub struct NestedMultimap<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Ord + Clone + Send + Sync,
{
    primary: AugTree<K, Inner<V>, CountAug<V>>,
}

impl<K, V> Default for NestedMultimap<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Ord + Clone + Send + Sync,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> NestedMultimap<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Ord + Clone + Send + Sync,
{
    /// An empty nested multimap.
    pub fn new() -> Self {
        Self {
            primary: AugTree::new(CountAug::default()),
        }
    }

    /// Build from pairs: group by key, build each secondary tree, then
    /// build the primary from the sorted groups — the Appendix A
    /// construction (`O(n log n)` work, polylog span).
    pub fn build(mut pairs: Vec<(K, V)>) -> Self {
        pp_parlay::par_sort(&mut pairs);
        pairs.dedup();
        // Group boundaries.
        let n = pairs.len();
        let heads: Vec<usize> = (0..n)
            .filter(|&i| i == 0 || pairs[i].0 != pairs[i - 1].0)
            .collect();
        let groups: Vec<(K, Inner<V>)> = heads
            .par_iter()
            .enumerate()
            .map(|(gi, &lo)| {
                let hi = heads.get(gi + 1).copied().unwrap_or(n);
                let key = pairs[lo].0.clone();
                let inner = Inner::from_sorted(
                    NoAug,
                    pairs[lo..hi].iter().map(|(_, v)| (v.clone(), ())).collect(),
                );
                (key, inner)
            })
            .collect();
        Self {
            primary: AugTree::from_sorted(CountAug::default(), groups),
        }
    }

    /// Total number of stored pairs (the primary augmented value).
    pub fn len(&self) -> usize {
        self.primary.aug()
    }

    /// True iff no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.primary.len()
    }

    /// Insert one pair. `O(log n)`.
    pub fn insert(&mut self, key: K, val: V) {
        let mut inner = self
            .primary
            .remove(&key)
            .unwrap_or_else(|| Inner::new(NoAug));
        inner.insert(val, ());
        self.primary.insert(key, inner);
    }

    /// All values under `key`, in order.
    pub fn find_all(&self, key: &K) -> Vec<V> {
        self.primary
            .find(key)
            .map(|inner| inner.flatten().into_iter().map(|(v, ())| v).collect())
            .unwrap_or_default()
    }

    /// Values under every key in `keys`, concatenated (Theorem 2.2:
    /// `O((m + s) log n)` work for `m` keys returning `s` values).
    pub fn multi_find(&self, keys: &[K]) -> Vec<V> {
        let per_key: Vec<Vec<V>> = keys.par_iter().map(|k| self.find_all(k)).collect();
        per_key.into_iter().flatten().collect()
    }

    /// Batch insert: build a nested map of the batch, then union the
    /// primaries, merging colliding keys' secondary trees with a tree
    /// union.
    pub fn multi_insert(&mut self, pairs: Vec<(K, V)>) {
        let batch = Self::build(pairs);
        let me = std::mem::take(self);
        self.primary = me
            .primary
            .union_with(batch.primary, &|a, b| a.clone().union(b.clone()));
    }

    /// Remove a key and all its values; returns how many were removed.
    pub fn remove_key(&mut self, key: &K) -> usize {
        self.primary.remove(key).map_or(0, |inner| inner.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multimap::Multimap;
    use pp_parlay::rng::Rng;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn behaves_like_model() {
        let mut r = Rng::new(1);
        let mut nested: NestedMultimap<u64, u32> = NestedMultimap::new();
        let mut model: BTreeMap<u64, BTreeSet<u32>> = BTreeMap::new();
        for _ in 0..1500 {
            let k = r.range(40);
            let v = r.range(100) as u32;
            match r.range(4) {
                0..=1 => {
                    nested.insert(k, v);
                    model.entry(k).or_default().insert(v);
                }
                2 => {
                    let want: Vec<u32> = model
                        .get(&k)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    assert_eq!(nested.find_all(&k), want);
                }
                _ => {
                    let removed = nested.remove_key(&k);
                    let want = model.remove(&k).map_or(0, |s| s.len());
                    assert_eq!(removed, want);
                }
            }
            let total: usize = model.values().map(|s| s.len()).sum();
            assert_eq!(nested.len(), total);
        }
    }

    #[test]
    fn build_and_multi_find_match_flat_multimap() {
        let mut r = Rng::new(2);
        let pairs: Vec<(u64, u32)> = (0..3000)
            .map(|_| (r.range(50), r.range(500) as u32))
            .collect();
        let nested = NestedMultimap::build(pairs.clone());
        let flat = Multimap::build(pairs);
        assert_eq!(nested.len(), flat.len());
        let keys: Vec<u64> = (0..50).collect();
        assert_eq!(nested.multi_find(&keys), flat.multi_find(&keys));
    }

    #[test]
    fn multi_insert_merges_inner_trees() {
        let mut m: NestedMultimap<u32, u32> =
            NestedMultimap::build((0..100).map(|i| (i % 5, i)).collect());
        assert_eq!(m.num_keys(), 5);
        assert_eq!(m.len(), 100);
        m.multi_insert((0..50).map(|i| (i % 10, 1000 + i)).collect());
        assert_eq!(m.num_keys(), 10);
        assert_eq!(m.len(), 150);
        // Key 3 holds its original 20 values plus 5 new ones.
        assert_eq!(m.find_all(&3).len(), 25);
        // Key 7 exists only in the batch.
        assert_eq!(m.find_all(&7).len(), 5);
    }

    #[test]
    fn empty_cases() {
        let m: NestedMultimap<u32, u32> = NestedMultimap::new();
        assert!(m.is_empty());
        assert!(m.find_all(&3).is_empty());
        let m: NestedMultimap<u32, u32> = NestedMultimap::build(vec![]);
        assert_eq!(m.num_keys(), 0);
    }
}
