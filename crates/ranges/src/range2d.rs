//! The augmented 2D range tree of the parallel LIS algorithm (Algorithm 3).
//!
//! Points live at coordinates `(x, y)` where `x` is the object's index in
//! the input (exactly `0..n`, one point per index) and `y` is its *y-slot*:
//! the object's rank in value order (a permutation of `0..n`, computed by
//! the caller so that ties are broken the way the problem requires).
//!
//! Every point is either **unfinished** (its DP value is still `+∞` in the
//! paper's terms) or **finished** with a concrete DP value. The tree
//! answers, for a *prefix rectangle* `[0, qx) × [0, qy)`:
//!
//! * the number of unfinished points (`n∞` in Algorithm 3),
//! * the maximum DP value among finished points (`dp*`),
//! * a **pivot** among the unfinished points (`x*`): either uniformly at
//!   random (the analyzed strategy, Lemma 5.5) or the right-most
//!   unfinished point (the practical heuristic of §6.4),
//!
//! and supports parallel batch *finish* updates. Queries are
//! `O(log^2 n)`; a batch of `m` finishes costs `O(m log^2 n)` work and
//! `O(log^2 n)` span — the bounds used in the proof of Theorem 5.6.
//!
//! # Layout
//!
//! A static outer tree over `x`-ranges (recursive array layout, like
//! [`crate::segtree`]); each internal node stores the y-slots of its
//! points in sorted order plus an inner segment tree of `Aug`
//! aggregates over them (a merge-sort tree). Outer recursion stops at
//! buckets of [`LEAF_SIZE`] points, which are answered by scanning —
//! the "nested arrays for locality" engineering noted in §6.4.

use pp_parlay::merge::par_merge_by;
use pp_parlay::rng::Rng;
use rayon::prelude::*;

/// Bucket size at which the outer recursion stops.
pub const LEAF_SIZE: usize = 64;

/// Sentinel for "no unfinished point".
const NONE_X: u32 = u32::MAX;

// The pivot-strategy enum lives with the rest of the unified solver
// vocabulary in the framework crate; re-exported here because the range
// trees consume it.
pub use phase_parallel::PivotMode;

/// Aggregate over a set of points: unfinished count, max finished DP
/// value, and max index among unfinished points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Aug {
    /// Number of unfinished points.
    cnt: u32,
    /// Maximum DP value among finished points (0 if none; DP values
    /// stored here are offset by +1 so "no finished point" and
    /// "finished with dp 0" stay distinguishable).
    dp1: u32,
    /// Maximum x among unfinished points (`NONE_X` if `cnt == 0`).
    maxx: u32,
}

impl Aug {
    const IDENTITY: Aug = Aug {
        cnt: 0,
        dp1: 0,
        maxx: NONE_X,
    };

    #[inline]
    fn combine(a: Aug, b: Aug) -> Aug {
        Aug {
            cnt: a.cnt + b.cnt,
            dp1: a.dp1.max(b.dp1),
            maxx: if a.cnt == 0 {
                b.maxx
            } else if b.cnt == 0 {
                a.maxx
            } else {
                a.maxx.max(b.maxx)
            },
        }
    }

    #[inline]
    fn unfinished(x: u32) -> Aug {
        Aug {
            cnt: 1,
            dp1: 0,
            maxx: x,
        }
    }

    #[inline]
    fn finished(dp: u32) -> Aug {
        Aug {
            cnt: 0,
            dp1: dp + 1,
            maxx: NONE_X,
        }
    }
}

/// Result of a prefix-rectangle query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixInfo {
    /// Number of unfinished points in the rectangle.
    pub unfinished: u32,
    /// Maximum DP value among finished points, if any point is finished.
    pub max_dp: Option<u32>,
    /// Largest index among unfinished points, if any.
    pub maxx_unfinished: Option<u32>,
}

struct Node {
    /// x-range `[lo, hi)` of points under this node.
    lo: u32,
    hi: u32,
    /// Size of the left subtree in nodes (0 for leaf buckets); the left
    /// child is at `self + 1`, the right at `self + 1 + lsize`.
    lsize: u32,
    /// Internal: y-slots of points in `[lo, hi)`, ascending.
    ys: Vec<u32>,
    /// Internal: inner segment tree (recursive layout, `2m - 1` slots)
    /// of aggregates over `ys`. Empty for leaf buckets.
    seg: Vec<Aug>,
}

impl Node {
    #[inline]
    fn is_leaf(&self) -> bool {
        self.lsize == 0
    }
}

/// The augmented 2D range tree. See the module docs.
pub struct RangeTree2d {
    n: usize,
    mode: PivotMode,
    nodes: Vec<Node>,
    /// Point state, indexed by x.
    finished: Vec<bool>,
    dp: Vec<u32>,
    /// y-slot of each x.
    y_of_x: Vec<u32>,
    /// x of each y-slot (inverse permutation).
    x_of_y: Vec<u32>,
}

impl RangeTree2d {
    /// Build a tree over `n = ys.len()` points, point `x` at y-slot
    /// `ys[x]`. `ys` must be a permutation of `0..n`. All points start
    /// unfinished. `O(n log n)` work, `O(log^2 n)` span.
    pub fn new(ys: &[u32], mode: PivotMode) -> Self {
        let n = ys.len();
        let mut x_of_y = vec![NONE_X; n];
        for (x, &y) in ys.iter().enumerate() {
            assert!((y as usize) < n, "y-slot {y} out of range");
            assert_eq!(x_of_y[y as usize], NONE_X, "duplicate y-slot {y}");
            x_of_y[y as usize] = x as u32;
        }
        let mut nodes = Vec::new();
        if n > 0 {
            let (built, _pairs) = build(0, n as u32, ys);
            nodes = built;
        }
        Self {
            n,
            mode,
            nodes,
            finished: vec![false; n],
            dp: vec![0; n],
            y_of_x: ys.to_vec(),
            x_of_y,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The pivot-selection mode this tree was built with.
    pub fn mode(&self) -> PivotMode {
        self.mode
    }

    /// Whether point `x` is finished.
    pub fn is_finished(&self, x: u32) -> bool {
        self.finished[x as usize]
    }

    /// DP value of a finished point `x`.
    pub fn dp_of(&self, x: u32) -> u32 {
        debug_assert!(self.finished[x as usize]);
        self.dp[x as usize]
    }

    /// Total number of unfinished points.
    pub fn unfinished_total(&self) -> usize {
        if self.n == 0 {
            0
        } else if self.nodes[0].is_leaf() {
            self.finished.iter().filter(|&&f| !f).count()
        } else {
            self.nodes[0].seg[0].cnt as usize
        }
    }

    /// Aggregate information over the prefix rectangle
    /// `[0, qx) × [0, qy)`. `O(log^2 n)`.
    pub fn query_prefix(&self, qx: u32, qy: u32) -> PrefixInfo {
        let mut acc = Aug::IDENTITY;
        if self.n > 0 && qx > 0 && qy > 0 {
            self.query_rec(0, qx, qy, &mut acc);
        }
        PrefixInfo {
            unfinished: acc.cnt,
            max_dp: if acc.dp1 > 0 { Some(acc.dp1 - 1) } else { None },
            maxx_unfinished: if acc.cnt > 0 { Some(acc.maxx) } else { None },
        }
    }

    /// Pick a pivot among the unfinished points in `[0, qx) × [0, qy)`,
    /// according to the tree's [`PivotMode`]. Returns `None` if the
    /// rectangle has no unfinished point. `O(log^2 n)`.
    pub fn select_pivot(&self, qx: u32, qy: u32, rng: &mut Rng) -> Option<u32> {
        if self.n == 0 || qx == 0 || qy == 0 {
            return None;
        }
        match self.mode {
            PivotMode::RightMost => self.query_prefix(qx, qy).maxx_unfinished,
            PivotMode::Random => {
                // Decompose the rectangle into pieces, then draw a point
                // weighted by each piece's unfinished count.
                let mut pieces: Vec<Piece> = Vec::with_capacity(32);
                self.decompose(0, qx, qy, &mut pieces);
                let total: u64 = pieces.iter().map(|p| p.cnt as u64).sum();
                if total == 0 {
                    return None;
                }
                let mut t = rng.range(total);
                for p in &pieces {
                    if t < p.cnt as u64 {
                        return Some(match p.kind {
                            PieceKind::LeafPoint(x) => x,
                            PieceKind::SegPrefix { node, k } => {
                                self.select_in_seg(node as usize, k, t as u32)
                            }
                        });
                    }
                    t -= p.cnt as u64;
                }
                unreachable!("weighted draw out of range")
            }
        }
    }

    /// Mark a batch of points finished with their DP values. Points must
    /// be distinct and currently unfinished. `O(m log^2 n)` work,
    /// `O(log^2 n)` span.
    pub fn finish_batch(&mut self, items: &[(u32, u32)]) {
        if items.is_empty() {
            return;
        }
        let mut batch: Vec<(u32, u32)> = items.to_vec();
        batch.sort_unstable_by_key(|&(x, _)| x);
        debug_assert!(batch.windows(2).all(|w| w[0].0 < w[1].0), "duplicate x");
        // Update global point state (disjoint slots).
        for &(x, dp) in &batch {
            debug_assert!(!self.finished[x as usize], "point {x} already finished");
            self.finished[x as usize] = true;
            self.dp[x as usize] = dp;
        }
        if !self.nodes.is_empty() {
            update_rec(&mut self.nodes[..], 0, &batch, &self.y_of_x);
        }
    }

    // ---- internals ----

    fn query_rec(&self, idx: usize, qx: u32, qy: u32, acc: &mut Aug) {
        let node = &self.nodes[idx];
        if qx <= node.lo {
            return;
        }
        if node.is_leaf() {
            // Scan the bucket against the live point state.
            for x in node.lo..node.hi.min(qx) {
                if self.y_of_x[x as usize] < qy {
                    let a = if self.finished[x as usize] {
                        Aug::finished(self.dp[x as usize])
                    } else {
                        Aug::unfinished(x)
                    };
                    *acc = Aug::combine(*acc, a);
                }
            }
            return;
        }
        if qx >= node.hi {
            // Fully covered in x: aggregate the y-prefix via the inner tree.
            let k = node.ys.partition_point(|&y| y < qy);
            if k > 0 {
                let m = node.ys.len();
                let mut piece = Aug::IDENTITY;
                seg_prefix(&node.seg, 0, m, k, &mut piece);
                *acc = Aug::combine(*acc, piece);
            }
            return;
        }
        let mid = (node.lo + node.hi) / 2;
        self.query_rec(idx + 1, qx, qy, acc);
        if qx > mid {
            self.query_rec(idx + 1 + node.lsize as usize, qx, qy, acc);
        }
    }

    /// Decompose the rectangle into weighted pieces for random selection.
    fn decompose(&self, idx: usize, qx: u32, qy: u32, pieces: &mut Vec<Piece>) {
        let node = &self.nodes[idx];
        if qx <= node.lo {
            return;
        }
        if node.is_leaf() {
            for x in node.lo..node.hi.min(qx) {
                if self.y_of_x[x as usize] < qy && !self.finished[x as usize] {
                    pieces.push(Piece {
                        cnt: 1,
                        kind: PieceKind::LeafPoint(x),
                    });
                }
            }
            return;
        }
        if qx >= node.hi {
            let k = node.ys.partition_point(|&y| y < qy);
            if k > 0 {
                let mut agg = Aug::IDENTITY;
                seg_prefix(&node.seg, 0, node.ys.len(), k, &mut agg);
                if agg.cnt > 0 {
                    pieces.push(Piece {
                        cnt: agg.cnt,
                        kind: PieceKind::SegPrefix {
                            node: idx as u32,
                            k: k as u32,
                        },
                    });
                }
            }
            return;
        }
        let mid = (node.lo + node.hi) / 2;
        self.decompose(idx + 1, qx, qy, pieces);
        if qx > mid {
            self.decompose(idx + 1 + node.lsize as usize, qx, qy, pieces);
        }
    }

    /// Return the x of the `t`-th (0-based) unfinished point among the
    /// first `k` y-ordered points of internal node `idx`.
    fn select_in_seg(&self, idx: usize, k: u32, t: u32) -> u32 {
        let node = &self.nodes[idx];
        let m = node.ys.len();
        let pos = seg_select(&node.seg, 0, m, k as usize, t);
        self.x_of_y[node.ys[pos] as usize]
    }
}

struct Piece {
    cnt: u32,
    kind: PieceKind,
}

enum PieceKind {
    LeafPoint(u32),
    SegPrefix { node: u32, k: u32 },
}

/// Recursive build: returns the subtree's nodes (recursive layout) and
/// its `(y, x)` pairs sorted by y.
fn build(lo: u32, hi: u32, y_of_x: &[u32]) -> (Vec<Node>, Vec<(u32, u32)>) {
    let size = (hi - lo) as usize;
    if size <= LEAF_SIZE {
        let mut pairs: Vec<(u32, u32)> = (lo..hi).map(|x| (y_of_x[x as usize], x)).collect();
        pairs.sort_unstable();
        let node = Node {
            lo,
            hi,
            lsize: 0,
            ys: Vec::new(),
            seg: Vec::new(),
        };
        return (vec![node], pairs);
    }
    let mid = (lo + hi) / 2;
    let ((lnodes, lpairs), (rnodes, rpairs)) =
        rayon::join(|| build(lo, mid, y_of_x), || build(mid, hi, y_of_x));
    let mut pairs = vec![(0u32, 0u32); lpairs.len() + rpairs.len()];
    par_merge_by(&lpairs, &rpairs, &mut pairs, &|a, b| a.0 < b.0);
    let ys: Vec<u32> = pairs.par_iter().map(|&(y, _)| y).collect();
    let m = pairs.len();
    let mut seg = vec![Aug::IDENTITY; 2 * m - 1];
    build_seg(&mut seg, &pairs);
    let mut nodes = Vec::with_capacity(1 + lnodes.len() + rnodes.len());
    nodes.push(Node {
        lo,
        hi,
        lsize: lnodes.len() as u32,
        ys,
        seg,
    });
    nodes.extend(lnodes);
    nodes.extend(rnodes);
    (nodes, pairs)
}

/// Build the inner segment tree over y-ordered pairs (all unfinished).
fn build_seg(seg: &mut [Aug], pairs: &[(u32, u32)]) {
    let m = pairs.len();
    if m == 1 {
        seg[0] = Aug::unfinished(pairs[0].1);
        return;
    }
    let mid = m / 2;
    let lsize = 2 * mid - 1;
    let (node, rest) = seg.split_first_mut().unwrap();
    let (lseg, rseg) = rest.split_at_mut(lsize);
    let (lp, rp) = pairs.split_at(mid);
    if m > 2048 {
        rayon::join(|| build_seg(lseg, lp), || build_seg(rseg, rp));
    } else {
        build_seg(lseg, lp);
        build_seg(rseg, rp);
    }
    *node = Aug::combine(lseg[0], rseg[0]);
}

/// Aggregate the first `k` of the `[lo, hi)` leaves into `acc`.
fn seg_prefix(seg: &[Aug], lo: usize, hi: usize, k: usize, acc: &mut Aug) {
    if k <= lo {
        return;
    }
    if k >= hi {
        *acc = Aug::combine(*acc, seg[0]);
        return;
    }
    let mid = (lo + hi) / 2;
    let lsize = 2 * (mid - lo) - 1;
    seg_prefix(&seg[1..1 + lsize], lo, mid, k, acc);
    if k > mid {
        seg_prefix(&seg[1 + lsize..], mid, hi, k, acc);
    }
}

/// Position (in `[lo, hi)`) of the `t`-th unfinished leaf among the first
/// `k` leaves. Caller guarantees `t < cnt(prefix k)`.
fn seg_select(seg: &[Aug], lo: usize, hi: usize, k: usize, t: u32) -> usize {
    if hi - lo == 1 {
        debug_assert!(t == 0 && seg[0].cnt == 1);
        return lo;
    }
    let mid = (lo + hi) / 2;
    let lsize = 2 * (mid - lo) - 1;
    let lseg = &seg[1..1 + lsize];
    let rseg = &seg[1 + lsize..];
    let lcnt = if k >= mid {
        lseg[0].cnt
    } else {
        let mut a = Aug::IDENTITY;
        seg_prefix(lseg, lo, mid, k, &mut a);
        a.cnt
    };
    if t < lcnt {
        seg_select(lseg, lo, mid, k, t)
    } else {
        seg_select(rseg, mid, hi, k, t - lcnt)
    }
}

/// Batch update of the outer tree: mark `batch` (sorted by x) finished.
fn update_rec(nodes: &mut [Node], idx: usize, batch: &[(u32, u32)], y_of_x: &[u32]) {
    if batch.is_empty() {
        return;
    }
    // Split borrow: the node being updated vs its subtrees.
    let (node, rest) = {
        let (head, tail) = nodes[idx..].split_first_mut().unwrap();
        (head, tail)
    };
    if node.is_leaf() {
        return; // Leaf buckets read live state; nothing cached here.
    }
    // Inner update: positions of the batch points in this node's y-order.
    let mut inner: Vec<(usize, Aug)> = batch
        .iter()
        .map(|&(x, dp)| {
            let y = y_of_x[x as usize];
            let pos = node.ys.partition_point(|&v| v < y);
            debug_assert!(node.ys[pos] == y);
            (pos, Aug::finished(dp))
        })
        .collect();
    inner.sort_unstable_by_key(|&(p, _)| p);
    let m = node.ys.len();
    seg_batch(&mut node.seg, 0, m, &inner);
    // Recurse into children with the batch split at mid.
    let mid = (node.lo + node.hi) / 2;
    let split = batch.partition_point(|&(x, _)| x < mid);
    let (lb, rb) = batch.split_at(split);
    let lsize = node.lsize as usize;
    let (lhalf, rhalf) = rest.split_at_mut(lsize);
    if batch.len() > 256 {
        rayon::join(
            || update_rec(lhalf, 0, lb, y_of_x),
            || update_rec(rhalf, 0, rb, y_of_x),
        );
    } else {
        update_rec(lhalf, 0, lb, y_of_x);
        update_rec(rhalf, 0, rb, y_of_x);
    }
}

/// Batch point update on an inner segment tree (positions sorted).
fn seg_batch(seg: &mut [Aug], lo: usize, hi: usize, ups: &[(usize, Aug)]) {
    if ups.is_empty() {
        return;
    }
    if hi - lo == 1 {
        debug_assert_eq!(ups.len(), 1);
        seg[0] = ups[0].1;
        return;
    }
    let mid = (lo + hi) / 2;
    let lsize = 2 * (mid - lo) - 1;
    let (node, rest) = seg.split_first_mut().unwrap();
    let (lseg, rseg) = rest.split_at_mut(lsize);
    let split = ups.partition_point(|&(p, _)| p < mid);
    let (lu, ru) = ups.split_at(split);
    if ups.len() > 512 {
        rayon::join(
            || seg_batch(lseg, lo, mid, lu),
            || seg_batch(rseg, mid, hi, ru),
        );
    } else {
        seg_batch(lseg, lo, mid, lu);
        seg_batch(rseg, mid, hi, ru);
    }
    *node = Aug::combine(lseg[0], rseg[0]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::shuffle::random_permutation;

    /// Brute-force oracle mirroring the tree's semantics.
    struct Oracle {
        ys: Vec<u32>,
        finished: Vec<bool>,
        dp: Vec<u32>,
    }

    impl Oracle {
        fn new(ys: &[u32]) -> Self {
            Self {
                ys: ys.to_vec(),
                finished: vec![false; ys.len()],
                dp: vec![0; ys.len()],
            }
        }
        fn query(&self, qx: u32, qy: u32) -> PrefixInfo {
            let mut unfinished = 0u32;
            let mut max_dp = None;
            let mut maxx = None;
            for x in 0..(qx as usize).min(self.ys.len()) {
                if self.ys[x] < qy {
                    if self.finished[x] {
                        max_dp = Some(max_dp.map_or(self.dp[x], |m: u32| m.max(self.dp[x])));
                    } else {
                        unfinished += 1;
                        maxx = Some(maxx.map_or(x as u32, |m: u32| m.max(x as u32)));
                    }
                }
            }
            PrefixInfo {
                unfinished,
                max_dp,
                maxx_unfinished: maxx,
            }
        }
        fn unfinished_in(&self, qx: u32, qy: u32) -> Vec<u32> {
            (0..(qx as usize).min(self.ys.len()))
                .filter(|&x| self.ys[x] < qy && !self.finished[x])
                .map(|x| x as u32)
                .collect()
        }
    }

    fn check_against_oracle(n: usize, seed: u64, mode: PivotMode) {
        let ys_perm = random_permutation(n, seed);
        let mut tree = RangeTree2d::new(&ys_perm, mode);
        let mut oracle = Oracle::new(&ys_perm);
        let mut rng = Rng::new(seed ^ 0xABCD);
        let mut unfinished: Vec<u32> = (0..n as u32).collect();
        let mut round = 0u32;
        while !unfinished.is_empty() {
            // Random queries against the oracle.
            for _ in 0..20 {
                let qx = rng.range(n as u64 + 1) as u32;
                let qy = rng.range(n as u64 + 1) as u32;
                assert_eq!(tree.query_prefix(qx, qy), oracle.query(qx, qy));
                let pivot = tree.select_pivot(qx, qy, &mut rng);
                let candidates = oracle.unfinished_in(qx, qy);
                match pivot {
                    None => assert!(candidates.is_empty()),
                    Some(p) => {
                        assert!(candidates.contains(&p), "pivot {p} not a candidate");
                        if mode == PivotMode::RightMost {
                            assert_eq!(p, *candidates.iter().max().unwrap());
                        }
                    }
                }
            }
            // Finish a random batch.
            let take = (rng.range(unfinished.len() as u64) + 1) as usize;
            let batch: Vec<(u32, u32)> = unfinished
                .drain(..take.min(unfinished.len()))
                .map(|x| (x, round * 10 + x % 7))
                .collect();
            for &(x, d) in &batch {
                oracle.finished[x as usize] = true;
                oracle.dp[x as usize] = d;
            }
            tree.finish_batch(&batch);
            round += 1;
        }
        assert_eq!(tree.unfinished_total(), 0);
    }

    #[test]
    fn matches_oracle_small() {
        check_against_oracle(10, 1, PivotMode::RightMost);
        check_against_oracle(10, 2, PivotMode::Random);
    }

    #[test]
    fn matches_oracle_medium() {
        check_against_oracle(300, 3, PivotMode::RightMost);
        check_against_oracle(300, 4, PivotMode::Random);
    }

    #[test]
    fn matches_oracle_spanning_leaves() {
        // Sizes around the LEAF_SIZE boundary and above.
        check_against_oracle(LEAF_SIZE, 5, PivotMode::RightMost);
        check_against_oracle(LEAF_SIZE + 1, 6, PivotMode::Random);
        check_against_oracle(4 * LEAF_SIZE + 3, 7, PivotMode::RightMost);
        check_against_oracle(1000, 8, PivotMode::Random);
    }

    #[test]
    fn empty_tree() {
        let tree = RangeTree2d::new(&[], PivotMode::Random);
        assert!(tree.is_empty());
        assert_eq!(tree.unfinished_total(), 0);
        let info = tree.query_prefix(0, 0);
        assert_eq!(info.unfinished, 0);
        assert_eq!(info.max_dp, None);
    }

    #[test]
    fn random_pivot_is_roughly_uniform() {
        // All n points unfinished; pivot over the full rectangle should be
        // close to uniform.
        let n = 64usize;
        let ys = random_permutation(n, 9);
        let tree = RangeTree2d::new(&ys, PivotMode::Random);
        let mut rng = Rng::new(10);
        let trials = 64_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            let p = tree
                .select_pivot(n as u32, n as u32, &mut rng)
                .expect("some pivot");
            counts[p as usize] += 1;
        }
        let expected = trials / n;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "point {i}: count {c}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn finish_updates_visible() {
        let n = 200usize;
        let ys: Vec<u32> = (0..n as u32).collect(); // identity: y == x
        let mut tree = RangeTree2d::new(&ys, PivotMode::RightMost);
        // Finish evens with dp = x.
        let batch: Vec<(u32, u32)> = (0..n as u32).step_by(2).map(|x| (x, x)).collect();
        tree.finish_batch(&batch);
        let info = tree.query_prefix(n as u32, n as u32);
        assert_eq!(info.unfinished as usize, n / 2);
        assert_eq!(info.max_dp, Some(n as u32 - 2));
        assert_eq!(info.maxx_unfinished, Some(n as u32 - 1));
        // Rectangle excluding the top half by y.
        let info = tree.query_prefix(n as u32, (n / 2) as u32);
        assert_eq!(info.unfinished as usize, n / 4);
        assert_eq!(info.max_dp, Some((n / 2) as u32 - 2));
    }

    #[test]
    fn dp_zero_distinguished_from_no_points() {
        let ys = vec![0u32, 1];
        let mut tree = RangeTree2d::new(&ys, PivotMode::Random);
        tree.finish_batch(&[(0, 0)]);
        let info = tree.query_prefix(1, 1);
        assert_eq!(info.max_dp, Some(0), "finished with dp 0 must be visible");
        let info = tree.query_prefix(2, 2);
        assert_eq!(info.unfinished, 1);
    }
}
