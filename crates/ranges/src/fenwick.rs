//! Fenwick (binary indexed) trees: prefix sum, prefix max, and an atomic
//! prefix-max variant for concurrent frontier updates.
//!
//! The prefix-max Fenwick tree is the classic `O(log n)` structure behind
//! the sequential DP baselines (activity selection Eq. (1), LIS Eq. (3)):
//! values only ever *increase* (DP values are written once), which is
//! exactly the regime where a max-Fenwick is sound.
//!
//! [`AtomicFenwickMax`] extends this to parallel rounds: a whole frontier
//! can publish DP values concurrently with `fetch_max`, because max is
//! commutative and idempotent, so any interleaving of the `O(log n)`
//! per-update chains converges to the same state. Phases are separated by
//! fork-join barriers (rayon `join`), which provide the happens-before
//! edges that make subsequent relaxed reads well-defined.

use std::sync::atomic::{AtomicU64, Ordering};

/// Prefix-sum Fenwick tree over `u64`.
pub struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    /// A tree over `n` zero elements.
    pub fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// True iff the tree is over zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add `delta` to element `i`.
    pub fn add(&mut self, i: usize, delta: u64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of elements `[0, r)`.
    pub fn prefix_sum(&self, r: usize) -> u64 {
        let mut i = r.min(self.len());
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Prefix-max Fenwick tree. Sound only for monotone (non-decreasing)
/// point updates, which is how DP tables are written.
pub struct FenwickMax {
    tree: Vec<u64>,
}

impl FenwickMax {
    /// A tree over `n` elements, all implicitly `0`.
    pub fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// True iff the tree is over zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raise element `i` to at least `v`.
    pub fn update(&mut self, i: usize, v: u64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            if self.tree[i] >= v {
                // Ancestor chains are monotone; the remainder already covers v.
                // (Still must continue: different chain nodes cover different
                // ranges — only skip the write, not the walk.)
            } else {
                self.tree[i] = v;
            }
            i += i & i.wrapping_neg();
        }
    }

    /// Max over elements `[0, r)` (0 if the range is empty).
    pub fn prefix_max(&self, r: usize) -> u64 {
        let mut i = r.min(self.len());
        let mut m = 0;
        while i > 0 {
            m = m.max(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        m
    }
}

/// Concurrent prefix-max Fenwick tree via `AtomicU64::fetch_max`.
///
/// Updates may run concurrently with each other (e.g. a parallel frontier
/// publishing DP values). Queries concurrent with updates return a value
/// bounded by some linearization, which phase-structured algorithms never
/// rely on — they query and update in separate fork-join phases.
pub struct AtomicFenwickMax {
    tree: Vec<AtomicU64>,
}

impl AtomicFenwickMax {
    /// A tree over `n` elements, all implicitly `0`.
    pub fn new(n: usize) -> Self {
        Self {
            tree: (0..=n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// True iff the tree is over zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raise element `i` to at least `v` (callable concurrently).
    pub fn update(&self, i: usize, v: u64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            // Early exit: if this chain node already dominates v, every
            // further node on the chain covers a superset range and was
            // raised by whoever raised this one... NOT true for Fenwick
            // chains (ranges are not nested), so we must walk the full
            // chain; fetch_max keeps it correct either way.
            self.tree[i].fetch_max(v, Ordering::Relaxed);
            i += i & i.wrapping_neg();
        }
    }

    /// Max over elements `[0, r)` (0 if the range is empty).
    pub fn prefix_max(&self, r: usize) -> u64 {
        let mut i = r.min(self.len());
        let mut m = 0;
        while i > 0 {
            m = m.max(self.tree[i].load(Ordering::Relaxed));
            i -= i & i.wrapping_neg();
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::rng::Rng;
    use rayon::prelude::*;

    #[test]
    fn fenwick_sum_matches_naive() {
        let mut r = Rng::new(1);
        let n = 500;
        let mut naive = vec![0u64; n];
        let mut f = Fenwick::new(n);
        for _ in 0..2000 {
            let i = r.range(n as u64) as usize;
            let d = r.range(100);
            naive[i] += d;
            f.add(i, d);
            let q = r.range(n as u64 + 1) as usize;
            assert_eq!(f.prefix_sum(q), naive[..q].iter().sum::<u64>());
        }
    }

    #[test]
    fn fenwick_max_matches_naive() {
        let mut r = Rng::new(2);
        let n = 300;
        let mut naive = vec![0u64; n];
        let mut f = FenwickMax::new(n);
        for _ in 0..2000 {
            let i = r.range(n as u64) as usize;
            let v = r.range(10_000);
            naive[i] = naive[i].max(v);
            f.update(i, v);
            let q = r.range(n as u64 + 1) as usize;
            assert_eq!(
                f.prefix_max(q),
                naive[..q].iter().copied().max().unwrap_or(0)
            );
        }
    }

    #[test]
    fn atomic_fenwick_concurrent_updates() {
        let n = 10_000usize;
        let f = AtomicFenwickMax::new(n);
        // Each index i gets value i+1, published concurrently.
        (0..n).into_par_iter().for_each(|i| {
            f.update(i, (i + 1) as u64);
        });
        for q in [0usize, 1, 17, 5000, n] {
            assert_eq!(f.prefix_max(q), q as u64);
        }
    }

    #[test]
    fn atomic_matches_plain_under_same_updates() {
        let mut r = Rng::new(3);
        let n = 400;
        let mut plain = FenwickMax::new(n);
        let atomic = AtomicFenwickMax::new(n);
        let updates: Vec<(usize, u64)> = (0..3000)
            .map(|_| (r.range(n as u64) as usize, r.range(1_000_000)))
            .collect();
        for &(i, v) in &updates {
            plain.update(i, v);
        }
        updates.par_iter().for_each(|&(i, v)| atomic.update(i, v));
        for q in 0..=n {
            assert_eq!(plain.prefix_max(q), atomic.prefix_max(q));
        }
    }

    #[test]
    fn empty_trees() {
        let f = Fenwick::new(0);
        assert_eq!(f.prefix_sum(0), 0);
        let f = FenwickMax::new(0);
        assert_eq!(f.prefix_max(0), 0);
        let f = AtomicFenwickMax::new(0);
        assert_eq!(f.prefix_max(0), 0);
    }
}
