//! A 4D dominance range tree: the exact structure for the 2D-grid
//! Whac-A-Mole extension.
//!
//! Appendix B's closing remark moves the moles onto a 2D grid; the
//! hammer's L1 reachability cone `|dx| + |dy| ≤ dt` decomposes into
//! **four** rotated halfspace constraints `t±(x+y)` / `t±(x−y)` (whose
//! coordinates satisfy one linear dependency, so the points have three
//! degrees of freedom but still four dominance constraints — one more
//! tree level than pure 3D dominance, which is the "extra `O(log n)`
//! factor in work and span" the appendix states).
//!
//! Points carry four coordinates, each pre-compressed by the caller to a
//! distinct slot in `0..n`. The tree answers prefix-box queries
//! `[0, qa) × [0, qb) × [0, qc) × [0, qd)` with the same aggregate as
//! [`crate::range2d`] / [`crate::range3d`] — (#unfinished, max finished
//! DP, pivot among unfinished) — and supports batch finishes.
//!
//! Layout: a static outer tree over the `a`-coordinate; every internal
//! node owns a full [`RangeTree3d`] over its points keyed by their local
//! `(b, c, d)` ranks. Queries decompose the `a`-prefix into `O(log n)`
//! nodes and run a 3D query in each — `O(log^4 n)` per operation,
//! `O(n log^3 n)` space. Small outer leaves are answered by scanning.

use crate::range2d::{PivotMode, PrefixInfo};
use crate::range3d::RangeTree3d;
use pp_parlay::rng::Rng;

/// Outer bucket size; leaves are scanned directly.
const LEAF_SIZE: usize = 64;

struct Node {
    /// a-slot range `[lo, hi)` of points under this node.
    lo: u32,
    hi: u32,
    /// Left subtree node count (0 = leaf bucket).
    lsize: u32,
    /// Internal: point ids in local b order (the inner tree's id space).
    ids_by_b: Vec<u32>,
    /// Internal: sorted global b-slots (parallel to `ids_by_b`).
    bs: Vec<u32>,
    /// Internal: sorted global c-slots of the node's points.
    cs: Vec<u32>,
    /// Internal: sorted global d-slots of the node's points.
    ds: Vec<u32>,
    /// Internal: 3D tree over (local b position, local c rank, local d
    /// rank).
    tree: Option<RangeTree3d>,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.lsize == 0
    }
}

/// The 4D dominance range tree. Coordinates per point id:
/// `(a[i], b[i], c[i], d[i])`, each a permutation of `0..n`.
pub struct RangeTree4d {
    n: usize,
    nodes: Vec<Node>,
    /// Point id at each a-slot (inverse of `a`).
    id_of_a: Vec<u32>,
    a_of_id: Vec<u32>,
    b_of_id: Vec<u32>,
    c_of_id: Vec<u32>,
    d_of_id: Vec<u32>,
    finished: Vec<bool>,
    dp: Vec<u32>,
    mode: PivotMode,
}

impl RangeTree4d {
    /// Build over `n` points with slot coordinates
    /// `(a[i], b[i], c[i], d[i])`. Each array must be a permutation of
    /// `0..n`.
    pub fn new(a: &[u32], b: &[u32], c: &[u32], d: &[u32], mode: PivotMode) -> Self {
        let n = a.len();
        assert_eq!(b.len(), n);
        assert_eq!(c.len(), n);
        assert_eq!(d.len(), n);
        let mut id_of_a = vec![u32::MAX; n];
        for (i, &s) in a.iter().enumerate() {
            assert!((s as usize) < n && id_of_a[s as usize] == u32::MAX);
            id_of_a[s as usize] = i as u32;
        }
        let mut nodes = Vec::new();
        if n > 0 {
            build(0, n as u32, &id_of_a, b, c, d, mode, &mut nodes);
        }
        Self {
            n,
            nodes,
            id_of_a,
            a_of_id: a.to_vec(),
            b_of_id: b.to_vec(),
            c_of_id: c.to_vec(),
            d_of_id: d.to_vec(),
            finished: vec![false; n],
            dp: vec![0; n],
            mode,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Aggregate over the prefix box `[0, qa) × [0, qb) × [0, qc) × [0, qd)`.
    pub fn query_prefix(&self, qa: u32, qb: u32, qc: u32, qd: u32) -> PrefixInfo {
        let mut acc = Acc::default();
        if self.n > 0 && qa > 0 && qb > 0 && qc > 0 && qd > 0 {
            self.query_rec(0, qa, qb, qc, qd, &mut acc);
        }
        PrefixInfo {
            unfinished: acc.unfinished,
            max_dp: acc.max_dp,
            maxx_unfinished: acc.rep_unfinished,
        }
    }

    /// Pick a pivot point id among the unfinished points of the box.
    /// `Random` draws uniformly; `RightMost` returns a deterministic
    /// heuristic representative — sufficient for the wake-up framework,
    /// which only requires *some* unfinished predecessor.
    pub fn select_pivot(&self, qa: u32, qb: u32, qc: u32, qd: u32, rng: &mut Rng) -> Option<u32> {
        if self.n == 0 || qa == 0 || qb == 0 || qc == 0 || qd == 0 {
            return None;
        }
        match self.mode {
            PivotMode::RightMost => self.query_prefix(qa, qb, qc, qd).maxx_unfinished,
            PivotMode::Random => {
                let mut pieces: Vec<Piece> = Vec::new();
                self.decompose(0, qa, qb, qc, qd, &mut pieces);
                let total: u64 = pieces.iter().map(|p| p.cnt as u64).sum();
                if total == 0 {
                    return None;
                }
                let mut t = rng.range(total);
                for p in &pieces {
                    if t < p.cnt as u64 {
                        return Some(match p.kind {
                            PieceKind::LeafPoint(id) => id,
                            PieceKind::NodeBox { node, qx, qy, qz } => {
                                let nd = &self.nodes[node as usize];
                                let x3d = nd
                                    .tree
                                    .as_ref()
                                    .expect("internal node")
                                    .select_pivot(qx, qy, qz, rng)
                                    .expect("counted unfinished");
                                nd.ids_by_b[x3d as usize]
                            }
                        });
                    }
                    t -= p.cnt as u64;
                }
                unreachable!("weighted draw out of range")
            }
        }
    }

    /// Mark a batch of point ids finished with their DP values.
    pub fn finish_batch(&mut self, items: &[(u32, u32)]) {
        for &(id, dp) in items {
            debug_assert!(!self.finished[id as usize]);
            self.finished[id as usize] = true;
            self.dp[id as usize] = dp;
        }
        if self.nodes.is_empty() {
            return;
        }
        // Per point: walk its outer path, updating each node's 3D tree.
        for &(id, dp) in items {
            let a = self.a_of_id[id as usize];
            let b = self.b_of_id[id as usize];
            let mut idx = 0usize;
            loop {
                let (lo, hi, lsize) = {
                    let nd = &self.nodes[idx];
                    (nd.lo, nd.hi, nd.lsize)
                };
                debug_assert!(lo <= a && a < hi);
                if lsize == 0 {
                    break; // leaf buckets scan live state
                }
                {
                    let nd = &mut self.nodes[idx];
                    let pos = nd.bs.partition_point(|&x| x < b);
                    debug_assert_eq!(nd.bs[pos], b);
                    nd.tree
                        .as_mut()
                        .expect("internal node")
                        .finish_batch(&[(pos as u32, dp)]);
                }
                let mid = (lo + hi) / 2;
                idx = if a < mid {
                    idx + 1
                } else {
                    idx + 1 + lsize as usize
                };
            }
        }
    }

    fn query_rec(&self, idx: usize, qa: u32, qb: u32, qc: u32, qd: u32, acc: &mut Acc) {
        let nd = &self.nodes[idx];
        if qa <= nd.lo {
            return;
        }
        if nd.is_leaf() {
            for s in nd.lo..nd.hi.min(qa) {
                let id = self.id_of_a[s as usize];
                if self.b_of_id[id as usize] < qb
                    && self.c_of_id[id as usize] < qc
                    && self.d_of_id[id as usize] < qd
                {
                    acc.add_point(id, self.finished[id as usize], self.dp[id as usize]);
                }
            }
            return;
        }
        if qa >= nd.hi {
            let qx = nd.bs.partition_point(|&x| x < qb) as u32;
            let qy = nd.cs.partition_point(|&x| x < qc) as u32;
            let qz = nd.ds.partition_point(|&x| x < qd) as u32;
            if qx > 0 && qy > 0 && qz > 0 {
                let info = nd.tree.as_ref().expect("internal").query_prefix(qx, qy, qz);
                acc.unfinished += info.unfinished;
                if let Some(d) = info.max_dp {
                    acc.max_dp = Some(acc.max_dp.map_or(d, |m| m.max(d)));
                }
                if let Some(x3d) = info.maxx_unfinished {
                    acc.note_unfinished_candidate(nd.ids_by_b[x3d as usize]);
                }
            }
            return;
        }
        let mid = (nd.lo + nd.hi) / 2;
        self.query_rec(idx + 1, qa, qb, qc, qd, acc);
        if qa > mid {
            self.query_rec(idx + 1 + nd.lsize as usize, qa, qb, qc, qd, acc);
        }
    }

    fn decompose(&self, idx: usize, qa: u32, qb: u32, qc: u32, qd: u32, pieces: &mut Vec<Piece>) {
        let nd = &self.nodes[idx];
        if qa <= nd.lo {
            return;
        }
        if nd.is_leaf() {
            for s in nd.lo..nd.hi.min(qa) {
                let id = self.id_of_a[s as usize];
                if self.b_of_id[id as usize] < qb
                    && self.c_of_id[id as usize] < qc
                    && self.d_of_id[id as usize] < qd
                    && !self.finished[id as usize]
                {
                    pieces.push(Piece {
                        cnt: 1,
                        kind: PieceKind::LeafPoint(id),
                    });
                }
            }
            return;
        }
        if qa >= nd.hi {
            let qx = nd.bs.partition_point(|&x| x < qb) as u32;
            let qy = nd.cs.partition_point(|&x| x < qc) as u32;
            let qz = nd.ds.partition_point(|&x| x < qd) as u32;
            if qx > 0 && qy > 0 && qz > 0 {
                let info = nd.tree.as_ref().expect("internal").query_prefix(qx, qy, qz);
                if info.unfinished > 0 {
                    pieces.push(Piece {
                        cnt: info.unfinished,
                        kind: PieceKind::NodeBox {
                            node: idx as u32,
                            qx,
                            qy,
                            qz,
                        },
                    });
                }
            }
            return;
        }
        let mid = (nd.lo + nd.hi) / 2;
        self.decompose(idx + 1, qa, qb, qc, qd, pieces);
        if qa > mid {
            self.decompose(idx + 1 + nd.lsize as usize, qa, qb, qc, qd, pieces);
        }
    }
}

/// Query accumulator; `rep_unfinished` is a representative unfinished
/// point (existence witness / heuristic pivot).
#[derive(Default)]
struct Acc {
    unfinished: u32,
    max_dp: Option<u32>,
    rep_unfinished: Option<u32>,
}

impl Acc {
    fn add_point(&mut self, id: u32, finished: bool, dp: u32) {
        if finished {
            self.max_dp = Some(self.max_dp.map_or(dp, |m| m.max(dp)));
        } else {
            self.unfinished += 1;
            self.note_unfinished_candidate(id);
        }
    }
    fn note_unfinished_candidate(&mut self, id: u32) {
        self.rep_unfinished = Some(self.rep_unfinished.map_or(id, |m| m.max(id)));
    }
}

struct Piece {
    cnt: u32,
    kind: PieceKind,
}

enum PieceKind {
    LeafPoint(u32),
    NodeBox {
        node: u32,
        qx: u32,
        qy: u32,
        qz: u32,
    },
}

#[allow(clippy::too_many_arguments)]
fn build(
    lo: u32,
    hi: u32,
    id_of_a: &[u32],
    b_of_id: &[u32],
    c_of_id: &[u32],
    d_of_id: &[u32],
    mode: PivotMode,
    out: &mut Vec<Node>,
) {
    let size = (hi - lo) as usize;
    if size <= LEAF_SIZE {
        out.push(Node {
            lo,
            hi,
            lsize: 0,
            ids_by_b: Vec::new(),
            bs: Vec::new(),
            cs: Vec::new(),
            ds: Vec::new(),
            tree: None,
        });
        return;
    }
    // Points of this node, ordered by b; local ranks for c and d.
    let mut ids: Vec<u32> = (lo..hi).map(|s| id_of_a[s as usize]).collect();
    ids.sort_unstable_by_key(|&id| b_of_id[id as usize]);
    let bs: Vec<u32> = ids.iter().map(|&id| b_of_id[id as usize]).collect();
    let mut cs: Vec<u32> = ids.iter().map(|&id| c_of_id[id as usize]).collect();
    cs.sort_unstable();
    let mut ds: Vec<u32> = ids.iter().map(|&id| d_of_id[id as usize]).collect();
    ds.sort_unstable();
    // 3D tree keyed by (local b position, local c rank, local d rank).
    let local_b: Vec<u32> = (0..size as u32).collect();
    let local_c: Vec<u32> = ids
        .iter()
        .map(|&id| cs.partition_point(|&x| x < c_of_id[id as usize]) as u32)
        .collect();
    let local_d: Vec<u32> = ids
        .iter()
        .map(|&id| ds.partition_point(|&x| x < d_of_id[id as usize]) as u32)
        .collect();
    let tree = RangeTree3d::new(&local_b, &local_c, &local_d, mode);
    let my_idx = out.len();
    out.push(Node {
        lo,
        hi,
        lsize: 0,
        ids_by_b: ids,
        bs,
        cs,
        ds,
        tree: Some(tree),
    });
    let mid = (lo + hi) / 2;
    build(lo, mid, id_of_a, b_of_id, c_of_id, d_of_id, mode, out);
    let lsize = (out.len() - my_idx - 1) as u32;
    out[my_idx].lsize = lsize;
    build(mid, hi, id_of_a, b_of_id, c_of_id, d_of_id, mode, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::shuffle::random_permutation;

    struct Oracle {
        a: Vec<u32>,
        b: Vec<u32>,
        c: Vec<u32>,
        d: Vec<u32>,
        finished: Vec<bool>,
        dp: Vec<u32>,
    }

    impl Oracle {
        fn query(&self, qa: u32, qb: u32, qc: u32, qd: u32) -> (u32, Option<u32>, Vec<u32>) {
            let mut unfin = Vec::new();
            let mut max_dp = None;
            for i in 0..self.a.len() {
                if self.a[i] < qa && self.b[i] < qb && self.c[i] < qc && self.d[i] < qd {
                    if self.finished[i] {
                        max_dp = Some(max_dp.map_or(self.dp[i], |m: u32| m.max(self.dp[i])));
                    } else {
                        unfin.push(i as u32);
                    }
                }
            }
            (unfin.len() as u32, max_dp, unfin)
        }
    }

    fn check(n: usize, seed: u64, mode: PivotMode) {
        let a = random_permutation(n, seed);
        let b = random_permutation(n, seed + 1);
        let c = random_permutation(n, seed + 2);
        let d = random_permutation(n, seed + 3);
        let mut tree = RangeTree4d::new(&a, &b, &c, &d, mode);
        let mut oracle = Oracle {
            a,
            b,
            c,
            d,
            finished: vec![false; n],
            dp: vec![0; n],
        };
        let mut rng = Rng::new(seed ^ 99);
        let mut remaining: Vec<u32> = (0..n as u32).collect();
        while !remaining.is_empty() {
            for _ in 0..12 {
                let qa = rng.range(n as u64 + 1) as u32;
                let qb = rng.range(n as u64 + 1) as u32;
                let qc = rng.range(n as u64 + 1) as u32;
                let qd = rng.range(n as u64 + 1) as u32;
                let info = tree.query_prefix(qa, qb, qc, qd);
                let (cnt, max_dp, unfin) = oracle.query(qa, qb, qc, qd);
                assert_eq!(info.unfinished, cnt);
                assert_eq!(info.max_dp, max_dp);
                let pivot = tree.select_pivot(qa, qb, qc, qd, &mut rng);
                match pivot {
                    None => assert!(unfin.is_empty()),
                    Some(p) => assert!(unfin.contains(&p), "pivot {p} not in region"),
                }
            }
            let take = (rng.range(remaining.len() as u64) + 1) as usize;
            let batch: Vec<(u32, u32)> = remaining
                .drain(..take.min(remaining.len()))
                .map(|id| (id, id % 13))
                .collect();
            for &(id, dd) in &batch {
                oracle.finished[id as usize] = true;
                oracle.dp[id as usize] = dd;
            }
            tree.finish_batch(&batch);
        }
    }

    #[test]
    fn matches_oracle_small() {
        check(25, 1, PivotMode::Random);
        check(25, 2, PivotMode::RightMost);
    }

    #[test]
    fn matches_oracle_spanning_leaves() {
        check(LEAF_SIZE + 5, 3, PivotMode::Random);
        check(3 * LEAF_SIZE + 7, 4, PivotMode::Random);
        check(250, 5, PivotMode::RightMost);
    }

    #[test]
    fn empty_tree() {
        let t = RangeTree4d::new(&[], &[], &[], &[], PivotMode::Random);
        assert!(t.is_empty());
        assert_eq!(t.query_prefix(0, 0, 0, 0).unfinished, 0);
    }
}
