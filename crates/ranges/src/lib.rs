//! # `pp-ranges` — flat array-backed augmented range structures
//!
//! Section 6.4 of the paper notes: *"we use nested arrays to represent
//! augmented range trees to improve locality"*. This crate is that layer:
//! cache-friendly, array-backed counterparts of the pointer-based PA-BSTs
//! in `pp-pam`, specialized for the static-key-set workloads of the
//! phase-parallel algorithms (the key set is known up front; only values
//! change between rounds).
//!
//! * [`segtree`] — a generic monoid segment tree with parallel batch
//!   construction and parallel batch point updates.
//! * [`fenwick`] — Fenwick (binary indexed) trees: prefix sums, prefix
//!   max, and an atomic prefix-max variant that admits concurrent
//!   `fetch_max` updates from a parallel frontier.
//! * [`sparse`] — a sparse table for `O(1)` static idempotent range
//!   queries (range min / max).
//! * [`range2d`] — the augmented 2D range tree of Algorithm 3: prefix
//!   rectangle queries returning (#unfinished, max DP value), pivot
//!   selection among unfinished points (uniformly random by weighted
//!   descent, or the right-most heuristic of §6.4), and parallel batch
//!   "finish" updates. Work `O(log^2 n)` per operation, batch updates with
//!   `O(log^2 n)` span — matching Theorem 2.1 for k = 2.

#![forbid(unsafe_code)]

pub mod fenwick;
pub mod range2d;
pub mod range3d;
pub mod range4d;
pub mod segtree;
pub mod sparse;

pub use fenwick::{AtomicFenwickMax, Fenwick, FenwickMax};
pub use range2d::{PivotMode, PrefixInfo, RangeTree2d};
pub use range3d::RangeTree3d;
pub use range4d::RangeTree4d;
pub use segtree::SegTree;
pub use sparse::SparseTable;
