//! Sparse table for static idempotent range queries (range min / max).
//!
//! `O(n log n)` construction (parallel over levels), `O(1)` queries.
//! Used by the Type 2 activity-selection algorithm to find each
//! activity's pivot (the latest-start compatible activity, Lemma 5.1)
//! without mutating state.

use rayon::prelude::*;

/// Which extremum the table answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Extremum {
    /// Range minimum (returns index of the minimum value).
    Min,
    /// Range maximum (returns index of the maximum value).
    Max,
}

/// Sparse table answering `arg min` / `arg max` over `u64` values.
pub struct SparseTable {
    values: Vec<u64>,
    /// `table[k][i]` = index of extremum in `[i, i + 2^k)`.
    table: Vec<Vec<u32>>,
    kind: Extremum,
}

impl SparseTable {
    /// Build a table over `values`. `O(n log n)` work.
    pub fn new(values: Vec<u64>, kind: Extremum) -> Self {
        let n = values.len();
        let levels = if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize + 1
        };
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..n as u32).collect());
        let better = |a: u32, b: u32| -> u32 {
            let (va, vb) = (values[a as usize], values[b as usize]);
            let a_wins = match kind {
                Extremum::Min => va <= vb,
                Extremum::Max => va >= vb,
            };
            if a_wins {
                a
            } else {
                b
            }
        };
        for k in 1..levels {
            let half = 1usize << (k - 1);
            let prev = &table[k - 1];
            if n < 2 * half {
                break;
            }
            let row: Vec<u32> = (0..=(n - 2 * half))
                .into_par_iter()
                .map(|i| better(prev[i], prev[i + half]))
                .collect();
            table.push(row);
        }
        Self {
            values,
            table,
            kind,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the table is over zero elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at index `i`.
    pub fn value(&self, i: usize) -> u64 {
        self.values[i]
    }

    /// Index of the extremum in `[l, r)`; `None` if the range is empty.
    /// Ties resolve to the leftmost index.
    pub fn query(&self, l: usize, r: usize) -> Option<usize> {
        if l >= r || r > self.values.len() {
            return None;
        }
        let len = r - l;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let a = self.table[k][l];
        let b = self.table[k][r - (1 << k)];
        let (va, vb) = (self.values[a as usize], self.values[b as usize]);
        let a_wins = match self.kind {
            Extremum::Min => va <= vb || (va == vb && a <= b),
            Extremum::Max => va > vb || (va == vb && a <= b),
        };
        Some(if a_wins { a as usize } else { b as usize })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::rng::Rng;

    #[test]
    fn min_queries_match_naive() {
        let mut r = Rng::new(4);
        let n = 777;
        let v: Vec<u64> = (0..n).map(|_| r.range(100)).collect();
        let t = SparseTable::new(v.clone(), Extremum::Min);
        for _ in 0..2000 {
            let a = r.range(n + 1) as usize;
            let b = r.range(n + 1) as usize;
            let (l, rr) = (a.min(b), a.max(b));
            let got = t.query(l, rr);
            if l == rr {
                assert!(got.is_none());
            } else {
                let idx = got.unwrap();
                let want = v[l..rr].iter().min().unwrap();
                assert_eq!(v[idx], *want);
                assert!((l..rr).contains(&idx));
            }
        }
    }

    #[test]
    fn max_queries_match_naive() {
        let mut r = Rng::new(5);
        let n = 512;
        let v: Vec<u64> = (0..n).map(|_| r.range(1000)).collect();
        let t = SparseTable::new(v.clone(), Extremum::Max);
        for _ in 0..2000 {
            let a = r.range(n + 1) as usize;
            let b = r.range(n + 1) as usize;
            let (l, rr) = (a.min(b), a.max(b));
            if l < rr {
                let idx = t.query(l, rr).unwrap();
                assert_eq!(v[idx], *v[l..rr].iter().max().unwrap());
            }
        }
    }

    #[test]
    fn single_and_empty() {
        let t = SparseTable::new(vec![7], Extremum::Min);
        assert_eq!(t.query(0, 1), Some(0));
        assert_eq!(t.query(0, 0), None);
        let t = SparseTable::new(vec![], Extremum::Max);
        assert_eq!(t.query(0, 0), None);
        assert!(t.is_empty());
    }

    #[test]
    fn leftmost_tie_break_min() {
        let t = SparseTable::new(vec![3, 1, 1, 1, 5], Extremum::Min);
        assert_eq!(t.query(0, 5), Some(1));
        assert_eq!(t.query(2, 5), Some(2));
    }
}
