//! A generic monoid segment tree with parallel batch operations.
//!
//! Layout: the recursive "Euler" numbering — a node covering `[lo, hi)`
//! sits at index `i`, its left child at `i + 1`, and its right child at
//! `i + 2·(mid - lo)` where `mid = (lo + hi) / 2`. A tree over `n` leaves
//! occupies exactly `2n - 1` slots with no power-of-two padding, and both
//! children of any node are contiguous sub-slices — which is what lets
//! batch updates recurse with `rayon::join` on disjoint `&mut` halves.

use pp_parlay::monoid::Monoid;
use pp_parlay::GRAIN;

/// A segment tree over a fixed-length sequence of monoid values.
pub struct SegTree<M: Monoid> {
    monoid: M,
    n: usize,
    /// `2n - 1` aggregates in recursive layout (empty when `n == 0`).
    seg: Vec<M::T>,
}

impl<M: Monoid> SegTree<M> {
    /// Build from leaf values. `O(n)` work, `O(log n)` span.
    pub fn new(monoid: M, values: &[M::T]) -> Self {
        let n = values.len();
        let mut seg = vec![monoid.identity(); if n == 0 { 0 } else { 2 * n - 1 }];
        if n > 0 {
            build_rec(&monoid, &mut seg, values, 0, n);
        }
        Self { monoid, n, seg }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The aggregate of all leaves.
    pub fn total(&self) -> M::T {
        if self.n == 0 {
            self.monoid.identity()
        } else {
            self.seg[0].clone()
        }
    }

    /// Leaf value at `i`.
    pub fn get(&self, i: usize) -> M::T {
        assert!(i < self.n);
        let (mut node, mut lo, mut hi) = (0usize, 0usize, self.n);
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if i < mid {
                node += 1;
                hi = mid;
            } else {
                node += 2 * (mid - lo);
                lo = mid;
            }
        }
        self.seg[node].clone()
    }

    /// Set leaf `i` to `v`, updating `O(log n)` aggregates.
    pub fn update(&mut self, i: usize, v: M::T) {
        assert!(i < self.n);
        update_rec(&self.monoid, &mut self.seg, 0, self.n, i, &v);
    }

    /// Aggregate of leaves in `[l, r)`. `O(log n)`.
    pub fn query(&self, l: usize, r: usize) -> M::T {
        assert!(l <= r && r <= self.n);
        if l == r {
            return self.monoid.identity();
        }
        query_rec(&self.monoid, &self.seg, 0, self.n, l, r)
    }

    /// Batch point update: apply `(index, value)` pairs, which must be
    /// sorted by index with distinct indices. Affected aggregates are
    /// recomputed once. `O(m log(n/m + 1) + m)` work, `O(log n)` span.
    pub fn update_batch(&mut self, updates: &[(usize, M::T)]) {
        debug_assert!(updates.windows(2).all(|w| w[0].0 < w[1].0));
        if updates.is_empty() {
            return;
        }
        assert!(updates.last().unwrap().0 < self.n);
        batch_rec(&self.monoid, &mut self.seg, 0, self.n, updates);
    }

    /// Leftmost index `i` in `[from, n)` such that the leaf value
    /// satisfies `pred`, using `pred` on aggregates to prune (requires
    /// `pred(combine(a, b))` ⇒ `pred(a) || pred(b)`, true for min/max
    /// threshold searches). `O(log n)`.
    pub fn find_first<F: Fn(&M::T) -> bool>(&self, from: usize, pred: F) -> Option<usize> {
        if from >= self.n {
            return None;
        }
        find_rec(&self.seg, 0, self.n, from, &pred)
    }
}

fn build_rec<M: Monoid>(m: &M, seg: &mut [M::T], values: &[M::T], lo: usize, hi: usize) {
    if hi - lo == 1 {
        // `values` is already the slice for this node's range.
        seg[0] = values[0].clone();
        return;
    }
    let mid = (lo + hi) / 2;
    let lsize = 2 * (mid - lo) - 1;
    let (node, rest) = seg.split_first_mut().unwrap();
    let (lseg, rseg) = rest.split_at_mut(lsize);
    let (lvals, rvals) = values.split_at(mid - lo);
    if hi - lo > GRAIN {
        rayon::join(
            || build_rec(m, lseg, lvals, lo, mid),
            || build_rec(m, rseg, rvals, mid, hi),
        );
    } else {
        build_rec(m, lseg, lvals, lo, mid);
        build_rec(m, rseg, rvals, mid, hi);
    }
    *node = m.combine(&lseg[0], &rseg[0]);
}

fn update_rec<M: Monoid>(m: &M, seg: &mut [M::T], lo: usize, hi: usize, i: usize, v: &M::T) {
    if hi - lo == 1 {
        seg[0] = v.clone();
        return;
    }
    let mid = (lo + hi) / 2;
    let lsize = 2 * (mid - lo) - 1;
    let (node, rest) = seg.split_first_mut().unwrap();
    let (lseg, rseg) = rest.split_at_mut(lsize);
    if i < mid {
        update_rec(m, lseg, lo, mid, i, v);
    } else {
        update_rec(m, rseg, mid, hi, i, v);
    }
    *node = m.combine(&lseg[0], &rseg[0]);
}

fn query_rec<M: Monoid>(m: &M, seg: &[M::T], lo: usize, hi: usize, l: usize, r: usize) -> M::T {
    if l <= lo && hi <= r {
        return seg[0].clone();
    }
    let mid = (lo + hi) / 2;
    let lsize = 2 * (mid - lo) - 1;
    let lseg = &seg[1..1 + lsize];
    let rseg = &seg[1 + lsize..];
    if r <= mid {
        query_rec(m, lseg, lo, mid, l, r)
    } else if l >= mid {
        query_rec(m, rseg, mid, hi, l, r)
    } else {
        let a = query_rec(m, lseg, lo, mid, l, r);
        let b = query_rec(m, rseg, mid, hi, l, r);
        m.combine(&a, &b)
    }
}

fn batch_rec<M: Monoid>(m: &M, seg: &mut [M::T], lo: usize, hi: usize, updates: &[(usize, M::T)]) {
    if updates.is_empty() {
        return;
    }
    if hi - lo == 1 {
        debug_assert_eq!(updates.len(), 1);
        seg[0] = updates[0].1.clone();
        return;
    }
    let mid = (lo + hi) / 2;
    let lsize = 2 * (mid - lo) - 1;
    let (node, rest) = seg.split_first_mut().unwrap();
    let (lseg, rseg) = rest.split_at_mut(lsize);
    let split = updates.partition_point(|&(i, _)| i < mid);
    let (lups, rups) = updates.split_at(split);
    if updates.len() > 64 {
        rayon::join(
            || batch_rec(m, lseg, lo, mid, lups),
            || batch_rec(m, rseg, mid, hi, rups),
        );
    } else {
        batch_rec(m, lseg, lo, mid, lups);
        batch_rec(m, rseg, mid, hi, rups);
    }
    *node = m.combine(&lseg[0], &rseg[0]);
}

fn find_rec<T, F: Fn(&T) -> bool>(
    seg: &[T],
    lo: usize,
    hi: usize,
    from: usize,
    pred: &F,
) -> Option<usize> {
    if hi <= from || !pred(&seg[0]) {
        // Either entirely left of `from`, or (if `from <= lo`) no leaf in
        // this subtree can satisfy the predicate. When `from` is inside
        // the subtree, the aggregate test is only a sound prune if it
        // fails — a passing aggregate may come from the excluded prefix,
        // handled by recursing.
        if hi <= from {
            return None;
        }
        if from <= lo {
            return None;
        }
    }
    if hi - lo == 1 {
        return if pred(&seg[0]) { Some(lo) } else { None };
    }
    let mid = (lo + hi) / 2;
    let lsize = 2 * (mid - lo) - 1;
    let lseg = &seg[1..1 + lsize];
    let rseg = &seg[1 + lsize..];
    if let Some(i) = find_rec(lseg, lo, mid, from, pred) {
        return Some(i);
    }
    find_rec(rseg, mid, hi, from, pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::monoid::{sum_monoid, MaxMonoid, MinMonoid};
    use pp_parlay::rng::Rng;

    #[test]
    fn build_and_query_sum() {
        let v: Vec<u64> = (0..100).collect();
        let t = SegTree::new(sum_monoid::<u64>(), &v);
        assert_eq!(t.total(), 4950);
        assert_eq!(t.query(0, 100), 4950);
        assert_eq!(t.query(10, 20), (10..20).sum::<u64>());
        assert_eq!(t.query(5, 5), 0);
        assert_eq!(t.query(99, 100), 99);
    }

    #[test]
    fn point_update() {
        let v = vec![1u64, 2, 3, 4, 5];
        let mut t = SegTree::new(sum_monoid::<u64>(), &v);
        t.update(2, 100);
        assert_eq!(t.total(), 112);
        assert_eq!(t.get(2), 100);
        assert_eq!(t.query(0, 3), 103);
    }

    #[test]
    fn random_queries_match_naive() {
        let mut r = Rng::new(1);
        let n = 1000;
        let mut v: Vec<i64> = (0..n).map(|_| r.range(1000) as i64).collect();
        let mut t = SegTree::new(MaxMonoid(i64::MIN), &v);
        for _ in 0..500 {
            match r.range(3) {
                0 => {
                    let i = r.range(n as u64) as usize;
                    let x = r.range(1000) as i64;
                    v[i] = x;
                    t.update(i, x);
                }
                _ => {
                    let a = r.range(n as u64 + 1) as usize;
                    let b = r.range(n as u64 + 1) as usize;
                    let (l, rr) = (a.min(b), a.max(b));
                    let want = v[l..rr].iter().copied().max().unwrap_or(i64::MIN);
                    assert_eq!(t.query(l, rr), want);
                }
            }
        }
    }

    #[test]
    fn batch_update_matches_points() {
        let mut r = Rng::new(2);
        let n = 20_000usize;
        let v: Vec<u64> = (0..n as u64).collect();
        let mut t1 = SegTree::new(sum_monoid::<u64>(), &v);
        let mut t2 = SegTree::new(sum_monoid::<u64>(), &v);
        let mut ups: Vec<(usize, u64)> = Vec::new();
        for i in 0..n {
            if r.range(10) == 0 {
                ups.push((i, r.range(100)));
            }
        }
        ups.sort_by_key(|x| x.0);
        ups.dedup_by_key(|x| x.0);
        for &(i, val) in &ups {
            t1.update(i, val);
        }
        t2.update_batch(&ups);
        assert_eq!(t1.total(), t2.total());
        for step in [7usize, 131, 997] {
            let mut i = 0;
            while i + step <= n {
                assert_eq!(t1.query(i, i + step), t2.query(i, i + step));
                i += step;
            }
        }
    }

    #[test]
    fn large_parallel_build() {
        let n = 100_000u64;
        let v: Vec<u64> = (0..n).collect();
        let t = SegTree::new(sum_monoid::<u64>(), &v);
        assert_eq!(t.total(), n * (n - 1) / 2);
    }

    #[test]
    fn find_first_min_threshold() {
        let v = vec![5u64, 9, 3, 7, 2, 8];
        let t = SegTree::new(MinMonoid(u64::MAX), &v);
        // first index from 0 with value <= 3
        assert_eq!(t.find_first(0, |&x| x <= 3), Some(2));
        // from 3, first value <= 3 is index 4 (value 2)
        assert_eq!(t.find_first(3, |&x| x <= 3), Some(4));
        assert_eq!(t.find_first(5, |&x| x <= 3), None);
        assert_eq!(t.find_first(0, |&x| x == 0), None);
    }

    #[test]
    fn empty_and_single() {
        let t = SegTree::new(sum_monoid::<u64>(), &[]);
        assert_eq!(t.total(), 0);
        assert!(t.is_empty());
        let t = SegTree::new(sum_monoid::<u64>(), &[42]);
        assert_eq!(t.total(), 42);
        assert_eq!(t.query(0, 1), 42);
    }
}
