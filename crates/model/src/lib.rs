//! # `pp-model` — an executable binary-forking cost model
//!
//! §2 of the paper analyzes every algorithm in the *work-span model on
//! the binary-forking model (with `test_and_set`)*: threads fork two
//! children and suspend until both finish; work is the instruction
//! count, span the longest chain of dependent instructions; a parallel
//! for-loop costs `O(log n)` span because it is a balanced fork tree.
//!
//! `rayon` *schedules* that model but cannot *measure* it — wall-clock
//! time conflates span with core count, caches and the scheduler. This
//! crate is the model itself, executable: computations run single-
//! threaded under a [`Sim`] context whose `fork2` combinator charges
//!
//! ```text
//! work(a ∥ b) = work(a) + work(b) + O(1)
//! span(a ∥ b) = max(span(a), span(b)) + O(1)
//! ```
//!
//! exactly as the model defines, so the measured span of an algorithm
//! *is* its theoretical span for that input — no asymptotic hand-waving,
//! no constants hidden by the machine. The test suites use it to check
//! the paper's bounds the way a proof reader would:
//!
//! * [`primitives`] — parallel for / reduce / scan / pack cost what §2
//!   claims (`Θ(n)` work, `Θ(log n)` span).
//! * [`phase`] — Algorithm 1's round skeleton: span tracks
//!   `rounds × per-round span`, rounds = max rank (Thm 3.4 / Cor 3.3).
//! * [`mis_sim`] — Algorithm 4 (TAS trees) executed in the model:
//!   measured span is `O(log n · log d_max)` on random priorities
//!   (Theorem 5.7) and degrades to `Θ(n)` on an adversarial chain.
//!
//! The simulator is sequential by construction (its point is exact
//! accounting, not speed); algorithms are expressed against [`Sim`]
//! mirrors of the real implementations.

#![forbid(unsafe_code)]

pub mod mis_sim;
pub mod phase;
pub mod primitives;

/// Cost charged by a `fork` instruction (spawn two children).
pub const FORK_COST: u64 = 1;
/// Cost charged by the implicit join when both children finish.
pub const JOIN_COST: u64 = 1;

/// Work and span of a (sub)computation, in model instructions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Total instructions executed.
    pub work: u64,
    /// Longest chain of dependent instructions.
    pub span: u64,
}

/// A simulated binary-forking thread. All instructions of the current
/// thread are charged with [`tick`](Sim::tick); parallelism enters only
/// through [`fork2`](Sim::fork2) (and the loops built on it), which is
/// exactly the model's restriction.
#[derive(Debug, Default)]
pub struct Sim {
    work: u64,
    span: u64,
}

impl Sim {
    /// A fresh root thread.
    pub fn new() -> Self {
        Sim::default()
    }

    /// The cost accumulated so far.
    pub fn cost(&self) -> Cost {
        Cost {
            work: self.work,
            span: self.span,
        }
    }

    /// Execute `units` sequential instructions on this thread.
    #[inline]
    pub fn tick(&mut self, units: u64) {
        self.work += units;
        self.span += units;
    }

    /// Fork two child threads, run both, join. Work adds; span takes the
    /// max; the fork and join instructions are charged to the parent.
    pub fn fork2<A, B>(
        &mut self,
        a: impl FnOnce(&mut Sim) -> A,
        b: impl FnOnce(&mut Sim) -> B,
    ) -> (A, B) {
        self.tick(FORK_COST);
        let mut sa = Sim::new();
        let mut sb = Sim::new();
        let ra = a(&mut sa);
        let rb = b(&mut sb);
        self.work += sa.work + sb.work + JOIN_COST;
        self.span += sa.span.max(sb.span) + JOIN_COST;
        (ra, rb)
    }

    /// A binary-forking parallel for over `lo..hi`: balanced fork tree,
    /// one `body` call per index. Span = `O(log(hi-lo)) + max body span`,
    /// matching §2's "a parallel for-loop incurs O(log n) span".
    pub fn par_for(&mut self, lo: usize, hi: usize, body: &mut impl FnMut(&mut Sim, usize)) {
        match hi.saturating_sub(lo) {
            0 => {}
            1 => body(self, lo),
            _ => {
                let mid = lo + (hi - lo) / 2;
                // `body` is shared sequentially (the simulator is
                // single-threaded), but the *charging* is parallel.
                let mut sa = Sim::new();
                let mut sb = Sim::new();
                self.tick(FORK_COST);
                sa.par_for(lo, mid, body);
                sb.par_for(mid, hi, body);
                self.work += sa.work + sb.work + JOIN_COST;
                self.span += sa.span.max(sb.span) + JOIN_COST;
            }
        }
    }

    /// An atomic `test_and_set` (§2): one instruction; returns the old
    /// value and sets the flag.
    pub fn test_and_set(&mut self, flag: &mut bool) -> bool {
        self.tick(1);
        std::mem::replace(flag, true)
    }
}

/// Ceil of log2 (0 for n ≤ 1) — the span shape of balanced fork trees.
pub fn log2_ceil(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        u64::from(usize::BITS - (n - 1).leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ticks_add_to_both() {
        let mut s = Sim::new();
        s.tick(5);
        s.tick(3);
        assert_eq!(s.cost(), Cost { work: 8, span: 8 });
    }

    #[test]
    fn fork_takes_max_span() {
        let mut s = Sim::new();
        s.fork2(|a| a.tick(10), |b| b.tick(4));
        let c = s.cost();
        assert_eq!(c.work, 14 + FORK_COST + JOIN_COST);
        assert_eq!(c.span, 10 + FORK_COST + JOIN_COST);
    }

    #[test]
    fn par_for_span_is_logarithmic() {
        // Unit-work bodies: span must be Θ(log n), work Θ(n).
        for n in [1usize, 2, 3, 64, 1000, 1 << 16] {
            let mut s = Sim::new();
            s.par_for(0, n, &mut |sim, _| sim.tick(1));
            let c = s.cost();
            assert!(c.work >= n as u64, "n={n}");
            assert!(c.work <= 4 * n as u64 + 2, "n={n} work={}", c.work);
            let lg = log2_ceil(n);
            assert!(
                c.span <= 2 * lg + 3,
                "n={n}: span {} exceeds 2⌈lg n⌉+3 = {}",
                c.span,
                2 * lg + 3
            );
            assert!(c.span >= lg, "n={n}: span {} below ⌈lg n⌉", c.span);
        }
    }

    #[test]
    fn par_for_span_dominated_by_slowest_body() {
        let mut s = Sim::new();
        s.par_for(0, 1000, &mut |sim, i| {
            sim.tick(if i == 500 { 1000 } else { 1 })
        });
        let c = s.cost();
        // One heavy leaf: span ≈ 1000 + O(log n), not 1000 + n.
        assert!(c.span >= 1000);
        assert!(c.span <= 1000 + 2 * log2_ceil(1000) + 3);
    }

    #[test]
    fn nested_forks_compose() {
        // ((1 ∥ 2) ; 3) ∥ 4 — span = max(max(1,2)+2 + 3, 4) + 2.
        let mut s = Sim::new();
        s.fork2(
            |a| {
                a.fork2(|x| x.tick(1), |y| y.tick(2));
                a.tick(3);
            },
            |b| b.tick(4),
        );
        let c = s.cost();
        assert_eq!(
            c.span,
            (2 + FORK_COST + JOIN_COST + 3) + FORK_COST + JOIN_COST
        );
        assert_eq!(
            c.work,
            (1 + 2 + FORK_COST + JOIN_COST + 3) + 4 + FORK_COST + JOIN_COST
        );
    }

    #[test]
    fn test_and_set_semantics() {
        let mut s = Sim::new();
        let mut flag = false;
        assert!(!s.test_and_set(&mut flag)); // successful TAS
        assert!(s.test_and_set(&mut flag)); // unsuccessful
        assert_eq!(s.cost().work, 2);
    }
}
