//! §2's primitive costs, executed in the model.
//!
//! The paper's algorithms assume: parallel for-loops with `O(log n)`
//! span; reduce and scan with `O(n)` work and `O(log n)` span; pack
//! (filter) with the same bounds. These are the model-mirrors of the
//! real implementations in `pp-parlay`, with tests asserting the §2
//! bounds with *explicit constants* — which only an executable model can
//! do.

use crate::Sim;

/// Sum-reduce by a balanced fork tree: `Θ(n)` work, `Θ(log n)` span.
pub fn reduce_sim(sim: &mut Sim, v: &[u64]) -> u64 {
    match v.len() {
        0 => {
            sim.tick(1);
            0
        }
        1 => {
            sim.tick(1);
            v[0]
        }
        n => {
            let (l, r) = v.split_at(n / 2);
            let (a, b) = sim.fork2(|s| reduce_sim(s, l), |s| reduce_sim(s, r));
            sim.tick(1); // the combine instruction
            a + b
        }
    }
}

/// Blelloch's two-sweep exclusive scan: `Θ(n)` work, `Θ(log n)` span.
/// Returns the exclusive prefix sums and the total.
pub fn scan_sim(sim: &mut Sim, v: &[u64]) -> (Vec<u64>, u64) {
    /// The up-sweep's per-node partial sums.
    enum SumTree {
        Leaf(u64),
        Node(u64, Box<SumTree>, Box<SumTree>),
    }
    impl SumTree {
        fn total(&self) -> u64 {
            match self {
                SumTree::Leaf(s) | SumTree::Node(s, _, _) => *s,
            }
        }
    }
    // Up sweep: build the sum tree bottom-up.
    fn up(sim: &mut Sim, v: &[u64]) -> SumTree {
        if v.len() == 1 {
            sim.tick(1);
            return SumTree::Leaf(v[0]);
        }
        let mid = v.len() / 2;
        let (l, r) = sim.fork2(|s| up(s, &v[..mid]), |s| up(s, &v[mid..]));
        sim.tick(1);
        SumTree::Node(l.total() + r.total(), Box::new(l), Box::new(r))
    }
    // Down sweep: distribute left-exclusive prefixes.
    fn down(sim: &mut Sim, t: &SumTree, acc: u64, out: &mut [u64]) {
        match t {
            SumTree::Leaf(_) => {
                sim.tick(1);
                out[0] = acc;
            }
            SumTree::Node(_, l, r) => {
                sim.tick(1);
                let left_sum = l.total();
                let (o_l, o_r) = out.split_at_mut(out.len() / 2);
                sim.fork2(
                    |s| down(s, l, acc, o_l),
                    |s| down(s, r, acc + left_sum, o_r),
                );
            }
        }
    }

    let n = v.len();
    if n == 0 {
        sim.tick(1);
        return (Vec::new(), 0);
    }
    let tree = up(sim, v);
    let total = tree.total();
    let mut out = vec![0u64; n];
    down(sim, &tree, 0, &mut out);
    (out, total)
}

/// Pack (filter by flags): scan for offsets + parallel scatter —
/// `Θ(n)` work, `Θ(log n)` span.
pub fn pack_sim(sim: &mut Sim, v: &[u64], flags: &[bool]) -> Vec<u64> {
    assert_eq!(v.len(), flags.len());
    let bits: Vec<u64> = flags.iter().map(|&f| u64::from(f)).collect();
    let (offsets, total) = scan_sim(sim, &bits);
    let mut out = vec![0u64; total as usize];
    sim.par_for(0, v.len(), &mut |s, i| {
        s.tick(1);
        if flags[i] {
            out[offsets[i] as usize] = v[i];
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log2_ceil;

    #[test]
    fn reduce_is_correct_and_logarithmic() {
        for n in [1usize, 2, 7, 1000, 1 << 15] {
            let v: Vec<u64> = (0..n as u64).collect();
            let mut s = Sim::new();
            let got = reduce_sim(&mut s, &v);
            assert_eq!(got, (n as u64 * (n as u64 - 1)) / 2, "n={n}");
            let c = s.cost();
            assert!(c.work <= 5 * n as u64 + 2, "n={n} work={}", c.work);
            assert!(
                c.span <= 3 * log2_ceil(n) + 3,
                "n={n} span={} > 3lg+3",
                c.span
            );
        }
    }

    #[test]
    fn scan_is_correct_and_logarithmic() {
        for n in [1usize, 2, 9, 500, 1 << 14] {
            let v: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
            let mut s = Sim::new();
            let (scan, total) = scan_sim(&mut s, &v);
            let mut acc = 0u64;
            for i in 0..n {
                assert_eq!(scan[i], acc);
                acc += v[i];
            }
            assert_eq!(total, acc);
            let c = s.cost();
            assert!(c.work <= 12 * n as u64 + 4, "n={n} work={}", c.work);
            assert!(
                c.span <= 7 * log2_ceil(n) + 8,
                "n={n} span={} not O(log n)",
                c.span
            );
        }
    }

    #[test]
    fn pack_matches_filter_with_linear_work() {
        let n = 4096usize;
        let v: Vec<u64> = (0..n as u64).collect();
        let flags: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let mut s = Sim::new();
        let got = pack_sim(&mut s, &v, &flags);
        let want: Vec<u64> = v
            .iter()
            .zip(&flags)
            .filter(|&(_, &f)| f)
            .map(|(&x, _)| x)
            .collect();
        assert_eq!(got, want);
        let c = s.cost();
        assert!(c.work <= 20 * n as u64);
        assert!(c.span <= 10 * log2_ceil(n) + 12, "span={}", c.span);
    }

    #[test]
    fn work_span_scaling_slopes() {
        // Doubling n roughly doubles work and adds a constant to span —
        // the defining signature of (Θ(n) work, Θ(log n) span).
        let cost_at = |n: usize| {
            let v: Vec<u64> = vec![1; n];
            let mut s = Sim::new();
            reduce_sim(&mut s, &v);
            s.cost()
        };
        let c1 = cost_at(1 << 10);
        let c2 = cost_at(1 << 11);
        let ratio = c2.work as f64 / c1.work as f64;
        assert!((1.8..=2.2).contains(&ratio), "work ratio {ratio}");
        let delta = c2.span as i64 - c1.span as i64;
        assert!((1..=4).contains(&delta), "span delta {delta}");
    }
}
