//! Algorithm 4 (TAS-tree MIS) executed in the model — Theorem 5.7,
//! measured.
//!
//! The theorem: greedy MIS via TAS trees takes `O(m)` work and
//! `O(log n · log d_max)` span whp in the binary-forking model with
//! `test_and_set`. Wall-clock experiments cannot see that span; this
//! simulation can. Every fork, flag write and `test_and_set` of
//! Algorithm 4 is charged per the model, the recursive `WakeUp` chains
//! extend the span exactly as the asynchronous algorithm would, and the
//! tests then check both sides of the theorem:
//!
//! * random priorities → measured span grows like `log n · log d_max`
//!   (doubling `n` adds a sliver, never multiplies), and work stays
//!   `O(m)`;
//! * a monotone-priority path → span `Θ(n)`: the dependence chain is
//!   real, and the model shows it.

use crate::{Cost, Sim};
use pp_graph::Graph;

/// A TAS tree: a perfect binary tree over `d` leaves (padded to a power
/// of two; phantom leaves are pre-marked at construction through the
/// same climb the algorithm uses, so interior TAS semantics are
/// uniform).
struct TasTreeSim {
    /// Heap-shaped flags: 1-based; node 1 is the root;
    /// leaves occupy `width..width + d (+ phantoms)`.
    flags: Vec<bool>,
    width: usize,
}

impl TasTreeSim {
    /// Build for `d` blocking neighbors; charges `O(d)` work,
    /// `O(log d)` span on `sim`. Returns `None` for `d == 0` (no
    /// blockers: the vertex is initially ready).
    fn new(sim: &mut Sim, d: usize) -> Option<TasTreeSim> {
        if d == 0 {
            sim.tick(1);
            return None;
        }
        let width = d.next_power_of_two();
        let mut t = TasTreeSim {
            flags: vec![false; 2 * width],
            width,
        };
        // Initialization (allocation + phantom state): `O(width)` work,
        // `O(log width)` span — the phantom flags are a static pattern
        // the real algorithm lays out during construction, so we charge
        // the parallel fill and compute the pattern uncharged.
        sim.par_for(0, width, &mut |s, _| s.tick(1));
        let mut scratch = Sim::new();
        for leaf in d..width {
            t.mark(&mut scratch, leaf);
        }
        Some(t)
    }

    /// Mark leaf `i` unavailable; returns `true` when this was the last
    /// leaf (an unsuccessful TAS at the root), i.e. the owner wakes.
    fn mark(&mut self, sim: &mut Sim, leaf: usize) -> bool {
        let mut node = self.width + leaf;
        sim.tick(1);
        if std::mem::replace(&mut self.flags[node], true) {
            return false; // already marked (duplicate removal attempt)
        }
        if self.width == 1 {
            return true; // single blocker: tree of one leaf, now done
        }
        loop {
            node /= 2;
            let was_set = sim.test_and_set(&mut self.flags[node]);
            if !was_set {
                return false; // successful TAS: sibling subtree still live
            }
            if node == 1 {
                return true; // unsuccessful TAS at the root: all done
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Undecided,
    Selected,
    Removed,
}

/// Counters from a simulated Algorithm 4 run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MisSimStats {
    /// Model cost of the whole run (construction + wake cascade).
    pub cost: Cost,
    /// Vertices selected into the MIS.
    pub selected: usize,
}

/// Execute Algorithm 4 in the model and return the MIS mask plus cost.
/// The mask equals the sequential greedy MIS for `priority` (asserted in
/// the tests) — the determinism half of §5.3.
pub fn mis_tas_sim(g: &Graph, priority: &[u32]) -> (Vec<bool>, MisSimStats) {
    let n = g.num_vertices();
    assert_eq!(priority.len(), n);
    struct State {
        status: Vec<Status>,
        trees: Vec<Option<TasTreeSim>>,
        /// Per vertex: blocking neighbors (higher priority), in neighbor
        /// order — leaf `k` of `trees[v]` is `blockers[v][k]`.
        blockers: Vec<Vec<u32>>,
        /// Per vertex: the (worse-priority neighbor, leaf index) pairs
        /// whose TAS trees contain it — the stored correspondence the
        /// proof of Thm 5.7 assumes.
        watchers: Vec<Vec<(u32, u32)>>,
    }

    let mut st = State {
        status: vec![Status::Undecided; n],
        trees: Vec::with_capacity(n),
        blockers: vec![Vec::new(); n],
        watchers: vec![Vec::new(); n],
    };
    let mut sim = Sim::new();

    // Construction: blocking lists, TAS trees, watcher lists. Charged as
    // a parallel for over vertices with per-vertex O(degree) work.
    for v in 0..n as u32 {
        st.blockers[v as usize] = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| priority[u as usize] > priority[v as usize])
            .collect();
        for (k, &u) in st.blockers[v as usize].iter().enumerate() {
            st.watchers[u as usize].push((v, k as u32));
        }
    }
    {
        // Charge construction: par_for over vertices, O(d_v) each.
        let degs: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
        sim.par_for(0, n, &mut |s, v| s.tick(degs[v] as u64 + 1));
    }
    // Tree construction is a parallel for over vertices: charge it as a
    // balanced fork tree (work adds, span maxes per level).
    fn build_trees(
        sim: &mut Sim,
        blockers: &[Vec<u32>],
        lo: usize,
        hi: usize,
        out: &mut Vec<Option<TasTreeSim>>,
    ) {
        match hi - lo {
            0 => {}
            1 => out.push(TasTreeSim::new(sim, blockers[lo].len())),
            len => {
                let mid = lo + len / 2;
                sim.tick(crate::FORK_COST);
                let mut sa = Sim::new();
                let mut sb = Sim::new();
                build_trees(&mut sa, blockers, lo, mid, out);
                build_trees(&mut sb, blockers, mid, hi, out);
                sim.work += sa.work + sb.work + crate::JOIN_COST;
                sim.span += sa.span.max(sb.span) + crate::JOIN_COST;
            }
        }
    }
    {
        let mut trees = Vec::with_capacity(n);
        build_trees(&mut sim, &st.blockers, 0, n, &mut trees);
        st.trees = trees;
    }

    // The wake cascade. `wake` recurses exactly like Algorithm 4's
    // WakeUp; span accumulates along the recursion, work across it.
    fn wake(sim: &mut Sim, g: &Graph, st: &mut State, v: u32) {
        sim.tick(1);
        st.status[v as usize] = Status::Selected;
        // parallel_for_each u ∈ N(v)
        let neighbors: Vec<u32> = g.neighbors(v).to_vec();
        sim_par_for_each(sim, &neighbors, &mut |sim, &u| {
            sim.tick(1);
            if st.status[u as usize] == Status::Removed {
                return;
            }
            st.status[u as usize] = Status::Removed;
            // parallel_for_each TAS tree containing u
            let watchers = st.watchers[u as usize].clone();
            sim_par_for_each(sim, &watchers, &mut |sim, &(w, leaf)| {
                sim.tick(1);
                if st.status[w as usize] == Status::Removed {
                    return;
                }
                let done = match st.trees[w as usize].as_mut() {
                    Some(t) => t.mark(sim, leaf as usize),
                    None => unreachable!("watcher implies a nonempty tree"),
                };
                if done && st.status[w as usize] == Status::Undecided {
                    wake(sim, g, st, w);
                }
            });
        });
    }

    // Binary-forking for-each that allows recursive &mut access: the
    // simulator is single-threaded, so a plain recursive splitter with
    // parallel *charging* is faithful.
    fn sim_par_for_each<T>(sim: &mut Sim, items: &[T], body: &mut impl FnMut(&mut Sim, &T)) {
        match items.len() {
            0 => {}
            1 => body(sim, &items[0]),
            len => {
                let mid = len / 2;
                sim.tick(crate::FORK_COST);
                let mut sa = Sim::new();
                let mut sb = Sim::new();
                sim_par_for_each(&mut sa, &items[..mid], body);
                sim_par_for_each(&mut sb, &items[mid..], body);
                sim.work += sa.work + sb.work + crate::JOIN_COST;
                sim.span += sa.span.max(sb.span) + crate::JOIN_COST;
            }
        }
    }

    // Initial frontier: vertices with no blockers.
    let roots: Vec<u32> = (0..n as u32)
        .filter(|&v| st.blockers[v as usize].is_empty())
        .collect();
    sim_par_for_each(&mut sim, &roots, &mut |sim, &v| {
        if st.status[v as usize] == Status::Undecided {
            wake(sim, g, &mut st, v);
        }
    });

    let mask: Vec<bool> = st.status.iter().map(|&s| s == Status::Selected).collect();
    let stats = MisSimStats {
        cost: sim.cost(),
        selected: mask.iter().filter(|&&x| x).count(),
    };
    (mask, stats)
}

/// Host-side sequential greedy MIS (the oracle the mask must equal).
pub fn greedy_mis_host(g: &Graph, priority: &[u32]) -> Vec<bool> {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(priority[v as usize]));
    let mut selected = vec![false; n];
    let mut removed = vec![false; n];
    for &v in &order {
        if !removed[v as usize] {
            selected[v as usize] = true;
            for &u in g.neighbors(v) {
                removed[u as usize] = true;
            }
            removed[v as usize] = true;
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, GraphBuilder};
    use pp_parlay::shuffle::random_priorities;

    fn check_equals_greedy(g: &Graph, seed: u64) -> MisSimStats {
        let pri = random_priorities(g.num_vertices(), seed);
        let (mask, stats) = mis_tas_sim(g, &pri);
        assert_eq!(mask, greedy_mis_host(g, &pri), "sim ≠ sequential greedy");
        stats
    }

    #[test]
    fn matches_greedy_on_many_graphs() {
        check_equals_greedy(&gen::uniform(400, 1600, 1), 2);
        check_equals_greedy(&gen::cycle(101), 3);
        check_equals_greedy(&gen::star(64), 4);
        check_equals_greedy(&gen::grid2d(15, 20), 5);
        check_equals_greedy(&gen::rmat(9, 4096, 6), 7);
    }

    #[test]
    fn work_is_linear_in_edges() {
        // Theorem 5.7's work half: each TAS-tree node absorbs ≤ 2 TAS
        // attempts, so total work = O(n + m) with a small constant.
        for (g, seed) in [
            (gen::uniform(2000, 8000, 8), 9u64),
            (gen::uniform(2000, 32_000, 10), 11),
        ] {
            let pri = random_priorities(g.num_vertices(), seed);
            let (_, stats) = mis_tas_sim(&g, &pri);
            let nm = (g.num_vertices() + g.num_edges()) as u64;
            assert!(
                stats.cost.work <= 20 * nm,
                "work {} ≫ O(n+m) = {nm}",
                stats.cost.work
            );
        }
    }

    #[test]
    fn span_is_polylog_on_random_priorities() {
        // Theorem 5.7's span half, checked by scaling: quadrupling n
        // multiplies a polylog span by a small factor, a linear span
        // by ~4. Same average degree at both sizes.
        let span_at = |n: usize, seed: u64| {
            let g = gen::uniform(n, 4 * n, seed);
            let pri = random_priorities(n, seed + 1);
            let (_, stats) = mis_tas_sim(&g, &pri);
            stats.cost.span
        };
        let s1 = span_at(4_000, 12);
        let s2 = span_at(16_000, 13);
        let ratio = s2 as f64 / s1 as f64;
        assert!(
            ratio < 2.0,
            "span scaled ×{ratio:.2} for 4× vertices — not polylog"
        );
        // Absolute sanity: span ≪ n.
        assert!(s2 < 4_000, "span {s2} not sublinear");
    }

    #[test]
    fn span_is_linear_on_adversarial_chain() {
        // Monotone priorities on a path: dependence depth n/2; the model
        // must show the Θ(n) span (no algorithm can be round-efficient
        // below the DG depth).
        let n = 3000usize;
        let mut b = GraphBuilder::new(n).symmetric();
        for i in 0..n - 1 {
            b.add(i as u32, i as u32 + 1);
        }
        let g = b.build();
        let pri: Vec<u32> = (0..n as u32).rev().collect();
        let (mask, stats) = mis_tas_sim(&g, &pri);
        assert_eq!(mask, greedy_mis_host(&g, &pri));
        assert!(
            stats.cost.span as usize >= n,
            "span {} below the chain depth",
            stats.cost.span
        );
    }

    #[test]
    fn empty_graph_all_selected_logarithmic_span() {
        let g = GraphBuilder::new(10_000).build();
        let pri = random_priorities(10_000, 1);
        let (mask, stats) = mis_tas_sim(&g, &pri);
        assert!(mask.iter().all(|&x| x));
        // Three balanced passes (degree charge, tree build, root wake):
        // span = Θ(log n) with a small constant.
        assert!(
            stats.cost.span <= 8 * crate::log2_ceil(10_000) + 16,
            "span {}",
            stats.cost.span
        );
    }

    #[test]
    fn single_vertex_and_edge() {
        let g = GraphBuilder::new(1).build();
        let (mask, _) = mis_tas_sim(&g, &[0]);
        assert_eq!(mask, vec![true]);

        let mut b = GraphBuilder::new(2).symmetric();
        b.add(0, 1);
        let g = b.build();
        let (mask, _) = mis_tas_sim(&g, &[0, 1]);
        assert_eq!(mask, vec![false, true]);
    }
}
