//! Algorithm 1's round skeleton, executed in the model.
//!
//! The phase-parallel algorithm processes all objects of rank `i` in
//! round `i` (Cor. 3.3); with a Type 1 frontier extraction costing
//! polylog work per round and per-object processing cost `p`, the span
//! is `O(rank(S) · (q + p + log n))` — rounds × (query + parallel-for
//! overhead). This module executes that skeleton under [`Sim`] so the
//! claim can be checked with explicit constants, for any rank vector
//! (e.g. real LIS DP values).

use crate::{Cost, Sim};

/// Counters from a simulated phase-parallel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseSimStats {
    /// Rounds executed (= max rank; Thm 3.4).
    pub rounds: u32,
    /// Largest frontier.
    pub max_frontier: usize,
    /// Model cost of the whole run.
    pub cost: Cost,
}

/// Execute Algorithm 1 in the model: objects grouped by `ranks`
/// (1-based; rank 0 objects are ignored), `query_cost` charged once per
/// round for frontier extraction (the Type 1 range query), and
/// `process_cost` charged per object inside the round's parallel for.
pub fn phase_parallel_sim(ranks: &[u32], query_cost: u64, process_cost: u64) -> PhaseSimStats {
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    // Host-side bookkeeping (the real algorithm finds frontiers with the
    // range query we charge for; the simulator just needs the sets).
    let mut frontiers: Vec<Vec<u32>> = vec![Vec::new(); max_rank as usize + 1];
    for (i, &r) in ranks.iter().enumerate() {
        if r > 0 {
            frontiers[r as usize].push(i as u32);
        }
    }
    let mut sim = Sim::new();
    let mut stats = PhaseSimStats::default();
    for frontier in &frontiers[1..] {
        stats.rounds += 1;
        stats.max_frontier = stats.max_frontier.max(frontier.len());
        sim.tick(query_cost); // extract T_i
        sim.par_for(0, frontier.len(), &mut |s, _| s.tick(process_cost));
    }
    stats.cost = sim.cost();
    stats
}

/// The classic `O(n log n)` LIS DP (host-side), used to produce real
/// rank vectors for the simulation tests.
pub fn lis_ranks(values: &[i64]) -> Vec<u32> {
    // dp[i] = LIS length ending at i, via patience-sorting tails.
    let mut tails: Vec<i64> = Vec::new();
    let mut ranks = Vec::with_capacity(values.len());
    for &v in values {
        let pos = tails.partition_point(|&t| t < v);
        if pos == tails.len() {
            tails.push(v);
        } else {
            tails[pos] = v;
        }
        ranks.push(pos as u32 + 1);
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log2_ceil;
    use pp_parlay::rng::Rng;

    #[test]
    fn rounds_equal_max_rank() {
        let ranks = vec![1, 2, 2, 3, 1, 1, 4];
        let st = phase_parallel_sim(&ranks, 10, 5);
        assert_eq!(st.rounds, 4);
        assert_eq!(st.max_frontier, 3);
    }

    #[test]
    fn span_bound_tracks_rounds_times_log() {
        // Span ≤ rounds · (query + process + 2·lg(max frontier) + c).
        let mut r = Rng::new(1);
        let values: Vec<i64> = (0..20_000).map(|_| r.range(1 << 30) as i64).collect();
        let ranks = lis_ranks(&values);
        let (q, p) = (16u64, 4u64);
        let st = phase_parallel_sim(&ranks, q, p);
        let bound = u64::from(st.rounds) * (q + p + 2 * log2_ceil(st.max_frontier) + 4);
        assert!(
            st.cost.span <= bound,
            "span {} exceeds modeled bound {bound}",
            st.cost.span
        );
        // And the span is genuinely sublinear in n for random input
        // (rank ≈ 2√n ≪ n).
        assert!(st.cost.span < 20_000);
    }

    #[test]
    fn work_is_rounds_query_plus_linear() {
        let mut r = Rng::new(2);
        let values: Vec<i64> = (0..10_000).map(|_| r.range(1 << 20) as i64).collect();
        let ranks = lis_ranks(&values);
        let st = phase_parallel_sim(&ranks, 7, 3);
        // Work = Σ rounds (query) + Σ objects (process + for-loop forks).
        let n = values.len() as u64;
        assert!(st.cost.work >= u64::from(st.rounds) * 7 + 3 * n);
        assert!(st.cost.work <= u64::from(st.rounds) * 7 + 10 * n + 2 * u64::from(st.rounds));
    }

    #[test]
    fn adversarial_sorted_input_is_sequential() {
        // Increasing input: rank = n; the skeleton degenerates to a
        // sequential loop (span ≈ work) — the paper's worst case.
        let values: Vec<i64> = (0..3000).collect();
        let ranks = lis_ranks(&values);
        let st = phase_parallel_sim(&ranks, 2, 1);
        assert_eq!(st.rounds, 3000);
        assert_eq!(st.max_frontier, 1);
        assert_eq!(st.cost.span, st.cost.work);
    }

    #[test]
    fn lis_ranks_reference_values() {
        // Fig. 1's example: 4 7 3 2 8 1 6 5 → LIS 3.
        let ranks = lis_ranks(&[4, 7, 3, 2, 8, 1, 6, 5]);
        assert_eq!(ranks, vec![1, 2, 1, 1, 3, 1, 2, 2]);
    }
}
