//! Edge-balanced work splitting for frontier traversals.
//!
//! Relaxing a frontier by `flat_map`-ing over its vertices splits work
//! at *vertex* granularity: on skewed graphs (`rmat`, `star-hub`) one
//! hub vertex can carry most of the frontier's edges, so vertex-count
//! splitting leaves every other worker idle behind one straggler. The
//! degree-prefix chunker here splits a frontier into **packets of
//! approximately equal out-edge totals** instead, the way
//! direction-optimizing frontier engines split CSR traversals:
//!
//! 1. take the exclusive prefix sums of the frontier's out-degrees
//!    ([`pp_parlay::scan_exclusive_into`], into a caller-recycled
//!    buffer),
//! 2. binary-search the `p·total/packets` quantiles in that prefix to
//!    get packet boundaries.
//!
//! Packets still split at vertex boundaries (a single vertex's edge
//! list is never divided), so a packet may exceed the target by at most
//! the largest member degree; in exchange, consumers iterate plain
//! sub-slices with no per-edge indirection.
//!
//! [`frontier_edge_bounds`] serves sparse (explicit vertex list)
//! frontiers; [`vertex_edge_bounds`] serves dense (bitmap) frontiers by
//! splitting the whole vertex range on the CSR offset array itself —
//! no per-frontier scan at all. Both write boundaries into
//! caller-recycled buffers, so steady-state queries allocate nothing.

use crate::Graph;
use pp_parlay::monoid::sum_monoid;
use pp_parlay::scan_exclusive_into;
use rayon::prelude::*;

/// Frontiers at most this many vertices long are served as a single
/// packet: below this size the prefix scan costs more than the
/// imbalance it removes.
pub const SMALL_FRONTIER: usize = 2048;

/// Default packet count for the ambient pool: enough packets per worker
/// for work stealing to smooth residual imbalance.
pub fn default_packets() -> usize {
    rayon::current_num_threads() * 4
}

/// Split `frontier` into ≤ `packets` contiguous index ranges of
/// approximately equal out-edge totals. Boundaries land in `bounds`
/// (cleared first): packet `p` covers `frontier[bounds[p]..bounds[p+1]]`.
/// `deg` and `prefix` are scratch buffers recycled by the caller.
/// Returns the frontier's total out-edge count (the work the packets
/// cover — callers use it as their relaxation counter, so the hot loop
/// needs no per-vertex counting atomics).
pub fn frontier_edge_bounds(
    g: &Graph,
    frontier: &[u32],
    packets: usize,
    deg: &mut Vec<u64>,
    prefix: &mut Vec<u64>,
    bounds: &mut Vec<usize>,
) -> u64 {
    bounds.clear();
    if packets <= 1 || frontier.len() <= SMALL_FRONTIER {
        bounds.push(0);
        bounds.push(frontier.len());
        return frontier.iter().map(|&v| g.degree(v) as u64).sum();
    }
    deg.clear();
    // Grain-bounded: a degree lookup is a two-load subtraction, so
    // chunks below `SMALL_FRONTIER` items would be all fork overhead.
    deg.par_extend(
        frontier
            .par_iter()
            .with_min_len(SMALL_FRONTIER)
            .map(|&v| g.degree(v) as u64),
    );
    let total = scan_exclusive_into(&sum_monoid::<u64>(), deg, prefix);
    if total == 0 {
        bounds.push(0);
        bounds.push(frontier.len());
        return 0;
    }
    quantile_bounds(prefix, total, packets, frontier.len(), bounds);
    total
}

/// Split the whole vertex range `0..n` into ≤ `packets` contiguous
/// ranges of approximately equal edge totals, using the CSR offset
/// array as a ready-made degree prefix — the dense-frontier
/// counterpart of [`frontier_edge_bounds`] (consumers filter members
/// by stamp inside each range). Boundaries land in `bounds` (cleared
/// first).
pub fn vertex_edge_bounds(g: &Graph, packets: usize, bounds: &mut Vec<usize>) {
    bounds.clear();
    let n = g.num_vertices();
    let total = g.num_edges();
    if packets <= 1 || n <= SMALL_FRONTIER || total == 0 {
        bounds.push(0);
        bounds.push(n);
        return;
    }
    let offsets = &g.offsets()[..n];
    for p in 0..packets {
        let target = (p * total) / packets;
        bounds.push(offsets.partition_point(|&x| x < target));
    }
    bounds.push(n);
}

fn quantile_bounds(prefix: &[u64], total: u64, packets: usize, len: usize, out: &mut Vec<usize>) {
    for p in 0..packets {
        let target = (p as u64 * total) / packets as u64;
        out.push(prefix.partition_point(|&x| x < target));
    }
    out.push(len);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn check_cover(bounds: &[usize], len: usize) {
        assert_eq!(*bounds.first().unwrap(), 0);
        assert_eq!(*bounds.last().unwrap(), len);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "{bounds:?}");
    }

    #[test]
    fn small_frontier_is_one_packet() {
        let g = gen::uniform(100, 400, 1);
        let frontier: Vec<u32> = (0..50).collect();
        let (mut deg, mut prefix, mut bounds) = (Vec::new(), Vec::new(), Vec::new());
        frontier_edge_bounds(&g, &frontier, 8, &mut deg, &mut prefix, &mut bounds);
        assert_eq!(bounds, vec![0, 50]);
    }

    #[test]
    fn packets_balance_star_hub_edges() {
        // A star: vertex 0 carries all edges. The chunker must cover
        // the frontier and isolate the hub's packet boundary-correctly.
        let g = gen::star(10_000);
        let frontier: Vec<u32> = (0..10_000).collect();
        let (mut deg, mut prefix, mut bounds) = (Vec::new(), Vec::new(), Vec::new());
        frontier_edge_bounds(&g, &frontier, 8, &mut deg, &mut prefix, &mut bounds);
        check_cover(&bounds, frontier.len());
        // Every edge is accounted for exactly once across packets.
        let covered: u64 = bounds
            .windows(2)
            .map(|w| {
                frontier[w[0]..w[1]]
                    .iter()
                    .map(|&v| g.degree(v) as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(covered, g.num_edges() as u64);
    }

    #[test]
    fn uniform_frontier_splits_evenly() {
        let g = gen::uniform(20_000, 80_000, 3);
        let frontier: Vec<u32> = (0..20_000).collect();
        let (mut deg, mut prefix, mut bounds) = (Vec::new(), Vec::new(), Vec::new());
        frontier_edge_bounds(&g, &frontier, 4, &mut deg, &mut prefix, &mut bounds);
        check_cover(&bounds, frontier.len());
        let per_packet: Vec<u64> = bounds
            .windows(2)
            .map(|w| {
                frontier[w[0]..w[1]]
                    .iter()
                    .map(|&v| g.degree(v) as u64)
                    .sum::<u64>()
            })
            .collect();
        let target = g.num_edges() as u64 / 4;
        for &p in &per_packet {
            assert!(p < 2 * target, "packet {p} vs target {target}");
        }
    }

    #[test]
    fn vertex_bounds_cover_the_graph() {
        let g = gen::rmat(13, 32_768, 7);
        let mut bounds = Vec::new();
        vertex_edge_bounds(&g, 8, &mut bounds);
        check_cover(&bounds, g.num_vertices());
        let covered: usize = bounds
            .windows(2)
            .map(|w| {
                (w[0] as u32..w[1] as u32)
                    .map(|v| g.degree(v))
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(covered, g.num_edges());
    }
}
