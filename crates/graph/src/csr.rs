//! Compressed sparse row (CSR) graphs.

/// Why raw CSR arrays failed validation ([`Graph::try_from_csr`]).
///
/// Every variant names the first invariant the arrays broke; hostile or
/// corrupted input surfaces as one of these instead of a panic, so the
/// serve boundary can turn it into a typed `InvalidInput` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// `offsets` is empty — a CSR needs `n + 1` entries, even for `n = 0`.
    EmptyOffsets,
    /// `offsets` decreases somewhere: `offsets[at + 1] < offsets[at]`.
    NonMonotoneOffsets {
        /// Index of the first decreasing window.
        at: usize,
    },
    /// `offsets.last()` does not equal `targets.len()`.
    OffsetTargetMismatch {
        /// The final offset (claimed arc count).
        last_offset: usize,
        /// The actual number of stored targets.
        targets: usize,
    },
    /// `weights` is non-empty but not parallel to `targets`.
    WeightLengthMismatch {
        /// Number of weights supplied.
        weights: usize,
        /// Number of targets they should parallel.
        targets: usize,
    },
    /// An arc points at a vertex `>= n`.
    TargetOutOfRange {
        /// Arc slot holding the bad target.
        arc: usize,
        /// The out-of-range target vertex.
        target: u32,
        /// Number of vertices in the graph.
        vertices: usize,
    },
    /// More arcs than the arc index space: arc slots are stored as `u32`
    /// throughout the algorithm layer (e.g. CSR mirror slots), so a
    /// graph may hold at most `u32::MAX` arcs.
    ArcCountOverflow {
        /// The claimed arc count.
        arcs: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::EmptyOffsets => write!(f, "offsets must have n + 1 entries"),
            GraphError::NonMonotoneOffsets { at } => {
                write!(f, "offsets decrease at index {at}")
            }
            GraphError::OffsetTargetMismatch {
                last_offset,
                targets,
            } => write!(
                f,
                "final offset {last_offset} does not match {targets} stored targets"
            ),
            GraphError::WeightLengthMismatch { weights, targets } => write!(
                f,
                "{weights} weights are not parallel to {targets} targets"
            ),
            GraphError::TargetOutOfRange {
                arc,
                target,
                vertices,
            } => write!(
                f,
                "edge target out of range: arc {arc} points at {target} in a {vertices}-vertex graph"
            ),
            GraphError::ArcCountOverflow { arcs } => {
                write!(f, "{arcs} arcs overflow the u32 arc index space")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A graph in CSR form. Directed in general; undirected graphs store both
/// arc directions (built via [`crate::builder::GraphBuilder::symmetric`]).
/// Weights are optional: `weights` is either empty or parallel to
/// `targets`.
#[derive(Debug)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<u64>,
}

impl Graph {
    /// Construct from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent; the message is the
    /// [`GraphError`] the checked constructor
    /// ([`Graph::try_from_csr`]) would have returned.
    pub fn from_csr(offsets: Vec<usize>, targets: Vec<u32>, weights: Vec<u64>) -> Self {
        match Self::try_from_csr(offsets, targets, weights) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validate raw CSR arrays and construct the graph, or report the
    /// first broken invariant as a typed [`GraphError`]. `O(n + m)`.
    pub fn try_from_csr(
        offsets: Vec<usize>,
        targets: Vec<u32>,
        weights: Vec<u64>,
    ) -> Result<Self, GraphError> {
        check_csr(&offsets, &targets, &weights)?;
        Ok(Self {
            offsets,
            targets,
            weights,
        })
    }

    /// Re-check every CSR invariant on an already-constructed graph —
    /// the materializer-boundary hook: anything that hands a graph
    /// across a trust boundary can re-assert well-formedness for the
    /// cost of one `O(n + m)` scan.
    pub fn validate(&self) -> Result<(), GraphError> {
        check_csr(&self.offsets, &self.targets, &self.weights)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs (an undirected edge counts twice).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Whether edge weights are present.
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The CSR offset array (`n + 1` entries): vertex `v`'s arcs occupy
    /// `offsets[v]..offsets[v + 1]` of [`Graph::neighbors`]' backing
    /// storage. Exposed for edge-balanced work splitting
    /// ([`crate::chunk`]), which uses it as a ready-made degree prefix.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Weights parallel to [`Graph::neighbors`].
    ///
    /// # Panics
    /// Panics if the graph has edges but no weights.
    pub fn edge_weights(&self, v: u32) -> &[u64] {
        if self.targets.is_empty() {
            return &[];
        }
        assert!(self.is_weighted());
        &self.weights[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Smallest edge weight `w*` (`None` if unweighted or edgeless).
    pub fn min_weight(&self) -> Option<u64> {
        self.weights.iter().copied().min()
    }

    /// Largest edge weight (`None` if unweighted or edgeless).
    pub fn max_weight(&self) -> Option<u64> {
        self.weights.iter().copied().max()
    }

    /// Check structural symmetry (every arc has its reverse): true for
    /// well-formed undirected graphs. `O(m log m)`; for tests.
    pub fn is_symmetric(&self) -> bool {
        let mut arcs: Vec<(u32, u32)> = Vec::with_capacity(self.num_edges());
        for u in 0..self.num_vertices() as u32 {
            for &v in self.neighbors(u) {
                arcs.push((u, v));
            }
        }
        let mut rev: Vec<(u32, u32)> = arcs.iter().map(|&(u, v)| (v, u)).collect();
        arcs.sort_unstable();
        rev.sort_unstable();
        arcs == rev
    }
}

/// The single source of CSR truth behind [`Graph::try_from_csr`] and
/// [`Graph::validate`]: reports the first broken invariant.
fn check_csr(offsets: &[usize], targets: &[u32], weights: &[u64]) -> Result<(), GraphError> {
    if offsets.is_empty() {
        return Err(GraphError::EmptyOffsets);
    }
    if let Some(at) = offsets.windows(2).position(|w| w[0] > w[1]) {
        return Err(GraphError::NonMonotoneOffsets { at });
    }
    let last_offset = *offsets.last().unwrap();
    if last_offset > u32::MAX as usize {
        return Err(GraphError::ArcCountOverflow { arcs: last_offset });
    }
    if last_offset != targets.len() {
        return Err(GraphError::OffsetTargetMismatch {
            last_offset,
            targets: targets.len(),
        });
    }
    if !weights.is_empty() && weights.len() != targets.len() {
        return Err(GraphError::WeightLengthMismatch {
            weights: weights.len(),
            targets: targets.len(),
        });
    }
    let n = offsets.len() - 1;
    if let Some(arc) = targets.iter().position(|&t| (t as usize) >= n) {
        return Err(GraphError::TargetOutOfRange {
            arc,
            target: targets[arc],
            vertices: n,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        // 0-1, 1-2, 0-2 undirected.
        Graph::from_csr(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1], vec![])
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(!g.is_weighted());
        assert!(g.is_symmetric());
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn weighted_graph() {
        let g = Graph::from_csr(vec![0, 1, 2], vec![1, 0], vec![5, 7]);
        assert!(g.is_weighted());
        assert_eq!(g.edge_weights(0), &[5]);
        assert_eq!(g.min_weight(), Some(5));
        assert_eq!(g.max_weight(), Some(7));
    }

    #[test]
    fn asymmetric_detected() {
        let g = Graph::from_csr(vec![0, 1, 1], vec![1], vec![]);
        assert!(!g.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "edge target out of range")]
    fn rejects_bad_target() {
        Graph::from_csr(vec![0, 1], vec![5], vec![]);
    }

    #[test]
    fn try_from_csr_reports_each_invariant() {
        assert_eq!(
            Graph::try_from_csr(vec![], vec![], vec![]).unwrap_err(),
            GraphError::EmptyOffsets
        );
        assert_eq!(
            Graph::try_from_csr(vec![0, 2, 1], vec![1, 0], vec![]).unwrap_err(),
            GraphError::NonMonotoneOffsets { at: 1 }
        );
        assert_eq!(
            Graph::try_from_csr(vec![0, 3], vec![0], vec![]).unwrap_err(),
            GraphError::OffsetTargetMismatch {
                last_offset: 3,
                targets: 1
            }
        );
        assert_eq!(
            Graph::try_from_csr(vec![0, 1, 2], vec![1, 0], vec![7]).unwrap_err(),
            GraphError::WeightLengthMismatch {
                weights: 1,
                targets: 2
            }
        );
        assert_eq!(
            Graph::try_from_csr(vec![0, 1], vec![5], vec![]).unwrap_err(),
            GraphError::TargetOutOfRange {
                arc: 0,
                target: 5,
                vertices: 1
            }
        );
        assert_eq!(
            Graph::try_from_csr(vec![0, u32::MAX as usize + 1], vec![], vec![]).unwrap_err(),
            GraphError::ArcCountOverflow {
                arcs: u32::MAX as usize + 1
            }
        );
    }

    #[test]
    fn validate_passes_constructed_graphs() {
        assert_eq!(triangle().validate(), Ok(()));
        assert_eq!(
            Graph::from_csr(vec![0, 1, 2], vec![1, 0], vec![5, 7]).validate(),
            Ok(())
        );
    }

    #[test]
    fn try_from_csr_accepts_valid_arrays() {
        let g = Graph::try_from_csr(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1], vec![]).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
        // The n = 0 CSR is a single zero offset — valid and edgeless.
        let empty = Graph::try_from_csr(vec![0], vec![], vec![]).unwrap();
        assert_eq!(empty.num_vertices(), 0);
        assert_eq!(empty.num_edges(), 0);
    }
}
