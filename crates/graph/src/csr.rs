//! Compressed sparse row (CSR) graphs.

/// A graph in CSR form. Directed in general; undirected graphs store both
/// arc directions (built via [`crate::builder::GraphBuilder::symmetric`]).
/// Weights are optional: `weights` is either empty or parallel to
/// `targets`.
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<u64>,
}

impl Graph {
    /// Construct from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent.
    pub fn from_csr(offsets: Vec<usize>, targets: Vec<u32>, weights: Vec<u64>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n + 1 entries");
        assert_eq!(*offsets.last().unwrap(), targets.len());
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(weights.is_empty() || weights.len() == targets.len());
        let n = offsets.len() - 1;
        assert!(
            targets.iter().all(|&t| (t as usize) < n),
            "edge target out of range"
        );
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs (an undirected edge counts twice).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Whether edge weights are present.
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The CSR offset array (`n + 1` entries): vertex `v`'s arcs occupy
    /// `offsets[v]..offsets[v + 1]` of [`Graph::neighbors`]' backing
    /// storage. Exposed for edge-balanced work splitting
    /// ([`crate::chunk`]), which uses it as a ready-made degree prefix.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Weights parallel to [`Graph::neighbors`].
    ///
    /// # Panics
    /// Panics if the graph has edges but no weights.
    pub fn edge_weights(&self, v: u32) -> &[u64] {
        if self.targets.is_empty() {
            return &[];
        }
        assert!(self.is_weighted());
        &self.weights[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Smallest edge weight `w*` (`None` if unweighted or edgeless).
    pub fn min_weight(&self) -> Option<u64> {
        self.weights.iter().copied().min()
    }

    /// Largest edge weight (`None` if unweighted or edgeless).
    pub fn max_weight(&self) -> Option<u64> {
        self.weights.iter().copied().max()
    }

    /// Check structural symmetry (every arc has its reverse): true for
    /// well-formed undirected graphs. `O(m log m)`; for tests.
    pub fn is_symmetric(&self) -> bool {
        let mut arcs: Vec<(u32, u32)> = Vec::with_capacity(self.num_edges());
        for u in 0..self.num_vertices() as u32 {
            for &v in self.neighbors(u) {
                arcs.push((u, v));
            }
        }
        let mut rev: Vec<(u32, u32)> = arcs.iter().map(|&(u, v)| (v, u)).collect();
        arcs.sort_unstable();
        rev.sort_unstable();
        arcs == rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        // 0-1, 1-2, 0-2 undirected.
        Graph::from_csr(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1], vec![])
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(!g.is_weighted());
        assert!(g.is_symmetric());
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn weighted_graph() {
        let g = Graph::from_csr(vec![0, 1, 2], vec![1, 0], vec![5, 7]);
        assert!(g.is_weighted());
        assert_eq!(g.edge_weights(0), &[5]);
        assert_eq!(g.min_weight(), Some(5));
        assert_eq!(g.max_weight(), Some(7));
    }

    #[test]
    fn asymmetric_detected() {
        let g = Graph::from_csr(vec![0, 1, 1], vec![1], vec![]);
        assert!(!g.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "edge target out of range")]
    fn rejects_bad_target() {
        Graph::from_csr(vec![0, 1], vec![5], vec![]);
    }
}
