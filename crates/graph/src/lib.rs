//! # `pp-graph` — graph substrate for the phase-parallel experiments
//!
//! A compact CSR (compressed sparse row) graph representation plus the
//! synthetic generators that stand in for the paper's datasets:
//!
//! * **RMAT power-law graphs** replace the Twitter / Friendster social
//!   networks of §6.3 (low diameter, skewed degrees — the two properties
//!   the SSSP experiment exercises).
//! * **2D grid graphs** replace the OpenStreetMap road graphs mentioned
//!   in §6.3 (high diameter, small frontiers).
//! * **Uniform (Erdős–Rényi-style) graphs** for MIS / coloring / matching
//!   experiments and tests.
//! * **Random geometric graphs** (mesh-like locality), **2D tori**
//!   (regular degree, no boundary), and **hub-and-spoke graphs**
//!   (adversarial degree skew) — the extra shapes behind the
//!   `pp-workloads` scenario families.
//!
//! Edge weights are drawn uniformly from `[w*, w_max]` exactly as in the
//! paper's SSSP setup ("we fix the largest edge weight as 2^23, vary w*
//! ... and set the weight uniformly at random in this range").
//!
//! See DESIGN.md §2 for the substitution rationale.

#![forbid(unsafe_code)]

pub mod bfs;
pub mod builder;
pub mod chunk;
pub mod csr;
pub mod gen;

pub use builder::GraphBuilder;
pub use csr::{Graph, GraphError};
