//! Synthetic graph generators — the stand-ins for the paper's datasets
//! (see DESIGN.md §2 for the substitution table).

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use pp_parlay::rng::{bounded, hash64, unit_f64, Rng};
use rayon::prelude::*;

/// Uniformly random undirected graph: `m` edges sampled uniformly from
/// all pairs (duplicates collapse, so the result has ≤ m edges).
pub fn uniform(n: usize, m: usize, seed: u64) -> Graph {
    let edges: Vec<(u32, u32, u64)> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let u = bounded(hash64(seed, 2 * i), n as u64) as u32;
            let v = bounded(hash64(seed, 2 * i + 1), n as u64) as u32;
            (u, v, 1)
        })
        .collect();
    let mut b = GraphBuilder::new(n).symmetric();
    b.extend(edges);
    b.build()
}

/// RMAT power-law graph (Chakrabarti–Zhan–Faloutsos) over `2^scale`
/// vertices with ~`m` edges: the "social network" substitute for the
/// Twitter / Friendster graphs of §6.3. Default skew (0.57, 0.19, 0.19)
/// gives low diameter and heavy-tailed degrees.
pub fn rmat(scale: u32, m: usize, seed: u64) -> Graph {
    rmat_with(scale, m, 0.57, 0.19, 0.19, seed)
}

/// RMAT with explicit quadrant probabilities `(a, b, c)`; `d = 1-a-b-c`.
pub fn rmat_with(scale: u32, m: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    assert!(scale <= 31);
    assert!(a + b + c < 1.0 + 1e-9);
    let n = 1usize << scale;
    let edges: Vec<(u32, u32, u64)> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let (mut u, mut v) = (0u32, 0u32);
            let mut r = Rng::new(hash64(seed, i));
            for _ in 0..scale {
                u <<= 1;
                v <<= 1;
                // Slightly perturb quadrant probabilities per level, the
                // standard trick to avoid artificial degree spikes.
                let noise = 0.05 * (r.f64() - 0.5);
                let (pa, pb, pc) = (a + noise, b - noise / 2.0, c - noise / 2.0);
                let x = r.f64();
                if x < pa {
                    // top-left: no bits set
                } else if x < pa + pb {
                    v |= 1;
                } else if x < pa + pb + pc {
                    u |= 1;
                } else {
                    u |= 1;
                    v |= 1;
                }
            }
            (u, v, 1)
        })
        .collect();
    let mut bld = GraphBuilder::new(n).symmetric();
    bld.extend(edges);
    bld.build()
}

/// 2D grid graph (`rows × cols` vertices, 4-neighborhood): the
/// high-diameter "road graph" substitute (§6.3 remark).
pub fn grid2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::new(n).symmetric();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// 2D torus (`rows × cols` vertices, 4-neighborhood with wrap-around
/// edges): the grid's regular-degree cousin — every vertex has degree
/// exactly 4 (for `rows, cols ≥ 3`), no boundary effects.
pub fn torus2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::new(n).symmetric();
    for r in 0..rows {
        for c in 0..cols {
            if cols > 1 {
                b.add(id(r, c), id(r, (c + 1) % cols));
            }
            if rows > 1 {
                b.add(id(r, c), id((r + 1) % rows, c));
            }
        }
    }
    b.build()
}

/// Random geometric graph: `n` points uniform in the unit square, every
/// pair within Euclidean distance `r` connected, with `r` chosen so the
/// expected average degree is `degree` (`π r² n ≈ degree`). The
/// mesh-like workload: strong locality, near-constant degrees, diameter
/// `Θ(√(n/degree))` — between the uniform and grid extremes.
///
/// Neighbor search is bucketed on an `r`-sized cell grid, so generation
/// is `O(n · degree)` expected rather than `O(n²)`.
pub fn random_geometric(n: usize, degree: usize, seed: u64) -> Graph {
    let n = n.max(1);
    let pts: Vec<(f64, f64)> = (0..n as u64)
        .map(|i| {
            (
                unit_f64(hash64(seed, 2 * i)),
                unit_f64(hash64(seed, 2 * i + 1)),
            )
        })
        .collect();
    let r = (degree.max(1) as f64 / (std::f64::consts::PI * n as f64))
        .sqrt()
        .min(1.0);
    let r2 = r * r;
    // Cell side ≥ r, so any edge spans at most one cell in each axis.
    let cells = (1.0 / r).floor().max(1.0) as usize;
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut bucket = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        bucket[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }
    let mut b = GraphBuilder::new(n).symmetric();
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dy in cy.saturating_sub(1)..=(cy + 1).min(cells - 1) {
            for dx in cx.saturating_sub(1)..=(cx + 1).min(cells - 1) {
                for &j in &bucket[dy * cells + dx] {
                    if (i as u32) < j {
                        let (px, py) = pts[j as usize];
                        if (x - px) * (x - px) + (y - py) * (y - py) <= r2 {
                            b.add(i as u32, j);
                        }
                    }
                }
            }
        }
    }
    b.build()
}

/// Hub-and-spoke graph: `hubs` mutually connected hub vertices, every
/// other vertex attached to one (sometimes two) random hubs. The
/// adversarial-degree workload — hubs see `Θ(n / hubs)` neighbors while
/// spokes have degree 1–2, stressing skewed-frontier handling the way
/// [`star`] does but with enough hubs to keep some parallelism.
pub fn star_hub(n: usize, hubs: usize, seed: u64) -> Graph {
    let n = n.max(1);
    let h = hubs.clamp(1, n);
    let mut b = GraphBuilder::new(n).symmetric();
    for i in 0..h as u32 {
        for j in i + 1..h as u32 {
            b.add(i, j);
        }
    }
    for v in h as u32..n as u32 {
        b.add(v, bounded(hash64(seed, u64::from(v)), h as u64) as u32);
        // A second hub for half the spokes keeps the graph from being a
        // forest of pure stars (cycles through hub pairs exist).
        if hash64(seed ^ 0x5b, u64::from(v)) & 1 == 1 {
            b.add(
                v,
                bounded(hash64(seed ^ 0xa7, u64::from(v)), h as u64) as u32,
            );
        }
    }
    b.build()
}

/// Simple cycle over `n` vertices (diameter `n/2` — worst-case rank).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).symmetric();
    for i in 0..n {
        b.add(i as u32, ((i + 1) % n) as u32);
    }
    b.build()
}

/// Star: vertex 0 adjacent to all others (`d_max = n - 1`).
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).symmetric();
    for i in 1..n {
        b.add(0, i as u32);
    }
    b.build()
}

/// Attach weights drawn uniformly from `[w_min, w_max]` to an existing
/// graph, assigning each undirected edge one weight (both arc directions
/// agree) — the §6.3 weighting scheme.
pub fn with_uniform_weights(g: &Graph, w_min: u64, w_max: u64, seed: u64) -> Graph {
    assert!(w_min >= 1 && w_min <= w_max);
    let n = g.num_vertices();
    let mut b = GraphBuilder::new(n).weighted();
    let mut edges = Vec::with_capacity(g.num_edges());
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            // Weight keyed on the canonical arc so (u,v) and (v,u) match.
            let (a, bb) = if u <= v { (u, v) } else { (v, u) };
            let key = (a as u64) << 32 | bb as u64;
            let w = w_min + bounded(hash64(seed, key), w_max - w_min + 1);
            edges.push((u, v, w));
        }
    }
    b.extend(edges);
    b.build()
}

/// Attach unit weights to an existing graph: the weighted view of an
/// unweighted instance (SSSP degenerates to BFS distances). The `w/unit`
/// scenario distribution.
pub fn with_unit_weights(g: &Graph) -> Graph {
    let n = g.num_vertices();
    let mut b = GraphBuilder::new(n).weighted();
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            b.add_weighted(u, v, 1);
        }
    }
    b.build()
}

/// Attach weights drawn from an exponential distribution with the given
/// `mean` (floored at 1), assigning each undirected edge one weight —
/// heavy mass near w* with a long tail, the opposite stress to the
/// uniform range. The `w/exp` scenario distribution.
pub fn with_exp_weights(g: &Graph, mean: u64, seed: u64) -> Graph {
    assert!(mean >= 1);
    let n = g.num_vertices();
    let mut b = GraphBuilder::new(n).weighted();
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            // Weight keyed on the canonical arc so (u,v) and (v,u) match.
            let (a, bb) = if u <= v { (u, v) } else { (v, u) };
            let key = (a as u64) << 32 | bb as u64;
            let unit = unit_f64(hash64(seed, key));
            let w = 1 + (-(mean as f64) * unit.max(1e-300).ln()) as u64;
            b.add_weighted(u, v, w);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape() {
        let g = uniform(100, 400, 1);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() <= 800);
        assert!(g.num_edges() > 400); // few collisions expected
        assert!(g.is_symmetric());
    }

    #[test]
    fn rmat_skewed_degrees() {
        let g = rmat(10, 8 * 1024, 7);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.is_symmetric());
        // Power-law-ish: max degree far above average degree.
        let avg = g.num_edges() / g.num_vertices();
        assert!(
            g.max_degree() > 4 * avg,
            "max {} vs avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn grid_degrees() {
        let g = grid2d(10, 15);
        assert_eq!(g.num_vertices(), 150);
        assert!(g.is_symmetric());
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.max_degree(), 4);
        // Interior vertex.
        assert_eq!(g.degree((5 * 15 + 7) as u32), 4);
    }

    #[test]
    fn cycle_and_star() {
        let g = cycle(10);
        assert!((0..10u32).all(|v| g.degree(v) == 2));
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        assert!((1..10u32).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn weights_in_range_and_symmetric() {
        let g = uniform(50, 200, 3);
        let wg = with_uniform_weights(&g, 1 << 17, 1 << 23, 11);
        assert!(wg.is_weighted());
        assert!(wg.min_weight().unwrap() >= 1 << 17);
        assert!(wg.max_weight().unwrap() <= 1 << 23);
        // Both directions of each undirected edge carry the same weight.
        for u in 0..wg.num_vertices() as u32 {
            for (i, &v) in wg.neighbors(u).iter().enumerate() {
                let w = wg.edge_weights(u)[i];
                let j = wg.neighbors(v).iter().position(|&x| x == u).unwrap();
                assert_eq!(wg.edge_weights(v)[j], w);
            }
        }
    }

    #[test]
    fn torus_regular_degree() {
        let g = torus2d(6, 8);
        assert_eq!(g.num_vertices(), 48);
        assert!(g.is_symmetric());
        assert!((0..48u32).all(|v| g.degree(v) == 4));
        // Degenerate shapes still build (dedup collapses wrap edges).
        let line = torus2d(1, 5);
        assert!(line.is_symmetric());
        assert!((0..5u32).all(|v| line.degree(v) == 2)); // a cycle
    }

    #[test]
    fn geometric_local_and_bounded() {
        let g = random_geometric(500, 8, 3);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.is_symmetric());
        // Average degree lands near the target (±2x is generous).
        let avg = g.num_edges() as f64 / 500.0;
        assert!((2.0..32.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn star_hub_degrees_skewed() {
        let g = star_hub(400, 8, 5);
        assert_eq!(g.num_vertices(), 400);
        assert!(g.is_symmetric());
        assert!(g.max_degree() >= 400 / 16, "hubs must be hot");
        // Spokes stay low-degree.
        assert!((8..400u32).all(|v| g.degree(v) <= 2));
        // Degenerate: more hubs than vertices clamps.
        assert_eq!(star_hub(3, 10, 1).num_vertices(), 3);
    }

    #[test]
    fn unit_and_exp_weights() {
        let g = uniform(60, 240, 9);
        let unit = with_unit_weights(&g);
        assert!(unit.is_weighted());
        assert_eq!(unit.num_edges(), g.num_edges());
        assert_eq!(unit.min_weight(), Some(1));
        assert_eq!(unit.max_weight(), Some(1));

        let exp = with_exp_weights(&g, 100, 4);
        assert!(exp.is_weighted());
        assert!(exp.min_weight().unwrap() >= 1);
        // Both directions of each undirected edge carry the same weight.
        for u in 0..exp.num_vertices() as u32 {
            for (i, &v) in exp.neighbors(u).iter().enumerate() {
                let w = exp.edge_weights(u)[i];
                let j = exp.neighbors(v).iter().position(|&x| x == u).unwrap();
                assert_eq!(exp.edge_weights(v)[j], w);
            }
        }
    }

    #[test]
    fn deterministic_generators() {
        let a = uniform(64, 128, 5);
        let b = uniform(64, 128, 5);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..64u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }
}
