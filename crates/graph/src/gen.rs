//! Synthetic graph generators — the stand-ins for the paper's datasets
//! (see DESIGN.md §2 for the substitution table).

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use pp_parlay::rng::{bounded, hash64, Rng};
use rayon::prelude::*;

/// Uniformly random undirected graph: `m` edges sampled uniformly from
/// all pairs (duplicates collapse, so the result has ≤ m edges).
pub fn uniform(n: usize, m: usize, seed: u64) -> Graph {
    let edges: Vec<(u32, u32, u64)> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let u = bounded(hash64(seed, 2 * i), n as u64) as u32;
            let v = bounded(hash64(seed, 2 * i + 1), n as u64) as u32;
            (u, v, 1)
        })
        .collect();
    let mut b = GraphBuilder::new(n).symmetric();
    b.extend(edges);
    b.build()
}

/// RMAT power-law graph (Chakrabarti–Zhan–Faloutsos) over `2^scale`
/// vertices with ~`m` edges: the "social network" substitute for the
/// Twitter / Friendster graphs of §6.3. Default skew (0.57, 0.19, 0.19)
/// gives low diameter and heavy-tailed degrees.
pub fn rmat(scale: u32, m: usize, seed: u64) -> Graph {
    rmat_with(scale, m, 0.57, 0.19, 0.19, seed)
}

/// RMAT with explicit quadrant probabilities `(a, b, c)`; `d = 1-a-b-c`.
pub fn rmat_with(scale: u32, m: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    assert!(scale <= 31);
    assert!(a + b + c < 1.0 + 1e-9);
    let n = 1usize << scale;
    let edges: Vec<(u32, u32, u64)> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let (mut u, mut v) = (0u32, 0u32);
            let mut r = Rng::new(hash64(seed, i));
            for _ in 0..scale {
                u <<= 1;
                v <<= 1;
                // Slightly perturb quadrant probabilities per level, the
                // standard trick to avoid artificial degree spikes.
                let noise = 0.05 * (r.f64() - 0.5);
                let (pa, pb, pc) = (a + noise, b - noise / 2.0, c - noise / 2.0);
                let x = r.f64();
                if x < pa {
                    // top-left: no bits set
                } else if x < pa + pb {
                    v |= 1;
                } else if x < pa + pb + pc {
                    u |= 1;
                } else {
                    u |= 1;
                    v |= 1;
                }
            }
            (u, v, 1)
        })
        .collect();
    let mut bld = GraphBuilder::new(n).symmetric();
    bld.extend(edges);
    bld.build()
}

/// 2D grid graph (`rows × cols` vertices, 4-neighborhood): the
/// high-diameter "road graph" substitute (§6.3 remark).
pub fn grid2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::new(n).symmetric();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Simple cycle over `n` vertices (diameter `n/2` — worst-case rank).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).symmetric();
    for i in 0..n {
        b.add(i as u32, ((i + 1) % n) as u32);
    }
    b.build()
}

/// Star: vertex 0 adjacent to all others (`d_max = n - 1`).
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).symmetric();
    for i in 1..n {
        b.add(0, i as u32);
    }
    b.build()
}

/// Attach weights drawn uniformly from `[w_min, w_max]` to an existing
/// graph, assigning each undirected edge one weight (both arc directions
/// agree) — the §6.3 weighting scheme.
pub fn with_uniform_weights(g: &Graph, w_min: u64, w_max: u64, seed: u64) -> Graph {
    assert!(w_min >= 1 && w_min <= w_max);
    let n = g.num_vertices();
    let mut b = GraphBuilder::new(n).weighted();
    let mut edges = Vec::with_capacity(g.num_edges());
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            // Weight keyed on the canonical arc so (u,v) and (v,u) match.
            let (a, bb) = if u <= v { (u, v) } else { (v, u) };
            let key = (a as u64) << 32 | bb as u64;
            let w = w_min + bounded(hash64(seed, key), w_max - w_min + 1);
            edges.push((u, v, w));
        }
    }
    b.extend(edges);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape() {
        let g = uniform(100, 400, 1);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() <= 800);
        assert!(g.num_edges() > 400); // few collisions expected
        assert!(g.is_symmetric());
    }

    #[test]
    fn rmat_skewed_degrees() {
        let g = rmat(10, 8 * 1024, 7);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.is_symmetric());
        // Power-law-ish: max degree far above average degree.
        let avg = g.num_edges() / g.num_vertices();
        assert!(
            g.max_degree() > 4 * avg,
            "max {} vs avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn grid_degrees() {
        let g = grid2d(10, 15);
        assert_eq!(g.num_vertices(), 150);
        assert!(g.is_symmetric());
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.max_degree(), 4);
        // Interior vertex.
        assert_eq!(g.degree((5 * 15 + 7) as u32), 4);
    }

    #[test]
    fn cycle_and_star() {
        let g = cycle(10);
        assert!((0..10u32).all(|v| g.degree(v) == 2));
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        assert!((1..10u32).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn weights_in_range_and_symmetric() {
        let g = uniform(50, 200, 3);
        let wg = with_uniform_weights(&g, 1 << 17, 1 << 23, 11);
        assert!(wg.is_weighted());
        assert!(wg.min_weight().unwrap() >= 1 << 17);
        assert!(wg.max_weight().unwrap() <= 1 << 23);
        // Both directions of each undirected edge carry the same weight.
        for u in 0..wg.num_vertices() as u32 {
            for (i, &v) in wg.neighbors(u).iter().enumerate() {
                let w = wg.edge_weights(u)[i];
                let j = wg.neighbors(v).iter().position(|&x| x == u).unwrap();
                assert_eq!(wg.edge_weights(v)[j], w);
            }
        }
    }

    #[test]
    fn deterministic_generators() {
        let a = uniform(64, 128, 5);
        let b = uniform(64, 128, 5);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..64u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }
}
