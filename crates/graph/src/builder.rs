//! Build CSR graphs from edge lists, in parallel.

use crate::csr::{Graph, GraphError};
use pp_parlay::monoid::sum_monoid;
use pp_parlay::scan::scan_exclusive;
use pp_parlay::sort::par_sort_by_key;
use rayon::prelude::*;

/// Accumulates edges and produces a [`Graph`].
pub struct GraphBuilder {
    n: usize,
    /// `(u, v, w)` triples; `w` ignored when building unweighted.
    edges: Vec<(u32, u32, u64)>,
    symmetric: bool,
    weighted: bool,
}

impl GraphBuilder {
    /// A builder over `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        Self {
            n,
            edges: Vec::new(),
            symmetric: false,
            weighted: false,
        }
    }

    /// Store both arc directions for every edge (undirected graph).
    pub fn symmetric(mut self) -> Self {
        self.symmetric = true;
        self
    }

    /// Keep per-edge weights.
    pub fn weighted(mut self) -> Self {
        self.weighted = true;
        self
    }

    /// Add one edge (weight 1 unless [`GraphBuilder::add_weighted`] is used).
    pub fn add(&mut self, u: u32, v: u32) {
        self.add_weighted(u, v, 1);
    }

    /// Add one weighted edge.
    pub fn add_weighted(&mut self, u: u32, v: u32, w: u64) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        self.edges.push((u, v, w));
    }

    /// Add many edges at once.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = (u32, u32, u64)>) {
        self.edges.extend(edges);
    }

    /// Produce the CSR graph: removes self-loops, deduplicates parallel
    /// edges (keeping the smallest weight), symmetrizes if requested.
    /// `O(m log m)` work, polylog span.
    ///
    /// # Panics
    /// Panics if the accumulated edges violate a CSR invariant (e.g. an
    /// endpoint `>= n` slipped past the release-build debug check). Use
    /// [`GraphBuilder::try_build`] for a typed error instead.
    pub fn build(self) -> Graph {
        match self.try_build() {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`GraphBuilder::build`], but routes the final construction
    /// through [`Graph::try_from_csr`] so inconsistent edges (endpoints
    /// `>= n`, arc-count overflow) surface as a typed [`GraphError`].
    pub fn try_build(self) -> Result<Graph, GraphError> {
        let GraphBuilder {
            n,
            mut edges,
            symmetric,
            weighted,
        } = self;
        // An out-of-range *source* endpoint would index past the degree
        // array below, long before `try_from_csr` could see the bad
        // target — check both ends up front so release builds get the
        // same typed rejection debug builds assert.
        if let Some(arc) = edges
            .iter()
            .position(|&(u, v, _)| (u as usize) >= n || (v as usize) >= n)
        {
            let (u, v, _) = edges[arc];
            return Err(GraphError::TargetOutOfRange {
                arc,
                target: if (u as usize) >= n { u } else { v },
                vertices: n,
            });
        }
        if symmetric {
            let rev: Vec<(u32, u32, u64)> = edges.par_iter().map(|&(u, v, w)| (v, u, w)).collect();
            edges.extend(rev);
        }
        // Drop self-loops.
        edges = pp_parlay::filter(&edges, |&(u, v, _)| u != v);
        // Sort by (u, v, w): dedup keeps the smallest weight per (u, v).
        par_sort_by_key(&mut edges, |&(u, v, w)| (u, v, w));
        let m = edges.len();
        let keep: Vec<bool> = (0..m)
            .into_par_iter()
            .map(|i| i == 0 || (edges[i].0, edges[i].1) != (edges[i - 1].0, edges[i - 1].1))
            .collect();
        let edges = pp_parlay::pack(&edges, &keep);
        // Degrees → offsets.
        let mut degree = vec![0usize; n];
        for &(u, _, _) in &edges {
            degree[u as usize] += 1;
        }
        let (mut offsets, total) = scan_exclusive(&sum_monoid::<usize>(), &degree);
        offsets.push(total);
        let targets: Vec<u32> = edges.par_iter().map(|&(_, v, _)| v).collect();
        let weights: Vec<u64> = if weighted {
            edges.par_iter().map(|&(_, _, w)| w).collect()
        } else {
            Vec::new()
        };
        Graph::try_from_csr(offsets, targets, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_symmetric_dedup() {
        let mut b = GraphBuilder::new(4).symmetric();
        b.add(0, 1);
        b.add(1, 0); // duplicate after symmetrization
        b.add(1, 2);
        b.add(2, 2); // self loop dropped
        b.add(3, 0);
        let g = b.build();
        assert!(g.is_symmetric());
        assert_eq!(g.num_edges(), 6); // {0,1}, {1,2}, {0,3} × 2
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn build_weighted_keeps_min_weight() {
        let mut b = GraphBuilder::new(3).weighted();
        b.add_weighted(0, 1, 9);
        b.add_weighted(0, 1, 4);
        b.add_weighted(1, 2, 7);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weights(0), &[4]);
        assert_eq!(g.edge_weights(1), &[7]);
    }

    #[test]
    fn isolated_vertices() {
        let b = GraphBuilder::new(5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn try_build_rejects_out_of_range_endpoints() {
        let mut b = GraphBuilder::new(2);
        b.extend([(0, 7, 1)]); // bypasses add()'s debug assert
        assert_eq!(
            b.try_build().unwrap_err(),
            GraphError::TargetOutOfRange {
                arc: 0,
                target: 7,
                vertices: 2
            }
        );
    }

    #[test]
    fn try_build_matches_build_on_valid_input() {
        let mut a = GraphBuilder::new(4).symmetric();
        a.add(0, 1);
        a.add(2, 3);
        let mut b = GraphBuilder::new(4).symmetric();
        b.add(0, 1);
        b.add(2, 3);
        let g = a.build();
        let h = b.try_build().unwrap();
        assert_eq!(g.num_edges(), h.num_edges());
        assert_eq!(g.neighbors(0), h.neighbors(0));
    }
}
