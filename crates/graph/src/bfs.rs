//! Parallel frontier BFS: hop distances from a source.
//!
//! The DG of SSSP "is conceptually the shortest path tree" and the rank
//! of a vertex is its *hop distance* in that tree (§4.3); BFS computes
//! the unweighted version of that rank and serves as the frontier
//! skeleton shared by the stepping algorithms.

use crate::csr::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Hop-distance sentinel for unreachable vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Hop distances from `source` by round-synchronous parallel BFS.
pub fn bfs(g: &Graph, source: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let next: Vec<u32> = frontier
            .par_iter()
            .flat_map_iter(|&v| g.neighbors(v).iter().copied())
            .filter(|&u| {
                dist[u as usize]
                    .compare_exchange(UNREACHED, level, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            })
            .collect();
        frontier = next;
    }
    dist.into_iter().map(AtomicU32::into_inner).collect()
}

/// Eccentricity of `source` (largest finite hop distance) — a cheap
/// diameter proxy used to characterize generated graphs.
pub fn eccentricity(g: &Graph, source: u32) -> u32 {
    bfs(g, source)
        .into_iter()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn line_graph_distances() {
        let mut b = crate::GraphBuilder::new(5).symmetric();
        for i in 0..4 {
            b.add(i, i + 1);
        }
        let g = b.build();
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs(&g, 2), vec![2, 1, 0, 1, 2]);
        assert_eq!(eccentricity(&g, 0), 4);
    }

    #[test]
    fn disconnected_unreached() {
        let mut b = crate::GraphBuilder::new(4).symmetric();
        b.add(0, 1);
        b.add(2, 3);
        let g = b.build();
        let d = bfs(&g, 0);
        assert_eq!(d, vec![0, 1, UNREACHED, UNREACHED]);
    }

    #[test]
    fn grid_diameter() {
        let g = gen::grid2d(10, 20);
        // From corner 0: the far corner is 9 + 19 hops away.
        assert_eq!(eccentricity(&g, 0), 28);
    }

    #[test]
    fn rmat_low_diameter_vs_grid() {
        // The substitution argument of DESIGN.md: RMAT (social stand-in)
        // has much smaller eccentricity than a grid of similar size.
        let social = gen::rmat(12, 1 << 15, 1);
        let grid = gen::grid2d(64, 64);
        // Pick a vertex in the giant component (vertex with max degree).
        let hub = (0..social.num_vertices() as u32)
            .max_by_key(|&v| social.degree(v))
            .unwrap();
        let ecc_social = eccentricity(&social, hub);
        let ecc_grid = eccentricity(&grid, 0);
        assert!(
            ecc_social * 4 < ecc_grid,
            "social {ecc_social} vs grid {ecc_grid}"
        );
    }
}
