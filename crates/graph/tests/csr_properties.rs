//! Property tests for the CSR trust boundary: `Graph::try_from_csr`
//! must resolve **every** input — however mutilated — to a typed
//! verdict. Accepted arrays must form a graph whose re-validation
//! passes and whose bytes equal the panicking constructor's; mutations
//! that break a named invariant must come back as the matching typed
//! [`GraphError`], never a panic.
//!
//! The hostile cases come from `pp_check::fuzz`'s structure-aware CSR
//! mutators, so every case replays from `(plan seed, case index)`.

#![forbid(unsafe_code)]

use pp_check::fuzz::FuzzPlan;
use pp_graph::{gen, Graph, GraphBuilder};
use proptest::prelude::*;

/// A graph's CSR arrays, reassembled from the public accessors.
fn csr_of(g: &Graph) -> (Vec<usize>, Vec<u32>, Vec<u64>) {
    let offsets = g.offsets().to_vec();
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    for v in 0..g.num_vertices() as u32 {
        targets.extend_from_slice(g.neighbors(v));
        if g.is_weighted() {
            weights.extend_from_slice(g.edge_weights(v));
        }
    }
    (offsets, targets, weights)
}

/// A deterministic valid base graph for a property draw.
fn base_graph(n: usize, m: usize, seed: u64) -> Graph {
    match seed % 4 {
        0 => GraphBuilder::new(n).build(), // all-isolated vertices
        1 => gen::uniform(n.max(1), m, seed),
        2 => gen::with_uniform_weights(&gen::uniform(n.max(1), m, seed), 1, 50, seed),
        _ => gen::with_unit_weights(&gen::cycle(n.max(3))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Round-trip: arrays lifted off any valid graph are accepted, and
    // the fallible constructor builds the *same* graph as the
    // panicking one — same offsets, same adjacency, same weights.
    #[test]
    fn valid_csr_round_trips(n in 0usize..48, m in 0usize..160, seed in 0u64..256) {
        let g = base_graph(n, m, seed);
        let (offsets, targets, weights) = csr_of(&g);
        let fallible = Graph::try_from_csr(offsets.clone(), targets.clone(), weights.clone());
        prop_assert!(fallible.is_ok(), "valid CSR rejected: {:?}", fallible.err());
        let fallible = fallible.unwrap();
        let infallible = Graph::from_csr(offsets, targets, weights);
        prop_assert_eq!(fallible.offsets(), infallible.offsets());
        prop_assert_eq!(fallible.num_edges(), infallible.num_edges());
        prop_assert_eq!(fallible.is_weighted(), infallible.is_weighted());
        for v in 0..fallible.num_vertices() as u32 {
            prop_assert_eq!(fallible.neighbors(v), infallible.neighbors(v));
            if fallible.is_weighted() {
                prop_assert_eq!(fallible.edge_weights(v), infallible.edge_weights(v));
            }
        }
        prop_assert!(fallible.validate().is_ok());
    }

    // Mutated CSR: every fuzz case resolves to a typed verdict — Ok
    // implies re-validation passes, identity implies acceptance, and
    // the mutations that break a named invariant outright are always
    // rejected. Nothing panics (a panic fails the test harness).
    #[test]
    fn mutated_csr_is_always_typed(case in 0u64..2048, n in 0usize..32, seed in 0u64..64) {
        let plan = FuzzPlan::new("csr-properties");
        let g = base_graph(n, 3 * n, seed);
        let (offsets, targets, weights) = csr_of(&g);
        let mutated = plan.csr_case(case, &offsets, &targets, &weights);
        match Graph::try_from_csr(
            mutated.offsets.clone(),
            mutated.targets.clone(),
            mutated.weights.clone(),
        ) {
            Ok(accepted) => {
                prop_assert!(
                    accepted.validate().is_ok(),
                    "case {} ({}) accepted but fails re-validation",
                    case,
                    mutated.mutation
                );
                // These mutations each violate a checked invariant
                // unconditionally; acceptance would be a missed check.
                prop_assert!(
                    !matches!(
                        mutated.mutation,
                        "offsets-empty"
                            | "offsets-decreasing"
                            | "offsets-last-inflated"
                            | "target-out-of-range"
                    ),
                    "case {} ({}) should have been rejected",
                    case,
                    mutated.mutation
                );
            }
            Err(_) => {
                prop_assert!(
                    mutated.mutation != "identity",
                    "case {}: unmutated arrays rejected",
                    case
                );
            }
        }
    }
}
