//! Model of `scope` / `Scope::spawn` (`shims/rayon/src/pool.rs`): the
//! latch starts at 1 (the scope body itself), every `spawn` adds one
//! completion **before** publishing, the body's own `done_one` comes
//! after all spawns, and the caller helps until the latch opens. Panics
//! from spawned closures land in the scope's panic slot with
//! first-panic-wins (`get_or_insert`) semantics and are taken after the
//! latch opens.
//!
//! The explorer proves: the scope cannot observe its latch open while a
//! spawned job is still running (dynamic counts are added early
//! enough), the panic slot's mutex serializes concurrent writers, and
//! no schedule lets a worker touch the scope frame after the caller
//! tears it down.

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};

use crate::models::latch::ModelLatch;
use crate::models::park::{ModelJobStore, ModelPark};
use crate::sched::Builder;
use crate::sync::{Arc, Frame, Mutex};

struct ScopeShared {
    store: ModelJobStore,
    park: ModelPark,
    latch: ModelLatch,
    /// `Scope::panic`: first panic payload wins (payloads are `u32`
    /// stand-ins here).
    panic_slot: Mutex<Option<u32>>,
    /// The `scope()` caller's frame, owning the `Scope` itself.
    frame: Frame,
}

fn execute_scope_job(scope: &ScopeShared, j: usize, runs: &[StdAtomicUsize]) {
    runs[j].fetch_add(1, Ordering::SeqCst);
    if j == 0 {
        // This spawned closure "panics": its payload goes into the
        // scope's slot, first writer wins.
        scope.frame.touch("panic.store");
        let mut slot = scope.panic_slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(7);
        }
        drop(slot);
    }
    scope.latch.done_one(&scope.frame);
    scope.park.job_finished();
}

/// One scope body (t0) spawning two jobs — job 0 panics — plus one
/// worker (t1). Asserts both jobs complete before the scope returns and
/// the panic propagates out of `scope()`.
pub fn scope_panic_model() -> impl Fn(&mut Builder) {
    |b: &mut Builder| {
        let shared = Arc::new(ScopeShared {
            store: ModelJobStore::new(),
            park: ModelPark::new(true),
            latch: ModelLatch::new(1),
            panic_slot: Mutex::named("scope.panic", None),
            frame: Frame::new("scope-frame"),
        });
        let runs: Arc<Vec<StdAtomicUsize>> =
            Arc::new((0..2).map(|_| StdAtomicUsize::new(0)).collect());

        let caller = Arc::clone(&shared);
        let caller_runs = Arc::clone(&runs);
        b.thread(move || {
            // The scope body: spawn two jobs (`add` strictly before
            // publish, so the latch can never transiently hit zero).
            for j in 0..2usize {
                caller.latch.add(1);
                caller.store.push(j);
                caller.park.wake();
            }
            // The body itself is one completion.
            caller.latch.done_one(&caller.frame);
            // wait_latch with helping.
            loop {
                let seen = caller.park.completions();
                if caller.latch.probe() {
                    break;
                }
                match caller.store.pop_newest() {
                    Some(j) => execute_scope_job(&caller, j, &caller_runs),
                    None => caller
                        .park
                        .park_helper(&caller.store, seen, || caller.latch.probe()),
                }
            }
            caller.latch.sync_before_teardown();
            caller.frame.touch("panic.take");
            let payload = caller.panic_slot.lock().unwrap().take();
            caller.frame.free();
            assert_eq!(payload, Some(7), "the spawned panic propagates");
            caller.park.terminate();
        });

        let worker = Arc::clone(&shared);
        let worker_runs = Arc::clone(&runs);
        b.thread(move || loop {
            while let Some(j) = worker.store.pop_oldest() {
                execute_scope_job(&worker, j, &worker_runs);
            }
            if !worker.park.park_worker(&worker.store) {
                return;
            }
        });

        b.finale(move || {
            for (j, count) in runs.iter().enumerate() {
                assert_eq!(
                    count.load(Ordering::SeqCst),
                    1,
                    "scope job {j} must execute exactly once"
                );
            }
        });
    }
}
