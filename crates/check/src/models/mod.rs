//! Checkable ports of the fork-join pool's synchronization protocols.
//!
//! Each submodule mirrors one protocol from `shims/rayon/src/pool.rs`
//! at the synchronization level: the same locks taken in the same
//! order, the same atomics with the same declared `Ordering`s, and the
//! same `UnsafeCell` slots — modeled as [`crate::sync::RaceCell`]s so
//! the vector-clock detector checks every access against
//! happens-before, plus [`crate::sync::Frame`] lifetime tokens standing
//! in for the stack frames the real jobs borrow from.
//!
//! - [`latch`] — `CountLatch`: the locked-decrement publish/teardown
//!   protocol, its PR 5 use-after-free regression (decrement outside
//!   the lock), and the probe-only variant that isolates what the
//!   declared atomic orderings buy.
//! - [`queue`] — `Registry`'s shared FIFO: inject / pop / steal-back /
//!   worker parking, exactly-once delivery, shutdown.
//! - [`join`] — `join_in`: inject the second closure, steal it back or
//!   help until its latch opens, take func/result out of the frame.
//! - [`chunks`] — `run_chunks`: a batch of chunk jobs sharing one
//!   latch, the caller helping, results read back in chunk order.
//! - [`scope`] — `scope`/`Scope::spawn`: dynamic latch counts and
//!   first-panic-wins propagation through the scope's panic slot.
//!
//! Every model is a `Fn(&mut Builder)` factory so tests can pass the
//! same model to [`crate::explore`] and [`crate::replay`].

pub mod chunks;
pub mod join;
pub mod latch;
pub mod queue;
pub mod scope;
