//! Checkable ports of the fork-join pool's synchronization protocols.
//!
//! Each submodule mirrors one protocol from `shims/rayon/src/pool.rs`
//! at the synchronization level: the same locks taken in the same
//! order, the same atomics with the same declared `Ordering`s, and the
//! same `UnsafeCell` slots — modeled as [`crate::sync::RaceCell`]s so
//! the vector-clock detector checks every access against
//! happens-before, plus [`crate::sync::Frame`] lifetime tokens standing
//! in for the stack frames the real jobs borrow from.
//!
//! - [`latch`] — `CountLatch`: the locked-decrement publish/teardown
//!   protocol, its PR 5 use-after-free regression (decrement outside
//!   the lock), and the probe-only variant that isolates what the
//!   declared atomic orderings buy.
//! - [`deque`] — the Pool-v2 work-stealing substrate: per-worker
//!   deques (owner LIFO tail, thief FIFO head), the lock-free
//!   Treiber-chain injector's publication protocol, and O(1) tail
//!   steal-back — exactly-once under arbitrary interleaving.
//! - [`park`] — the registry's parking protocol: the `pending` /
//!   `completions` / `parked` counters, both condvars, and the PR 8
//!   **lost-wakeup regression** (job arrival not waking latch-parked
//!   helpers, reproducible with the fix knob reverted).
//! - [`join`] — `join_in`: publish the second closure, steal it back
//!   (O(1) tail check) or help until its latch opens, take func/result
//!   out of the frame.
//! - [`chunks`] — `run_chunks`: a batch of chunk jobs sharing one
//!   latch, the caller helping from its own tail, results read back in
//!   chunk order.
//! - [`scope`] — `scope`/`Scope::spawn`: dynamic latch counts and
//!   first-panic-wins propagation through the scope's panic slot.
//!
//! Every model is a `Fn(&mut Builder)` factory so tests can pass the
//! same model to [`crate::explore`] and [`crate::replay`].

pub mod chunks;
pub mod deque;
pub mod join;
pub mod latch;
pub mod park;
pub mod scope;
