//! Model of `join_in` (`shims/rayon/src/pool.rs`): the caller pushes
//! its second closure as a `StackJob` living in the calling frame, runs
//! the first closure, then either **steals the job back** (runs it
//! inline — since Pool v2 an O(1) is-it-still-my-tail check rather than
//! a queue scan) or **helps until the job's latch opens** and takes the
//! result out of the frame.
//!
//! The `UnsafeCell` slots (`StackJob::func`, `StackJob::result`) are
//! [`RaceCell`]s, so the explorer checks that the steal-back branch and
//! worker execution can never both touch `func`, and that the result
//! read is ordered after the worker's write. The frame token catches
//! any schedule where the worker touches the job after the caller's
//! frame popped.

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};

use crate::models::latch::ModelLatch;
use crate::models::park::{ModelJobStore, ModelPark};
use crate::sched::Builder;
use crate::sync::{Arc, Frame, RaceCell};

struct JoinShared {
    store: ModelJobStore,
    park: ModelPark,
    /// `StackJob::func`: holds `Some(input)` until taken by whoever
    /// claims the job.
    func: RaceCell<Option<u32>>,
    /// `StackJob::result`: written by the executor before `done_one`.
    result: RaceCell<Option<u32>>,
    latch: ModelLatch,
    /// The caller's stack frame owning all of the above.
    frame: Frame,
}

fn execute_b(shared: &JoinShared, b_runs: &StdAtomicUsize) {
    shared.frame.touch("func.take");
    let input = shared
        .func
        .swap(None)
        .expect("a claimed job has not executed yet");
    b_runs.fetch_add(1, Ordering::SeqCst);
    shared.frame.touch("result.write");
    shared.result.write(Some(input * 2));
    shared.latch.done_one(&shared.frame);
    shared.park.job_finished();
}

/// Full `join_in` round: caller (t0) vs one worker (t1). Asserts the
/// second closure runs exactly once — inline after a successful steal,
/// or on the worker with the result handed back through the frame.
pub fn join_steal_back_model() -> impl Fn(&mut Builder) {
    |b: &mut Builder| {
        let shared = Arc::new(JoinShared {
            store: ModelJobStore::new(),
            park: ModelPark::new(true),
            func: RaceCell::named("job_b.func", Some(21)),
            result: RaceCell::named("job_b.result", None),
            latch: ModelLatch::new(1),
            frame: Frame::new("join-frame"),
        });
        let b_runs = Arc::new(StdAtomicUsize::new(0));

        let caller = Arc::clone(&shared);
        let caller_runs = Arc::clone(&b_runs);
        b.thread(move || {
            caller.store.push(0);
            caller.park.wake();
            // (closure `a` runs here; it has no synchronization.)
            let result_b = if caller.store.steal_back_tail(0) {
                // Nobody claimed `b`: take the closure back and run it
                // inline — `take_func` is only sound because steal-back
                // succeeding proves no execution started.
                caller.frame.touch("func.take");
                let input = caller
                    .func
                    .swap(None)
                    .expect("steal-back succeeded, so the job never executed");
                caller_runs.fetch_add(1, Ordering::SeqCst);
                input * 2
            } else {
                // A worker claimed `b`: help until its latch opens
                // (with a single job in flight the store stays empty,
                // so helping degenerates to parking), then take the
                // result out of this frame.
                loop {
                    let seen = caller.park.completions();
                    if caller.latch.probe() {
                        break;
                    }
                    match caller.store.pop_newest() {
                        Some(job) => {
                            panic!("no other job can be queued here, popped {job}")
                        }
                        None => caller
                            .park
                            .park_helper(&caller.store, seen, || caller.latch.probe()),
                    }
                }
                caller.latch.sync_before_teardown();
                caller.frame.touch("result.take");
                caller
                    .result
                    .swap(None)
                    .expect("latch opened, so the result slot is written")
            };
            // `join_in` returns: the frame holding job_b pops.
            caller.frame.free();
            assert_eq!(result_b, 42);
            caller.park.terminate();
        });

        let worker = Arc::clone(&shared);
        let worker_runs = Arc::clone(&b_runs);
        b.thread(move || loop {
            while let Some(_job) = worker.store.pop_oldest() {
                execute_b(&worker, &worker_runs);
            }
            if !worker.park.park_worker(&worker.store) {
                return;
            }
        });

        b.finale(move || {
            assert_eq!(
                b_runs.load(Ordering::SeqCst),
                1,
                "the second closure must run exactly once"
            );
        });
    }
}
