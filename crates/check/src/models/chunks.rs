//! Model of `run_chunks` (`shims/rayon/src/pool.rs`): a batch of chunk
//! jobs sharing one countdown latch, all living in the caller's frame.
//! The caller publishes the batch, **participates** via the helping
//! loop of `wait_latch` (claiming and executing chunks itself, from its
//! own tail), and reads the per-chunk results back **in chunk order**
//! once the latch opens — the order-preserving combine that keeps
//! digests thread-count-independent.
//!
//! The chunk `input`/`result` `UnsafeCell` slots are [`RaceCell`]s:
//! the explorer proves each chunk's input is taken exactly once
//! (whether by the caller or the worker) and that every result read is
//! happens-before-ordered after its write. The frame token catches any
//! schedule where a worker touches the batch after the caller freed it.

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};

use crate::models::latch::ModelLatch;
use crate::models::park::{ModelJobStore, ModelPark};
use crate::sched::Builder;
use crate::sync::{Arc, Frame, RaceCell};

struct ChunkSlot {
    input: RaceCell<Option<u32>>,
    result: RaceCell<Option<u32>>,
}

struct Batch {
    store: ModelJobStore,
    park: ModelPark,
    latch: ModelLatch,
    frame: Frame,
    chunks: Vec<ChunkSlot>,
}

fn execute_chunk(batch: &Batch, j: usize, runs: &[StdAtomicUsize]) {
    batch.frame.touch("chunk.input.take");
    let input = batch.chunks[j]
        .input
        .swap(None)
        .expect("each chunk executes once");
    runs[j].fetch_add(1, Ordering::SeqCst);
    batch.frame.touch("chunk.result.write");
    batch.chunks[j].result.write(Some(input * 10));
    batch.latch.done_one(&batch.frame);
    batch.park.job_finished();
}

/// Two chunks, caller + one worker. The caller's helping loop is the
/// real `wait_latch` body: snapshot → probe → claim-and-execute → park.
/// The caller claims from the newest end (its own tail, LIFO) while the
/// worker claims oldest-first (a steal from the head) — the deque
/// discipline, compressed onto the fused store.
pub fn chunk_batch_model() -> impl Fn(&mut Builder) {
    |b: &mut Builder| {
        let batch = Arc::new(Batch {
            store: ModelJobStore::new(),
            park: ModelPark::new(true),
            latch: ModelLatch::new(2),
            frame: Frame::new("batch-frame"),
            chunks: vec![
                ChunkSlot {
                    input: RaceCell::named("chunk0.input", Some(1)),
                    result: RaceCell::named("chunk0.result", None),
                },
                ChunkSlot {
                    input: RaceCell::named("chunk1.input", Some(2)),
                    result: RaceCell::named("chunk1.result", None),
                },
            ],
        });
        let runs: Arc<Vec<StdAtomicUsize>> =
            Arc::new((0..2).map(|_| StdAtomicUsize::new(0)).collect());

        let caller = Arc::clone(&batch);
        let caller_runs = Arc::clone(&runs);
        b.thread(move || {
            // `inject_many`: one batch publish, then one wake.
            caller.store.push_many([0, 1]);
            caller.park.wake();
            // wait_latch with helping: the caller may execute chunks.
            loop {
                let seen = caller.park.completions();
                if caller.latch.probe() {
                    break;
                }
                match caller.store.pop_newest() {
                    Some(j) => execute_chunk(&caller, j, &caller_runs),
                    None => caller
                        .park
                        .park_helper(&caller.store, seen, || caller.latch.probe()),
                }
            }
            caller.latch.sync_before_teardown();
            let outputs: Vec<u32> = (0..2)
                .map(|j| {
                    caller.frame.touch("chunk.result.take");
                    caller.chunks[j]
                        .result
                        .swap(None)
                        .expect("latch opened, so every result slot is written")
                })
                .collect();
            caller.frame.free();
            assert_eq!(outputs, vec![10, 20], "results come back in chunk order");
            caller.park.terminate();
        });

        let worker = Arc::clone(&batch);
        let worker_runs = Arc::clone(&runs);
        b.thread(move || loop {
            while let Some(j) = worker.store.pop_oldest() {
                execute_chunk(&worker, j, &worker_runs);
            }
            if !worker.park.park_worker(&worker.store) {
                return;
            }
        });

        b.finale(move || {
            for (j, count) in runs.iter().enumerate() {
                assert_eq!(
                    count.load(Ordering::SeqCst),
                    1,
                    "chunk {j} must execute exactly once"
                );
            }
        });
    }
}
