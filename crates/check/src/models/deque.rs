//! Models of the Pool-v2 work-stealing queues
//! (`shims/rayon/src/pool.rs`): the per-worker mutex deques with
//! owner-LIFO / thief-FIFO discipline, and the lock-free Treiber-chain
//! injector for external submissions. Jobs are `usize` ids; the
//! `UnsafeCell`-backed claim slots are [`RaceCell`]s so double-claims
//! surface as data races, not just failed counters.
//!
//! These models check **ownership and publication** and deliberately
//! contain no parking (every loop is bounded, so exhaustive
//! exploration terminates): the parking protocol — and the PR 8
//! lost-wakeup fix — is modeled separately in [`crate::models::park`].
//!
//! Properties checked here:
//!
//! - **deque exactly-once**: with the owner popping its tail and
//!   thieves popping the head, every pushed job is claimed by exactly
//!   one thread ([`deque_exactly_once_model`]);
//! - **steal-back exclusivity and position**: the owner's steal-back is
//!   a *tail* check — it reclaims its most recent push or fails, while
//!   a concurrent thief takes the *oldest* job first
//!   ([`deque_steal_back_model`]) — the O(1) claim `join` relies on;
//! - **injector publication**: a consumer that swaps the Treiber chain
//!   out observes fully-written segments (the push's `Release` CAS
//!   paired with the grab's `Acquire` swap), each queued job is
//!   consumed at most once, and one grab takes the whole chain
//!   ([`injector_publish_model`]). In weakest-ordering mode the
//!   segment read races — proving those CAS orderings load-bearing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};

use crate::sched::Builder;
use crate::sync::{Arc, AtomicUsize, Mutex, RaceCell};

/// Port of `Registry::deques`: one mutex-guarded `VecDeque` per
/// worker. Owner pushes/pops at the back; thieves pop at the front.
pub struct ModelDeques {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

fn deque_name(index: usize) -> &'static str {
    match index {
        0 => "deque0",
        1 => "deque1",
        _ => "deque2",
    }
}

impl ModelDeques {
    pub fn new(workers: usize) -> Self {
        assert!(workers <= 3, "model names cover three deques");
        ModelDeques {
            deques: (0..workers)
                .map(|i| Mutex::named(deque_name(i), VecDeque::new()))
                .collect(),
        }
    }

    /// Owner push (`Registry::inject` on a worker): tail.
    pub fn owner_push(&self, owner: usize, job: usize) {
        self.deques[owner].lock().unwrap().push_back(job);
    }

    /// Owner pop (`find_work` step 1): tail — the most recent push.
    pub fn owner_pop(&self, owner: usize) -> Option<usize> {
        self.deques[owner].lock().unwrap().pop_back()
    }

    /// Thief pop (`find_work` step 3): head — the oldest job.
    pub fn steal_from(&self, victim: usize) -> Option<usize> {
        self.deques[victim].lock().unwrap().pop_front()
    }

    /// `Registry::steal_back` on a worker: reclaim `job` only if it is
    /// still this owner's *tail* (O(1) — no scan).
    pub fn steal_back(&self, owner: usize, job: usize) -> bool {
        let mut deque = self.deques[owner].lock().unwrap();
        if deque.back() == Some(&job) {
            deque.pop_back();
            true
        } else {
            false
        }
    }
}

/// Port of the lock-free `Injector`. The real code links heap segments
/// through raw pointers; the model pre-assigns each push a dedicated
/// arena slot and stores `slot + 1` in the head (0 = empty), so the
/// pointer-publication protocol — write the segment, then CAS it in —
/// is preserved gate-for-gate while the segment memory itself is a
/// [`RaceCell`] the vector-clock detector watches.
pub struct ModelInjector {
    /// `Injector::head`: `slot + 1` of the newest segment, 0 if empty.
    head: AtomicUsize,
    /// Segment payloads: `(jobs, next)` where `next` is the previous
    /// head value (`slot + 1` chain link, 0 terminates). One dedicated
    /// slot per push, so a slot is never reused — mirroring the real
    /// code, where only the exclusive chain owner frees a segment and
    /// a stale head value is never dereferenced by `push`.
    segments: Vec<RaceCell<(Vec<usize>, usize)>>,
}

fn segment_name(index: usize) -> &'static str {
    match index {
        0 => "injector.seg0",
        1 => "injector.seg1",
        _ => "injector.seg2",
    }
}

impl ModelInjector {
    pub fn new(pushes: usize) -> Self {
        assert!(pushes <= 3, "model names cover three segments");
        ModelInjector {
            head: AtomicUsize::named("injector.head", 0),
            segments: (0..pushes)
                .map(|i| RaceCell::named(segment_name(i), (Vec::new(), 0)))
                .collect(),
        }
    }

    /// `Injector::push`: write the segment (its jobs and its link to
    /// the currently-observed head), then publish it with a `Release`
    /// CAS; on failure re-link and retry. The failure ordering is
    /// `Relaxed` because a retry never dereferences the observed head.
    pub fn push(&self, slot: usize, jobs: Vec<usize>) {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            self.segments[slot].write((jobs.clone(), head));
            match self
                .head
                .compare_exchange(head, slot + 1, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// `Injector::grab_all`: empty-probe with `Acquire`, then swap the
    /// whole chain out (`AcqRel`) and walk it — newest to oldest —
    /// returning jobs oldest-first. The segment reads are the accesses
    /// that need the push CAS's `Release`: in weakest-ordering mode
    /// they race.
    pub fn grab_all(&self) -> Vec<usize> {
        if self.head.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut cursor = self.head.swap(0, Ordering::AcqRel);
        let mut segments = Vec::new();
        while cursor != 0 {
            let (jobs, next) = self.segments[cursor - 1].read();
            segments.push(jobs);
            cursor = next;
        }
        segments.reverse();
        segments.concat()
    }
}

/// One claim slot per job: `Some(payload)` until the claiming thread
/// swaps it out. Two unsynchronized claimants show up as a data race on
/// the slot (and a lost payload fails the `expect`).
fn claim_slots(jobs: usize) -> Vec<RaceCell<Option<usize>>> {
    fn slot_name(index: usize) -> &'static str {
        match index {
            0 => "job0.func",
            1 => "job1.func",
            _ => "job2.func",
        }
    }
    (0..jobs)
        .map(|j| RaceCell::named(slot_name(j), Some(j)))
        .collect()
}

struct DequeShared {
    deques: ModelDeques,
    slots: Vec<RaceCell<Option<usize>>>,
}

fn claim(shared: &DequeShared, job: usize, runs: &[StdAtomicUsize]) {
    let payload = shared.slots[job]
        .swap(None)
        .expect("a job is claimed exactly once");
    assert_eq!(payload, job);
    runs[job].fetch_add(1, Ordering::SeqCst);
}

/// Owner (deque 0) pushes two jobs and drains its own tail; `stealers`
/// threads each make two bounded steal attempts from the head. The
/// finale asserts both jobs ran exactly once — the owner's
/// drain-until-empty guarantees nothing is left unclaimed. Bookkeeping
/// counters are plain `std` atomics: not protocol state, deliberately
/// not scheduling points.
pub fn deque_exactly_once_model(stealers: usize) -> impl Fn(&mut Builder) {
    move |b: &mut Builder| {
        let shared = Arc::new(DequeShared {
            deques: ModelDeques::new(1),
            slots: claim_slots(2),
        });
        let runs: Arc<Vec<StdAtomicUsize>> =
            Arc::new((0..2).map(|_| StdAtomicUsize::new(0)).collect());

        let owner = Arc::clone(&shared);
        let owner_runs = Arc::clone(&runs);
        b.thread(move || {
            owner.deques.owner_push(0, 0);
            owner.deques.owner_push(0, 1);
            while let Some(job) = owner.deques.owner_pop(0) {
                claim(&owner, job, &owner_runs);
            }
        });

        for _ in 0..stealers {
            let thief = Arc::clone(&shared);
            let thief_runs = Arc::clone(&runs);
            b.thread(move || {
                for _ in 0..2 {
                    if let Some(job) = thief.deques.steal_from(0) {
                        claim(&thief, job, &thief_runs);
                    }
                }
            });
        }

        b.finale(move || {
            for (job, count) in runs.iter().enumerate() {
                assert_eq!(
                    count.load(Ordering::SeqCst),
                    1,
                    "job {job} must execute exactly once"
                );
            }
        });
    }
}

/// The `join` claim protocol on the deque: the owner pushes jobs 0 and
/// 1, then steals back its *most recent* push (job 1 — the tail check)
/// and drains the rest, while a thief steals from the head. Checked:
/// every job is claimed exactly once, steal-back only ever reclaims the
/// tail job, and the thief's first successful steal is the *oldest*
/// job (FIFO from the head) — the discipline that lets steal-back be
/// O(1).
pub fn deque_steal_back_model() -> impl Fn(&mut Builder) {
    |b: &mut Builder| {
        let shared = Arc::new(DequeShared {
            deques: ModelDeques::new(1),
            slots: claim_slots(2),
        });
        let runs: Arc<Vec<StdAtomicUsize>> =
            Arc::new((0..2).map(|_| StdAtomicUsize::new(0)).collect());
        // usize::MAX = "nothing stolen yet"; the thief records its
        // first successful steal here.
        let first_steal = Arc::new(StdAtomicUsize::new(usize::MAX));

        let owner = Arc::clone(&shared);
        let owner_runs = Arc::clone(&runs);
        b.thread(move || {
            owner.deques.owner_push(0, 0);
            owner.deques.owner_push(0, 1);
            if owner.deques.steal_back(0, 1) {
                // Reclaimed unexecuted: run "inline".
                claim(&owner, 1, &owner_runs);
            }
            while let Some(job) = owner.deques.owner_pop(0) {
                claim(&owner, job, &owner_runs);
            }
        });

        let thief = Arc::clone(&shared);
        let thief_runs = Arc::clone(&runs);
        let thief_first = Arc::clone(&first_steal);
        b.thread(move || {
            for _ in 0..2 {
                if let Some(job) = thief.deques.steal_from(0) {
                    let _ = thief_first.compare_exchange(
                        usize::MAX,
                        job,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    claim(&thief, job, &thief_runs);
                }
            }
        });

        b.finale(move || {
            for (job, count) in runs.iter().enumerate() {
                assert_eq!(
                    count.load(Ordering::SeqCst),
                    1,
                    "job {job} must execute exactly once"
                );
            }
            let first = first_steal.load(Ordering::SeqCst);
            assert!(
                first == usize::MAX || first == 0,
                "a thief's first steal must be the oldest job, got {first}"
            );
        });
    }
}

/// Two producers race `Release`-CAS pushes onto the chain; a consumer
/// makes bounded `grab_all` attempts and claims what it gets. Asserts
/// at-most-once consumption, that a grab observes each segment's
/// payload exactly as pushed, and that a grab that returns anything
/// took the whole chain at that instant (a second immediate grab can
/// only see segments pushed after the swap). Exhaustively clean under
/// the declared orderings; in weakest-ordering mode the consumer's
/// segment read races with the producer's write — the explorer names
/// the segment cell, proving the CAS `Release`/swap `Acquire` pair is
/// what publishes segment memory.
pub fn injector_publish_model() -> impl Fn(&mut Builder) {
    |b: &mut Builder| {
        struct Shared {
            injector: ModelInjector,
            slots: Vec<RaceCell<Option<usize>>>,
        }
        let shared = Arc::new(Shared {
            injector: ModelInjector::new(2),
            slots: claim_slots(2),
        });
        let runs: Arc<Vec<StdAtomicUsize>> =
            Arc::new((0..2).map(|_| StdAtomicUsize::new(0)).collect());

        for producer_slot in 0..2usize {
            let producer = Arc::clone(&shared);
            b.thread(move || {
                producer.injector.push(producer_slot, vec![producer_slot]);
            });
        }

        let consumer = Arc::clone(&shared);
        let consumer_runs = Arc::clone(&runs);
        b.thread(move || {
            // Bounded attempts: schedules where a push lands after the
            // last grab simply end with that job unconsumed (the
            // at-most-once finale still holds).
            for _ in 0..3 {
                for job in consumer.injector.grab_all() {
                    let payload = consumer.slots[job]
                        .swap(None)
                        .expect("a grabbed job is consumed at most once");
                    assert_eq!(payload, job, "segment payload as pushed");
                    consumer_runs[job].fetch_add(1, Ordering::SeqCst);
                }
            }
        });

        b.finale(move || {
            for (job, count) in runs.iter().enumerate() {
                assert!(
                    count.load(Ordering::SeqCst) <= 1,
                    "job {job} consumed more than once"
                );
            }
        });
    }
}
