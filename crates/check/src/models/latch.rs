//! Model of `CountLatch` (`shims/rayon/src/pool.rs`): the countdown
//! latch every pool frame blocks on before its stack memory is freed.
//!
//! Since Pool v2 the latch carries **no condvar of its own** — waiters
//! park through the registry's parking protocol
//! ([`crate::models::park::ModelPark`]) and job completion wakes them
//! via `job_finished`. What remains latch-local, verbatim from the
//! pool:
//!
//! - `done_one` decrements **while holding the latch lock**, so the
//!   final decrement's critical section is still open when a waiter
//!   races past its probe.
//! - `probe` is an `Acquire` load pairing with the `AcqRel` decrement,
//!   so result-slot writes made before `done_one` are visible after a
//!   `true` probe.
//! - a waiter that observed `probe() == true` does one lock round-trip
//!   (`sync_before_teardown`) before freeing the frame, which waits out
//!   the final notifier's critical section.
//!
//! [`teardown_model`] carries the PR 5 regression knob: with
//! `fixed = false` the decrement happens **outside** the lock (the
//! pre-fix code shape), opening the window where a waiter sees zero,
//! completes its teardown round-trip while the notifier holds nothing,
//! and frees the frame the notifier is about to lock — the exact
//! use-after-free the PR 5 review caught, which the explorer finds and
//! reports with a replay seed.

use std::sync::atomic::Ordering;

use crate::models::park::{ModelJobStore, ModelPark};
use crate::sched::Builder;
use crate::sync::{Arc, AtomicUsize, Frame, Mutex, RaceCell};

/// Port of `CountLatch` built on the instrumented primitives. Every
/// operation that dereferences into the (conceptual) owning stack frame
/// takes the frame token and `touch`es it first, so freeing the frame
/// too early is caught as a use-after-free rather than silently
/// explored past.
pub struct ModelLatch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
}

impl ModelLatch {
    pub fn new(count: usize) -> Self {
        ModelLatch {
            remaining: AtomicUsize::named("latch.remaining", count),
            lock: Mutex::named("latch.lock", ()),
        }
    }

    /// `CountLatch::add`: scope jobs are counted as they spawn.
    pub fn add(&self, n: usize) {
        self.remaining.fetch_add(n, Ordering::Relaxed);
    }

    /// The **fixed** `done_one`: decrement under the latch lock. (The
    /// waiter wakeup is the caller's next step, `job_finished` on the
    /// registry's park state — completion and wakeup are separate
    /// structures since Pool v2.)
    pub fn done_one(&self, frame: &Frame) {
        frame.touch("latch.lock");
        let guard = self.lock.lock().unwrap();
        frame.touch("latch.decrement");
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        drop(guard);
    }

    /// The **pre-fix** `done_one`: decrement outside the lock, lock
    /// round-trip afterwards. A waiter can observe zero (and tear the
    /// frame down) while this thread is still on its way to the lock —
    /// the PR 5 use-after-free class.
    pub fn done_one_unlocked(&self, frame: &Frame) {
        frame.touch("latch.decrement");
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            frame.touch("latch.lock");
            let guard = self.lock.lock().unwrap();
            drop(guard);
        }
    }

    /// `CountLatch::probe`: `Acquire`, pairing with the decrement.
    pub fn probe(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// `CountLatch::sync_before_teardown`: one lock round-trip after a
    /// `true` probe, waiting out the final notifier's critical section.
    pub fn sync_before_teardown(&self) {
        drop(self.lock.lock().unwrap());
    }
}

struct TeardownShared {
    latch: ModelLatch,
    store: ModelJobStore,
    park: ModelPark,
    /// Models `StackJob::result`: an `UnsafeCell` slot written by the
    /// notifier before `done_one`, read by the waiter after the latch
    /// opens — with no synchronization of its own.
    result: RaceCell<Option<u32>>,
    /// Models the waiter's stack frame, which owns the latch and the
    /// result slot and is popped when the waiter returns.
    frame: Frame,
}

/// The waiter side of `Registry::wait_latch`, with nothing to help
/// with: snapshot `completions`, probe, park on the registry condvar
/// until the latch opens, then the teardown rendezvous.
fn wait_for_latch(latch: &ModelLatch, store: &ModelJobStore, park: &ModelPark) {
    loop {
        let seen = park.completions();
        if latch.probe() {
            break;
        }
        park.park_helper(store, seen, || latch.probe());
    }
    latch.sync_before_teardown();
}

/// The PR 5 regression scenario: t0 waits on the latch, reads the
/// result, and frees the frame; t1 publishes the result and completes
/// the latch. `fixed = true` is the shipped protocol (passes
/// exhaustively, even in weakest-ordering mode — the lock round-trips
/// carry the happens-before edges on this path); `fixed = false`
/// reverts `done_one` to the pre-fix shape and the explorer reports the
/// use-after-free with its schedule.
pub fn teardown_model(fixed: bool) -> impl Fn(&mut Builder) {
    move |b: &mut Builder| {
        let shared = Arc::new(TeardownShared {
            latch: ModelLatch::new(1),
            store: ModelJobStore::new(),
            park: ModelPark::new(true),
            result: RaceCell::named("job.result", None),
            frame: Frame::new("waiter-frame"),
        });

        let waiter = Arc::clone(&shared);
        b.thread(move || {
            wait_for_latch(&waiter.latch, &waiter.store, &waiter.park);
            let r = waiter.result.read();
            // Returning from the real `wait_latch` caller pops the
            // frame that owns the latch: model that with `free`.
            waiter.frame.free();
            assert_eq!(r, Some(42), "result published before latch opened");
        });

        let notifier = Arc::clone(&shared);
        b.thread(move || {
            notifier.frame.touch("result.write");
            notifier.result.write(Some(42));
            if fixed {
                notifier.latch.done_one(&notifier.frame);
            } else {
                notifier.latch.done_one_unlocked(&notifier.frame);
            }
            notifier.park.job_finished();
        });
    }
}

/// Isolates what the declared atomic orderings buy: the waiter spins on
/// `probe()` a bounded number of times and reads the result **without**
/// the teardown lock round-trip (and without freeing the frame). On
/// this path the only happens-before edge from the notifier's
/// `result.write` to the waiter's read is the `AcqRel` decrement →
/// `Acquire` probe pair — so the model passes exhaustively under the
/// declared orderings and reports a data race in weakest-ordering mode
/// ([`crate::Config::weakened`]), proving those orderings are
/// load-bearing (unlike on the teardown path, where the lock already
/// carries the edge).
pub fn probe_publish_model() -> impl Fn(&mut Builder) {
    |b: &mut Builder| {
        let shared = Arc::new(TeardownShared {
            latch: ModelLatch::new(1),
            store: ModelJobStore::new(),
            park: ModelPark::new(true),
            result: RaceCell::named("job.result", None),
            frame: Frame::new("waiter-frame"),
        });

        let waiter = Arc::clone(&shared);
        b.thread(move || {
            // Bounded spin: schedules where the notifier has not
            // finished simply end without observing the latch open
            // (an unbounded spin would livelock the explorer).
            for _ in 0..3 {
                if waiter.latch.probe() {
                    let r = waiter.result.read();
                    assert_eq!(r, Some(42), "probe() == true publishes the result");
                    return;
                }
            }
        });

        let notifier = Arc::clone(&shared);
        b.thread(move || {
            notifier.frame.touch("result.write");
            notifier.result.write(Some(42));
            notifier.latch.done_one(&notifier.frame);
        });
    }
}

/// Two notifiers, one waiter (3 threads): the multi-completion shape
/// `run_chunks` puts the latch through. Checks intermediate decrements
/// wake nobody early (a prematurely-woken waiter re-probes and parks
/// again) and both results are published by the time the latch opens.
pub fn multi_notifier_model() -> impl Fn(&mut Builder) {
    |b: &mut Builder| {
        struct Shared {
            latch: ModelLatch,
            store: ModelJobStore,
            park: ModelPark,
            results: [RaceCell<Option<u32>>; 2],
            frame: Frame,
        }
        let shared = Arc::new(Shared {
            latch: ModelLatch::new(2),
            store: ModelJobStore::new(),
            park: ModelPark::new(true),
            results: [
                RaceCell::named("chunk0.result", None),
                RaceCell::named("chunk1.result", None),
            ],
            frame: Frame::new("batch-frame"),
        });

        let waiter = Arc::clone(&shared);
        b.thread(move || {
            wait_for_latch(&waiter.latch, &waiter.store, &waiter.park);
            let a = waiter.results[0].read();
            let b = waiter.results[1].read();
            waiter.frame.free();
            assert_eq!((a, b), (Some(10), Some(20)));
        });
        for (i, value) in [(0usize, 10u32), (1, 20)] {
            let notifier = Arc::clone(&shared);
            b.thread(move || {
                notifier.frame.touch("result.write");
                notifier.results[i].write(Some(value));
                notifier.latch.done_one(&notifier.frame);
                notifier.park.job_finished();
            });
        }
    }
}
