//! Model of `Registry`'s shared job queue (`shims/rayon/src/pool.rs`):
//! the mutex-protected FIFO plus the `job_ready` condvar workers park
//! on, with jobs reduced to `usize` ids.
//!
//! Properties checked by the models here:
//!
//! - **exactly-once delivery**: every injected job is executed by
//!   exactly one thread ([`exactly_once_model`], 2 and 3 threads);
//! - **steal-back exclusivity**: `steal_back` succeeding and a worker
//!   popping the same job are mutually exclusive
//!   ([`steal_back_model`]) — the invariant `join` relies on to run the
//!   second closure exactly once;
//! - **no missed wakeups / clean shutdown**: the model condvar has no
//!   timeouts or spurious wakeups, so a worker parked past a notify it
//!   should have received surfaces as a reported deadlock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};

use crate::sched::Builder;
use crate::sync::{Arc, Condvar, Mutex};

struct QueueState {
    queue: VecDeque<usize>,
    shutdown: bool,
}

/// Port of `Registry`'s `shared` + `job_ready` pair.
pub struct ModelQueue {
    shared: Mutex<QueueState>,
    job_ready: Condvar,
}

impl Default for ModelQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelQueue {
    pub fn new() -> Self {
        ModelQueue {
            shared: Mutex::named(
                "queue.shared",
                QueueState {
                    queue: VecDeque::new(),
                    shutdown: false,
                },
            ),
            job_ready: Condvar::named("queue.job_ready"),
        }
    }

    /// `Registry::inject`: push, drop the lock, wake one worker.
    pub fn inject(&self, job: usize) {
        let mut shared = self.shared.lock().unwrap();
        shared.queue.push_back(job);
        drop(shared);
        self.job_ready.notify_one();
    }

    /// `Registry::inject_many`: push a batch, wake every worker.
    pub fn inject_many(&self, jobs: impl IntoIterator<Item = usize>) {
        let mut shared = self.shared.lock().unwrap();
        shared.queue.extend(jobs);
        drop(shared);
        self.job_ready.notify_all();
    }

    /// `Registry::try_pop`.
    pub fn try_pop(&self) -> Option<usize> {
        self.shared.lock().unwrap().queue.pop_front()
    }

    /// `Registry::steal_back`: remove `job` if unclaimed.
    pub fn steal_back(&self, job: usize) -> bool {
        let mut shared = self.shared.lock().unwrap();
        if let Some(pos) = shared.queue.iter().position(|&j| j == job) {
            shared.queue.remove(pos);
            true
        } else {
            false
        }
    }

    /// The worker-loop wait (`worker_loop`'s inner loop): block until a
    /// job arrives (`Some`) or shutdown is signalled (`None`).
    pub fn next_job(&self) -> Option<usize> {
        let mut shared = self.shared.lock().unwrap();
        loop {
            if let Some(job) = shared.queue.pop_front() {
                return Some(job);
            }
            if shared.shutdown {
                return None;
            }
            shared = self.job_ready.wait(shared).unwrap();
        }
    }

    /// `Registry::terminate`.
    pub fn terminate(&self) {
        self.shared.lock().unwrap().shutdown = true;
        self.job_ready.notify_all();
    }
}

/// One producer injecting `jobs` jobs then shutting down, `workers`
/// worker threads draining via [`ModelQueue::next_job`]. The finale
/// asserts every job ran exactly once. Bookkeeping counters are plain
/// `std` atomics — not protocol state, so they are deliberately not
/// scheduling points.
pub fn exactly_once_model(workers: usize, jobs: usize) -> impl Fn(&mut Builder) {
    move |b: &mut Builder| {
        let queue = Arc::new(ModelQueue::new());
        let runs: Arc<Vec<StdAtomicUsize>> =
            Arc::new((0..jobs).map(|_| StdAtomicUsize::new(0)).collect());

        let producer = Arc::clone(&queue);
        b.thread(move || {
            for j in 0..jobs {
                producer.inject(j);
            }
            producer.terminate();
        });

        for _ in 0..workers {
            let worker = Arc::clone(&queue);
            let worker_runs = Arc::clone(&runs);
            b.thread(move || {
                while let Some(j) = worker.next_job() {
                    worker_runs[j].fetch_add(1, Ordering::SeqCst);
                }
            });
        }

        let finale_runs = Arc::clone(&runs);
        b.finale(move || {
            for (j, count) in finale_runs.iter().enumerate() {
                assert_eq!(
                    count.load(Ordering::SeqCst),
                    1,
                    "job {j} must execute exactly once"
                );
            }
        });
    }
}

/// The `join` claim protocol: the caller injects job 0 and then tries
/// to steal it back while a worker drains the queue. Exactly one side
/// may win the job.
pub fn steal_back_model() -> impl Fn(&mut Builder) {
    |b: &mut Builder| {
        let queue = Arc::new(ModelQueue::new());
        let worker_runs = Arc::new(StdAtomicUsize::new(0));
        let steals = Arc::new(StdAtomicUsize::new(0));

        let caller = Arc::clone(&queue);
        let caller_steals = Arc::clone(&steals);
        b.thread(move || {
            caller.inject(0);
            if caller.steal_back(0) {
                caller_steals.fetch_add(1, Ordering::SeqCst);
            }
            caller.terminate();
        });

        let worker = Arc::clone(&queue);
        let runs = Arc::clone(&worker_runs);
        b.thread(move || {
            while let Some(_job) = worker.next_job() {
                runs.fetch_add(1, Ordering::SeqCst);
            }
        });

        b.finale(move || {
            let executed = worker_runs.load(Ordering::SeqCst);
            let stolen = steals.load(Ordering::SeqCst);
            assert_eq!(
                executed + stolen,
                1,
                "job 0 must be claimed exactly once (executed {executed}, stolen {stolen})"
            );
        });
    }
}
