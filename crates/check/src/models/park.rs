//! Model of the Pool-v2 **parking protocol**
//! (`shims/rayon/src/pool.rs`): the registry-wide `pending` /
//! `completions` / `parked` counters, the park lock with its two
//! condvars (`job_ready` for idle workers, `helper_wake` for latch
//! waiters), and the PR 8 **lost-wakeup fix** — publishers must wake
//! latch-parked helpers, not just workers.
//!
//! Every condvar wait here has **no timeout** (the real pool keeps a
//! 1 ms bounded wait on the helper path as a belt): a wakeup the
//! protocol loses surfaces as a reported deadlock naming the condvar,
//! instead of hiding behind the timeout. [`lost_wakeup_model`] carries
//! the regression knob — `fixed = false` reverts `wake` to the pre-PR 8
//! shape (job arrival notifies only `job_ready`), and the explorer
//! reports the helper deadlocked on `park.helper_wake` with a replay
//! seed.
//!
//! ## One deliberate coarsening
//!
//! [`ModelJobStore`] fuses "job queue" and the `pending` ledger: the
//! counter moves *inside the queue's critical section*, so at every
//! scheduling point `pending` equals the number of reachable jobs. The
//! real pool decrements right after removal — opening a transient
//! where a peer sees `pending > 0`, finds nothing, and rescans. That
//! transient's only effect is a bounded extra rescan resolved by OS
//! scheduling fairness, which this explorer deliberately does not
//! assume — modeled faithfully, the schedule "starve the claimant,
//! spin the scanner" runs forever and every exploration dies on the
//! step budget. The pool narrows the same window by claiming while
//! still holding the deque lock (see `Registry::find_work`), so a
//! rescanning peer serializes behind the lock exactly as it does
//! here; only the lock-free injector's grab window (no lock to block
//! on) remains outside this model, and the injector protocol itself is
//! checked in [`crate::models::deque`]. Everything the lost-wakeup
//! class depends on — registration order, predicate re-checks under
//! the park lock, which condvar each publish notifies — is modeled
//! operation-for-operation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};

use crate::models::latch::ModelLatch;
use crate::sched::Builder;
use crate::sync::{Arc, AtomicUsize, Condvar, Frame, Mutex, RaceCell};

/// The fused queue + `pending` ledger (see the module docs for why the
/// two are one critical section here). `pop_oldest` is the worker/thief
/// side (FIFO head), `pop_newest` the owner's helping side (LIFO tail),
/// `steal_back_tail` the O(1) `join` reclaim.
pub struct ModelJobStore {
    jobs: Mutex<VecDeque<usize>>,
    /// `Registry::pending`: published-minus-claimed, `SeqCst` like the
    /// real field; read by park predicates *without* the store lock.
    pending: AtomicUsize,
}

impl Default for ModelJobStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelJobStore {
    pub fn new() -> Self {
        ModelJobStore {
            jobs: Mutex::named("store.lock", VecDeque::new()),
            pending: AtomicUsize::named("store.pending", 0),
        }
    }

    /// `Registry::inject`'s queue half (the caller follows with
    /// [`ModelPark::wake`], mirroring `published`).
    pub fn push(&self, job: usize) {
        let mut jobs = self.jobs.lock().unwrap();
        jobs.push_back(job);
        self.pending.fetch_add(1, Ordering::SeqCst);
        drop(jobs);
    }

    /// `Registry::inject_many`'s queue half: one batch, one ledger
    /// bump per job, still inside the critical section.
    pub fn push_many(&self, batch: impl IntoIterator<Item = usize>) {
        let mut jobs = self.jobs.lock().unwrap();
        for job in batch {
            jobs.push_back(job);
            self.pending.fetch_add(1, Ordering::SeqCst);
        }
        drop(jobs);
    }

    /// Worker-side claim: the oldest job (FIFO).
    pub fn pop_oldest(&self) -> Option<usize> {
        let mut jobs = self.jobs.lock().unwrap();
        let job = jobs.pop_front();
        if job.is_some() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
        }
        drop(jobs);
        job
    }

    /// Owner-side claim (the helping loop): the newest job (LIFO).
    pub fn pop_newest(&self) -> Option<usize> {
        let mut jobs = self.jobs.lock().unwrap();
        let job = jobs.pop_back();
        if job.is_some() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
        }
        drop(jobs);
        job
    }

    /// `Registry::steal_back`: reclaim `job` iff it is still the tail.
    pub fn steal_back_tail(&self, job: usize) -> bool {
        let mut jobs = self.jobs.lock().unwrap();
        let reclaimed = if jobs.back() == Some(&job) {
            jobs.pop_back();
            self.pending.fetch_sub(1, Ordering::SeqCst);
            true
        } else {
            false
        };
        drop(jobs);
        reclaimed
    }

    /// The park predicates' lock-free read of the ledger.
    pub fn pending_load(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }
}

struct ParkSt {
    sleepers: usize,
    helper_sleepers: usize,
    shutdown: bool,
}

/// Port of the registry's parking protocol. `wake_helpers_on_publish`
/// is the PR 8 fix knob: `true` is the shipped protocol (job arrival
/// notifies `helper_wake` too); `false` reverts to the pre-fix shape,
/// where a job published while every thread is latch-parked is slept
/// through.
pub struct ModelPark {
    /// `Registry::completions`: jobs executed (`SeqCst`). Latch waiters
    /// snapshot it before probing and refuse to park if it moved.
    completions: AtomicUsize,
    /// `Registry::parked`: threads inside a park call, registered under
    /// the park lock but read without it by the wake fast path.
    parked: AtomicUsize,
    park: Mutex<ParkSt>,
    job_ready: Condvar,
    helper_wake: Condvar,
    wake_helpers_on_publish: bool,
}

impl ModelPark {
    pub fn new(fixed: bool) -> Self {
        ModelPark {
            completions: AtomicUsize::named("park.completions", 0),
            parked: AtomicUsize::named("park.parked", 0),
            park: Mutex::named(
                "park.lock",
                ParkSt {
                    sleepers: 0,
                    helper_sleepers: 0,
                    shutdown: false,
                },
            ),
            job_ready: Condvar::named("park.job_ready"),
            helper_wake: Condvar::named("park.helper_wake"),
            wake_helpers_on_publish: fixed,
        }
    }

    /// `Registry::wake`, called after publishing jobs: the lock-free
    /// `parked == 0` fast path, then notifies under the park lock. With
    /// the fix reverted, helpers are *not* woken on job arrival — the
    /// lost-wakeup window.
    pub fn wake(&self) {
        if self.parked.load(Ordering::SeqCst) == 0 {
            return;
        }
        let st = self.park.lock().unwrap();
        if st.sleepers > 0 {
            self.job_ready.notify_all();
        }
        if self.wake_helpers_on_publish && st.helper_sleepers > 0 {
            self.helper_wake.notify_all();
        }
        drop(st);
    }

    /// `Registry::job_finished`: bump `completions`, wake latch waiters
    /// (the finished job may have opened their latch). Both the old and
    /// new protocols wake helpers on *completion* — the bug was job
    /// *arrival*.
    pub fn job_finished(&self) {
        self.completions.fetch_add(1, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) == 0 {
            return;
        }
        let st = self.park.lock().unwrap();
        if st.helper_sleepers > 0 {
            self.helper_wake.notify_all();
        }
        drop(st);
    }

    /// The `completions` snapshot latch waiters take before probing.
    pub fn completions(&self) -> usize {
        self.completions.load(Ordering::SeqCst)
    }

    /// `Registry::park_worker`: register under the park lock *before*
    /// re-checking `pending` (the store-buffering shape that makes the
    /// publisher's `parked` check sound), wait on `job_ready`, return
    /// `false` only when shut down *and* drained.
    pub fn park_worker(&self, store: &ModelJobStore) -> bool {
        let mut st = self.park.lock().unwrap();
        self.parked.fetch_add(1, Ordering::SeqCst);
        st.sleepers += 1;
        if store.pending_load() == 0 && !st.shutdown {
            st = self.job_ready.wait(st).unwrap();
        }
        st.sleepers -= 1;
        self.parked.fetch_sub(1, Ordering::SeqCst);
        !(st.shutdown && store.pending_load() == 0)
    }

    /// `Registry::park_helper`: same registration protocol; the sleep
    /// predicate additionally refuses to park if a job completed since
    /// `seen` or the waiter's latch is already open. **No timeout** —
    /// the real pool's 1 ms bound is a belt, and exploring without it
    /// is what proves that.
    pub fn park_helper(&self, store: &ModelJobStore, seen: usize, latch_open: impl Fn() -> bool) {
        let mut st = self.park.lock().unwrap();
        self.parked.fetch_add(1, Ordering::SeqCst);
        st.helper_sleepers += 1;
        if store.pending_load() == 0
            && self.completions.load(Ordering::SeqCst) == seen
            && !latch_open()
        {
            st = self.helper_wake.wait(st).unwrap();
        }
        st.helper_sleepers -= 1;
        self.parked.fetch_sub(1, Ordering::SeqCst);
        drop(st);
    }

    /// `Registry::terminate`.
    pub fn terminate(&self) {
        let mut st = self.park.lock().unwrap();
        st.shutdown = true;
        self.job_ready.notify_all();
        self.helper_wake.notify_all();
        drop(st);
    }
}

/// The PR 8 lost-wakeup scenario, two threads. The helper runs the real
/// `wait_latch` loop — snapshot `completions`, probe, claim-and-execute
/// or park — waiting on a latch that only opens when the injected job
/// runs, and only the helper can run it. The injector thread publishes
/// the job and calls `wake`.
///
/// With `fixed = true` this explores exhaustively clean: whichever side
/// loses the race, the helper either sees the job before sleeping
/// (registration-before-predicate) or is notified on `helper_wake`.
/// With `fixed = false`, the schedule "helper parks first, then the job
/// arrives" leaves the helper asleep forever — the explorer reports the
/// deadlock, naming `park.helper_wake`, with a replay seed. This is the
/// hang the old pool could reach whenever every thread was latch-parked
/// and new work arrived.
pub fn lost_wakeup_model(fixed: bool) -> impl Fn(&mut Builder) {
    move |b: &mut Builder| {
        struct Shared {
            store: ModelJobStore,
            park: ModelPark,
            latch: ModelLatch,
            /// `StackJob::result` for the injected job, living in the
            /// helper's frame.
            result: RaceCell<Option<u32>>,
            frame: Frame,
        }
        let shared = Arc::new(Shared {
            store: ModelJobStore::new(),
            park: ModelPark::new(fixed),
            latch: ModelLatch::new(1),
            result: RaceCell::named("job.result", None),
            frame: Frame::new("waiter-frame"),
        });

        let helper = Arc::clone(&shared);
        b.thread(move || {
            loop {
                let seen = helper.park.completions();
                if helper.latch.probe() {
                    break;
                }
                match helper.store.pop_newest() {
                    Some(job) => {
                        assert_eq!(job, 0, "only job 0 is ever published");
                        helper.frame.touch("result.write");
                        helper.result.write(Some(42));
                        helper.latch.done_one(&helper.frame);
                        helper.park.job_finished();
                    }
                    None => helper
                        .park
                        .park_helper(&helper.store, seen, || helper.latch.probe()),
                }
            }
            helper.latch.sync_before_teardown();
            helper.frame.touch("result.take");
            let result = helper.result.swap(None);
            helper.frame.free();
            assert_eq!(
                result,
                Some(42),
                "the injected job ran before the latch opened"
            );
        });

        let injector = Arc::clone(&shared);
        b.thread(move || {
            // `Registry::inject` from outside: publish, then wake.
            injector.store.push(0);
            injector.park.wake();
        });
    }
}

/// Worker lifecycle on the new protocol: a producer publishes `jobs`
/// jobs and terminates; `workers` workers claim / execute / park until
/// shutdown-and-drained. The finale asserts exactly-once execution —
/// including for stragglers published just before the shutdown signal,
/// which `park_worker`'s drain-before-exit return value covers. Each
/// job's claim slot is a [`RaceCell`], so an exactly-once violation is
/// also a reported data race, not just a failed count.
pub fn worker_lifecycle_model(workers: usize, jobs: usize) -> impl Fn(&mut Builder) {
    move |b: &mut Builder| {
        struct Shared {
            store: ModelJobStore,
            park: ModelPark,
            slots: Vec<RaceCell<Option<usize>>>,
        }
        fn slot_name(index: usize) -> &'static str {
            match index {
                0 => "job0.func",
                1 => "job1.func",
                _ => "job2.func",
            }
        }
        assert!(jobs <= 3, "model names cover three claim slots");
        let shared = Arc::new(Shared {
            store: ModelJobStore::new(),
            park: ModelPark::new(true),
            slots: (0..jobs)
                .map(|j| RaceCell::named(slot_name(j), Some(j)))
                .collect(),
        });
        let runs: Arc<Vec<StdAtomicUsize>> =
            Arc::new((0..jobs).map(|_| StdAtomicUsize::new(0)).collect());

        let producer = Arc::clone(&shared);
        b.thread(move || {
            for j in 0..jobs {
                producer.store.push(j);
                producer.park.wake();
            }
            producer.park.terminate();
        });

        for _ in 0..workers {
            let worker = Arc::clone(&shared);
            let worker_runs = Arc::clone(&runs);
            b.thread(move || loop {
                while let Some(j) = worker.store.pop_oldest() {
                    let payload = worker.slots[j]
                        .swap(None)
                        .expect("a job is claimed exactly once");
                    assert_eq!(payload, j);
                    worker_runs[j].fetch_add(1, Ordering::SeqCst);
                    worker.park.job_finished();
                }
                if !worker.park.park_worker(&worker.store) {
                    return;
                }
            });
        }

        b.finale(move || {
            for (j, count) in runs.iter().enumerate() {
                assert_eq!(
                    count.load(Ordering::SeqCst),
                    1,
                    "job {j} must execute exactly once"
                );
            }
        });
    }
}
