//! Deterministic fault injection for the serving tier (`--cfg pp_fault`).
//!
//! PR 6 established the repo's robustness methodology: adversarial
//! executions must be **seeded and replayable**, never "run it a lot and
//! hope". This module extends that from schedules to *faults*. A
//! [`FaultPlan`] names injection **sites** (string labels compiled into
//! the serve path, e.g. `"serve.query.panic"`) and, per site, a firing
//! rate. Whether a particular operation faults is a **pure hash** of
//! `(plan seed, site, caller key)` — no global counters, no clocks — so
//! the fault schedule is a function of the plan alone: the same seed
//! string produces the same faults regardless of thread count,
//! interleaving, or how many times the trace is re-run. That is what
//! lets the `fault_smoke` CI gate assert that two runs under one seed
//! yield byte-identical outcome sequences.
//!
//! The injection machinery is compiled in only under `--cfg pp_fault`
//! (mirroring `shims/rayon`'s `--cfg pp_check` instrumentation layer):
//! production builds carry zero probes — [`fires`] is a constant
//! `false` the optimizer deletes. Callers branch on [`ENABLED`] at
//! runtime instead of sprinkling `cfg` attributes.
//!
//! Three fault shapes cover the serving tier's failure surface:
//!
//! * **Injected panic** ([`panic_point`]) — unwinds with a quiet
//!   [`FaultPanic`] payload (the installed hook suppresses the default
//!   stderr backtrace for these, and only these), exercising
//!   `catch_unwind` isolation, scratch quarantine, and the cache's
//!   poison paths.
//! * **Forced deadline expiry** — the driver consults [`fires`] and
//!   pre-cancels the query's `CancelToken`, exercising the typed
//!   `DeadlineExceeded` path in every engine.
//! * **Prepare failure** — a panic point inside the cache's
//!   single-flight `prepare` closure, exercising leader-death recovery
//!   (followers must retry and elect exactly one new leader).
//!
//! ```
//! use pp_check::fault::FaultPlan;
//!
//! let plan = FaultPlan::new("pr9-smoke").with_rule("serve.query.panic", 8);
//! // Pure-hash decisions: same (seed, site, key) → same answer, always.
//! for key in 0..64u64 {
//!     assert_eq!(
//!         plan.would_fire("serve.query.panic", key),
//!         plan.would_fire("serve.query.panic", key),
//!     );
//! }
//! // Unlisted sites never fire.
//! assert!(!plan.would_fire("serve.other", 3));
//! ```

use std::sync::{Mutex, OnceLock};

/// True iff this build carries the injection machinery
/// (`RUSTFLAGS="--cfg pp_fault"`). Smoke binaries and seeded tests
/// check this at runtime and skip (successfully) when faults are
/// compiled out.
pub const ENABLED: bool = cfg!(pp_fault);

/// One injection rule: fire at `site` for roughly one in `one_in` keys
/// (exactly those whose decision hash is `0 mod one_in`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// The injection site label this rule arms.
    pub site: &'static str,
    /// Firing rate denominator; `1` fires on every key. Must be ≥ 1.
    pub one_in: u64,
}

/// A seeded fault schedule: which sites fire, for which keys. Decisions
/// are pure ([`FaultPlan::would_fire`]); installing the plan globally
/// ([`install`]) is what makes the compiled-in probes consult it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: String,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan under `seed`. The seed string is the replay
    /// handle: print it with any failure, and re-running under the same
    /// seed reproduces the same fault schedule.
    pub fn new(seed: &str) -> Self {
        Self {
            seed: seed.to_string(),
            rules: Vec::new(),
        }
    }

    /// Arm `site` to fire for one in `one_in` keys.
    pub fn with_rule(mut self, site: &'static str, one_in: u64) -> Self {
        assert!(one_in >= 1, "one_in must be >= 1");
        self.rules.push(FaultRule { site, one_in });
        self
    }

    /// The plan's replay seed.
    pub fn seed(&self) -> &str {
        &self.seed
    }

    /// The pure decision function: does `site` fault for `key` under
    /// this plan? Deterministic in `(seed, site, key)` alone — thread
    /// count, wall clock and call order are all invisible to it.
    pub fn would_fire(&self, site: &str, key: u64) -> bool {
        self.rules
            .iter()
            .filter(|r| r.site == site)
            .any(|r| decision_hash(&self.seed, site, key).is_multiple_of(r.one_in))
    }
}

/// FNV-1a over `(seed, site, key)` — the decision hash behind
/// [`FaultPlan::would_fire`]. Stable across platforms and runs.
fn decision_hash(seed: &str, site: &str, key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(seed.as_bytes());
    eat(&[0xff]); // separator: ("ab","c") never collides with ("a","bc")
    eat(site.as_bytes());
    eat(&key.to_le_bytes());
    h
}

/// The panic payload every [`panic_point`] unwinds with. Typed so the
/// serve driver can classify injected panics, and so the panic hook can
/// keep injected unwinds off stderr while real panics still print.
#[derive(Debug)]
pub struct FaultPanic {
    /// The site that fired.
    pub site: &'static str,
}

fn plan_slot() -> &'static Mutex<Option<FaultPlan>> {
    static SLOT: OnceLock<Mutex<Option<FaultPlan>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Install `plan` as the process-global fault schedule and silence the
/// default panic printout for [`FaultPanic`] unwinds. No-op (plan
/// dropped) unless built with `--cfg pp_fault`.
pub fn install(plan: FaultPlan) {
    if !ENABLED {
        return;
    }
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FaultPanic>().is_none() {
                prev(info);
            }
        }));
    });
    *plan_slot().lock().unwrap() = Some(plan);
}

/// Remove the global fault schedule; probes go quiet again.
pub fn clear() {
    if ENABLED {
        *plan_slot().lock().unwrap() = None;
    }
}

/// Does the globally installed plan fire `site` for `key`? Constant
/// `false` when faults are compiled out or no plan is installed.
pub fn fires(site: &str, key: u64) -> bool {
    if !ENABLED {
        return false;
    }
    plan_slot()
        .lock()
        .unwrap()
        .as_ref()
        .is_some_and(|p| p.would_fire(site, key))
}

/// A compiled-in panic probe: if the installed plan fires `site` for
/// `key`, unwind with a quiet [`FaultPanic`] payload. The serve path
/// calls this inside its `catch_unwind` boundaries; everything outside
/// them must never host a probe.
pub fn panic_point(site: &'static str, key: u64) {
    if fires(site, key) {
        std::panic::panic_any(FaultPanic { site });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        let a = FaultPlan::new("seed-a").with_rule("site", 4);
        let b = FaultPlan::new("seed-b").with_rule("site", 4);
        let fires_a: Vec<bool> = (0..256).map(|k| a.would_fire("site", k)).collect();
        let fires_b: Vec<bool> = (0..256).map(|k| b.would_fire("site", k)).collect();
        // Replayable: the same plan gives the same schedule.
        assert_eq!(
            fires_a,
            (0..256)
                .map(|k| a.would_fire("site", k))
                .collect::<Vec<_>>()
        );
        // Seed-sensitive: different seeds give different schedules.
        assert_ne!(fires_a, fires_b);
        // Rate roughly honored: one-in-4 over 256 keys lands well away
        // from "never" and "always".
        let n = fires_a.iter().filter(|&&f| f).count();
        assert!(n > 16 && n < 160, "one-in-4 fired {n}/256");
    }

    #[test]
    fn one_in_one_always_fires_and_unlisted_sites_never() {
        let plan = FaultPlan::new("s").with_rule("always", 1);
        assert!((0..64).all(|k| plan.would_fire("always", k)));
        assert!((0..64).all(|k| !plan.would_fire("unlisted", k)));
    }

    #[test]
    fn probes_are_silent_without_install() {
        // Whether or not pp_fault is compiled in, an uninstalled probe
        // never fires.
        clear();
        assert!(!fires("serve.query.panic", 7));
        panic_point("serve.query.panic", 7); // must not panic
    }

    #[test]
    fn installed_plan_drives_global_probes() {
        if !ENABLED {
            return; // compiled out: install is a no-op by design
        }
        install(FaultPlan::new("global").with_rule("g.site", 1));
        assert!(fires("g.site", 0));
        let err = std::panic::catch_unwind(|| panic_point("g.site", 3)).unwrap_err();
        assert_eq!(err.downcast_ref::<FaultPanic>().unwrap().site, "g.site");
        clear();
        assert!(!fires("g.site", 0));
    }
}
