//! CI gate for the concurrency checker and the unsafe audit.
//!
//! Runs, in order:
//! 1. bounded schedule exploration of every pool protocol model
//!    (positive: must pass; the latch UAF regression, the weakened
//!    probe and injector models, and the reverted lost-wakeup fix are
//!    negative controls: must fail with the expected diagnostic — a
//!    checker that stops finding the seeded bug is itself broken);
//! 2. the workspace unsafe audit (must be clean), plus an in-memory
//!    fixture negative control (must be flagged).
//!
//! `PP_SMOKE=1` shrinks exploration budgets for constrained CI runners;
//! the full exhaustive suite lives in `cargo test -p pp-check`.
//! Exits non-zero on any unexpected outcome.

#![forbid(unsafe_code)]

use pp_check::models::{chunks, deque, join, latch, park, scope};
use pp_check::{audit, explore, Config, Report};

struct Gate {
    failures: usize,
}

impl Gate {
    fn expect_pass(&mut self, report: &Report) {
        if report.passed() {
            println!("ok   {report}");
        } else {
            println!("FAIL {report}");
            self.failures += 1;
        }
    }

    fn expect_failure(&mut self, report: &Report, needle: &str) {
        match &report.failure {
            Some(failure) if failure.message.contains(needle) => {
                println!(
                    "ok   model '{}': negative control tripped as expected \
                     ({} schedule(s); seed {}): {}",
                    report.name, report.schedules, failure.seed, failure.message
                );
            }
            Some(failure) => {
                println!(
                    "FAIL model '{}': wrong failure (wanted '{needle}'): {}",
                    report.name, failure.message
                );
                self.failures += 1;
            }
            None => {
                println!(
                    "FAIL model '{}': negative control passed — the checker \
                     no longer finds the seeded '{needle}' bug",
                    report.name
                );
                self.failures += 1;
            }
        }
    }
}

fn main() {
    let smoke = std::env::var("PP_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let budget = if smoke { 2_000 } else { 20_000 };
    let cfg = || Config::default().schedules(budget);
    let mut gate = Gate { failures: 0 };

    println!("== pp-check: schedule exploration ({budget}-schedule budget) ==");
    gate.expect_pass(&explore(
        "latch_teardown_fixed",
        cfg(),
        latch::teardown_model(true),
    ));
    gate.expect_pass(&explore(
        "latch_teardown_fixed_weakened",
        cfg().weakened(),
        latch::teardown_model(true),
    ));
    gate.expect_failure(
        &explore(
            "latch_teardown_prefix_regression",
            cfg(),
            latch::teardown_model(false),
        ),
        "use-after-free",
    );
    gate.expect_pass(&explore(
        "latch_probe_publish",
        cfg(),
        latch::probe_publish_model(),
    ));
    gate.expect_failure(
        &explore(
            "latch_probe_publish_weakened",
            cfg().weakened(),
            latch::probe_publish_model(),
        ),
        "data race",
    );
    gate.expect_pass(&explore(
        "deque_exactly_once_1s",
        cfg(),
        deque::deque_exactly_once_model(1),
    ));
    gate.expect_pass(&explore(
        "deque_exactly_once_2s",
        cfg().preemptions(1),
        deque::deque_exactly_once_model(2),
    ));
    gate.expect_pass(&explore(
        "deque_steal_back",
        cfg(),
        deque::deque_steal_back_model(),
    ));
    gate.expect_pass(&explore(
        "injector_publish",
        cfg().preemptions(if smoke { 1 } else { 2 }),
        deque::injector_publish_model(),
    ));
    gate.expect_failure(
        &explore(
            "injector_publish_weakened",
            cfg().preemptions(if smoke { 1 } else { 2 }).weakened(),
            deque::injector_publish_model(),
        ),
        "data race",
    );
    gate.expect_pass(&explore(
        "lost_wakeup_fixed",
        cfg(),
        park::lost_wakeup_model(true),
    ));
    gate.expect_failure(
        &explore(
            "lost_wakeup_reverted",
            cfg(),
            park::lost_wakeup_model(false),
        ),
        "deadlock",
    );
    gate.expect_pass(&explore(
        "worker_lifecycle_1w",
        cfg(),
        park::worker_lifecycle_model(1, 2),
    ));
    gate.expect_pass(&explore(
        "join_steal_back",
        cfg().preemptions(2),
        join::join_steal_back_model(),
    ));
    gate.expect_pass(&explore(
        "chunk_batch",
        cfg().preemptions(if smoke { 1 } else { 2 }),
        chunks::chunk_batch_model(),
    ));
    gate.expect_pass(&explore(
        "scope_panic",
        cfg().preemptions(if smoke { 1 } else { 2 }),
        scope::scope_panic_model(),
    ));

    println!("== pp-check: unsafe audit ==");
    let cwd = std::env::current_dir().expect("cwd");
    match audit::find_workspace_root(&cwd) {
        Some(root) => {
            let violations = audit::audit_workspace(&root);
            if violations.is_empty() {
                println!("ok   unsafe audit clean at {}", root.display());
            } else {
                for v in &violations {
                    println!("FAIL {v}");
                }
                gate.failures += violations.len();
            }
        }
        None => {
            println!("FAIL no workspace root found above {}", cwd.display());
            gate.failures += 1;
        }
    }
    // Negative control: an unannotated unsafe block must be flagged.
    let fixture = "fn f(p: *mut u8) {\n    unsafe { p.write(0) };\n}\n";
    if audit::scan_source(fixture).uncovered == vec![2] {
        println!("ok   audit fixture: unannotated unsafe flagged");
    } else {
        println!("FAIL audit fixture: unannotated unsafe NOT flagged");
        gate.failures += 1;
    }

    if gate.failures > 0 {
        println!("check_smoke: {} failure(s)", gate.failures);
        std::process::exit(1);
    }
    println!("check_smoke: all gates green");
}
