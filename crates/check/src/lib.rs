//! # `pp-check` — concurrency model checker + unsafe-audit lint
//!
//! PR 5 turned `shims/rayon` into a real fork-join thread pool built on
//! `UnsafeCell` stack jobs, a mutex/condvar countdown latch, and
//! disjoint-pointer `Vec` writes. Repeated-run race smokes cannot
//! explore the schedules where such code breaks (the PR 5 review itself
//! caught a waiter-frees-frame-mid-notify use-after-free that no smoke
//! had seen), so this crate supplies the missing correctness tooling:
//!
//! 1. **A deterministic concurrency model checker** ([`sched`],
//!    [`sync`], [`models`]): loom-style schedule exploration for small
//!    ported models of the pool's protocols. Model threads run under a
//!    cooperative scheduler that context-switches only at instrumented
//!    operations, explores interleavings by depth-first search with
//!    **bounded preemptions**, and replays any failing schedule from a
//!    printable **seed string** (`"0.1.1.0"` = the thread chosen at
//!    each step). Vector-clock happens-before tracking flags data races
//!    on [`sync::RaceCell`] slots (the model of the pool's `UnsafeCell`
//!    fields), and [`sync::Frame`] lifetime tokens flag use-after-free
//!    of latch-owning stack frames.
//! 2. **A source-level unsafe audit** ([`audit`]): a dependency-free
//!    scanner that walks the workspace and enforces that every `unsafe`
//!    site carries a `// SAFETY:` justification, that no `static mut`
//!    exists, that crates with zero unsafe declare
//!    `#![forbid(unsafe_code)]`, and that crates with unsafe declare
//!    `#![deny(unsafe_op_in_unsafe_fn)]`.
//!
//! Both prongs run in CI via the `check_smoke` binary (bounded
//! exploration + workspace audit); the full exhaustive suite runs under
//! `cargo test -p pp-check`.
//!
//! The checker itself is **100% safe Rust** (`#![forbid(unsafe_code)]`):
//! because model threads run one at a time, all checker-internal shared
//! state sits behind ordinary uncontended `std::sync` primitives.
//!
//! ## Replaying a failure
//!
//! Every failure report prints a seed. To re-run exactly that
//! interleaving (e.g. under a debugger or with extra logging), call
//! [`sched::replay`] with the seed and the same model — the scheduler
//! is deterministic, so the same seed reproduces the same execution,
//! operation for operation.
//!
//! ## Relation to `shims/rayon`
//!
//! The instrumented primitives in [`sync`] are drop-in shims for the
//! `std::sync` types the pool uses; `shims/rayon` selects them behind
//! `--cfg pp_check` (see `shims/rayon/src/pool.rs`), which proves the
//! real scheduler compiles and passes its test suite against the
//! instrumented layer (outside a model context every shim is a zero-
//! cost passthrough). The exhaustive schedule exploration runs on the
//! ported protocol models in [`models`], which mirror `pool.rs` line
//! for line at the synchronization level.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod audit;
pub mod clock;
pub mod fault;
pub mod fuzz;
pub mod models;
pub mod sched;
pub mod sync;

pub use sched::{explore, replay, Builder, Config, Report};
