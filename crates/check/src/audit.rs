//! Source-level unsafe audit: a dependency-free scanner enforcing the
//! workspace's unsafe-code policy.
//!
//! Rules (each violation carries file, line, and rule id):
//!
//! - **`safety-comment`** — every `unsafe` site (block, `unsafe impl`,
//!   `unsafe fn`) must carry a justification: a `// SAFETY:` comment on
//!   the same line or immediately above (attribute lines, blank lines,
//!   and adjacent `unsafe` lines — e.g. paired `unsafe impl Send`/`Sync`
//!   — may sit between the comment and the site), or a `# Safety` doc
//!   section for `unsafe fn` declarations.
//! - **`no-static-mut`** — `static mut` is banned outright (use
//!   atomics, `OnceLock`, or interior mutability).
//! - **`forbid-unsafe`** — a crate whose sources contain no unsafe at
//!   all must say so in every crate-root file (`src/lib.rs`,
//!   `src/main.rs`, `src/bin/*.rs`): `#![forbid(unsafe_code)]`.
//! - **`deny-unsafe-op`** — a crate that does use unsafe must declare
//!   `#![deny(unsafe_op_in_unsafe_fn)]` in its library root, so every
//!   unsafe operation needs its own `unsafe {}` block (and therefore
//!   its own SAFETY comment) even inside `unsafe fn`s.
//!
//! The scanner lexes line-by-line with a small state machine (block
//! comments, regular/raw strings, char literals vs lifetimes), so
//! `unsafe` inside strings or comments never counts as a site and
//! SAFETY text inside strings never counts as a justification. It runs
//! as a workspace test and inside the `check_smoke` CI gate; fixture
//! inputs are fed in-memory via [`scan_source`].

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Lexing: split each line into code and comment content
// ---------------------------------------------------------------------------

/// One source line after lexing: what is code and what is comment.
#[derive(Debug, Default, Clone)]
struct LexedLine {
    code: String,
    comment: String,
}

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Code,
    BlockComment(u32),
    /// Inside a regular `"…"` string.
    Str,
    /// Inside a raw string with this many `#`s in its delimiter.
    RawStr(u32),
}

/// Lex `source` into per-line code/comment splits. The lexer tracks
/// multi-line constructs (block comments, strings) across lines.
fn lex(source: &str) -> Vec<LexedLine> {
    let mut out = Vec::new();
    let mut state = LexState::Code;
    for raw_line in source.lines() {
        let mut line = LexedLine::default();
        let bytes: Vec<char> = raw_line.chars().collect();
        let mut i = 0usize;
        while i < bytes.len() {
            match state {
                LexState::BlockComment(depth) => {
                    if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        state = if depth > 1 {
                            LexState::BlockComment(depth - 1)
                        } else {
                            LexState::Code
                        };
                        i += 2;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = LexState::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(bytes[i]);
                        i += 1;
                    }
                }
                LexState::Str => {
                    if bytes[i] == '\\' {
                        i += 2; // skip the escaped char (may run past EOL: fine)
                    } else if bytes[i] == '"' {
                        state = LexState::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if bytes[i] == '"' {
                        let mut n = 0u32;
                        while n < hashes && bytes.get(i + 1 + n as usize) == Some(&'#') {
                            n += 1;
                        }
                        if n == hashes {
                            state = LexState::Code;
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    i += 1;
                }
                LexState::Code => {
                    let c = bytes[i];
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Line comment (incl. doc comments) to EOL.
                        line.comment.extend(&bytes[i + 2..]);
                        i = bytes.len();
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = LexState::BlockComment(1);
                        i += 2;
                    } else if c == '"' {
                        state = LexState::Str;
                        line.code.push(' ');
                        i += 1;
                    } else if c == 'r' || c == 'b' {
                        // Possible raw/byte string prefix: r", r#", br", b".
                        let mut j = i + 1;
                        if c == 'b' && bytes.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let is_raw = j > i + 1 || (c == 'r' && hashes > 0);
                        if bytes.get(j) == Some(&'"') && (is_raw || c == 'r') {
                            state = if hashes > 0 || c == 'r' || is_raw {
                                LexState::RawStr(hashes)
                            } else {
                                LexState::Str
                            };
                            line.code.push(' ');
                            i = j + 1;
                        } else if c == 'b' && bytes.get(i + 1) == Some(&'"') {
                            state = LexState::Str;
                            line.code.push(' ');
                            i += 2;
                        } else if c == 'b' && bytes.get(i + 1) == Some(&'\'') {
                            // Byte char literal b'x' / b'\n'.
                            i += 2;
                            if bytes.get(i) == Some(&'\\') {
                                i += 1;
                            }
                            while i < bytes.len() && bytes[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                            line.code.push(' ');
                        } else {
                            line.code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Lifetime or char literal. A lifetime is `'`
                        // followed by an identifier NOT closed by `'`.
                        let next = bytes.get(i + 1).copied();
                        let next2 = bytes.get(i + 2).copied();
                        let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                            && next2 != Some('\'');
                        if is_lifetime {
                            line.code.push(c);
                            i += 1;
                        } else {
                            // Char literal: skip to the closing quote.
                            i += 1;
                            if bytes.get(i) == Some(&'\\') {
                                i += 1;
                                // \u{…} escapes contain more chars; the
                                // loop below runs to the closing quote.
                            }
                            while i < bytes.len() && bytes[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                            line.code.push(' ');
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(line);
    }
    out
}

/// True when `needle` occurs in `haystack` as a standalone word (not
/// embedded in a longer identifier like `unsafe_op_in_unsafe_fn`).
fn contains_word(haystack: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= haystack.len()
            || !haystack[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

fn is_safety_comment(comment: &str) -> bool {
    comment.contains("SAFETY:") || comment.contains("# Safety")
}

/// True when `code` contains an `unsafe` **site** (block, `unsafe fn`
/// declaration, `unsafe impl`/`unsafe trait`). Occurrences that are
/// part of a function-pointer *type* (`unsafe fn(args)`, possibly with
/// an `extern` ABI) are not sites — there is nothing to justify at a
/// type annotation.
fn has_unsafe_site(code: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find("unsafe") {
        let at = start + pos;
        start = at + "unsafe".len();
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !code[start..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !(before_ok && after_ok) {
            continue;
        }
        let mut rest = code[start..].trim_start();
        if let Some(stripped) = rest.strip_prefix("extern") {
            // The lexer replaced the ABI string with a space.
            rest = stripped.trim_start();
        }
        if let Some(stripped) = rest.strip_prefix("fn") {
            if stripped.trim_start().starts_with('(') {
                continue; // fn-pointer type, not a declaration
            }
        }
        return true;
    }
    false
}

// ---------------------------------------------------------------------------
// Per-file scan
// ---------------------------------------------------------------------------

/// Scan results for one source file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// 1-indexed lines containing an `unsafe` site.
    pub unsafe_lines: Vec<usize>,
    /// Unsafe sites with no covering SAFETY justification.
    pub uncovered: Vec<usize>,
    /// `static mut` declarations.
    pub static_muts: Vec<usize>,
    /// File declares `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// File declares `#![deny(unsafe_op_in_unsafe_fn)]`.
    pub has_deny_unsafe_op: bool,
}

/// Scan one source file's content (also the entry point fixture tests
/// use to feed deliberately-bad sources in memory).
pub fn scan_source(content: &str) -> FileScan {
    let lines = lex(content);
    let mut scan = FileScan::default();
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.trim();
        if has_unsafe_site(&line.code) {
            scan.unsafe_lines.push(idx + 1);
            if !covered_by_safety(&lines, idx) {
                scan.uncovered.push(idx + 1);
            }
        }
        if contains_word(&line.code, "static") && contains_word(&line.code, "mut") {
            // `static mut NAME` — require adjacency to avoid matching
            // e.g. `static FOO: Mutex<…>` (no bare `mut` there) or a
            // `&'static mut` reborrow in a type position... which is
            // still worth flagging: any `static mut` pairing is banned.
            if line.code.contains("static mut") {
                scan.static_muts.push(idx + 1);
            }
        }
        if code.starts_with("#!") {
            if code.contains("forbid") && code.contains("unsafe_code") {
                scan.has_forbid_unsafe = true;
            }
            if code.contains("deny") && code.contains("unsafe_op_in_unsafe_fn") {
                scan.has_deny_unsafe_op = true;
            }
        }
    }
    scan
}

/// Does the `unsafe` site at `idx` (0-indexed) carry a SAFETY
/// justification? Checks the same line's trailing comment, then walks
/// upward through blank lines, attributes, pure-comment lines, and
/// adjacent `unsafe` lines until it finds a SAFETY comment (ok) or a
/// non-matching code line (violation).
fn covered_by_safety(lines: &[LexedLine], idx: usize) -> bool {
    if is_safety_comment(&lines[idx].comment) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &lines[j];
        if is_safety_comment(&line.comment) {
            return true;
        }
        let code = line.code.trim();
        let pure_comment = code.is_empty(); // comment-only or blank line
        let attribute = code.starts_with("#[") || code.starts_with("#!");
        let unsafe_run = has_unsafe_site(&line.code);
        if pure_comment || attribute || unsafe_run {
            continue;
        }
        return false;
    }
    false
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// A workspace member crate and its sources.
#[derive(Debug)]
pub struct CrateSources {
    pub name: String,
    /// Crate-root files: `src/lib.rs`, `src/main.rs`, `src/bin/*.rs`.
    pub roots: Vec<PathBuf>,
    /// Every `.rs` file under `src/`, `tests/`, `examples/`, `benches/`.
    pub files: Vec<PathBuf>,
}

/// Locate the workspace root by walking up from `start` to the first
/// `Cargo.toml` containing a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(content) = std::fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn parse_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") && line.contains('[') {
            in_members = true;
        }
        if in_members {
            for piece in line.split('"').skip(1).step_by(2) {
                members.push(piece.to_string());
            }
            if line.contains(']') {
                in_members = false;
            }
        }
    }
    members
}

fn parse_crate_name(manifest: &str) -> Option<String> {
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return rest.trim().trim_matches('"').to_string().into();
            }
        }
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Enumerate the workspace's member crates and their source files.
pub fn workspace_crates(root: &Path) -> Vec<CrateSources> {
    let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let mut crates = Vec::new();
    for member in parse_members(&manifest) {
        let dir = root.join(&member);
        let member_manifest = std::fs::read_to_string(dir.join("Cargo.toml")).unwrap_or_default();
        let name = parse_crate_name(&member_manifest).unwrap_or_else(|| member.clone());
        let mut files = Vec::new();
        for sub in ["src", "tests", "examples", "benches"] {
            collect_rs_files(&dir.join(sub), &mut files);
        }
        let mut roots = Vec::new();
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let p = dir.join(candidate);
            if p.is_file() {
                roots.push(p);
            }
        }
        let mut bin_files = Vec::new();
        collect_rs_files(&dir.join("src/bin"), &mut bin_files);
        roots.extend(bin_files);
        crates.push(CrateSources { name, roots, files });
    }
    crates
}

/// Run every audit rule over the workspace rooted at `root`.
pub fn audit_workspace(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    for krate in workspace_crates(root) {
        let mut crate_has_unsafe = false;
        let mut scans = Vec::new();
        for file in &krate.files {
            let Ok(content) = std::fs::read_to_string(file) else {
                continue;
            };
            let scan = scan_source(&content);
            let display = file
                .strip_prefix(root)
                .unwrap_or(file)
                .display()
                .to_string();
            crate_has_unsafe |= !scan.unsafe_lines.is_empty();
            for line in &scan.uncovered {
                violations.push(Violation {
                    file: display.clone(),
                    line: *line,
                    rule: "safety-comment",
                    message: "`unsafe` site without a covering `// SAFETY:` comment".into(),
                });
            }
            for line in &scan.static_muts {
                violations.push(Violation {
                    file: display.clone(),
                    line: *line,
                    rule: "no-static-mut",
                    message: "`static mut` is banned (use atomics or interior mutability)".into(),
                });
            }
            scans.push((file.clone(), display, scan));
        }
        for root_file in &krate.roots {
            let Some((_, display, scan)) = scans.iter().find(|(f, _, _)| f == root_file) else {
                continue;
            };
            if !crate_has_unsafe && !scan.has_forbid_unsafe {
                violations.push(Violation {
                    file: display.clone(),
                    line: 1,
                    rule: "forbid-unsafe",
                    message: format!(
                        "crate '{}' has no unsafe code: its root must declare \
                         #![forbid(unsafe_code)]",
                        krate.name
                    ),
                });
            }
        }
        if crate_has_unsafe {
            let lib_root = krate.roots.iter().find(|r| r.ends_with("src/lib.rs"));
            if let Some(lib_root) = lib_root {
                let covered = scans
                    .iter()
                    .find(|(f, _, _)| f == lib_root)
                    .is_some_and(|(_, _, s)| s.has_deny_unsafe_op);
                if !covered {
                    violations.push(Violation {
                        file: lib_root
                            .strip_prefix(root)
                            .unwrap_or(lib_root)
                            .display()
                            .to_string(),
                        line: 1,
                        rule: "deny-unsafe-op",
                        message: format!(
                            "crate '{}' uses unsafe: its library root must declare \
                             #![deny(unsafe_op_in_unsafe_fn)]",
                            krate.name
                        ),
                    });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covered_block_passes() {
        let src = "fn f() {\n    // SAFETY: disjoint slots.\n    unsafe { ptr.write(1) };\n}\n";
        let scan = scan_source(src);
        assert_eq!(scan.unsafe_lines, vec![3]);
        assert!(scan.uncovered.is_empty());
    }

    #[test]
    fn uncovered_block_flagged() {
        let src = "fn f() {\n    unsafe { ptr.write(1) };\n}\n";
        let scan = scan_source(src);
        assert_eq!(scan.uncovered, vec![2]);
    }

    #[test]
    fn trailing_comment_covers() {
        let src = "unsafe { out.set_len(n) }; // SAFETY: all written\n";
        assert!(scan_source(src).uncovered.is_empty());
    }

    #[test]
    fn attribute_between_comment_and_site_ok() {
        let src = "// SAFETY: fully initialized below.\n#[allow(clippy::uninit_vec)]\nunsafe {\n    v.set_len(n);\n}\n";
        assert!(scan_source(src).uncovered.is_empty());
    }

    #[test]
    fn paired_unsafe_impls_share_one_comment() {
        let src = "// SAFETY: disjoint-slot writes only.\nunsafe impl<T: Send> Send for P<T> {}\nunsafe impl<T: Send> Sync for P<T> {}\n";
        let scan = scan_source(src);
        assert_eq!(scan.unsafe_lines, vec![2, 3]);
        assert!(scan.uncovered.is_empty());
    }

    #[test]
    fn safety_doc_section_covers_unsafe_fn() {
        let src = "/// Does a thing.\n///\n/// # Safety\n/// Caller must keep the referent alive.\npub unsafe fn execute(self) {}\n";
        assert!(scan_source(src).uncovered.is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_not_a_site() {
        let src = "// this mentions unsafe code in prose\nlet s = \"unsafe { }\";\nlet r = r#\"unsafe\"#;\n";
        let scan = scan_source(src);
        assert!(scan.unsafe_lines.is_empty(), "{:?}", scan.unsafe_lines);
    }

    #[test]
    fn safety_text_inside_string_does_not_cover() {
        let src = "let s = \"SAFETY: not a comment\";\nunsafe { ptr.read() };\n";
        let scan = scan_source(src);
        assert_eq!(scan.uncovered, vec![2]);
    }

    #[test]
    fn unsafe_identifier_fragment_is_not_a_site() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\nfn unsafe_helper() {}\n";
        let scan = scan_source(src);
        assert!(scan.unsafe_lines.is_empty());
        assert!(scan.has_deny_unsafe_op);
    }

    #[test]
    fn fn_pointer_type_is_not_a_site() {
        let src = "struct J { execute: unsafe fn(*const ()) }\nlet e: unsafe extern \"C\" fn(u8) = f;\nfn new(e: unsafe fn(*const ())) {}\n";
        let scan = scan_source(src);
        assert!(scan.unsafe_lines.is_empty(), "{:?}", scan.unsafe_lines);
    }

    #[test]
    fn unsafe_fn_declaration_is_a_site() {
        let src = "unsafe fn execute(self) {}\n";
        assert_eq!(scan_source(src).unsafe_lines, vec![1]);
    }

    #[test]
    fn static_mut_flagged() {
        let src = "static mut COUNTER: usize = 0;\n";
        let scan = scan_source(src);
        assert_eq!(scan.static_muts, vec![1]);
    }

    #[test]
    fn forbid_attribute_detected() {
        let src = "//! Docs.\n#![forbid(unsafe_code)]\n";
        assert!(scan_source(src).has_forbid_unsafe);
    }

    #[test]
    fn block_comments_and_lifetimes_lex() {
        let src =
            "/* unsafe in block comment */\nfn f<'a>(x: &'a u8) -> char { 'x' }\nlet c = '\\'';\n";
        let scan = scan_source(src);
        assert!(scan.unsafe_lines.is_empty());
    }

    #[test]
    fn multi_line_block_comment_strips() {
        let src = "/*\nunsafe { }\n*/\nfn ok() {}\n";
        assert!(scan_source(src).unsafe_lines.is_empty());
    }
}
