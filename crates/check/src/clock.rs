//! Vector clocks: the happens-before partial order the race detector
//! compares accesses against.
//!
//! Every model thread carries a [`VClock`]; every synchronization
//! object (mutex, release/acquire atomic) carries the clock of the last
//! release that went through it. Acquire-side operations *join* the
//! object's clock into the thread's; release-side operations publish
//! the thread's clock into the object's. Two accesses are ordered iff
//! the earlier access's clock is component-wise `<=` the later
//! accessor's clock at access time — otherwise they are concurrent, and
//! a concurrent write pair (or write/read pair) on the same
//! [`crate::sync::RaceCell`] is a data race.

/// A vector clock over the model's thread ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock for `threads` threads (happens-before
    /// everything, which is exactly right for pre-spawn setup writes).
    pub fn new(threads: usize) -> Self {
        VClock(vec![0; threads])
    }

    /// Advance this thread's own component (one per instrumented
    /// operation, so distinct ops by one thread are totally ordered).
    pub fn tick(&mut self, tid: usize) {
        self.0[tid] += 1;
    }

    /// Component-wise maximum: the acquire-side merge.
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// `self` happens-before-or-equals `other` (component-wise `<=`).
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

impl std::fmt::Display for VClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_le() {
        let mut a = VClock::new(3);
        let mut b = VClock::new(3);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        a.tick(0);
        assert!(!a.le(&j));
    }

    #[test]
    fn zero_precedes_all() {
        let z = VClock::new(2);
        let mut t = VClock::new(2);
        t.tick(1);
        assert!(z.le(&t));
        assert!(z.le(&z));
    }
}
