//! Deterministic structure-aware fuzzing for the workspace's input
//! boundaries.
//!
//! PR 6 made adversarial *schedules* seeded and replayable; PR 9 did
//! the same for *faults*. This module extends the discipline to
//! *inputs*: a [`FuzzPlan`] is a seed string, and every mutated case it
//! emits is a **pure function** of `(seed, case index)` — no global
//! RNG, no clocks — so a failing case replays from two printable
//! values. The `fuzz_smoke` CI gate leans on exactly that: the same
//! plan produces the same case stream at 1 worker and at 8.
//!
//! The engine is *structure-aware*: instead of flipping random bytes it
//! starts from a **valid** instance and applies one named mutation that
//! targets a specific invariant of the input's structure. Three
//! mutator families cover the workspace's hostile-input surface:
//!
//! * **CSR arrays** ([`FuzzPlan::csr_case`]) — offset monotonicity,
//!   offset/target agreement, target range, weight parallelism: the
//!   invariants `pp_graph::Graph::try_from_csr` checks.
//! * **Scenario keys** ([`FuzzPlan::key_case`]) — truncation, trailing
//!   garbage, case flips, segment surgery: the grammar
//!   `pp_workloads::ScenarioSpec::parse` accepts.
//! * **Query-config knobs** ([`FuzzPlan::knob_case`]) — deadline zero,
//!   Δ/ρ at the `u64` extremes, out-of-range sources: the values the
//!   registry's `validate_case` / cancellation machinery must absorb.
//!
//! Every family includes an **identity** mutation (no change). The
//! driver's contract is uniform: a mutated input must resolve to
//! exactly one *typed* outcome (an `Ok` or a typed error — never a
//! panic, never a hang), and an identity case must be accepted with an
//! output byte-identical to the unfuzzed run. This crate stays
//! dependency-free, so the mutators deal in raw arrays, strings and
//! knob descriptors; the drivers (`fuzz_smoke`, the graph/serve test
//! suites) feed them into the real constructors.
//!
//! ```
//! use pp_check::fuzz::FuzzPlan;
//!
//! let plan = FuzzPlan::new("doc-seed");
//! // Pure in (seed, index): the same case twice, byte for byte.
//! let a = plan.key_case(7, "graph/rmat+w/uniform");
//! let b = plan.key_case(7, "graph/rmat+w/uniform");
//! assert_eq!(a.key, b.key);
//! assert_eq!(a.mutation, b.mutation);
//! ```

use std::fmt;

/// A seeded fuzz schedule. The seed string is the replay handle: any
/// failure report prints `(seed, case index, mutation)`, and re-running
/// the same plan reproduces the identical case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzPlan {
    seed: String,
}

/// The per-case random stream: splitmix64 over a pure hash of
/// `(plan seed, case index)`. Deterministic and platform-stable.
#[derive(Clone, Debug)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    fn new(seed: &str, case: u64) -> Self {
        // FNV-1a over the seed bytes, a separator, and the index —
        // the same keying idiom as `fault::decision_hash`.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(seed.as_bytes());
        eat(&[0xff]);
        eat(&case.to_le_bytes());
        Self { state: h }
    }

    /// The next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// A uniformly chosen index into a nonempty slice.
    pub fn index_in<T>(&mut self, xs: &[T]) -> usize {
        self.below(xs.len() as u64) as usize
    }
}

/// One mutated CSR case: the arrays to feed `Graph::try_from_csr`,
/// plus the name of the mutation that produced them.
#[derive(Clone, Debug)]
pub struct CsrCase {
    pub offsets: Vec<usize>,
    pub targets: Vec<u32>,
    pub weights: Vec<u64>,
    /// The mutation applied; `"identity"` means the arrays are the
    /// valid originals and the constructor must accept them unchanged.
    pub mutation: &'static str,
}

/// One mutated scenario-key case.
#[derive(Clone, Debug)]
pub struct KeyCase {
    pub key: String,
    /// `"identity"` keys must parse to the original scenario.
    pub mutation: &'static str,
}

/// One query-config knob case: the extreme values to graft onto a
/// `RunConfig` (this crate cannot name that type — drivers apply the
/// `Some` fields through the config's builders).
#[derive(Clone, Debug)]
pub struct KnobCase {
    /// Deadline budget in nanoseconds (`Some(0)` = already expired).
    pub deadline_nanos: Option<u64>,
    /// Δ-stepping bucket width override.
    pub delta: Option<u64>,
    /// ρ-stepping batch bound override.
    pub rho: Option<u64>,
    /// Source-vertex override (may be far out of range on purpose).
    pub source: Option<u32>,
    /// `"identity"` leaves every knob at its default.
    pub mutation: &'static str,
}

impl fmt::Display for KnobCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (deadline={:?} delta={:?} rho={:?} source={:?})",
            self.mutation, self.deadline_nanos, self.delta, self.rho, self.source
        )
    }
}

/// The CSR mutations [`FuzzPlan::csr_case`] rotates through. Public so
/// drivers can size their sweeps to cover every mutation at least once.
pub const CSR_MUTATIONS: &[&str] = &[
    "identity",
    "offsets-empty",
    "offsets-truncated",
    "offsets-decreasing",
    "offsets-last-inflated",
    "target-out-of-range",
    "targets-truncated",
    "targets-extended",
    "weights-truncated",
    "weights-extended",
];

/// The scenario-key mutations [`FuzzPlan::key_case`] rotates through.
pub const KEY_MUTATIONS: &[&str] = &[
    "identity",
    "trailing-garbage",
    "truncated",
    "case-flipped",
    "segment-dropped",
    "segment-doubled",
    "embedded-junk",
];

/// The knob mutations [`FuzzPlan::knob_case`] rotates through.
pub const KNOB_MUTATIONS: &[&str] = &[
    "identity",
    "deadline-zero",
    "delta-max",
    "delta-one",
    "rho-max",
    "rho-one",
    "source-out-of-range",
];

impl FuzzPlan {
    /// A plan under `seed` — the printable replay handle.
    pub fn new(seed: &str) -> Self {
        Self {
            seed: seed.to_string(),
        }
    }

    /// The plan's replay seed.
    pub fn seed(&self) -> &str {
        &self.seed
    }

    /// The per-case RNG — exposed so drivers can derive auxiliary
    /// choices (which base graph, which entry) from the same stream.
    pub fn rng(&self, case: u64) -> FuzzRng {
        FuzzRng::new(&self.seed, case)
    }

    /// Mutate one valid CSR triple. The mutation is chosen by
    /// `(seed, case)`; the case index also strides the mutation table,
    /// so any window of `CSR_MUTATIONS.len()` consecutive indices
    /// covers every mutation exactly once.
    pub fn csr_case(
        &self,
        case: u64,
        offsets: &[usize],
        targets: &[u32],
        weights: &[u64],
    ) -> CsrCase {
        let mut rng = self.rng(case);
        let mutation = CSR_MUTATIONS[(case % CSR_MUTATIONS.len() as u64) as usize];
        let mut offsets = offsets.to_vec();
        let mut targets = targets.to_vec();
        let mut weights = weights.to_vec();
        let n = offsets.len().saturating_sub(1);
        match mutation {
            "identity" => {}
            "offsets-empty" => offsets.clear(),
            "offsets-truncated" => {
                let keep = rng.below(offsets.len() as u64) as usize;
                offsets.truncate(keep);
            }
            "offsets-decreasing" => {
                if offsets.len() >= 2 {
                    // Inflate an interior offset past its successor.
                    let at = rng.below(offsets.len() as u64 - 1) as usize;
                    offsets[at] = offsets[at + 1] + 1 + rng.below(7) as usize;
                } else {
                    offsets.clear(); // degenerate base: still hostile
                }
            }
            "offsets-last-inflated" => {
                if let Some(last) = offsets.last_mut() {
                    *last += 1 + rng.below(9) as usize;
                }
            }
            "target-out-of-range" => {
                if targets.is_empty() {
                    // No arc to corrupt: claim one that does not exist.
                    if let Some(last) = offsets.last_mut() {
                        *last += 1;
                    }
                    targets.push(n as u32 + 1 + rng.below(5) as u32);
                    weights.push(1);
                } else {
                    let at = rng.index_in(&targets);
                    targets[at] = n as u32 + rng.below(1 << 20) as u32;
                }
            }
            "targets-truncated" => {
                let keep = if targets.is_empty() {
                    return CsrCase {
                        // Nothing to truncate: fall back to an offset
                        // lie, which trips the same mismatch check.
                        offsets: {
                            if let Some(last) = offsets.last_mut() {
                                *last += 1;
                            }
                            offsets
                        },
                        targets,
                        weights,
                        mutation: "offsets-last-inflated",
                    };
                } else {
                    rng.below(targets.len() as u64) as usize
                };
                targets.truncate(keep);
            }
            "targets-extended" => {
                targets.push(rng.below(n.max(1) as u64) as u32);
            }
            "weights-truncated" => {
                if weights.is_empty() {
                    // Unweighted base: a lone stray weight misparallels.
                    weights.push(rng.next_u64());
                } else {
                    weights.pop();
                }
            }
            "weights-extended" => {
                weights.push(rng.next_u64());
            }
            _ => unreachable!("unknown CSR mutation"),
        }
        CsrCase {
            offsets,
            targets,
            weights,
            mutation,
        }
    }

    /// Mutate one valid scenario key. Strided like [`Self::csr_case`].
    pub fn key_case(&self, case: u64, key: &str) -> KeyCase {
        let mut rng = self.rng(case);
        let mutation = KEY_MUTATIONS[(case % KEY_MUTATIONS.len() as u64) as usize];
        let junk = ["zzz", "+w", "/", "\u{fffd}", "rmat", "0", " ", "-"];
        let key = match mutation {
            "identity" => key.to_string(),
            "trailing-garbage" => format!("{key}{}", junk[rng.index_in(&junk)]),
            "truncated" => {
                let cut = rng.below(key.len() as u64 + 1) as usize;
                key.chars().take(cut).collect()
            }
            "case-flipped" => {
                let at = rng.below(key.len() as u64) as usize;
                key.chars()
                    .enumerate()
                    .map(|(i, c)| if i == at { c.to_ascii_uppercase() } else { c })
                    .collect()
            }
            "segment-dropped" => {
                let parts: Vec<&str> = key.split('/').collect();
                let drop = rng.index_in(&parts);
                parts
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != drop)
                    .map(|(_, s)| *s)
                    .collect::<Vec<_>>()
                    .join("/")
            }
            "segment-doubled" => {
                let parts: Vec<&str> = key.split('/').collect();
                let dup = rng.index_in(&parts);
                let mut out: Vec<&str> = Vec::with_capacity(parts.len() + 1);
                for (i, s) in parts.iter().enumerate() {
                    out.push(s);
                    if i == dup {
                        out.push(s);
                    }
                }
                out.join("/")
            }
            "embedded-junk" => {
                let at = rng.below(key.len() as u64 + 1) as usize;
                let j = junk[rng.index_in(&junk)];
                let mut s: String = key.chars().take(at).collect();
                s.push_str(j);
                s.extend(key.chars().skip(at));
                s
            }
            _ => unreachable!("unknown key mutation"),
        };
        KeyCase { key, mutation }
    }

    /// One query-knob extreme. `instance_size` bounds what counts as an
    /// out-of-range source. Strided like [`Self::csr_case`].
    pub fn knob_case(&self, case: u64, instance_size: usize) -> KnobCase {
        let mut rng = self.rng(case);
        let mutation = KNOB_MUTATIONS[(case % KNOB_MUTATIONS.len() as u64) as usize];
        let mut out = KnobCase {
            deadline_nanos: None,
            delta: None,
            rho: None,
            source: None,
            mutation,
        };
        match mutation {
            "identity" => {}
            "deadline-zero" => out.deadline_nanos = Some(0),
            "delta-max" => out.delta = Some(u64::MAX),
            "delta-one" => out.delta = Some(1),
            "rho-max" => out.rho = Some(u64::MAX),
            "rho-one" => out.rho = Some(1),
            "source-out-of-range" => {
                // At or above the guaranteed floor — sometimes just
                // barely, sometimes astronomically.
                let floor = instance_size.max(1) as u64;
                let over = if rng.below(2) == 0 {
                    0
                } else {
                    rng.below(u64::from(u32::MAX) - floor.min(u64::from(u32::MAX)))
                };
                out.source = Some(floor.saturating_add(over).min(u64::from(u32::MAX)) as u32);
            }
            _ => unreachable!("unknown knob mutation"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OFFSETS: &[usize] = &[0, 2, 3, 3, 5];
    const TARGETS: &[u32] = &[1, 3, 0, 0, 2];
    const WEIGHTS: &[u64] = &[5, 1, 5, 9, 2];

    #[test]
    fn cases_are_pure_in_seed_and_index() {
        let plan = FuzzPlan::new("purity");
        for i in 0..64u64 {
            let a = plan.csr_case(i, OFFSETS, TARGETS, WEIGHTS);
            let b = plan.csr_case(i, OFFSETS, TARGETS, WEIGHTS);
            assert_eq!(a.offsets, b.offsets);
            assert_eq!(a.targets, b.targets);
            assert_eq!(a.weights, b.weights);
            assert_eq!(a.mutation, b.mutation);
            assert_eq!(
                plan.key_case(i, "graph/rmat+w/uniform").key,
                plan.key_case(i, "graph/rmat+w/uniform").key
            );
        }
    }

    #[test]
    fn different_seeds_mutate_differently() {
        let a = FuzzPlan::new("seed-a");
        let b = FuzzPlan::new("seed-b");
        let stream = |plan: &FuzzPlan| -> Vec<String> {
            (0..32)
                .map(|i| plan.key_case(i, "graph/rmat+w/uniform").key)
                .collect()
        };
        assert_ne!(stream(&a), stream(&b));
    }

    #[test]
    fn every_mutation_appears_in_one_stride() {
        let plan = FuzzPlan::new("coverage");
        let csr: Vec<&str> = (0..CSR_MUTATIONS.len() as u64)
            .map(|i| plan.csr_case(i, OFFSETS, TARGETS, WEIGHTS).mutation)
            .collect();
        for m in CSR_MUTATIONS {
            // `targets-truncated` may legitimately rewrite itself on an
            // arcless base, but this base has arcs.
            assert!(csr.contains(m), "missing CSR mutation {m}");
        }
        let keys: Vec<&str> = (0..KEY_MUTATIONS.len() as u64)
            .map(|i| plan.key_case(i, "graph/rmat+w/uniform").mutation)
            .collect();
        for m in KEY_MUTATIONS {
            assert!(keys.contains(m), "missing key mutation {m}");
        }
        let knobs: Vec<&str> = (0..KNOB_MUTATIONS.len() as u64)
            .map(|i| plan.knob_case(i, 100).mutation)
            .collect();
        for m in KNOB_MUTATIONS {
            assert!(knobs.contains(m), "missing knob mutation {m}");
        }
    }

    #[test]
    fn identity_cases_really_are_identities() {
        let plan = FuzzPlan::new("id");
        // Index 0 of each stride is the identity mutation.
        let c = plan.csr_case(0, OFFSETS, TARGETS, WEIGHTS);
        assert_eq!(c.mutation, "identity");
        assert_eq!(c.offsets, OFFSETS);
        assert_eq!(c.targets, TARGETS);
        assert_eq!(c.weights, WEIGHTS);
        let k = plan.key_case(0, "seq/uniform");
        assert_eq!((k.mutation, k.key.as_str()), ("identity", "seq/uniform"));
        let kn = plan.knob_case(0, 10);
        assert_eq!(kn.mutation, "identity");
        assert!(kn.deadline_nanos.is_none() && kn.source.is_none());
        assert!(kn.delta.is_none() && kn.rho.is_none());
    }

    #[test]
    fn source_out_of_range_is_at_or_above_floor() {
        let plan = FuzzPlan::new("floor");
        let mut seen = 0;
        for i in 0..200u64 {
            let k = plan.knob_case(i, 120);
            if let Some(source) = k.source {
                assert_eq!(k.mutation, "source-out-of-range");
                assert!(source as usize >= 120, "source {source} under floor");
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn hostile_csr_mutations_change_something() {
        let plan = FuzzPlan::new("delta");
        for i in 0..100u64 {
            let c = plan.csr_case(i, OFFSETS, TARGETS, WEIGHTS);
            if c.mutation != "identity" {
                assert!(
                    c.offsets != OFFSETS || c.targets != TARGETS || c.weights != WEIGHTS,
                    "case {i} ({}) mutated nothing",
                    c.mutation
                );
            }
        }
    }
}
