//! The cooperative scheduler and schedule explorer.
//!
//! A **model** is a closure that builds some shared state out of
//! [`crate::sync`] primitives and spawns 2–3 model threads. The
//! explorer runs the model to completion many times; within one
//! execution only a single model thread runs at any moment, and control
//! can change hands only at *instrumented operations* (lock, unlock,
//! condvar wait/notify, atomic access, [`crate::sync::RaceCell`]
//! access, …). Each execution is therefore fully described by the
//! sequence of thread ids chosen at each scheduling point — the
//! **schedule** — and replaying a schedule reproduces the execution
//! exactly, operation for operation.
//!
//! Exploration is a stateless depth-first search over schedules: run
//! once following a prescribed prefix (empty at first), record at every
//! step which threads were runnable and which was chosen, then backtrack
//! to the deepest step with an untried alternative and re-run. The
//! search is **preemption-bounded** ([`Config::max_preemptions`]):
//! switching away from a thread that could have continued costs one
//! preemption, and schedules over budget are not enumerated — the
//! classic CHESS result that almost all concurrency bugs manifest
//! within two or three preemptions, which keeps small models fully
//! exhaustible.
//!
//! Failures — data races, use-after-free on a [`crate::sync::Frame`],
//! deadlock (every live thread blocked), livelock (step budget
//! exhausted), or a model-thread panic — abort the execution and are
//! reported with the **seed string** of the schedule that produced
//! them. [`replay`] runs exactly one schedule from such a seed.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::VClock;

// ---------------------------------------------------------------------------
// Configuration and reports
// ---------------------------------------------------------------------------

/// Exploration bounds. The defaults suit the pool models (2–3 threads,
/// a few dozen operations); `check_smoke` tightens `max_schedules`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Context-switch budget: how many times the search may preempt a
    /// runnable thread. 0 explores only cooperative round-robins.
    pub max_preemptions: usize,
    /// Per-execution operation budget; exceeding it is reported as a
    /// livelock (with the offending schedule's seed).
    pub max_steps: usize,
    /// Total executions the explorer may run before giving up and
    /// reporting an incomplete (but so-far-clean) search.
    pub max_schedules: usize,
    /// Weakest-ordering mode: treat every atomic ordering as `Relaxed`
    /// for happens-before purposes (values are unaffected — the
    /// cooperative scheduler is sequentially consistent). Races that
    /// appear only in this mode are exactly the publication edges the
    /// declared `Acquire`/`Release` orderings carry.
    pub weaken_orderings: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_preemptions: 3,
            max_steps: 10_000,
            max_schedules: 1_000_000,
            weaken_orderings: false,
        }
    }
}

impl Config {
    /// Preemption-bound override, builder style.
    pub fn preemptions(mut self, n: usize) -> Self {
        self.max_preemptions = n;
        self
    }

    /// Schedule-budget override, builder style.
    pub fn schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Enable weakest-ordering exploration (see field docs).
    pub fn weakened(mut self) -> Self {
        self.weaken_orderings = true;
        self
    }
}

/// A failing execution: what went wrong and the schedule to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Human-readable description (race/UAF/deadlock/livelock/panic).
    pub message: String,
    /// Replay seed: thread ids chosen at each scheduling point,
    /// dot-separated. Feed to [`replay`].
    pub seed: String,
    /// Per-step `t<tid>:<op>` log of the failing schedule.
    pub ops: Vec<String>,
}

/// Result of exploring (or replaying) a model.
#[derive(Debug)]
pub struct Report {
    /// Model name (diagnostics only).
    pub name: String,
    /// Executions actually run.
    pub schedules: usize,
    /// True when the search exhausted every schedule within bounds
    /// (always true for a clean [`replay`] of one seed).
    pub complete: bool,
    /// The first failure found, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// No failure found.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.failure {
            None => write!(
                f,
                "model '{}': {} schedule(s) explored, {}: no failures",
                self.name,
                self.schedules,
                if self.complete {
                    "exhaustive within bounds"
                } else {
                    "budget reached"
                },
            ),
            Some(fail) => {
                writeln!(
                    f,
                    "model '{}' FAILED after {} schedule(s): {}",
                    self.name, self.schedules, fail.message
                )?;
                writeln!(f, "  replay seed: {}", fail.seed)?;
                writeln!(f, "  schedule:")?;
                for op in &fail.ops {
                    writeln!(f, "    {op}")?;
                }
                write!(
                    f,
                    "  (replay with pp_check::replay(\"{}\", \"{}\", cfg, model))",
                    self.name, fail.seed
                )
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    /// Can be granted the CPU.
    Ready,
    /// Waiting for the mutex with this id to be released.
    BlockedMutex(usize),
    /// Waiting on the condvar with this id (woken only by notify: the
    /// model deliberately has no timeout/spurious wakeups, so a missed
    /// wakeup in a protocol surfaces as a reported deadlock).
    BlockedCond(usize),
    Finished,
}

pub(crate) struct MutexSt {
    pub(crate) owner: Option<usize>,
    pub(crate) clock: VClock,
    pub(crate) name: &'static str,
}

pub(crate) struct CondSt {
    pub(crate) waiters: Vec<usize>,
    pub(crate) name: &'static str,
}

pub(crate) struct AtomicSt {
    pub(crate) clock: VClock,
}

pub(crate) struct CellSt {
    pub(crate) last_write: Option<(usize, VClock)>,
    pub(crate) reads: Vec<Option<VClock>>,
}

pub(crate) struct FrameSt {
    pub(crate) alive: bool,
}

/// One recorded scheduling decision.
struct Choice {
    chosen: usize,
    /// The ordered candidate list the search enumerates at this point.
    alts: Vec<usize>,
    chosen_idx: usize,
    op: String,
}

pub(crate) struct ExecState {
    status: Vec<Status>,
    /// `Some(tid)` = that thread holds the CPU; `None` = controller's
    /// turn to pick.
    active: Option<usize>,
    last_running: Option<usize>,
    abort: bool,
    steps: usize,
    preemptions: usize,
    prefix: Vec<usize>,
    trace: Vec<Choice>,
    failure: Option<String>,
    /// The operation each thread will perform when next granted.
    pending_op: Vec<String>,
    pub(crate) clocks: Vec<VClock>,
    pub(crate) mutexes: Vec<MutexSt>,
    pub(crate) conds: Vec<CondSt>,
    pub(crate) atomics: Vec<AtomicSt>,
    pub(crate) cells: Vec<CellSt>,
    pub(crate) frames: Vec<FrameSt>,
}

/// One execution's shared scheduler state. Model threads and the
/// controller rendezvous on `cv`; `state.active` says whose turn it is.
pub(crate) struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
    threads: usize,
    weaken_orderings: bool,
}

/// Panic payload used to unwind model threads when an execution is
/// aborted (failure found, or search pruning); filtered by the panic
/// hook so aborts do not spam stderr.
struct ModelAbort;

fn install_panic_filter() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, AtomicOrdering::SeqCst) {
        return;
    }
    let previous = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        if info.payload().is::<ModelAbort>() {
            return; // expected teardown of an aborted execution
        }
        previous(info);
    }));
}

impl Exec {
    fn new(threads: usize, prefix: Vec<usize>, weaken_orderings: bool) -> Arc<Self> {
        Arc::new(Exec {
            state: Mutex::new(ExecState {
                status: vec![Status::Ready; threads],
                active: None,
                last_running: None,
                abort: false,
                steps: 0,
                preemptions: 0,
                prefix,
                trace: Vec::new(),
                failure: None,
                pending_op: vec![String::from("start"); threads],
                clocks: vec![VClock::new(threads); threads],
                mutexes: Vec::new(),
                conds: Vec::new(),
                atomics: Vec::new(),
                cells: Vec::new(),
                frames: Vec::new(),
            }),
            cv: Condvar::new(),
            threads,
            weaken_orderings,
        })
    }

    pub(crate) fn weakened(&self) -> bool {
        self.weaken_orderings
    }

    // -- object registration (called from sync primitive constructors) --

    pub(crate) fn register_mutex(&self, name: &'static str) -> usize {
        let mut st = self.state.lock().unwrap();
        st.mutexes.push(MutexSt {
            owner: None,
            clock: VClock::new(self.threads),
            name,
        });
        st.mutexes.len() - 1
    }

    pub(crate) fn register_cond(&self, name: &'static str) -> usize {
        let mut st = self.state.lock().unwrap();
        st.conds.push(CondSt {
            waiters: Vec::new(),
            name,
        });
        st.conds.len() - 1
    }

    pub(crate) fn register_atomic(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.atomics.push(AtomicSt {
            clock: VClock::new(self.threads),
        });
        st.atomics.len() - 1
    }

    pub(crate) fn register_cell(&self) -> usize {
        let threads = self.threads;
        let mut st = self.state.lock().unwrap();
        st.cells.push(CellSt {
            last_write: None,
            reads: vec![None; threads],
        });
        st.cells.len() - 1
    }

    pub(crate) fn register_frame(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.frames.push(FrameSt { alive: true });
        st.frames.len() - 1
    }

    // -- the scheduling protocol --

    fn abort_unwind() -> ! {
        panic::panic_any(ModelAbort)
    }

    /// Park until the controller grants this thread the CPU (or the
    /// execution aborts, in which case the thread unwinds).
    fn wait_for_grant<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        tid: usize,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            if st.abort {
                drop(st);
                Self::abort_unwind();
            }
            if st.active == Some(tid) {
                return st;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// The scheduling point at the head of every instrumented
    /// operation: announce `op`, yield the CPU, park until re-granted,
    /// then return with the state lock held (the caller applies the
    /// operation's effect under it and ticks the thread clock).
    pub(crate) fn op_gate(&self, tid: usize, op: String) -> OpGuard<'_> {
        let mut st = self.state.lock().unwrap();
        if st.abort {
            drop(st);
            Self::abort_unwind();
        }
        st.pending_op[tid] = op;
        st.active = None;
        self.cv.notify_all();
        let mut st = self.wait_for_grant(st, tid);
        st.clocks[tid].tick(tid);
        OpGuard {
            exec: self,
            st: Some(st),
            tid,
        }
    }

    /// Mark this thread blocked and yield; returns re-granted with the
    /// lock held (the caller re-checks its wait condition).
    fn block<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        tid: usize,
        status: Status,
    ) -> MutexGuard<'a, ExecState> {
        st.status[tid] = status;
        st.active = None;
        self.cv.notify_all();
        self.wait_for_grant(st, tid)
    }

    fn thread_begin(&self, tid: usize) {
        let st = self.state.lock().unwrap();
        drop(self.wait_for_grant(st, tid));
    }

    fn thread_done(&self, tid: usize, outcome: std::thread::Result<()>) {
        let mut st = self.state.lock().unwrap();
        st.status[tid] = Status::Finished;
        if let Err(payload) = outcome {
            if !payload.is::<ModelAbort>() && st.failure.is_none() {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "model thread panicked".to_string());
                st.failure = Some(format!("model thread t{tid} panicked: {msg}"));
                st.abort = true;
            }
        }
        st.active = None;
        self.cv.notify_all();
    }

    /// Release mutex ownership without a scheduling point: called from
    /// guard drops while the owning thread is already unwinding (the
    /// execution is aborted — other threads only need to un-block so
    /// they can observe the abort and drain).
    pub(crate) fn emergency_release_mutex(&self, mid: usize) {
        let mut st = self.state.lock().unwrap();
        st.mutexes[mid].owner = None;
        Self::unblock_mutex(&mut st, mid);
        self.cv.notify_all();
    }

    /// Record a model failure (race, UAF, protocol assertion) and abort
    /// the execution: the calling thread unwinds immediately.
    pub(crate) fn fail(&self, mut st: MutexGuard<'_, ExecState>, message: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.abort = true;
        self.cv.notify_all();
        drop(st);
        Self::abort_unwind()
    }

    /// Wake every thread blocked on mutex `mid` (called at release).
    fn unblock_mutex(st: &mut ExecState, mid: usize) {
        for status in st.status.iter_mut() {
            if *status == Status::BlockedMutex(mid) {
                *status = Status::Ready;
            }
        }
    }

    // -- the controller (runs on the exploring thread) --

    /// The ordered candidate list at the current decision point:
    /// continuing the last-running thread first (free), then the other
    /// runnable threads in id order (each costs a preemption when the
    /// last-running thread could have continued).
    fn candidates(st: &ExecState, max_preemptions: usize) -> Vec<usize> {
        let ready: Vec<usize> = (0..st.status.len())
            .filter(|&t| st.status[t] == Status::Ready)
            .collect();
        match st.last_running {
            Some(p) if ready.contains(&p) => {
                if st.preemptions >= max_preemptions {
                    vec![p]
                } else {
                    let mut c = vec![p];
                    c.extend(ready.into_iter().filter(|&t| t != p));
                    c
                }
            }
            _ => ready,
        }
    }

    /// Drive one execution to completion: repeatedly wait for the CPU
    /// to come back, pick the next thread, grant. Returns when every
    /// thread finished.
    fn run_controller(&self, cfg: &Config) {
        let mut st = self.state.lock().unwrap();
        loop {
            while st.active.is_some() {
                st = self.cv.wait(st).unwrap();
            }
            if st.status.iter().all(|&s| s == Status::Finished) {
                return;
            }
            if st.abort {
                // Drain: grant nothing; wake parked threads so they
                // observe the abort flag and unwind.
                self.cv.notify_all();
                st = self.cv.wait(st).unwrap();
                continue;
            }
            let alts = Self::candidates(&st, cfg.max_preemptions);
            if alts.is_empty() {
                let who: Vec<String> = (0..st.status.len())
                    .filter(|&t| st.status[t] != Status::Finished)
                    .map(|t| {
                        let what = match st.status[t] {
                            Status::BlockedMutex(m) => {
                                format!("blocked on mutex '{}'", st.mutexes[m].name)
                            }
                            Status::BlockedCond(c) => {
                                format!("waiting on condvar '{}'", st.conds[c].name)
                            }
                            _ => "ready".to_string(),
                        };
                        format!("t{t} {what} at {}", st.pending_op[t])
                    })
                    .collect();
                st.failure = Some(format!("deadlock: {}", who.join("; ")));
                st.abort = true;
                self.cv.notify_all();
                continue;
            }
            let step = st.trace.len();
            let chosen = if step < st.prefix.len() {
                let want = st.prefix[step];
                debug_assert!(
                    alts.contains(&want),
                    "replay diverged at step {step}: t{want} not in {alts:?}"
                );
                if alts.contains(&want) {
                    want
                } else {
                    alts[0]
                }
            } else {
                alts[0]
            };
            let chosen_idx = alts.iter().position(|&t| t == chosen).unwrap();
            if let Some(p) = st.last_running {
                if chosen != p && st.status[p] == Status::Ready {
                    st.preemptions += 1;
                }
            }
            let op = st.pending_op[chosen].clone();
            st.trace.push(Choice {
                chosen,
                alts,
                chosen_idx,
                op,
            });
            st.steps += 1;
            if st.steps > cfg.max_steps {
                st.failure = Some(format!(
                    "livelock: schedule exceeded {} steps",
                    cfg.max_steps
                ));
                st.abort = true;
                self.cv.notify_all();
                continue;
            }
            st.last_running = Some(chosen);
            st.active = Some(chosen);
            self.cv.notify_all();
        }
    }
}

/// The state lock held while an instrumented operation applies its
/// effect; exposes the scheduler state to the `sync` primitives.
pub(crate) struct OpGuard<'a> {
    exec: &'a Exec,
    st: Option<MutexGuard<'a, ExecState>>,
    tid: usize,
}

impl<'a> OpGuard<'a> {
    pub(crate) fn tid(&self) -> usize {
        self.tid
    }

    pub(crate) fn state(&mut self) -> &mut ExecState {
        self.st.as_mut().expect("op guard already consumed")
    }

    /// Fail the execution from inside an operation (consumes the guard;
    /// unwinds the thread).
    pub(crate) fn fail(mut self, message: String) -> ! {
        let st = self.st.take().expect("op guard already consumed");
        self.exec.fail(st, message)
    }

    /// Block the thread with `status` and re-check on wake via `ready`:
    /// loops block → wake → recheck until `ready` returns true, then
    /// returns with the lock held again.
    pub(crate) fn block_until(
        &mut self,
        status: Status,
        mut ready: impl FnMut(&mut ExecState, usize) -> bool,
    ) {
        loop {
            let st = self.st.take().expect("op guard already consumed");
            let mut st = self.exec.block(st, self.tid, status);
            st.clocks[self.tid].tick(self.tid);
            let ok = ready(&mut st, self.tid);
            self.st = Some(st);
            if ok {
                return;
            }
        }
    }
}

// Status values the sync layer needs to construct.
impl OpGuard<'_> {
    pub(crate) fn blocked_mutex(mid: usize) -> Status {
        Status::BlockedMutex(mid)
    }
    pub(crate) fn blocked_cond(cid: usize) -> Status {
        Status::BlockedCond(cid)
    }
    pub(crate) fn unblock_mutex_waiters(st: &mut ExecState, mid: usize) {
        Exec::unblock_mutex(st, mid);
    }
    pub(crate) fn make_cond_waiter_ready(st: &mut ExecState, tid: usize) {
        st.status[tid] = Status::Ready;
    }
}

// ---------------------------------------------------------------------------
// Thread-local context
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) enum Ctx {
    /// Not inside the checker at all: primitives pass through to std.
    Inactive,
    /// Inside a model's setup/finale closure on the controller thread:
    /// primitives register with the execution but do not interleave.
    Setup(Arc<Exec>),
    /// A model thread: fully instrumented.
    Thread(Arc<Exec>, usize),
}

thread_local! {
    static CTX: RefCell<Ctx> = const { RefCell::new(Ctx::Inactive) };
}

pub(crate) fn current_ctx() -> Ctx {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Ctx) -> Ctx {
    CTX.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctx))
}

// ---------------------------------------------------------------------------
// Builder + exploration driver
// ---------------------------------------------------------------------------

type ThreadBody = Box<dyn FnOnce() + Send + 'static>;
type FinaleBody = Box<dyn FnOnce() + 'static>;

/// Collects a model's threads (and optional finale) during setup.
pub struct Builder {
    threads: Vec<ThreadBody>,
    finale: Option<FinaleBody>,
}

impl Builder {
    /// Spawn a model thread. Bodies communicate only through
    /// [`crate::sync`] primitives (shared via [`crate::sync::Arc`]).
    pub fn thread(&mut self, body: impl FnOnce() + Send + 'static) {
        self.threads.push(Box::new(body));
    }

    /// Run `body` on the controller after every thread finished (and
    /// only on clean executions): the place for exactly-once /
    /// postcondition assertions. Primitive accesses here are
    /// passthrough — the execution is quiescent.
    pub fn finale(&mut self, body: impl FnOnce() + 'static) {
        self.finale = Some(Box::new(body));
    }
}

struct Outcome {
    trace: Vec<(usize, Vec<usize>, usize, String)>, // chosen, alts, chosen_idx, op
    failure: Option<Failure>,
}

fn seed_of(trace: &[(usize, Vec<usize>, usize, String)]) -> String {
    trace
        .iter()
        .map(|(chosen, ..)| chosen.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

fn ops_of(trace: &[(usize, Vec<usize>, usize, String)]) -> Vec<String> {
    trace
        .iter()
        .map(|(chosen, _, _, op)| format!("t{chosen}:{op}"))
        .collect()
}

fn run_once(cfg: &Config, prefix: Vec<usize>, setup: &dyn Fn(&mut Builder)) -> Outcome {
    // Phase 1: setup under a provisional context so primitives can
    // register. Thread count is unknown until setup returns, so clocks
    // and per-thread vectors are sized afterwards (registration only
    // appends to object vectors, which is count-independent except for
    // the embedded clocks — those are resized below).
    let mut builder = Builder {
        threads: Vec::new(),
        finale: None,
    };
    // Two-pass sizing: run setup once against a throwaway count just to
    // learn the thread count, then rebuild? Cheaper: size for a fixed
    // cap and trim. The models here are tiny (<= 4 threads), so size
    // every clock for MAX_MODEL_THREADS and let unused components stay
    // zero — component-wise operations are oblivious to trailing zeros.
    let exec = Exec::new(MAX_MODEL_THREADS, prefix, cfg.weaken_orderings);
    let prev = set_ctx(Ctx::Setup(Arc::clone(&exec)));
    setup(&mut builder);
    set_ctx(prev);
    let Builder { threads, finale } = builder;
    let n = threads.len();
    assert!(
        (1..=MAX_MODEL_THREADS).contains(&n),
        "models must spawn 1..={MAX_MODEL_THREADS} threads, got {n}"
    );
    {
        // Threads beyond `n` never existed: mark them finished so the
        // controller's all-finished check sees only real ones.
        let mut st = exec.state.lock().unwrap();
        for t in n..MAX_MODEL_THREADS {
            st.status[t] = Status::Finished;
        }
    }

    let mut handles = Vec::with_capacity(n);
    for (tid, body) in threads.into_iter().enumerate() {
        let exec2 = Arc::clone(&exec);
        handles.push(
            std::thread::Builder::new()
                .name(format!("pp-check-{tid}"))
                .spawn(move || {
                    set_ctx(Ctx::Thread(Arc::clone(&exec2), tid));
                    exec2.thread_begin(tid);
                    let outcome = panic::catch_unwind(AssertUnwindSafe(body));
                    exec2.thread_done(tid, outcome.map(|_| ()));
                })
                .expect("spawning a model thread failed"),
        );
    }
    exec.run_controller(cfg);
    for handle in handles {
        let _ = handle.join();
    }

    let mut st = exec.state.lock().unwrap();
    let trace: Vec<_> = st
        .trace
        .drain(..)
        .map(|c| (c.chosen, c.alts, c.chosen_idx, c.op))
        .collect();
    let mut failure = st.failure.take().map(|message| Failure {
        message,
        seed: seed_of(&trace),
        ops: ops_of(&trace),
    });
    drop(st);

    if failure.is_none() {
        if let Some(finale) = finale {
            let prev = set_ctx(Ctx::Setup(Arc::clone(&exec)));
            let result = panic::catch_unwind(AssertUnwindSafe(finale));
            set_ctx(prev);
            if let Err(payload) = result {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "finale panicked".to_string());
                failure = Some(Failure {
                    message: format!("postcondition failed: {msg}"),
                    seed: seed_of(&trace),
                    ops: ops_of(&trace),
                });
            }
        }
    }
    Outcome { trace, failure }
}

/// Hard cap on model threads (the preemption-bounded DFS is built for
/// small models; clocks are statically sized to this).
pub const MAX_MODEL_THREADS: usize = 4;

fn next_prefix(trace: &[(usize, Vec<usize>, usize, String)]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        let (_, alts, chosen_idx, _) = &trace[i];
        if chosen_idx + 1 < alts.len() {
            let mut prefix: Vec<usize> = trace[..i].iter().map(|(c, ..)| *c).collect();
            prefix.push(alts[chosen_idx + 1]);
            return Some(prefix);
        }
    }
    None
}

/// Explore every schedule of `setup`'s model within `cfg`'s bounds.
/// Deterministic: the same model and config always visit the same
/// schedules in the same order.
pub fn explore(name: &str, cfg: Config, setup: impl Fn(&mut Builder)) -> Report {
    install_panic_filter();
    let mut prefix = Vec::new();
    let mut schedules = 0usize;
    loop {
        let outcome = run_once(&cfg, prefix.clone(), &setup);
        schedules += 1;
        if let Some(failure) = outcome.failure {
            return Report {
                name: name.to_string(),
                schedules,
                complete: false,
                failure: Some(failure),
            };
        }
        if schedules >= cfg.max_schedules {
            return Report {
                name: name.to_string(),
                schedules,
                complete: false,
                failure: None,
            };
        }
        match next_prefix(&outcome.trace) {
            Some(p) => prefix = p,
            None => {
                return Report {
                    name: name.to_string(),
                    schedules,
                    complete: true,
                    failure: None,
                }
            }
        }
    }
}

/// Re-run exactly one schedule from a failure seed (see
/// [`Failure::seed`]); decisions beyond the seed follow the default
/// policy, so a prefix seed is also accepted.
pub fn replay(name: &str, seed: &str, cfg: Config, setup: impl Fn(&mut Builder)) -> Report {
    install_panic_filter();
    let prefix: Vec<usize> = seed
        .split('.')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("seed entries are thread ids"))
        .collect();
    let outcome = run_once(&cfg, prefix, &setup);
    Report {
        name: name.to_string(),
        schedules: 1,
        complete: outcome.failure.is_none(),
        failure: outcome.failure,
    }
}
