//! Instrumented drop-in replacements for the `std::sync` primitives the
//! fork-join pool is built from, plus the two model-only types the race
//! and lifetime detectors hang off ([`RaceCell`], [`Frame`]).
//!
//! Every type has **two modes**, chosen per call site at runtime:
//!
//! - **Passthrough** — outside a model execution (no checker context on
//!   the current thread) each primitive delegates straight to its
//!   `std::sync` counterpart. This is what `shims/rayon` compiles
//!   against under `--cfg pp_check`: the real pool runs unchanged, and
//!   its whole test suite doubles as a drop-in-compatibility proof.
//! - **Instrumented** — inside a model thread (spawned via
//!   [`crate::sched::Builder::thread`]) every operation is a scheduling
//!   point: the thread yields to the cooperative scheduler, and the
//!   operation's effect (ownership transfer, waiter queues, vector-clock
//!   propagation) is applied to the execution's model state when the
//!   scheduler grants the thread back the CPU.
//!
//! Happens-before edges: mutex release→acquire always transfers clocks;
//! atomics transfer per their `Ordering` arguments (`Release`-side
//! publishes, `Acquire`-side joins, `Relaxed` transfers nothing) unless
//! the execution runs in weakest-ordering mode
//! ([`crate::sched::Config::weaken_orderings`]), where every atomic is
//! treated as `Relaxed` — the mode that proves which declared orderings
//! are load-bearing. Condvar waits are woken **only by notify**: the
//! model deliberately has no timeouts or spurious wakeups, so a
//! protocol that relies on a timeout to paper over a missed wakeup is
//! reported as a deadlock.

use std::sync::atomic::Ordering;
use std::sync::LockResult;
use std::sync::PoisonError;

use crate::sched::{current_ctx, Ctx, Exec, OpGuard};

pub use std::sync::Arc;

/// Checker context for one registered object: which execution it
/// belongs to and its slot in that execution's object table.
struct Model {
    exec: Arc<Exec>,
    id: usize,
    name: &'static str,
}

impl Model {
    /// Register an object with the current execution, if any.
    fn register(
        name: &'static str,
        register: impl Fn(&Exec, &'static str) -> usize,
    ) -> Option<Model> {
        match current_ctx() {
            Ctx::Inactive => None,
            Ctx::Setup(exec) | Ctx::Thread(exec, _) => Some(Model {
                id: register(&exec, name),
                exec,
                name,
            }),
        }
    }

    /// The current thread's id when it is a model thread of *this*
    /// object's execution (the only case that instruments).
    fn tid(&self) -> Option<usize> {
        match current_ctx() {
            Ctx::Thread(exec, tid) if Arc::ptr_eq(&exec, &self.exec) => Some(tid),
            _ => None,
        }
    }
}

fn acquires(ordering: Ordering) -> bool {
    matches!(
        ordering,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn releases(ordering: Ordering) -> bool {
    matches!(
        ordering,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

// ---------------------------------------------------------------------------
// Mutex + guard
// ---------------------------------------------------------------------------

/// Drop-in `std::sync::Mutex` with model instrumentation.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    model: Option<Model>,
}

/// Guard returned by [`Mutex::lock`]; releases the model ownership (one
/// instrumented operation) on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// True when the guard was acquired through the instrumented path
    /// and must release through it too.
    instrumented: bool,
}

impl<T> Mutex<T> {
    /// Drop-in constructor (objects created inside a model register
    /// under a generic name; use [`Mutex::named`] in models for
    /// readable schedules).
    pub fn new(value: T) -> Self {
        Self::named("mutex", value)
    }

    /// Model constructor with a diagnostic name.
    pub fn named(name: &'static str, value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            model: Model::register(name, |exec, n| exec.register_mutex(n)),
        }
    }

    /// Acquire. Instrumented path: one scheduling point, blocks (in the
    /// model sense) while another model thread owns it, joins the
    /// mutex's release clock into the thread clock on success.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(model) = &self.model {
            if let Some(tid) = model.tid() {
                let mut gate = model.exec.op_gate(tid, format!("lock({})", model.name));
                acquire_model_mutex(&mut gate, model.id);
                drop(gate);
                // The model's ownership protocol guarantees this inner
                // lock is uncontended; unwrap_or_else ignores poison
                // left by an unwound (aborted) execution.
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                return Ok(MutexGuard {
                    mutex: self,
                    inner: Some(inner),
                    instrumented: true,
                });
            }
        }
        match self.inner.lock() {
            Ok(inner) => Ok(MutexGuard {
                mutex: self,
                inner: Some(inner),
                instrumented: false,
            }),
            Err(poison) => Err(PoisonError::new(MutexGuard {
                mutex: self,
                inner: Some(poison.into_inner()),
                instrumented: false,
            })),
        }
    }
}

/// Take model ownership of mutex `mid` (blocking while owned),
/// assuming the calling thread already holds an op gate.
fn acquire_model_mutex(gate: &mut OpGuard<'_>, mid: usize) {
    let tid = gate.tid();
    if gate.state().mutexes[mid].owner.is_some() {
        gate.block_until(OpGuard::blocked_mutex(mid), |st, _| {
            st.mutexes[mid].owner.is_none()
        });
    }
    let st = gate.state();
    st.mutexes[mid].owner = Some(tid);
    let release_clock = st.mutexes[mid].clock.clone();
    st.clocks[tid].join(&release_clock);
}

/// Release model ownership of mutex `mid`: publish the thread clock and
/// wake blocked acquirers.
fn release_model_mutex(gate: &mut OpGuard<'_>, mid: usize) {
    let tid = gate.tid();
    let st = gate.state();
    st.mutexes[mid].owner = None;
    st.mutexes[mid].clock = st.clocks[tid].clone();
    OpGuard::unblock_mutex_waiters(st, mid);
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if !self.instrumented {
            return;
        }
        let Some(model) = &self.mutex.model else {
            return;
        };
        let Some(tid) = model.tid() else { return };
        if std::thread::panicking() {
            // The thread is unwinding (model failure or abort): release
            // ownership without a scheduling point so other threads can
            // drain, but do not touch clocks — the execution is over.
            model.exec.emergency_release_mutex(model.id);
            return;
        }
        let mut gate = model.exec.op_gate(tid, format!("unlock({})", model.name));
        release_model_mutex(&mut gate, model.id);
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of [`Condvar::wait_timeout`]; mirrors
/// `std::sync::WaitTimeoutResult` (which has no public constructor).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Drop-in `std::sync::Condvar` with model instrumentation.
pub struct Condvar {
    inner: std::sync::Condvar,
    model: Option<Model>,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Self::named("condvar")
    }

    /// Model constructor with a diagnostic name.
    pub fn named(name: &'static str) -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            model: Model::register(name, |exec, n| exec.register_cond(n)),
        }
    }

    /// Instrumented wait: release the guard's mutex, join the condvar's
    /// waiter queue, park until a notify removes this thread from the
    /// queue, then re-acquire. **No timeout, no spurious wakeups** — a
    /// missed notify becomes a reported deadlock.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if let Some(cond_model) = &self.model {
            if let Some(tid) = cond_model.tid() {
                if guard.instrumented {
                    return Ok(self.wait_model(cond_model, tid, guard));
                }
            }
        }
        let mutex = guard.mutex;
        let mut guard = guard;
        let inner = guard.inner.take().expect("guard already released");
        guard.instrumented = false; // nothing left to release on drop
        drop(guard);
        match self.inner.wait(inner) {
            Ok(inner) => Ok(MutexGuard {
                mutex,
                inner: Some(inner),
                instrumented: false,
            }),
            Err(poison) => Err(PoisonError::new(MutexGuard {
                mutex,
                inner: Some(poison.into_inner()),
                instrumented: false,
            })),
        }
    }

    /// Instrumented mode treats the timeout as never firing (see
    /// [`Condvar::wait`]); passthrough delegates to std.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if let Some(cond_model) = &self.model {
            if let Some(tid) = cond_model.tid() {
                if guard.instrumented {
                    let guard = self.wait_model(cond_model, tid, guard);
                    return Ok((guard, WaitTimeoutResult { timed_out: false }));
                }
            }
        }
        let mutex = guard.mutex;
        let mut guard = guard;
        let inner = guard.inner.take().expect("guard already released");
        guard.instrumented = false;
        drop(guard);
        match self.inner.wait_timeout(inner, dur) {
            Ok((inner, result)) => Ok((
                MutexGuard {
                    mutex,
                    inner: Some(inner),
                    instrumented: false,
                },
                WaitTimeoutResult {
                    timed_out: result.timed_out(),
                },
            )),
            Err(poison) => {
                let (inner, result) = poison.into_inner();
                Err(PoisonError::new((
                    MutexGuard {
                        mutex,
                        inner: Some(inner),
                        instrumented: false,
                    },
                    WaitTimeoutResult {
                        timed_out: result.timed_out(),
                    },
                )))
            }
        }
    }

    fn wait_model<'a, T>(
        &self,
        cond_model: &Model,
        tid: usize,
        guard: MutexGuard<'a, T>,
    ) -> MutexGuard<'a, T> {
        let mutex = guard.mutex;
        let mutex_model = mutex
            .model
            .as_ref()
            .expect("instrumented guard implies a registered mutex");
        let mid = mutex_model.id;
        let cid = cond_model.id;
        // Defuse the guard: the mutex release below is part of the wait
        // operation, not a separate unlock.
        let mut guard = guard;
        drop(guard.inner.take());
        guard.instrumented = false;
        drop(guard);

        let mut gate = cond_model
            .exec
            .op_gate(tid, format!("{}.wait", cond_model.name));
        {
            let st = gate.state();
            st.mutexes[mid].owner = None;
            st.mutexes[mid].clock = st.clocks[tid].clone();
            OpGuard::unblock_mutex_waiters(st, mid);
            st.conds[cid].waiters.push(tid);
        }
        gate.block_until(OpGuard::blocked_cond(cid), |st, me| {
            !st.conds[cid].waiters.contains(&me)
        });
        acquire_model_mutex(&mut gate, mid);
        drop(gate);
        let inner = mutex.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            mutex,
            inner: Some(inner),
            instrumented: true,
        }
    }

    /// Wake every model waiter (they still re-acquire the mutex before
    /// returning from `wait`).
    pub fn notify_all(&self) {
        if let Some(model) = &self.model {
            if let Some(tid) = model.tid() {
                let mut gate = model
                    .exec
                    .op_gate(tid, format!("{}.notify_all", model.name));
                let st = gate.state();
                let waiters: Vec<usize> = st.conds[model.id].waiters.drain(..).collect();
                for w in waiters {
                    OpGuard::make_cond_waiter_ready(st, w);
                }
                return;
            }
        }
        self.inner.notify_all();
    }

    /// Wake the longest-waiting model waiter (deterministic FIFO).
    pub fn notify_one(&self) {
        if let Some(model) = &self.model {
            if let Some(tid) = model.tid() {
                let mut gate = model
                    .exec
                    .op_gate(tid, format!("{}.notify_one", model.name));
                let st = gate.state();
                if !st.conds[model.id].waiters.is_empty() {
                    let w = st.conds[model.id].waiters.remove(0);
                    OpGuard::make_cond_waiter_ready(st, w);
                }
                return;
            }
        }
        self.inner.notify_one();
    }
}

// ---------------------------------------------------------------------------
// AtomicUsize
// ---------------------------------------------------------------------------

/// Drop-in `std::sync::atomic::AtomicUsize` with `Ordering`-aware
/// vector-clock propagation: `Release`-side operations publish the
/// thread clock into the atomic, `Acquire`-side operations join it back
/// — unless the execution runs in weakest-ordering mode, where no
/// atomic transfers clocks at all.
pub struct AtomicUsize {
    inner: std::sync::atomic::AtomicUsize,
    model: Option<Model>,
}

impl AtomicUsize {
    pub fn new(value: usize) -> Self {
        Self::named("atomic", value)
    }

    /// Model constructor with a diagnostic name.
    pub fn named(name: &'static str, value: usize) -> Self {
        AtomicUsize {
            inner: std::sync::atomic::AtomicUsize::new(value),
            model: Model::register(name, |exec, _n| exec.register_atomic()),
        }
    }

    fn clock_sync(gate: &mut OpGuard<'_>, model: &Model, ordering: Ordering, rmw: bool) {
        if model.exec.weakened() {
            return;
        }
        let tid = gate.tid();
        let st = gate.state();
        if acquires(ordering) {
            let atomic_clock = st.atomics[model.id].clock.clone();
            st.clocks[tid].join(&atomic_clock);
        }
        if releases(ordering) {
            if rmw {
                // RMWs extend the release sequence: join, don't replace.
                let thread_clock = st.clocks[tid].clone();
                st.atomics[model.id].clock.join(&thread_clock);
            } else {
                st.atomics[model.id].clock = st.clocks[tid].clone();
            }
        }
    }

    pub fn load(&self, ordering: Ordering) -> usize {
        if let Some(model) = &self.model {
            if let Some(tid) = model.tid() {
                let mut gate = model
                    .exec
                    .op_gate(tid, format!("{}.load({ordering:?})", model.name));
                Self::clock_sync(&mut gate, model, ordering, false);
                return self.inner.load(Ordering::SeqCst);
            }
        }
        self.inner.load(ordering)
    }

    pub fn store(&self, value: usize, ordering: Ordering) {
        if let Some(model) = &self.model {
            if let Some(tid) = model.tid() {
                let mut gate = model
                    .exec
                    .op_gate(tid, format!("{}.store({ordering:?})", model.name));
                Self::clock_sync(&mut gate, model, ordering, false);
                self.inner.store(value, Ordering::SeqCst);
                return;
            }
        }
        self.inner.store(value, ordering)
    }

    pub fn fetch_add(&self, value: usize, ordering: Ordering) -> usize {
        self.rmw("fetch_add", ordering, |old| old.wrapping_add(value))
    }

    pub fn fetch_sub(&self, value: usize, ordering: Ordering) -> usize {
        self.rmw("fetch_sub", ordering, |old| old.wrapping_sub(value))
    }

    pub fn swap(&self, value: usize, ordering: Ordering) -> usize {
        self.rmw("swap", ordering, |_| value)
    }

    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        if let Some(model) = &self.model {
            if let Some(tid) = model.tid() {
                let mut gate = model
                    .exec
                    .op_gate(tid, format!("{}.compare_exchange", model.name));
                let old = self.inner.load(Ordering::SeqCst);
                if old == current {
                    Self::clock_sync(&mut gate, model, success, true);
                    self.inner.store(new, Ordering::SeqCst);
                    return Ok(old);
                }
                Self::clock_sync(&mut gate, model, failure, false);
                return Err(old);
            }
        }
        self.inner.compare_exchange(current, new, success, failure)
    }

    fn rmw(&self, op: &str, ordering: Ordering, f: impl Fn(usize) -> usize) -> usize {
        if let Some(model) = &self.model {
            if let Some(tid) = model.tid() {
                let mut gate = model
                    .exec
                    .op_gate(tid, format!("{}.{op}({ordering:?})", model.name));
                Self::clock_sync(&mut gate, model, ordering, true);
                let old = self.inner.load(Ordering::SeqCst);
                self.inner.store(f(old), Ordering::SeqCst);
                return old;
            }
        }
        // Passthrough: reproduce the RMW with a real atomic CAS loop.
        let mut old = self.inner.load(Ordering::Relaxed);
        loop {
            match self
                .inner
                .compare_exchange_weak(old, f(old), ordering, Ordering::Relaxed)
            {
                Ok(prev) => return prev,
                Err(prev) => old = prev,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// RaceCell: the model of an `UnsafeCell` slot
// ---------------------------------------------------------------------------

/// Models one of the pool's `UnsafeCell` fields (`StackJob::func`,
/// `StackJob::result`, chunk-job `input`/`result`): a plain value slot
/// with **no synchronization of its own**, on which every access is
/// checked against the happens-before order. Two accesses to the same
/// cell, at least one a write, with neither's clock `<=` the other's
/// thread clock, is a data race — reported with the schedule seed.
pub struct RaceCell<T> {
    inner: std::sync::Mutex<T>,
    model: Option<Model>,
}

impl<T: Clone> RaceCell<T> {
    pub fn new(value: T) -> Self {
        Self::named("cell", value)
    }

    /// Model constructor with a diagnostic name.
    pub fn named(name: &'static str, value: T) -> Self {
        RaceCell {
            inner: std::sync::Mutex::new(value),
            model: Model::register(name, |exec, _n| exec.register_cell()),
        }
    }

    fn value(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Read the slot (checked against the last write).
    pub fn read(&self) -> T {
        if let Some(model) = &self.model {
            if let Some(tid) = model.tid() {
                let mut gate = model.exec.op_gate(tid, format!("{}.read", model.name));
                let race = {
                    let st = gate.state();
                    match &st.cells[model.id].last_write {
                        Some((wtid, wclock)) if *wtid != tid && !wclock.le(&st.clocks[tid]) => {
                            Some(format!(
                                "data race on '{}': read by t{tid} (clock {}) is concurrent \
                                 with write by t{wtid} (clock {})",
                                model.name, st.clocks[tid], wclock
                            ))
                        }
                        _ => None,
                    }
                };
                if let Some(msg) = race {
                    gate.fail(msg);
                }
                let st = gate.state();
                let now = st.clocks[tid].clone();
                st.cells[model.id].reads[tid] = Some(now);
            }
        }
        self.value().clone()
    }

    /// Write the slot (checked against the last write and every read).
    pub fn write(&self, value: T) {
        self.access_write("write", |slot| *slot = value);
    }

    /// Read-modify-write (models `Option::take` on an `UnsafeCell`
    /// slot): checked as a write, returns the previous value.
    pub fn swap(&self, value: T) -> T {
        let mut previous = None;
        self.access_write("swap", |slot| {
            previous = Some(std::mem::replace(slot, value));
        });
        previous.expect("swap applies its mutation")
    }

    fn access_write(&self, op: &str, mutate: impl FnOnce(&mut T)) {
        if let Some(model) = &self.model {
            if let Some(tid) = model.tid() {
                let mut gate = model.exec.op_gate(tid, format!("{}.{op}", model.name));
                let race = {
                    let st = gate.state();
                    let cell = &st.cells[model.id];
                    let me = &st.clocks[tid];
                    let write_race = match &cell.last_write {
                        Some((wtid, wclock)) if *wtid != tid && !wclock.le(me) => Some(format!(
                            "data race on '{}': write by t{tid} (clock {me}) is concurrent \
                             with write by t{wtid} (clock {wclock})",
                            model.name
                        )),
                        _ => None,
                    };
                    let read_race =
                        cell.reads
                            .iter()
                            .enumerate()
                            .find_map(|(rtid, read)| match read {
                                Some(rclock) if rtid != tid && !rclock.le(me) => Some(format!(
                                "data race on '{}': write by t{tid} (clock {me}) is concurrent \
                                 with read by t{rtid} (clock {rclock})",
                                model.name
                            )),
                                _ => None,
                            });
                    write_race.or(read_race)
                };
                if let Some(msg) = race {
                    gate.fail(msg);
                }
                let st = gate.state();
                let now = st.clocks[tid].clone();
                let cell = &mut st.cells[model.id];
                cell.last_write = Some((tid, now));
                cell.reads.iter_mut().for_each(|r| *r = None);
            }
        }
        mutate(&mut self.value());
    }
}

// ---------------------------------------------------------------------------
// Frame: stack-frame lifetime token
// ---------------------------------------------------------------------------

/// Models the lifetime of a stack frame that owns synchronization state
/// (a `join` caller's `StackJob`, a `run_chunks` batch): the frame
/// owner calls [`Frame::free`] where the real code would return (and
/// pop the frame); every protocol operation that dereferences into the
/// frame calls [`Frame::touch`]. A touch after free is the
/// use-after-free class the PR 5 review caught — reported with the
/// schedule that produced it.
pub struct Frame {
    model: Option<Model>,
}

impl Frame {
    pub fn new(name: &'static str) -> Self {
        Frame {
            model: Model::register(name, |exec, _n| exec.register_frame()),
        }
    }

    /// Assert the frame is still alive (a protocol op dereferencing
    /// into it).
    pub fn touch(&self, what: &str) {
        if let Some(model) = &self.model {
            if let Some(tid) = model.tid() {
                let mut gate = model
                    .exec
                    .op_gate(tid, format!("{}.touch({what})", model.name));
                let freed = !gate.state().frames[model.id].alive;
                if freed {
                    gate.fail(format!(
                        "use-after-free: t{tid} touched freed frame '{}' during {what}",
                        model.name
                    ));
                }
            }
        }
    }

    /// The owner frees the frame (returns from the owning function).
    pub fn free(&self) {
        if let Some(model) = &self.model {
            if let Some(tid) = model.tid() {
                let mut gate = model.exec.op_gate(tid, format!("{}.free", model.name));
                gate.state().frames[model.id].alive = false;
            }
        }
    }
}
