//! The unsafe audit, run against this workspace itself: every `unsafe`
//! site must carry a SAFETY justification, `static mut` is banned,
//! zero-unsafe crates must `#![forbid(unsafe_code)]`, and unsafe-using
//! crates must `#![deny(unsafe_op_in_unsafe_fn)]`.

use std::path::Path;

#[test]
fn workspace_is_clean_under_the_unsafe_audit() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = pp_check::audit::find_workspace_root(manifest_dir)
        .expect("pp-check lives inside the workspace");
    let violations = pp_check::audit::audit_workspace(&root);
    assert!(
        violations.is_empty(),
        "unsafe audit found {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn audit_covers_every_member_crate() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = pp_check::audit::find_workspace_root(manifest_dir).unwrap();
    let crates = pp_check::audit::workspace_crates(&root);
    let names: Vec<&str> = crates.iter().map(|c| c.name.as_str()).collect();
    for expected in [
        "phase-parallel",
        "pp-algos",
        "pp-pam",
        "pp-parlay",
        "pp-ranges",
        "pp-graph",
        "pp-model",
        "pp-workloads",
        "pp-serve",
        "pp-bench",
        "pp-check",
        "rayon",
        "criterion",
        "proptest",
    ] {
        assert!(names.contains(&expected), "audit missed crate {expected}");
    }
    for krate in &crates {
        assert!(
            !krate.files.is_empty(),
            "no sources found for {}",
            krate.name
        );
        assert!(!krate.roots.is_empty(), "no roots found for {}", krate.name);
    }
}
