//! Exhaustive schedule exploration of the fork-join pool's protocol
//! models, plus checker self-tests (determinism, replay, deadlock and
//! race detection on purpose-built tiny models).

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};

use pp_check::models::{chunks, deque, join, latch, park, scope};
use pp_check::sync::{Arc, Condvar, Frame, Mutex, RaceCell};
use pp_check::{explore, replay, Builder, Config};

// ---------------------------------------------------------------------------
// Checker self-tests on tiny hand-built models
// ---------------------------------------------------------------------------

/// Two threads write the same cell with no synchronization at all.
fn racy_model(b: &mut Builder) {
    let cell = Arc::new(RaceCell::named("slot", 0u32));
    for v in [1u32, 2] {
        let cell = Arc::clone(&cell);
        b.thread(move || cell.write(v));
    }
}

#[test]
fn detects_unsynchronized_write_write_race() {
    let report = explore("racy", Config::default(), racy_model);
    let failure = report.failure.expect("two unordered writes must race");
    assert!(
        failure.message.contains("data race on 'slot'"),
        "unexpected message: {}",
        failure.message
    );
}

#[test]
fn mutex_protected_writes_do_not_race() {
    let report = explore("guarded", Config::default(), |b| {
        let lock = Arc::new(Mutex::named("guard", ()));
        let cell = Arc::new(RaceCell::named("slot", 0u32));
        for v in [1u32, 2] {
            let lock = Arc::clone(&lock);
            let cell = Arc::clone(&cell);
            b.thread(move || {
                let guard = lock.lock().unwrap();
                cell.write(v);
                drop(guard);
            });
        }
    });
    assert!(report.passed(), "{report}");
    assert!(report.complete, "small model must be exhaustible");
}

#[test]
fn detects_missed_wakeup_as_deadlock() {
    // The waiter checks the flag, then waits; the setter flips the flag
    // but "forgets" to notify — the model condvar has no timeouts, so
    // schedules where the check precedes the flip deadlock.
    let report = explore("missed-wakeup", Config::default(), |b| {
        let state = Arc::new((Mutex::named("flag", false), Condvar::named("flagged")));
        let waiter = Arc::clone(&state);
        b.thread(move || {
            let mut flag = waiter.0.lock().unwrap();
            while !*flag {
                flag = waiter.1.wait(flag).unwrap();
            }
        });
        let setter = Arc::clone(&state);
        b.thread(move || {
            *setter.0.lock().unwrap() = true;
            // missing: setter.1.notify_all()
        });
    });
    let failure = report.failure.expect("a missed wakeup must deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected message: {}",
        failure.message
    );
    assert!(
        failure.message.contains("flagged"),
        "deadlock report should name the condvar: {}",
        failure.message
    );
}

#[test]
fn exploration_is_deterministic() {
    let first = explore("racy", Config::default(), racy_model);
    let second = explore("racy", Config::default(), racy_model);
    let (a, b) = (first.failure.unwrap(), second.failure.unwrap());
    assert_eq!(a.seed, b.seed, "same model + config ⇒ same failing seed");
    assert_eq!(a.message, b.message);
    assert_eq!(first.schedules, second.schedules);
}

#[test]
fn replay_reproduces_a_failure_from_its_seed() {
    let report = explore("racy", Config::default(), racy_model);
    let failure = report.failure.unwrap();
    let replayed = replay("racy", &failure.seed, Config::default(), racy_model);
    let refailure = replayed
        .failure
        .expect("replaying the failing seed must fail again");
    assert_eq!(refailure.message, failure.message);
    assert_eq!(refailure.seed, failure.seed);
    // A clean seed replays clean: thread 1 fully first, then thread 0
    // is an ordered (non-racing) schedule only if the writes are HB —
    // they are not here, so instead verify determinism of the op log.
    assert_eq!(refailure.ops, failure.ops);
}

#[test]
fn panicking_model_thread_is_reported_with_its_schedule() {
    let report = explore("asserting", Config::default(), |b| {
        let cell = Arc::new(RaceCell::named("slot", 0u32));
        let writer = Arc::clone(&cell);
        b.thread(move || writer.write(9));
        let reader = Arc::clone(&cell);
        b.thread(move || {
            // Fails on schedules where the write lands first (and the
            // read is then racy anyway; whichever trips first is a
            // failure with a seed).
            assert_eq!(reader.read(), 0, "expected to observe the initial value");
        });
    });
    assert!(!report.passed());
}

// ---------------------------------------------------------------------------
// Latch: publish/teardown protocol + the PR 5 UAF regression
// ---------------------------------------------------------------------------

#[test]
fn latch_teardown_fixed_is_exhaustively_clean() {
    let report = explore(
        "latch_teardown_fixed",
        Config::default(),
        latch::teardown_model(true),
    );
    assert!(report.passed(), "{report}");
    assert!(report.complete, "2-thread latch model must be exhaustible");
}

/// The PR 5 regression, revert side: with the decrement outside the
/// latch lock the explorer must find the waiter freeing the frame
/// while the notifier still has latch operations pending.
#[test]
fn latch_uaf_regression_found_when_fix_reverted() {
    let report = explore(
        "latch_teardown_prefix",
        Config::default(),
        latch::teardown_model(false),
    );
    let failure = report.failure.expect("pre-fix done_one must UAF");
    assert!(
        failure.message.contains("use-after-free"),
        "unexpected message: {}",
        failure.message
    );
    assert!(
        failure.message.contains("waiter-frame"),
        "report should name the freed frame: {}",
        failure.message
    );

    // And the failure replays deterministically from its seed.
    let replayed = replay(
        "latch_teardown_prefix",
        &failure.seed,
        Config::default(),
        latch::teardown_model(false),
    );
    assert_eq!(replayed.failure.unwrap().message, failure.message);
}

/// Weakest-ordering exploration (satellite: ordering audit). On the
/// teardown path the latch-lock round-trips carry happens-before even
/// with every atomic demoted to `Relaxed` — so the model stays clean...
#[test]
fn latch_teardown_fixed_survives_weakened_orderings() {
    let report = explore(
        "latch_teardown_fixed_weak",
        Config::default().weakened(),
        latch::teardown_model(true),
    );
    assert!(report.passed(), "{report}");
    assert!(report.complete);
}

/// ...while on the probe-only path (no teardown round-trip) the
/// `AcqRel` decrement → `Acquire` probe pair is the *only* edge
/// publishing the result write: clean as declared, racy when weakened.
/// This is the machine-checked justification for the `Ordering`
/// comments on `CountLatch::{done_one, probe}` in pool.rs.
#[test]
fn latch_probe_orderings_are_load_bearing() {
    let declared = explore(
        "latch_probe_publish",
        Config::default(),
        latch::probe_publish_model(),
    );
    assert!(declared.passed(), "{declared}");
    assert!(declared.complete);

    let weakened = explore(
        "latch_probe_publish_weak",
        Config::default().weakened(),
        latch::probe_publish_model(),
    );
    let failure = weakened
        .failure
        .expect("relaxed probe/decrement must lose the publication edge");
    assert!(
        failure.message.contains("data race on 'job.result'"),
        "unexpected message: {}",
        failure.message
    );
}

#[test]
fn latch_multi_notifier_is_clean_three_threads() {
    let report = explore(
        "latch_multi_notifier",
        Config::default().preemptions(2).schedules(200_000),
        latch::multi_notifier_model(),
    );
    assert!(report.passed(), "{report}");
}

// ---------------------------------------------------------------------------
// Deque substrate: owner LIFO / thief FIFO, injector publication
// ---------------------------------------------------------------------------

#[test]
fn deque_delivers_exactly_once_two_threads() {
    let report = explore(
        "deque_exactly_once_1s",
        Config::default(),
        deque::deque_exactly_once_model(1),
    );
    assert!(report.passed(), "{report}");
    assert!(report.complete);
}

#[test]
fn deque_delivers_exactly_once_three_threads() {
    let report = explore(
        "deque_exactly_once_2s",
        Config::default().preemptions(1).schedules(200_000),
        deque::deque_exactly_once_model(2),
    );
    assert!(report.passed(), "{report}");
}

#[test]
fn deque_steal_back_is_exclusive_and_thief_takes_the_head() {
    let report = explore(
        "deque_steal_back",
        Config::default(),
        deque::deque_steal_back_model(),
    );
    assert!(report.passed(), "{report}");
    assert!(report.complete);
}

#[test]
fn injector_publication_is_clean_as_declared() {
    let report = explore(
        "injector_publish",
        Config::default().preemptions(2).schedules(200_000),
        deque::injector_publish_model(),
    );
    assert!(report.passed(), "{report}");
}

/// Weakest-ordering exploration of the injector: the `Release` CAS →
/// `AcqRel` swap pair is the *only* edge publishing a pushed segment's
/// payload to the grabber. Demote it and the explorer must report the
/// race — the machine-checked justification for the `Ordering`s on
/// `Injector::{push, grab_all}` in pool.rs.
#[test]
fn injector_publish_orderings_are_load_bearing() {
    let report = explore(
        "injector_publish_weak",
        Config::default()
            .preemptions(2)
            .schedules(200_000)
            .weakened(),
        deque::injector_publish_model(),
    );
    let failure = report
        .failure
        .expect("relaxed injector push/grab must lose the publication edge");
    assert!(
        failure.message.contains("data race"),
        "unexpected message: {}",
        failure.message
    );
}

// ---------------------------------------------------------------------------
// Parking protocol: the PR 8 lost-wakeup regression
// ---------------------------------------------------------------------------

#[test]
fn lost_wakeup_fixed_is_exhaustively_clean() {
    let report = explore(
        "lost_wakeup_fixed",
        Config::default(),
        park::lost_wakeup_model(true),
    );
    assert!(report.passed(), "{report}");
    assert!(report.complete, "2-thread park model must be exhaustible");
}

/// The PR 8 regression, revert side: with `wake` notifying only
/// `job_ready`, the schedule "helper parks on the latch path, then the
/// job arrives" leaves the helper asleep forever. The explorer must
/// report the deadlock, name the condvar the helper is stuck on, and
/// replay it from its seed.
#[test]
fn lost_wakeup_found_when_fix_reverted() {
    let report = explore(
        "lost_wakeup_reverted",
        Config::default(),
        park::lost_wakeup_model(false),
    );
    let failure = report.failure.expect("pre-fix wake must lose the wakeup");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected message: {}",
        failure.message
    );
    assert!(
        failure.message.contains("park.helper_wake"),
        "report should name the condvar the helper sleeps on: {}",
        failure.message
    );

    let replayed = replay(
        "lost_wakeup_reverted",
        &failure.seed,
        Config::default(),
        park::lost_wakeup_model(false),
    );
    assert_eq!(replayed.failure.unwrap().message, failure.message);
}

#[test]
fn worker_lifecycle_drains_before_shutdown_two_threads() {
    let report = explore(
        "worker_lifecycle_1w",
        Config::default(),
        park::worker_lifecycle_model(1, 2),
    );
    assert!(report.passed(), "{report}");
    assert!(report.complete);
}

#[test]
fn worker_lifecycle_drains_before_shutdown_three_threads() {
    let report = explore(
        "worker_lifecycle_2w",
        Config::default().preemptions(1).schedules(200_000),
        park::worker_lifecycle_model(2, 2),
    );
    assert!(report.passed(), "{report}");
}

// ---------------------------------------------------------------------------
// Join / chunks / scope protocol models
// ---------------------------------------------------------------------------

#[test]
fn join_runs_second_closure_exactly_once() {
    let report = explore(
        "join_steal_back",
        Config::default().preemptions(2).schedules(200_000),
        join::join_steal_back_model(),
    );
    assert!(report.passed(), "{report}");
}

#[test]
fn chunk_batch_preserves_order_and_runs_each_chunk_once() {
    let report = explore(
        "chunk_batch",
        Config::default().preemptions(2).schedules(200_000),
        chunks::chunk_batch_model(),
    );
    assert!(report.passed(), "{report}");
}

#[test]
fn scope_waits_for_spawns_and_propagates_first_panic() {
    let report = explore(
        "scope_panic",
        Config::default().preemptions(2).schedules(200_000),
        scope::scope_panic_model(),
    );
    assert!(report.passed(), "{report}");
}

// ---------------------------------------------------------------------------
// Passthrough mode: outside a model the shims behave like std
// ---------------------------------------------------------------------------

#[test]
fn shims_pass_through_outside_models() {
    let lock = Mutex::new(5u32);
    *lock.lock().unwrap() += 1;
    assert_eq!(*lock.lock().unwrap(), 6);

    let atomic = pp_check::sync::AtomicUsize::new(1);
    assert_eq!(atomic.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(atomic.load(Ordering::Acquire), 3);
    assert_eq!(
        atomic.compare_exchange(3, 7, Ordering::AcqRel, Ordering::Acquire),
        Ok(3)
    );

    let cell = RaceCell::new(1u32);
    cell.write(2);
    assert_eq!(cell.swap(3), 2);
    assert_eq!(cell.read(), 3);

    let frame = Frame::new("passthrough");
    frame.touch("anything");
    frame.free();

    // Condvar + real threads, std semantics.
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let pair2 = Arc::clone(&pair);
    let handle = std::thread::spawn(move || {
        *pair2.0.lock().unwrap() = true;
        pair2.1.notify_all();
    });
    let mut started = pair.0.lock().unwrap();
    while !*started {
        let (guard, _timeout) = pair
            .1
            .wait_timeout(started, std::time::Duration::from_millis(10))
            .unwrap();
        started = guard;
    }
    handle.join().unwrap();

    let counter = StdAtomicUsize::new(0);
    counter.fetch_add(1, Ordering::SeqCst);
    assert_eq!(counter.load(Ordering::SeqCst), 1);
}
