//! Integration tests for the [`Frontier`] engine: the epoch-stamped
//! bitmap's reset/insert/drain behavior, representation switching, and
//! its recycling through a [`Scratch`] workspace.

use phase_parallel::{Frontier, FrontierPolicy, Scratch};

#[test]
fn insert_is_idempotent_and_drain_empties() {
    let mut f = Frontier::new();
    f.reset(32);
    assert!(f.insert(7));
    assert!(!f.insert(7), "second insert of the same vertex is a no-op");
    assert!(f.insert(9));
    assert_eq!(f.len(), 2);
    let mut out = Vec::new();
    f.drain_into(&mut out);
    out.sort_unstable();
    assert_eq!(out, vec![7, 9]);
    assert!(f.is_empty());
    assert!(!f.contains(7), "drain must clear membership");
}

#[test]
fn reset_clears_membership_across_sizes() {
    let mut f = Frontier::new();
    f.reset(10);
    f.fill(&[1, 2, 3]);
    // Growing the universe keeps old stamps invalid.
    f.reset(1000);
    assert!(f.is_empty());
    assert!((0..10).all(|v| !f.contains(v)));
    f.fill(&[999]);
    assert!(f.contains(999));
    // Shrinking back also starts empty.
    f.reset(10);
    assert!(f.is_empty());
}

#[test]
fn dense_and_sparse_report_identical_membership() {
    let candidates: Vec<u32> = (0..100).map(|i| (i * 37) % 64).collect();
    let collect = |policy: FrontierPolicy| {
        let mut f = Frontier::new();
        f.reset(64);
        f.set_policy(policy);
        f.fill(&candidates);
        let mut out = Vec::new();
        f.collect_into(&mut out);
        out.sort_unstable();
        (f.len(), out)
    };
    let (sparse_len, sparse) = collect(FrontierPolicy::Sparse);
    let (dense_len, dense) = collect(FrontierPolicy::Dense);
    assert_eq!(sparse_len, dense_len);
    assert_eq!(sparse, dense);
}

#[test]
fn helpers_agree_across_representations() {
    for policy in [FrontierPolicy::Sparse, FrontierPolicy::Dense] {
        let mut f = Frontier::new();
        f.reset(50);
        f.set_policy(policy);
        f.fill(&[4, 8, 15, 16, 23, 42]);
        assert_eq!(f.sum_map(u64::from), 108);
        assert_eq!(f.min_map(u64::from), Some(4));
        let mut vals = Vec::new();
        f.map_into(&mut vals, |v| u64::from(v) * 2);
        vals.sort_unstable();
        assert_eq!(vals, vec![8, 16, 30, 32, 46, 84]);
        let mut evens = Vec::new();
        f.collect_filtered_into(&mut evens, |v| v % 2 == 0);
        evens.sort_unstable();
        assert_eq!(evens, vec![4, 8, 16, 42]);
        f.retain(|v| v > 20);
        assert_eq!(f.len(), 2);
        assert!(f.contains(23) && f.contains(42) && !f.contains(4));
        f.insert_from(&[4, 23, 4]);
        assert_eq!(f.len(), 3, "insert_from dedups against members");
    }
}

#[test]
fn scratch_round_trip_preserves_capacity_and_counts_reuse() {
    let mut scratch = Scratch::new();
    let mut f = Frontier::take(&mut scratch, "frontier");
    f.reset(10_000);
    let all: Vec<u32> = (0..10_000).collect();
    f.fill(&all);
    f.release(&mut scratch, "frontier");
    let (takes, reuses) = (scratch.takes(), scratch.reuses());

    // The recycled engine serves a second query without reallocating
    // its stamp array.
    let mut f = Frontier::take(&mut scratch, "frontier");
    assert_eq!(scratch.takes(), takes + 1);
    assert_eq!(
        scratch.reuses(),
        reuses + 1,
        "engine must come back recycled"
    );
    f.reset(10_000);
    assert!(f.is_empty(), "reset empties the recycled engine in O(1)");
    f.fill(&[3]);
    assert!(f.contains(3));
    f.release(&mut scratch, "frontier");
}

#[test]
fn representation_counters_track_rounds() {
    let mut f = Frontier::new();
    f.reset(64);
    f.fill(&[1, 2]); // sparse
    let all: Vec<u32> = (0..64).collect();
    f.fill(&all); // dense
    f.retain(|v| v < 2); // downgrades to sparse
    assert_eq!(f.sparse_rounds(), 2);
    assert_eq!(f.dense_rounds(), 1);
    f.reset(64);
    assert_eq!(
        f.sparse_rounds() + f.dense_rounds(),
        0,
        "reset restarts counters"
    );
}
