//! Scratch-pool contract tests: the take/put protocol, typed-slot
//! isolation, and — through a scratch-using toy algorithm — reuse
//! growth across point queries and `solve_batch` calls. The module-level
//! unit tests cover single calls; this suite exercises the pool the way
//! prepared solvers actually drive it.

use phase_parallel::{ExecutionStats, PhaseAlgorithm, Report, RunConfig, Scratch, Solver};

// ---- take/put round-trips ----

#[test]
fn roundtrips_across_many_types_and_slots() {
    let mut s = Scratch::new();
    // Park several slots of distinct names and types.
    let mut a = s.take_vec::<u32>("a");
    a.extend(0..64);
    s.put_vec("a", a);
    let mut b = s.take_vec::<u64>("b");
    b.extend(0..128u64);
    s.put_vec("b", b);
    let mut nested = s.take_nested::<u8>("nest");
    nested.push(Vec::with_capacity(32));
    s.put_nested("nest", nested);
    s.put_any("state", (3usize, String::from("x")));
    assert_eq!(s.len(), 4);

    // Every take returns the parked buffer: cleared, capacity intact.
    let a = s.take_vec::<u32>("a");
    assert!(a.is_empty() && a.capacity() >= 64);
    let b = s.take_vec::<u64>("b");
    assert!(b.is_empty() && b.capacity() >= 128);
    let nested = s.take_nested::<u8>("nest");
    assert_eq!(nested.len(), 1);
    assert!(nested[0].capacity() >= 32);
    assert_eq!(s.take_any::<(usize, String)>("state").unwrap().0, 3);
    assert!(s.is_empty());
    // 4 parked takes + the 3 initial misses (put_any had no take).
    assert_eq!(s.takes(), 7);
    assert_eq!(s.reuses(), 4);
}

#[test]
fn typed_slot_mismatch_yields_fresh_buffers_not_panics() {
    let mut s = Scratch::new();
    let mut v = s.take_vec::<u32>("slot");
    v.push(7);
    s.put_vec("slot", v);

    // Same name at three other shapes: all fresh, none disturb the u32
    // slot (keys are (name, TypeId) pairs).
    assert!(s.take_vec::<u64>("slot").is_empty());
    assert!(s.take_nested::<u32>("slot").is_empty());
    assert!(s.take_any::<String>("slot").is_none());
    let back = s.take_vec::<u32>("slot");
    assert!(back.is_empty() && back.capacity() >= 1, "u32 slot survived");
    // Only the final take was served from a parked buffer.
    assert_eq!(s.reuses(), 1);
    assert_eq!(s.takes(), 5);
}

#[test]
fn mismatched_put_then_put_coexist() {
    let mut s = Scratch::new();
    s.put_vec::<u32>("x", vec![1]);
    s.put_vec::<u64>("x", vec![2]);
    assert_eq!(s.len(), 2, "same name, different types: two slots");
    assert!(s.take_vec::<u32>("x").is_empty());
    assert!(s.take_vec::<u64>("x").is_empty());
    assert_eq!(s.reuses(), 2);
}

// ---- reuse monotonicity through prepared solvers ----

/// A toy family whose query path takes and puts one named buffer, and
/// reports the workspace's reuse counter so batch workers' pools are
/// observable from the outside.
struct SumWithScratch;

impl PhaseAlgorithm for SumWithScratch {
    type Input = [u64];
    type Output = u64;
    type Prepared<'i> = &'i [u64];

    fn name(&self) -> &'static str {
        "sum-with-scratch"
    }
    fn solve_seq(&self, input: &[u64]) -> u64 {
        input.iter().sum()
    }
    fn solve_par(&self, input: &[u64], _cfg: &RunConfig) -> Report<u64> {
        Report::plain(self.solve_seq(input))
    }
    fn prepare<'i>(&self, input: &'i [u64]) -> &'i [u64] {
        input
    }
    fn solve_prepared(
        &self,
        prepared: &&[u64],
        scratch: &mut Scratch,
        _cfg: &RunConfig,
    ) -> Report<u64> {
        let mut buf = scratch.take_vec::<u64>("sum-buf");
        buf.extend_from_slice(prepared);
        let total = buf.iter().sum();
        scratch.put_vec("sum-buf", buf);
        let mut stats = ExecutionStats::default();
        stats.set_counter("scratch_reuses", scratch.reuses());
        stats.set_counter("scratch_takes", scratch.takes());
        Report::new(total, stats)
    }
}

#[test]
fn point_query_reuse_counter_is_monotone() {
    let solver = Solver::new(SumWithScratch);
    let input: Vec<u64> = (0..100).collect();
    let mut prepared = solver.prepare(&input[..]);
    let mut last = 0;
    for i in 1..=6u64 {
        let r = prepared.solve();
        assert_eq!(r.output, 4950);
        let reuses = prepared.scratch().reuses();
        assert!(
            reuses >= last,
            "reuse counter went backwards: {reuses} < {last}"
        );
        last = reuses;
        // Every query after the first finds its buffer parked.
        assert_eq!(prepared.scratch().takes(), i);
        assert_eq!(reuses, i - 1);
    }
}

#[test]
fn batch_reuse_grows_across_solve_batch_calls() {
    let solver = Solver::new(SumWithScratch);
    let input: Vec<u64> = (0..50).collect();
    let prepared = solver.prepare(&input[..]);
    let queries: Vec<RunConfig> = (0..8).map(RunConfig::seeded).collect();

    let max_reuses = |batch: &phase_parallel::BatchReport<u64>| {
        batch
            .reports
            .iter()
            .filter_map(|r| r.stats.counter("scratch_reuses"))
            .max()
            .unwrap()
    };

    // First batch: workers start on fresh workspaces; within the batch
    // a worker serving several queries already reuses its buffer.
    let first = prepared.solve_batch(&queries);
    assert!(first.outputs().all(|&o| o == 1225));
    let first_max = max_reuses(&first);
    // Workspaces return to the pool between batches.
    assert!(prepared.pooled_scratches() >= 1);

    // Second batch: workers draw the parked workspaces, so the reuse
    // counters continue from the first batch instead of restarting —
    // monotone growth across `solve_batch` calls.
    let second = prepared.solve_batch(&queries);
    let second_max = max_reuses(&second);
    assert!(
        second_max > first_max,
        "cross-batch reuse must accumulate: {second_max} vs {first_max}"
    );

    // Counters never decrease batch over batch.
    let third = prepared.solve_batch(&queries);
    assert!(max_reuses(&third) >= second_max);
}
