//! Execution statistics: the counters §6 reports (rounds, frontier
//! sizes, wake-up attempts), plus coarse work counters for the
//! Table 1 scaling checks.

/// Counters accumulated by the Type 1 / Type 2 engines.
#[derive(Clone, Debug, Default)]
pub struct ExecutionStats {
    /// Number of parallel rounds executed (should be ≈ `rank(S)` for a
    /// round-efficient execution; exactly the paper's round-efficiency
    /// yardstick).
    pub rounds: usize,
    /// Objects processed per round (frontier sizes).
    pub frontier_sizes: Vec<usize>,
    /// Total wake-up attempts (Type 2): successful + failed.
    pub wakeup_attempts: usize,
    /// Wake-up attempts that found the object not yet ready and had to
    /// re-pivot (Type 2).
    pub failed_wakeups: usize,
}

impl ExecutionStats {
    /// Total number of objects processed.
    pub fn processed(&self) -> usize {
        self.frontier_sizes.iter().sum()
    }

    /// Average wake-up attempts per processed object — the "Average # of
    /// Wake-ups" column of Table 2. Lemma 5.5 bounds this by `O(log n)`
    /// whp; §6.4 measures ≤ 8.41 in practice.
    pub fn avg_wakeups(&self) -> f64 {
        let n = self.processed();
        if n == 0 {
            0.0
        } else {
            self.wakeup_attempts as f64 / n as f64
        }
    }

    /// Largest frontier (parallelism available in the best round).
    pub fn max_frontier(&self) -> usize {
        self.frontier_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Record one round with the given frontier size.
    pub fn record_round(&mut self, frontier: usize) {
        self.rounds += 1;
        self.frontier_sizes.push(frontier);
    }
}

impl std::fmt::Display for ExecutionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rounds={} processed={} max_frontier={} wakeups={} (failed {}) avg_wakeups={:.2}",
            self.rounds,
            self.processed(),
            self.max_frontier(),
            self.wakeup_attempts,
            self.failed_wakeups,
            self.avg_wakeups()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut s = ExecutionStats::default();
        s.record_round(10);
        s.record_round(5);
        s.wakeup_attempts = 30;
        s.failed_wakeups = 15;
        assert_eq!(s.rounds, 2);
        assert_eq!(s.processed(), 15);
        assert_eq!(s.max_frontier(), 10);
        assert!((s.avg_wakeups() - 2.0).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("rounds=2"));
    }

    #[test]
    fn empty_stats() {
        let s = ExecutionStats::default();
        assert_eq!(s.processed(), 0);
        assert_eq!(s.avg_wakeups(), 0.0);
        assert_eq!(s.max_frontier(), 0);
    }
}
