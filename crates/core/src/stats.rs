//! Execution statistics: the counters §6 reports (rounds, frontier
//! sizes, wake-up attempts), plus a named-counter extension map for
//! algorithm-specific metrics (relaxations, bucket counts, edge
//! checks, …) so every algorithm family reports through this one type.

/// Counters accumulated by a phase-parallel execution. The fixed fields
/// are the framework-level metrics every engine shares; algorithm
/// families attach their own metrics as named counters
/// ([`ExecutionStats::set_counter`]) instead of defining bespoke stats
/// structs.
#[derive(Clone, Debug, Default)]
pub struct ExecutionStats {
    /// Number of parallel rounds executed (should be ≈ `rank(S)` for a
    /// round-efficient execution; exactly the paper's round-efficiency
    /// yardstick).
    pub rounds: usize,
    /// Objects processed per round (frontier sizes).
    pub frontier_sizes: Vec<usize>,
    /// Total wake-up attempts (Type 2): successful + failed.
    pub wakeup_attempts: usize,
    /// Wake-up attempts that found the object not yet ready and had to
    /// re-pivot (Type 2).
    pub failed_wakeups: usize,
    /// Algorithm-specific named counters, e.g. `"relaxations"` for the
    /// SSSP family or `"edge_checks"` for the round-synchronous MIS
    /// baseline. Insertion-ordered; names are `snake_case`.
    counters: Vec<(&'static str, u64)>,
}

impl ExecutionStats {
    /// Set (or overwrite) a named counter.
    pub fn set_counter(&mut self, name: &'static str, value: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.counters.push((name, value)),
        }
    }

    /// Add to a named counter, creating it at 0 first if absent.
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name, delta)),
        }
    }

    /// Read a named counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// All named counters, in insertion order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }
    /// Total number of objects processed.
    pub fn processed(&self) -> usize {
        self.frontier_sizes.iter().sum()
    }

    /// Average wake-up attempts per processed object — the "Average # of
    /// Wake-ups" column of Table 2. Lemma 5.5 bounds this by `O(log n)`
    /// whp; §6.4 measures ≤ 8.41 in practice.
    pub fn avg_wakeups(&self) -> f64 {
        let n = self.processed();
        if n == 0 {
            0.0
        } else {
            self.wakeup_attempts as f64 / n as f64
        }
    }

    /// Largest frontier (parallelism available in the best round).
    pub fn max_frontier(&self) -> usize {
        self.frontier_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Record one round with the given frontier size.
    pub fn record_round(&mut self, frontier: usize) {
        self.rounds += 1;
        self.frontier_sizes.push(frontier);
    }

    /// Fold another execution's statistics into this one: rounds,
    /// wake-up totals and named counters are summed, frontier sizes
    /// concatenated (so `max_frontier`/`processed` aggregate naturally).
    /// This is how batched solves reduce per-query statistics into one
    /// batch-level summary.
    pub fn merge(&mut self, other: &ExecutionStats) {
        self.rounds += other.rounds;
        self.frontier_sizes.extend_from_slice(&other.frontier_sizes);
        self.wakeup_attempts += other.wakeup_attempts;
        self.failed_wakeups += other.failed_wakeups;
        for &(name, value) in other.counters() {
            self.add_counter(name, value);
        }
    }
}

impl std::fmt::Display for ExecutionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rounds={} processed={} max_frontier={} wakeups={} (failed {}) avg_wakeups={:.2}",
            self.rounds,
            self.processed(),
            self.max_frontier(),
            self.wakeup_attempts,
            self.failed_wakeups,
            self.avg_wakeups()
        )?;
        for (name, value) in &self.counters {
            write!(f, " {name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut s = ExecutionStats::default();
        s.record_round(10);
        s.record_round(5);
        s.wakeup_attempts = 30;
        s.failed_wakeups = 15;
        assert_eq!(s.rounds, 2);
        assert_eq!(s.processed(), 15);
        assert_eq!(s.max_frontier(), 10);
        assert!((s.avg_wakeups() - 2.0).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("rounds=2"));
    }

    #[test]
    fn named_counters() {
        let mut s = ExecutionStats::default();
        assert_eq!(s.counter("relaxations"), None);
        s.set_counter("relaxations", 10);
        s.add_counter("relaxations", 5);
        s.add_counter("buckets", 2);
        assert_eq!(s.counter("relaxations"), Some(15));
        assert_eq!(s.counter("buckets"), Some(2));
        s.set_counter("buckets", 7);
        assert_eq!(s.counters(), &[("relaxations", 15), ("buckets", 7)]);
        assert!(s.to_string().contains("relaxations=15"));
        assert!(s.to_string().contains("buckets=7"));
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = ExecutionStats::default();
        a.record_round(4);
        a.wakeup_attempts = 10;
        a.failed_wakeups = 3;
        a.set_counter("relaxations", 7);
        let mut b = ExecutionStats::default();
        b.record_round(9);
        b.record_round(2);
        b.wakeup_attempts = 5;
        b.set_counter("relaxations", 13);
        b.set_counter("substeps", 2);
        a.merge(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.frontier_sizes, vec![4, 9, 2]);
        assert_eq!(a.wakeup_attempts, 15);
        assert_eq!(a.failed_wakeups, 3);
        assert_eq!(a.counter("relaxations"), Some(20));
        assert_eq!(a.counter("substeps"), Some(2));
        assert_eq!(a.max_frontier(), 9);
    }

    #[test]
    fn empty_stats() {
        let s = ExecutionStats::default();
        assert_eq!(s.processed(), 0);
        assert_eq!(s.avg_wakeups(), 0.0);
        assert_eq!(s.max_frontier(), 0);
    }
}
