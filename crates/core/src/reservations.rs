//! Deterministic reservations — the prior-work framework the paper
//! improves on.
//!
//! Blelloch, Fineman, Gibbons & Shun (PPoPP 2012, the paper's \[10\])
//! parallelize a sequential iterative algorithm with a generic
//! *speculative for*: run rounds over the unfinished iterates, and in each
//! round every candidate **reserves** the shared state it needs by
//! priority-writing its iterate index, then **commits** if it still holds
//! all of its reservations. Winners are always the earliest contenders, so
//! the result is *identical to the sequential algorithm* regardless of the
//! schedule — "internally deterministic".
//!
//! The SPAA 2022 paper keeps this framework's round structure
//! (round-efficiency: `O(D)` rounds for dependence depth `D`) but removes
//! its work inefficiency: deterministic reservations re-examine every
//! unfinished iterate each round, `O(D·m)` work in the worst case, which
//! Type 1 range queries and Type 2 wake-ups avoid. We implement it both as
//! the baseline for ablations and because several substrate algorithms
//! (random permutation — `pp-algos::random_perm`; maximal matching) are
//! cleanly expressed in it.
//!
//! The granularity knob follows \[10\]: processing only a prefix of the
//! remaining iterates each round bounds wasted work at the cost of extra
//! rounds.

use crate::cancel::{deadline_tripped, CancelToken, RunOutcome};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// A table of priority-reservable slots.
///
/// Each slot holds the smallest iterate index that reserved it this epoch
/// (epochs make per-round resets O(1): stale values from earlier rounds
/// are ignored and overwritten).
pub struct ReservationTable {
    slots: Vec<AtomicU64>,
    epoch: AtomicU64,
}

/// Value stored in an empty slot (no reservation this epoch).
const FREE: u32 = u32::MAX;

#[inline]
fn encode(epoch: u64, i: u32) -> u64 {
    (epoch << 32) | u64::from(i)
}

#[inline]
fn decode(v: u64) -> (u64, u32) {
    (v >> 32, v as u32)
}

impl ReservationTable {
    /// A table with `n` slots, all free.
    pub fn new(n: usize) -> Self {
        ReservationTable {
            slots: (0..n).map(|_| AtomicU64::new(encode(0, FREE))).collect(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Start a new round: logically clears every slot in O(1).
    ///
    /// Must not race with [`reserve`](Self::reserve) / [`holds`](Self::holds);
    /// the round driver calls it between parallel phases.
    pub fn next_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Iterate `i` priority-writes itself into `slot`: after all reserves
    /// of a round, the slot holds the minimum contending iterate index.
    pub fn reserve(&self, slot: usize, i: u32) {
        debug_assert!(i != FREE, "iterate index u32::MAX is reserved");
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut cur = self.slots[slot].load(Ordering::Relaxed);
        loop {
            let (ce, ci) = decode(cur);
            if ce == epoch && ci <= i {
                return; // an equal-or-earlier iterate already holds it
            }
            match self.slots[slot].compare_exchange_weak(
                cur,
                encode(epoch, i),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Does iterate `i` hold `slot` after the reserve phase?
    pub fn holds(&self, slot: usize, i: u32) -> bool {
        let epoch = self.epoch.load(Ordering::Relaxed);
        decode(self.slots[slot].load(Ordering::Relaxed)) == (epoch, i)
    }
}

/// A problem expressed as prioritized speculative iterations.
///
/// Iterate indices are the *sequential order*: iterate `i` corresponds to
/// the `i`-th iteration of the sequential loop, and lower indices win all
/// reservation contests — which is what makes the parallel result equal
/// the sequential one.
pub trait ReservationProblem: Sync {
    /// Total number of iterates.
    fn num_iterates(&self) -> usize;

    /// Reserve phase for iterate `i`: priority-write `i` into every slot
    /// whose sequential-order ownership matters. Called once per round
    /// while `i` is uncommitted; must be idempotent.
    fn reserve(&self, i: u32, table: &ReservationTable);

    /// Commit phase for iterate `i`: check (via
    /// [`ReservationTable::holds`]) that `i` still owns what it needs and
    /// perform its effect if so. Return `true` when the iterate is done
    /// (either performed, or it observed that it never needs to run) and
    /// `false` to retry next round.
    fn commit(&self, i: u32, table: &ReservationTable) -> bool;
}

/// Counters reported by [`speculative_for`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecForStats {
    /// Rounds executed (the paper's round-efficiency measure).
    pub rounds: u64,
    /// Total reserve+commit attempts across all rounds — the framework's
    /// work proxy; `attempts / num_iterates` is the re-examination factor
    /// the SPAA 2022 paper eliminates.
    pub attempts: u64,
}

impl From<SpecForStats> for crate::ExecutionStats {
    /// Fold the framework counters into the unified stats: `rounds`
    /// carries over, `attempts` becomes the `"attempts"` named counter.
    fn from(spec: SpecForStats) -> Self {
        let mut stats = Self::default();
        stats.rounds = spec.rounds as usize;
        stats.set_counter("attempts", spec.attempts);
        stats
    }
}

/// Run `problem` to completion with deterministic reservations.
///
/// `granularity` caps how many of the earliest unfinished iterates are
/// attempted per round (`0` means "all", the maximal-parallelism choice
/// whose worst case is the `O(D·m)` the paper discusses).
pub fn speculative_for<P: ReservationProblem>(
    problem: &P,
    table: &ReservationTable,
    granularity: usize,
) -> SpecForStats {
    let (stats, _) = speculative_for_cancellable(problem, table, granularity, None);
    stats
}

/// [`speculative_for`] with a cooperative deadline: the token is polled
/// at the top of every round, before any reserve runs, so a pre-tripped
/// token performs zero rounds. On a trip the uncommitted iterates are
/// simply abandoned (the framework is idempotent per round, so partial
/// state is exactly "everything committed so far") and the outcome is
/// [`RunOutcome::DeadlineExceeded`]. An untripped token leaves the run
/// byte-identical to the uncancelled engine.
pub fn speculative_for_cancellable<P: ReservationProblem>(
    problem: &P,
    table: &ReservationTable,
    granularity: usize,
    cancel: Option<&CancelToken>,
) -> (SpecForStats, RunOutcome) {
    let n = problem.num_iterates();
    let mut pending: Vec<u32> = (0..n as u32).collect();
    let mut stats = SpecForStats::default();
    while !pending.is_empty() {
        if deadline_tripped(cancel) {
            return (stats, RunOutcome::DeadlineExceeded);
        }
        let take = if granularity == 0 {
            pending.len()
        } else {
            granularity.min(pending.len())
        };
        let (batch, rest) = pending.split_at(take);
        table.next_epoch();
        batch.par_iter().for_each(|&i| problem.reserve(i, table));
        let done: Vec<bool> = batch
            .par_iter()
            .map(|&i| problem.commit(i, table))
            .collect();
        stats.rounds += 1;
        stats.attempts += take as u64;
        let mut next: Vec<u32> = batch
            .iter()
            .zip(&done)
            .filter(|&(_, &d)| !d)
            .map(|(&i, _)| i)
            .collect();
        next.extend_from_slice(rest);
        pending = next;
    }
    (stats, RunOutcome::Completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Toy problem: n iterates all contend for one slot; each commit
    /// appends its index to a log. Sequential semantics: ascending order.
    struct SingleSlot {
        order: Vec<AtomicU32>,
        cursor: AtomicU32,
    }

    impl ReservationProblem for SingleSlot {
        fn num_iterates(&self) -> usize {
            self.order.len()
        }
        fn reserve(&self, i: u32, t: &ReservationTable) {
            t.reserve(0, i);
        }
        fn commit(&self, i: u32, t: &ReservationTable) -> bool {
            if t.holds(0, i) {
                let pos = self.cursor.fetch_add(1, Ordering::Relaxed);
                self.order[pos as usize].store(i, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn single_slot_serializes_in_order() {
        let n = 300;
        let p = SingleSlot {
            order: (0..n).map(|_| AtomicU32::new(0)).collect(),
            cursor: AtomicU32::new(0),
        };
        let t = ReservationTable::new(1);
        let stats = speculative_for(&p, &t, 0);
        // One iterate commits per round: fully sequential dependence.
        assert_eq!(stats.rounds, n as u64);
        for (k, slot) in p.order.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), k as u32);
        }
    }

    #[test]
    fn reserve_keeps_minimum() {
        let t = ReservationTable::new(2);
        t.next_epoch();
        t.reserve(0, 7);
        t.reserve(0, 3);
        t.reserve(0, 9);
        assert!(t.holds(0, 3));
        assert!(!t.holds(0, 7));
        assert!(!t.holds(1, 3)); // untouched slot is free
    }

    #[test]
    fn epoch_reset_is_logical() {
        let t = ReservationTable::new(1);
        t.next_epoch();
        t.reserve(0, 1);
        assert!(t.holds(0, 1));
        t.next_epoch();
        assert!(!t.holds(0, 1)); // stale epoch ignored
        t.reserve(0, 5);
        assert!(t.holds(0, 5));
    }

    #[test]
    fn granularity_limits_batch() {
        let n = 100;
        let p = SingleSlot {
            order: (0..n).map(|_| AtomicU32::new(0)).collect(),
            cursor: AtomicU32::new(0),
        };
        let t = ReservationTable::new(1);
        let stats = speculative_for(&p, &t, 10);
        assert_eq!(stats.rounds, n as u64); // still one commit per round
        for (k, slot) in p.order.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), k as u32);
        }
    }

    #[test]
    fn pre_tripped_token_runs_zero_rounds() {
        let n = 100;
        let p = SingleSlot {
            order: (0..n).map(|_| AtomicU32::new(0)).collect(),
            cursor: AtomicU32::new(0),
        };
        let t = ReservationTable::new(1);
        let token = CancelToken::new();
        token.cancel();
        let (stats, outcome) = speculative_for_cancellable(&p, &t, 0, Some(&token));
        assert_eq!(outcome, RunOutcome::DeadlineExceeded);
        assert_eq!(stats.rounds, 0);
        assert_eq!(p.cursor.load(Ordering::Relaxed), 0, "nothing committed");
    }

    #[test]
    fn untripped_token_is_observation_free() {
        let n = 100;
        let p = SingleSlot {
            order: (0..n).map(|_| AtomicU32::new(0)).collect(),
            cursor: AtomicU32::new(0),
        };
        let t = ReservationTable::new(1);
        let token = CancelToken::new();
        let (stats, outcome) = speculative_for_cancellable(&p, &t, 0, Some(&token));
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(stats.rounds, n as u64);
    }

    #[test]
    fn independent_iterates_finish_in_one_round() {
        // n iterates, n slots, no contention.
        struct Indep(usize);
        impl ReservationProblem for Indep {
            fn num_iterates(&self) -> usize {
                self.0
            }
            fn reserve(&self, i: u32, t: &ReservationTable) {
                t.reserve(i as usize, i);
            }
            fn commit(&self, i: u32, t: &ReservationTable) -> bool {
                assert!(t.holds(i as usize, i));
                true
            }
        }
        let p = Indep(5000);
        let t = ReservationTable::new(5000);
        let stats = speculative_for(&p, &t, 0);
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.attempts, 5000);
    }
}
