//! The Type 2 engine: Algorithm 1 with pivot-based *wake-up* (§5).
//!
//! Instead of scanning for ready objects, every unfinished object `x`
//! hangs off a **pivot** `p_x ∈ P(x)` — an object it depends on — in the
//! multimap `T_pivot`. When a frontier finishes, only the objects whose
//! pivot just finished are *attempted*: a readiness check either
//! succeeds (the object joins the next frontier) or yields a fresh
//! unfinished pivot to hang off (Algorithm 3 lines 26–38). With random
//! pivots each object is attempted `O(log |P(x)|)` times whp
//! (Lemma 5.5), which is what makes the whole thing work-efficient.

use crate::cancel::{deadline_tripped, CancelToken, RunOutcome};
use crate::stats::ExecutionStats;
use pp_pam::Multimap;
use rayon::prelude::*;

/// Outcome of a wake-up attempt.
pub enum WakeResult<I> {
    /// All predecessors finished; `I` is the processing result (e.g. the
    /// object's DP value) to commit.
    Ready(I),
    /// Still blocked; re-pivot onto this unfinished predecessor.
    Blocked {
        /// The freshly selected unfinished pivot.
        new_pivot: u32,
    },
}

/// A problem runnable by the Type 2 engine.
///
/// `try_wake` takes `&self` (it runs in parallel over the todo list and
/// must not mutate shared state except through interior atomics);
/// `commit` runs once per round with exclusive access.
pub trait Type2Problem: Sync {
    /// Per-object processing result carried from `try_wake` to `commit`.
    type Info: Send;
    /// Final result type.
    type Output;

    /// `(pivot, object)` pairs seeding `T_pivot` (Algorithm 3 line 21).
    fn initial_pivots(&self) -> Vec<(u32, u32)>;

    /// The round-0 frontier: objects ready with no predecessors —
    /// including any virtual source object.
    fn initial_frontier(&self) -> Vec<(u32, Self::Info)>;

    /// Attempt to wake `x` after its pivot finished. Implementations
    /// check readiness (e.g. a 2D range query) and either produce the
    /// processing result or select a new unfinished pivot.
    fn try_wake(&self, x: u32) -> WakeResult<Self::Info>;

    /// Commit a finished frontier (e.g. publish DP values into the range
    /// tree). Runs between rounds with `&mut self`.
    fn commit(&mut self, ready: &[(u32, Self::Info)]);

    /// Consume the problem and produce the output.
    fn finish(self) -> Self::Output;
}

/// Run the Type 2 wake-up loop over a problem.
pub fn run_type2<P: Type2Problem>(problem: P) -> (P::Output, ExecutionStats) {
    let (out, stats, _) = run_type2_cancellable(problem, None);
    (out, stats)
}

/// [`run_type2`] with a cooperative deadline: the token is polled at the
/// top of every wake-up round, before the round's frontier commits, so a
/// pre-tripped token stops the run with zero rounds. On a trip the
/// engine finishes with partial state under
/// [`RunOutcome::DeadlineExceeded`]; an untripped token leaves the run
/// byte-identical to the uncancelled engine.
pub fn run_type2_cancellable<P: Type2Problem>(
    mut problem: P,
    cancel: Option<&CancelToken>,
) -> (P::Output, ExecutionStats, RunOutcome) {
    let mut stats = ExecutionStats::default();
    let mut outcome = RunOutcome::Completed;
    let mut t_pivot: Multimap<u32, u32> = Multimap::build(problem.initial_pivots());

    let mut frontier: Vec<(u32, P::Info)> = problem.initial_frontier();
    while !frontier.is_empty() {
        if deadline_tripped(cancel) {
            outcome = RunOutcome::DeadlineExceeded;
            break;
        }
        stats.record_round(frontier.len());
        problem.commit(&frontier);
        // Objects whose pivot is in the frontier (T_pivot.multi_find).
        let keys: Vec<u32> = frontier.iter().map(|&(x, _)| x).collect();
        let todo = t_pivot.multi_find(&keys);
        stats.wakeup_attempts += todo.len();
        // Attempt to wake each in parallel.
        let results: Vec<(u32, WakeResult<P::Info>)> = todo
            .into_par_iter()
            .map(|q| (q, problem.try_wake(q)))
            .collect();
        let mut next_frontier = Vec::new();
        let mut new_pairs = Vec::new();
        for (q, r) in results {
            match r {
                WakeResult::Ready(info) => next_frontier.push((q, info)),
                WakeResult::Blocked { new_pivot } => new_pairs.push((new_pivot, q)),
            }
        }
        stats.failed_wakeups += new_pairs.len();
        t_pivot.multi_insert(new_pairs);
        frontier = next_frontier;
    }
    (problem.finish(), stats, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A toy chain problem: object i depends on exactly {0..i}; pivot is
    /// always i-1, so every wake-up succeeds and rounds = n.
    struct Chain {
        n: u32,
        depth: Vec<AtomicU32>,
    }

    impl Type2Problem for Chain {
        type Info = u32; // depth value
        type Output = Vec<u32>;
        fn initial_pivots(&self) -> Vec<(u32, u32)> {
            (1..self.n).map(|i| (i - 1, i)).collect()
        }
        fn initial_frontier(&self) -> Vec<(u32, u32)> {
            if self.n == 0 {
                vec![]
            } else {
                vec![(0, 0)]
            }
        }
        fn try_wake(&self, x: u32) -> WakeResult<u32> {
            let d = self.depth[x as usize - 1].load(Ordering::Relaxed);
            WakeResult::Ready(d + 1)
        }
        fn commit(&mut self, ready: &[(u32, u32)]) {
            for &(x, d) in ready {
                self.depth[x as usize].store(d, Ordering::Relaxed);
            }
        }
        fn finish(self) -> Vec<u32> {
            self.depth.into_iter().map(|a| a.into_inner()).collect()
        }
    }

    #[test]
    fn chain_runs_n_rounds() {
        let n = 50;
        let (depths, stats) = run_type2(Chain {
            n,
            depth: (0..n).map(|_| AtomicU32::new(0)).collect(),
        });
        assert_eq!(depths, (0..n).collect::<Vec<_>>());
        assert_eq!(stats.rounds, n as usize);
        assert_eq!(stats.failed_wakeups, 0);
        assert_eq!(stats.wakeup_attempts, n as usize - 1);
    }

    /// A problem with false pivots: object 2 initially pivots on 0 but
    /// also depends on 1, exercising the re-pivot path.
    struct Repivot {
        finished: Vec<AtomicU32>,
    }

    impl Type2Problem for Repivot {
        type Info = ();
        type Output = ();
        fn initial_pivots(&self) -> Vec<(u32, u32)> {
            vec![(0, 2), (0, 1)]
        }
        fn initial_frontier(&self) -> Vec<(u32, ())> {
            vec![(0, ())]
        }
        fn try_wake(&self, x: u32) -> WakeResult<()> {
            if x == 2 && self.finished[1].load(Ordering::Relaxed) == 0 {
                WakeResult::Blocked { new_pivot: 1 }
            } else {
                WakeResult::Ready(())
            }
        }
        fn commit(&mut self, ready: &[(u32, ())]) {
            for &(x, _) in ready {
                self.finished[x as usize].store(1, Ordering::Relaxed);
            }
        }
        fn finish(self) {}
    }

    #[test]
    fn repivot_path() {
        let (_, stats) = run_type2(Repivot {
            finished: (0..3).map(|_| AtomicU32::new(0)).collect(),
        });
        // Rounds: {0}, {1}, {2}.
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.failed_wakeups, 1);
        assert_eq!(stats.wakeup_attempts, 3); // 1,2 attempted; 2 again
    }

    #[test]
    fn pre_tripped_token_commits_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let n = 50;
        let (depths, stats, outcome) = run_type2_cancellable(
            Chain {
                n,
                depth: (0..n).map(|_| AtomicU32::new(0)).collect(),
            },
            Some(&token),
        );
        assert_eq!(outcome, RunOutcome::DeadlineExceeded);
        assert_eq!(stats.rounds, 0);
        assert!(depths.iter().all(|&d| d == 0), "no commit ran");
    }

    #[test]
    fn untripped_token_is_observation_free() {
        let token = CancelToken::new();
        let n = 50;
        let (depths, stats, outcome) = run_type2_cancellable(
            Chain {
                n,
                depth: (0..n).map(|_| AtomicU32::new(0)).collect(),
            },
            Some(&token),
        );
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(depths, (0..n).collect::<Vec<_>>());
        assert_eq!(stats.rounds, n as usize);
    }

    #[test]
    fn empty_problem() {
        let (_, stats) = run_type2(Chain {
            n: 0,
            depth: vec![],
        });
        assert_eq!(stats.rounds, 0);
    }
}
