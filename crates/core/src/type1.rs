//! The Type 1 engine: Algorithm 1 with frontier *extraction*.
//!
//! Type 1 algorithms (§4) exhibit the property that all objects of the
//! current rank have their "readiness values" in a contiguous range, so
//! the frontier can be pulled out with a range query in polylogarithmic
//! work — no edges of the dependence graph are ever examined.
//!
//! The engine is the generic `while S ≠ ∅ { extract T_i; process T_i }`
//! loop; problems plug in their range-query-based extraction and their
//! parallel processing step. Round counting and frontier sizes are
//! recorded in [`ExecutionStats`] so round-efficiency (span ≈ rank·polylog)
//! can be asserted by tests and reported by benches.

use crate::cancel::{deadline_tripped, CancelToken, RunOutcome};
use crate::stats::ExecutionStats;

/// A problem runnable by the Type 1 engine.
pub trait Type1Problem {
    /// Final result type.
    type Output;

    /// Identify and remove the next frontier — all remaining objects of
    /// the minimal remaining rank (Lemma 4.1 justifies this for activity
    /// selection; each problem proves its own version). Returns the
    /// frontier's object ids; an empty vector terminates the run.
    fn extract_frontier(&mut self) -> Vec<u32>;

    /// Process the whole frontier in parallel (compute DP values etc.).
    fn process(&mut self, frontier: &[u32]);

    /// Consume the problem and produce the output.
    fn finish(self) -> Self::Output;
}

/// Run Algorithm 1 over a Type 1 problem.
pub fn run_type1<P: Type1Problem>(problem: P) -> (P::Output, ExecutionStats) {
    let (out, stats, _) = run_type1_cancellable(problem, None);
    (out, stats)
}

/// [`run_type1`] with a cooperative deadline: the token is polled at the
/// top of every round (before extraction, so a pre-tripped token stops
/// the run at zero rounds). On a trip the engine stops, finishes with
/// its partial state, and reports [`RunOutcome::DeadlineExceeded`];
/// stats cover only the rounds actually run. A token that never fires
/// leaves the run byte-identical to the uncancelled engine.
pub fn run_type1_cancellable<P: Type1Problem>(
    mut problem: P,
    cancel: Option<&CancelToken>,
) -> (P::Output, ExecutionStats, RunOutcome) {
    let mut stats = ExecutionStats::default();
    let mut outcome = RunOutcome::Completed;
    loop {
        if deadline_tripped(cancel) {
            outcome = RunOutcome::DeadlineExceeded;
            break;
        }
        let frontier = problem.extract_frontier();
        if frontier.is_empty() {
            break;
        }
        stats.record_round(frontier.len());
        problem.process(&frontier);
    }
    (problem.finish(), stats, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy problem: objects 0..n with rank i/width; frontier i is the
    /// i-th width-sized block (mimicking the knapsack frontier of §4.2).
    struct Blocks {
        n: u32,
        width: u32,
        next: u32,
        processed: Vec<bool>,
    }

    impl Type1Problem for Blocks {
        type Output = Vec<bool>;
        fn extract_frontier(&mut self) -> Vec<u32> {
            let lo = self.next;
            let hi = (self.next + self.width).min(self.n);
            self.next = hi;
            (lo..hi).collect()
        }
        fn process(&mut self, frontier: &[u32]) {
            for &x in frontier {
                assert!(!self.processed[x as usize], "processed twice");
                self.processed[x as usize] = true;
            }
        }
        fn finish(self) -> Vec<bool> {
            self.processed
        }
    }

    #[test]
    fn processes_everything_in_rank_rounds() {
        let (done, stats) = run_type1(Blocks {
            n: 103,
            width: 10,
            next: 0,
            processed: vec![false; 103],
        });
        assert!(done.iter().all(|&b| b));
        assert_eq!(stats.rounds, 11); // ceil(103 / 10)
        assert_eq!(stats.processed(), 103);
        assert_eq!(stats.max_frontier(), 10);
    }

    #[test]
    fn pre_tripped_token_stops_before_any_round() {
        let token = CancelToken::new();
        token.cancel();
        let (done, stats, outcome) = run_type1_cancellable(
            Blocks {
                n: 103,
                width: 10,
                next: 0,
                processed: vec![false; 103],
            },
            Some(&token),
        );
        assert_eq!(outcome, RunOutcome::DeadlineExceeded);
        assert_eq!(stats.rounds, 0);
        assert!(done.iter().all(|&b| !b), "no round ran");
    }

    #[test]
    fn untripped_token_is_observation_free() {
        let token = CancelToken::new();
        let (done, stats, outcome) = run_type1_cancellable(
            Blocks {
                n: 103,
                width: 10,
                next: 0,
                processed: vec![false; 103],
            },
            Some(&token),
        );
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(stats.rounds, 11);
        assert!(done.iter().all(|&b| b));
    }

    #[test]
    fn empty_problem_runs_zero_rounds() {
        let (_, stats) = run_type1(Blocks {
            n: 0,
            width: 10,
            next: 0,
            processed: vec![],
        });
        assert_eq!(stats.rounds, 0);
    }
}
