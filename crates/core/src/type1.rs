//! The Type 1 engine: Algorithm 1 with frontier *extraction*.
//!
//! Type 1 algorithms (§4) exhibit the property that all objects of the
//! current rank have their "readiness values" in a contiguous range, so
//! the frontier can be pulled out with a range query in polylogarithmic
//! work — no edges of the dependence graph are ever examined.
//!
//! The engine is the generic `while S ≠ ∅ { extract T_i; process T_i }`
//! loop; problems plug in their range-query-based extraction and their
//! parallel processing step. Round counting and frontier sizes are
//! recorded in [`ExecutionStats`] so round-efficiency (span ≈ rank·polylog)
//! can be asserted by tests and reported by benches.

use crate::stats::ExecutionStats;

/// A problem runnable by the Type 1 engine.
pub trait Type1Problem {
    /// Final result type.
    type Output;

    /// Identify and remove the next frontier — all remaining objects of
    /// the minimal remaining rank (Lemma 4.1 justifies this for activity
    /// selection; each problem proves its own version). Returns the
    /// frontier's object ids; an empty vector terminates the run.
    fn extract_frontier(&mut self) -> Vec<u32>;

    /// Process the whole frontier in parallel (compute DP values etc.).
    fn process(&mut self, frontier: &[u32]);

    /// Consume the problem and produce the output.
    fn finish(self) -> Self::Output;
}

/// Run Algorithm 1 over a Type 1 problem.
pub fn run_type1<P: Type1Problem>(mut problem: P) -> (P::Output, ExecutionStats) {
    let mut stats = ExecutionStats::default();
    loop {
        let frontier = problem.extract_frontier();
        if frontier.is_empty() {
            break;
        }
        stats.record_round(frontier.len());
        problem.process(&frontier);
    }
    (problem.finish(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy problem: objects 0..n with rank i/width; frontier i is the
    /// i-th width-sized block (mimicking the knapsack frontier of §4.2).
    struct Blocks {
        n: u32,
        width: u32,
        next: u32,
        processed: Vec<bool>,
    }

    impl Type1Problem for Blocks {
        type Output = Vec<bool>;
        fn extract_frontier(&mut self) -> Vec<u32> {
            let lo = self.next;
            let hi = (self.next + self.width).min(self.n);
            self.next = hi;
            (lo..hi).collect()
        }
        fn process(&mut self, frontier: &[u32]) {
            for &x in frontier {
                assert!(!self.processed[x as usize], "processed twice");
                self.processed[x as usize] = true;
            }
        }
        fn finish(self) -> Vec<bool> {
            self.processed
        }
    }

    #[test]
    fn processes_everything_in_rank_rounds() {
        let (done, stats) = run_type1(Blocks {
            n: 103,
            width: 10,
            next: 0,
            processed: vec![false; 103],
        });
        assert!(done.iter().all(|&b| b));
        assert_eq!(stats.rounds, 11); // ceil(103 / 10)
        assert_eq!(stats.processed(), 103);
        assert_eq!(stats.max_frontier(), 10);
    }

    #[test]
    fn empty_problem_runs_zero_rounds() {
        let (_, stats) = run_type1(Blocks {
            n: 0,
            width: 10,
            next: 0,
            processed: vec![],
        });
        assert_eq!(stats.rounds, 0);
    }
}
