//! The independence-system vocabulary of §3.
//!
//! An independence system `(S, F)` is a ground set with a downward-closed
//! family of *feasible* sets. A sequential iterative algorithm over it is
//! **phase-parallel** (Definition 3.1) when object `x` depends on an
//! earlier object `y` iff every feasible set ending at `y` remains
//! feasible with `x` appended. The **rank** of `x` is `|MFS(x)|`, the
//! size of the largest feasible set within `x↓` ending at `x`; Theorem
//! 3.4 shows rank equals depth in the dependence graph, which is what
//! Algorithm 1 exploits.
//!
//! This module gives the abstraction a *checkable* form: concrete
//! problems implement [`IndependenceSystem`] over small instances, and
//! the framework-conformance tests verify Theorem 3.2 / Corollary 3.3
//! (equal ranks never depend on each other) and Theorem 3.4 (rank =
//! DG depth) by brute force.

/// A finite independence system with the objects in sequential order
/// `0..len()`. Implementations define pairwise *compatibility*; the
/// provided methods derive feasibility, MFS sizes (ranks) and the
/// dependence relation by brute force — intended for specification and
/// testing, not for production (the per-problem algorithms never
/// materialize this).
pub trait IndependenceSystem {
    /// Number of objects.
    fn len(&self) -> usize;

    /// True iff there are no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the *ordered* set `set` (ascending indices) is feasible.
    fn is_feasible(&self, set: &[usize]) -> bool;

    /// Definition 3.1 condition (2): `x` relies on earlier `y` iff every
    /// feasible `E ⊆ y↓` ending at `y` satisfies `E ∪ {x} ∈ F`.
    /// Default: brute force over subsets (only viable for tiny `n`).
    fn relies_on(&self, x: usize, y: usize) -> bool {
        assert!(y < x, "dependence requires I(y) < I(x)");
        let mut any = false;
        for set in feasible_sets_ending_at(self, y) {
            any = true;
            let mut with_x = set.clone();
            with_x.push(x);
            if !self.is_feasible(&with_x) {
                return false;
            }
        }
        any
    }

    /// `rank(x) = |MFS(x)|`: the largest feasible set within `x↓` ending
    /// at `x`. Brute force.
    fn rank_of(&self, x: usize) -> usize {
        feasible_sets_ending_at(self, x)
            .into_iter()
            .map(|s| s.len())
            .max()
            .unwrap_or(0)
    }

    /// `rank(S) = |MFS(S)|`: the largest feasible subset of the whole
    /// system. Equals `max_x rank(x)` — every feasible set ends (in
    /// index order) at some `x`. Brute force.
    fn rank_of_set(&self) -> usize {
        (0..self.len()).map(|x| self.rank_of(x)).max().unwrap_or(0)
    }

    /// Depth of `x` in the dependence graph (1 + max depth of
    /// predecessors; 1 if none). Brute force.
    fn dg_depth(&self, x: usize) -> usize {
        let mut best = 0;
        for y in 0..x {
            if self.relies_on(x, y) {
                best = best.max(self.dg_depth(y));
            }
        }
        best + 1
    }
}

/// All feasible sets (ascending index order) whose last element is `x`.
fn feasible_sets_ending_at<S: IndependenceSystem + ?Sized>(s: &S, x: usize) -> Vec<Vec<usize>> {
    // Enumerate subsets of 0..x, append x; keep feasible ones.
    let mut out = Vec::new();
    let n = x;
    assert!(n < 20, "brute-force enumeration limited to tiny instances");
    for mask in 0..(1u32 << n) {
        let mut set: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
        set.push(x);
        if s.is_feasible(&set) {
            out.push(set);
        }
    }
    out
}

/// A rank function computed by a concrete algorithm, checkable against
/// the brute-force specification.
pub trait RankFn {
    /// `rank(x)` for every object, in input order.
    fn ranks(&self) -> Vec<usize>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// LIS as an independence system: feasible = strictly increasing
    /// subsequence (§3's running example).
    struct Lis(Vec<i64>);

    impl IndependenceSystem for Lis {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn is_feasible(&self, set: &[usize]) -> bool {
            set.windows(2).all(|w| self.0[w[0]] < self.0[w[1]])
        }
    }

    #[test]
    fn lis_rank_is_lis_length_ending_at_x() {
        // Fig. 1(b)'s example sequence (indices of the illustration).
        let s = Lis(vec![4, 7, 3, 2, 8, 1, 6, 5]);
        // Classic DP for LIS-ending-at.
        let mut dp = [1usize; 8];
        for i in 0..8 {
            for j in 0..i {
                if s.0[j] < s.0[i] {
                    dp[i] = dp[i].max(dp[j] + 1);
                }
            }
        }
        for (x, &d) in dp.iter().enumerate() {
            assert_eq!(s.rank_of(x), d, "object {x}");
        }
    }

    #[test]
    fn theorem_3_2_equal_ranks_independent() {
        let s = Lis(vec![5, 2, 8, 6, 3, 9, 1, 7]);
        let n = s.len();
        for x in 0..n {
            for y in 0..x {
                if s.rank_of(x) == s.rank_of(y) {
                    assert!(
                        !s.relies_on(x, y),
                        "equal-rank objects {y},{x} must not depend"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_3_4_rank_equals_dg_depth() {
        let s = Lis(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        for x in 0..s.len() {
            assert_eq!(s.rank_of(x), s.dg_depth(x), "object {x}");
        }
    }

    #[test]
    fn corollary_3_3_dependence_increases_rank() {
        let s = Lis(vec![2, 7, 1, 8, 2, 8, 1, 8]);
        for x in 0..s.len() {
            for y in 0..x {
                if s.relies_on(x, y) {
                    assert!(s.rank_of(x) > s.rank_of(y));
                }
            }
        }
    }
}
