//! The TAS tree (§5.3): a tournament of `test_and_set` flags that
//! detects, asynchronously and in `O(log k)` steps per participant, the
//! moment the *last* of `k` events has fired.
//!
//! Each vertex `v` of the MIS algorithm owns a TAS tree with one leaf per
//! *blocking neighbor* (higher-priority neighbor). When a neighbor
//! becomes unavailable it marks its leaf and walks rootward performing
//! `test_and_set` on each internal flag: a **successful** TAS means the
//! sibling subtree is not finished yet, so the walker quits; a **failed**
//! TAS means the sibling finished first, so the walker continues — and a
//! failed TAS *at the root* means the whole tree just completed, i.e.
//! the marker was the last event, and `v` is ready (Fig. 4).
//!
//! Exactly one marker observes completion (the TAS at the root fails for
//! exactly one of the two last-arriving walkers), so the wake-up fires
//! exactly once with no synchronization rounds — the key to the
//! `O(log n log d_max)` span of Theorem 5.7. At most two TAS operations
//! touch each internal node, so the total work over a tree with `k`
//! leaves is `O(k)`.

use std::sync::atomic::{AtomicBool, Ordering};

/// A single TAS tree over `k` leaves.
///
/// Layout: heap numbering with `k - 1` internal flag nodes `0..k-1`;
/// leaf `i` is implicit at heap position `k - 1 + i` (its flag is never
/// read, so it is not stored). Each leaf must be marked at most once.
pub struct TasTree {
    /// Internal flags; empty when `k <= 1`.
    flags: Box<[AtomicBool]>,
    leaves: usize,
}

impl TasTree {
    /// A tree expecting `leaves` events.
    pub fn new(leaves: usize) -> Self {
        let internal = leaves.saturating_sub(1);
        Self {
            flags: (0..internal).map(|_| AtomicBool::new(false)).collect(),
            leaves,
        }
    }

    /// Number of leaves (events) the tree waits for.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// True iff the tree waits for no events (vertex immediately ready).
    pub fn is_trivial(&self) -> bool {
        self.leaves == 0
    }

    /// Mark leaf `i` (this event fired). Returns `true` iff this call
    /// completed the tree — i.e. every leaf has now been marked and the
    /// caller is the unique observer of that fact.
    ///
    /// Each leaf may be marked at most once; marking is safe to call
    /// concurrently from many threads.
    pub fn mark(&self, i: usize) -> bool {
        debug_assert!(i < self.leaves);
        if self.leaves == 1 {
            // Single event: its arrival is completion.
            return true;
        }
        let mut pos = self.leaves - 1 + i;
        loop {
            let parent = (pos - 1) / 2;
            // test_and_set: returns the previous value.
            let was_set = self.flags[parent].swap(true, Ordering::AcqRel);
            if !was_set {
                // Successful TAS: sibling subtree unfinished; stop here.
                return false;
            }
            if parent == 0 {
                // Failed TAS at the root: the whole tree is complete.
                return true;
            }
            pos = parent;
        }
    }
}

/// A forest of TAS trees in flat storage: one tree per vertex, sized by
/// a degree-like count. Avoids per-vertex allocation for graph-scale use.
pub struct TasForest {
    /// `flag_offsets[v]..flag_offsets[v+1]` are `v`'s internal flags.
    flag_offsets: Vec<usize>,
    flags: Vec<AtomicBool>,
    leaves: Vec<u32>,
}

impl TasForest {
    /// Build a forest where tree `v` has `counts[v]` leaves.
    pub fn new(counts: &[u32]) -> Self {
        let mut flag_offsets = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0usize;
        flag_offsets.push(0);
        for &c in counts {
            acc += (c as usize).saturating_sub(1);
            flag_offsets.push(acc);
        }
        Self {
            flag_offsets,
            flags: (0..acc).map(|_| AtomicBool::new(false)).collect(),
            leaves: counts.to_vec(),
        }
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True iff the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Leaves of tree `v`.
    pub fn leaves_of(&self, v: usize) -> usize {
        self.leaves[v] as usize
    }

    /// Mark leaf `i` of tree `v`; returns `true` iff tree `v` completed.
    /// See [`TasTree::mark`].
    pub fn mark(&self, v: usize, i: usize) -> bool {
        let k = self.leaves[v] as usize;
        debug_assert!(i < k);
        if k == 1 {
            return true;
        }
        let base = self.flag_offsets[v];
        let flags = &self.flags[base..self.flag_offsets[v + 1]];
        let mut pos = k - 1 + i;
        loop {
            let parent = (pos - 1) / 2;
            let was_set = flags[parent].swap(true, Ordering::AcqRel);
            if !was_set {
                return false;
            }
            if parent == 0 {
                return true;
            }
            pos = parent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::shuffle::random_permutation;
    use rayon::prelude::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_leaf_completes_immediately() {
        let t = TasTree::new(1);
        assert!(t.mark(0));
    }

    #[test]
    fn two_leaves_second_completes() {
        let t = TasTree::new(2);
        assert!(!t.mark(0));
        assert!(t.mark(1));
        let t = TasTree::new(2);
        assert!(!t.mark(1));
        assert!(t.mark(0));
    }

    #[test]
    fn exactly_one_completion_any_order() {
        for k in [2usize, 3, 4, 5, 7, 8, 15, 16, 33] {
            for seed in 0..10u64 {
                let t = TasTree::new(k);
                let order = random_permutation(k, seed);
                let mut completions = 0;
                for (step, &leaf) in order.iter().enumerate() {
                    let done = t.mark(leaf as usize);
                    if done {
                        completions += 1;
                        assert_eq!(step, k - 1, "completed before all marks (k={k})");
                    }
                }
                assert_eq!(completions, 1, "k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn exactly_one_completion_concurrent() {
        for k in [8usize, 64, 1000] {
            let t = TasTree::new(k);
            let completions = AtomicUsize::new(0);
            (0..k).into_par_iter().for_each(|i| {
                if t.mark(i) {
                    completions.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(completions.load(Ordering::Relaxed), 1, "k={k}");
        }
    }

    #[test]
    fn fig4_trace() {
        // Fig. 4(b): vertex 14's tree over blocking neighbors
        // [7, 11, 12, 13] (leaves 0..4).
        let t = TasTree::new(4);
        // Round 1 marks 7 and 13: both TAS their parents successfully.
        assert!(!t.mark(0)); // 7
        assert!(!t.mark(3)); // 13
                             // Round 2 marks 12: parent TAS fails (13 set it), root TAS succeeds.
        assert!(!t.mark(2)); // 12
                             // Round 3 marks 11: parent fails, root fails => tree complete.
        assert!(t.mark(1)); // 11 — wakes vertex 14
    }

    #[test]
    fn forest_flat_storage() {
        let f = TasForest::new(&[0, 1, 2, 5]);
        assert_eq!(f.len(), 4);
        assert_eq!(f.leaves_of(0), 0);
        assert!(f.mark(1, 0));
        assert!(!f.mark(2, 1));
        assert!(f.mark(2, 0));
        let mut done = 0;
        for i in 0..5 {
            if f.mark(3, i) {
                done += 1;
            }
        }
        assert_eq!(done, 1);
    }

    #[test]
    fn forest_concurrent_many_trees() {
        let counts: Vec<u32> = (1..200u32).collect();
        let f = TasForest::new(&counts);
        let completions = AtomicUsize::new(0);
        counts.par_iter().enumerate().for_each(|(v, &k)| {
            (0..k as usize).into_par_iter().for_each(|i| {
                if f.mark(v, i) {
                    completions.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert_eq!(completions.load(Ordering::Relaxed), counts.len());
    }
}
