//! Cooperative cancellation: [`CancelToken`] and the typed run outcome.
//!
//! A serving tier cannot let one pathological query hold a worker
//! forever, so queries carry an optional **deadline**: the driver
//! attaches a [`CancelToken`] to the [`RunConfig`](crate::RunConfig)
//! (via [`RunConfig::with_deadline`](crate::RunConfig::with_deadline)),
//! and **every** engine loop in the registry *polls* it — the shared
//! Type 1 / Type 2 / speculative-for engines at round granularity, the
//! SSSP loops additionally at packet/substep granularity, and the
//! asynchronous TAS cascades (MIS, coloring) at cascade-level
//! granularity. A poll
//! is observation-free — it never changes what the algorithm computes,
//! only whether it keeps going — so a run whose deadline never fires is
//! byte-identical to a run with no deadline at all (the conformance
//! suite pins this registry-wide). When the token trips, the engine
//! stops at the next poll and returns its partial state under a typed
//! [`RunOutcome::DeadlineExceeded`] instead of running unbounded.
//!
//! The token is a shared atomic flag plus an optional wall-clock
//! deadline, so three parties compose without coordination:
//!
//! * the **driver** arms a budget (`CancelToken::with_budget`),
//! * any holder can **force** expiry (`CancelToken::cancel`) — how the
//!   fault harness injects deadline expiry deterministically,
//! * the **engine** polls (`CancelToken::is_cancelled`), paying one
//!   relaxed atomic load on the fast path.
//!
//! ```
//! use phase_parallel::{CancelToken, RunConfig};
//! use std::time::Duration;
//!
//! // A generous budget that will never fire: the run is unaffected.
//! let cfg = RunConfig::seeded(7).with_deadline(Duration::from_secs(3600));
//! assert!(!cfg.is_cancelled());
//!
//! // Forced expiry (what the fault harness does):
//! let token = CancelToken::new();
//! let cfg = RunConfig::seeded(7).with_cancel_token(token.clone());
//! token.cancel();
//! assert!(cfg.is_cancelled());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a phase-parallel run ended: to completion, or stopped early at a
/// cancellation poll. Carried by every [`Report`](crate::Report);
/// defaults to [`RunOutcome::Completed`] everywhere, so only engines
/// that actually poll ever produce the other arm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// The run finished; the output is the algorithm's full answer.
    #[default]
    Completed,
    /// A cancellation poll observed a tripped [`CancelToken`]: the run
    /// stopped early and the output is *partial* (whatever state the
    /// engine had settled when it stopped — deterministic only if the
    /// trip point is). Stats cover the work actually done.
    DeadlineExceeded,
}

impl RunOutcome {
    /// True iff the run ran to completion.
    pub fn is_complete(self) -> bool {
        matches!(self, RunOutcome::Completed)
    }
}

/// Shared interior of a [`CancelToken`].
struct Inner {
    /// Set once by [`CancelToken::cancel`] or by the first poll that
    /// observes the deadline passed; never cleared.
    cancelled: AtomicBool,
    /// Wall-clock deadline, fixed at token construction (`None` =
    /// manual cancellation only).
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle: a shared atomic flag plus an
/// optional wall-clock deadline. Clones share state — cancelling any
/// clone trips them all. See the [module docs](self).
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline: trips only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A token that trips `budget` from *now*. The clock starts at
    /// construction, not first poll — build the token when the query
    /// starts, not when the config template is built.
    pub fn with_budget(budget: Duration) -> Self {
        Self::build(Some(Instant::now().checked_add(budget).unwrap_or_else(
            || Instant::now() + Duration::from_secs(86_400 * 365),
        )))
    }

    fn build(deadline: Option<Instant>) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// Trip the token now (idempotent). Every holder's next poll
    /// observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Poll: has this token tripped (manually, or past its deadline)?
    /// Fast path is one relaxed load; the deadline clock is consulted
    /// only until the first trip, which latches the flag.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(at) if Instant::now() >= at => {
                // Latch so later polls skip the clock read.
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// True iff this token carries a wall-clock deadline.
    pub fn has_deadline(&self) -> bool {
        self.inner.deadline.is_some()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// The engine-side poll idiom: has an optional token tripped? One
/// relaxed load when a token is present, free when not — every
/// round/phase loop in the registry calls this at its top, so a blown
/// deadline resolves at round granularity everywhere.
pub fn deadline_tripped(cancel: Option<&CancelToken>) -> bool {
    cancel.is_some_and(CancelToken::is_cancelled)
}

/// Tokens compare by identity (shared state), not by observed value:
/// two independently-built tokens are never equal even if both are
/// untripped. This is what lets [`RunConfig`](crate::RunConfig) keep
/// its derived `PartialEq`: configs are equal iff they share the same
/// cancellation state.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for CancelToken {}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .field("has_deadline", &self.has_deadline())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_trips_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        assert!(!c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(c.is_cancelled());
    }

    #[test]
    fn zero_budget_is_expired_immediately() {
        let t = CancelToken::with_budget(Duration::ZERO);
        assert!(t.is_cancelled());
        // Latched: still cancelled on re-poll.
        assert!(t.is_cancelled());
    }

    #[test]
    fn generous_budget_does_not_trip() {
        let t = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.has_deadline());
    }

    #[test]
    fn identity_equality() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert_ne!(a, b, "distinct tokens are never equal");
        assert_eq!(a, a.clone(), "clones share identity");
    }

    #[test]
    fn outcome_default_is_completed() {
        assert!(RunOutcome::default().is_complete());
        assert!(!RunOutcome::DeadlineExceeded.is_complete());
    }
}
