//! The unified solver API: [`RunConfig`] / [`Report`] /
//! [`PhaseAlgorithm`] / [`Solver`].
//!
//! The paper presents *one* framework — rank-based phase-parallel
//! execution with Type 1 (frontier extraction) and Type 2 (pivot
//! wake-up) engines — so the workspace exposes *one* calling
//! convention for every algorithm family built on it:
//!
//! * [`RunConfig`] collects every execution knob (seed, pivot strategy,
//!   thread count, and the typed per-algorithm parameters like `delta`,
//!   `rho`, or the coloring priority source) behind a builder, replacing
//!   per-function positional argument lists.
//! * [`Report<T>`] pairs an algorithm's output with the unified
//!   [`ExecutionStats`], whose named-counter extension map absorbs what
//!   used to be a zoo of per-algorithm stats structs.
//! * [`PhaseAlgorithm`] is the trait every family implements:
//!   `solve_seq` is the sequential baseline the parallel execution must
//!   agree with (the paper's correctness yardstick), `solve_par` the
//!   one-shot phase-parallel run — and, for repeated traffic, `prepare`
//!   builds the family's amortizable instance structure once so that
//!   `solve_prepared` can serve many queries against it.
//! * [`Solver`] binds an algorithm to a configuration, for callers that
//!   want a reusable handle (benches, services, the conformance suite);
//!   [`Solver::prepare`] upgrades it to a [`PreparedSolver`] that
//!   answers point queries and whole batches ([`PreparedSolver::solve_batch`])
//!   against one prepared instance, recycling per-query buffers through
//!   a [`Scratch`] workspace.
//!
//! The prepare/query split is the paper's cost structure made explicit:
//! building the dependence structure (CSR mirrors, tournament trees,
//! range structures) is preprocessing; running rounds is the query. A
//! service answering millions of SSSP queries against one road network
//! pays the former once.
//!
//! ```
//! use phase_parallel::{PivotMode, RunConfig};
//!
//! let cfg = RunConfig::new().with_seed(7).with_pivot_mode(PivotMode::RightMost);
//! assert_eq!(cfg.seed, 7);
//! assert_eq!(cfg.pivot_mode, PivotMode::RightMost);
//! ```

use crate::cancel::{CancelToken, RunOutcome};
use crate::frontier::FrontierPolicy;
use crate::scratch::Scratch;
use crate::stats::ExecutionStats;
use std::time::Duration;

/// How a Type 2 engine selects a pivot among unfinished predecessors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PivotMode {
    /// Uniformly random unfinished point (the strategy analyzed in
    /// Lemma 5.5: `O(log n)` wake-ups per object whp).
    #[default]
    Random,
    /// The unfinished point with the largest index — §6.4's heuristic:
    /// "points to the right are more likely to be processed in later
    /// rounds", so the right-most blocker is almost always the last.
    RightMost,
}

/// Priority source for the greedy graph algorithms (MIS, coloring,
/// matching): which ordering heuristic generates the per-vertex
/// priorities — Hasenplaugh et al.'s orderings for coloring, uniformly
/// random for the analyzed bounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PrioritySource {
    /// Uniformly random priorities (the analyzed setting: `O(log n)`
    /// dependence depth whp).
    #[default]
    Random,
    /// Largest-degree-first (LF).
    LargestDegreeFirst,
    /// Largest-log-degree-first (LLF).
    LargestLogDegreeFirst,
    /// Smallest-degree-last (SL).
    SmallestDegreeLast,
}

/// Execution configuration for a phase-parallel run: one struct carries
/// every knob any algorithm family reads, so call sites never pass bare
/// positional `(mode, seed)` pairs and adding a knob never breaks a
/// signature.
///
/// Build with chained setters:
///
/// ```
/// use phase_parallel::{PivotMode, RunConfig};
/// let cfg = RunConfig::new()
///     .with_seed(3)
///     .with_pivot_mode(PivotMode::Random)
///     .with_delta(1 << 20);
/// assert_eq!(cfg.delta, Some(1 << 20));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct RunConfig {
    /// Seed for every random choice the run makes (pivot sampling,
    /// generated priorities). Runs are deterministic in the seed.
    pub seed: u64,
    /// Pivot selection strategy for Type 2 engines.
    pub pivot_mode: PivotMode,
    /// Worker threads. `None` uses the ambient pool (all cores, or
    /// `RAYON_NUM_THREADS`); `Some(t)` asks for a dedicated `t`-thread
    /// pool — and since the rayon shim became a real fork-join pool,
    /// `t` is the *actual* worker count parallel regions fan out
    /// across, not a label. Applied by [`Solver::solve`] and the
    /// registry's `run_case` (via [`RunConfig::install`]); a family's
    /// free `*_par` function called directly runs on the ambient pool
    /// regardless.
    pub threads: Option<usize>,
    /// Δ-stepping bucket width. `None` lets SSSP default to Δ = w* (the
    /// paper's phase-parallel choice, Theorem 4.5).
    pub delta: Option<u64>,
    /// ρ-stepping batch size. `None` lets ρ-stepping use its default.
    pub rho: Option<usize>,
    /// Priority source for the greedy graph algorithms. The algorithms
    /// themselves take an explicit priority vector as input; driver
    /// layers (the registry's instance generators, benches, services)
    /// use this knob to pick the heuristic that derives it.
    pub priority_source: PrioritySource,
    /// Per-query source-vertex override for SSSP-style families: a
    /// prepared road network answers queries from many sources, so the
    /// source is a *query* parameter, not an instance parameter. `None`
    /// uses the instance's own source. Honored by `solve_par` and
    /// `solve_prepared`; the sequential baseline `solve_seq` takes no
    /// config and always uses the instance's source, so leave this
    /// unset when checking parallel-vs-sequential conformance.
    pub source: Option<u32>,
    /// Representation policy for the [`Frontier`](crate::Frontier)
    /// engine in round-based algorithms: adaptive by default, or pinned
    /// sparse/dense (the differential-testing knob — outputs must not
    /// depend on it).
    pub frontier: FrontierPolicy,
    /// Cooperative cancellation for this query: engine loops poll the
    /// token at packet/substep granularity and stop early with a typed
    /// [`RunOutcome::DeadlineExceeded`] when it trips. `None` (the
    /// default) runs unbounded. Polling is observation-free — a token
    /// that never trips leaves the run byte-identical to no token at
    /// all. Set via [`RunConfig::with_deadline`] or
    /// [`RunConfig::with_cancel_token`].
    pub cancel: Option<CancelToken>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            pivot_mode: PivotMode::default(),
            threads: None,
            delta: None,
            rho: None,
            priority_source: PrioritySource::default(),
            source: None,
            frontier: FrontierPolicy::default(),
            cancel: None,
        }
    }
}

impl RunConfig {
    /// A default configuration: seed 1, random pivots, ambient pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A default configuration with the given seed — the most common
    /// construction.
    pub fn seeded(seed: u64) -> Self {
        Self::new().with_seed(seed)
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_pivot_mode(mut self, mode: PivotMode) -> Self {
        self.pivot_mode = mode;
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    pub fn with_delta(mut self, delta: u64) -> Self {
        self.delta = Some(delta);
        self
    }

    pub fn with_rho(mut self, rho: usize) -> Self {
        self.rho = Some(rho);
        self
    }

    pub fn with_priority_source(mut self, source: PrioritySource) -> Self {
        self.priority_source = source;
        self
    }

    /// Override the source vertex for this query (see
    /// [`RunConfig::source`]).
    pub fn with_source(mut self, source: u32) -> Self {
        self.source = Some(source);
        self
    }

    /// Pin the frontier-engine representation (see
    /// [`RunConfig::frontier`]).
    pub fn with_frontier(mut self, policy: FrontierPolicy) -> Self {
        self.frontier = policy;
        self
    }

    /// Give this query a wall-clock budget: a fresh [`CancelToken`]
    /// whose deadline is `budget` from **now** (the clock starts here,
    /// not at the first poll). Engines that poll stop at the first poll
    /// past the deadline and report [`RunOutcome::DeadlineExceeded`]
    /// with partial output and stats.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.cancel = Some(CancelToken::with_budget(budget));
        self
    }

    /// Attach an externally-held cancellation token (see
    /// [`RunConfig::cancel`]) — the driver keeps a clone, so it can
    /// force expiry or share one token across related queries.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Poll this config's cancellation token, if any. The form engine
    /// loops use: `if cfg.is_cancelled() { break }` at packet/substep
    /// boundaries. Always `false` when no token is attached.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Build the dedicated pool this configuration asks for, if any.
    fn build_pool(&self) -> Option<rayon::ThreadPool> {
        self.threads.map(|t| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("thread pool")
        })
    }

    /// Run `f` under this configuration's thread budget: inside a
    /// dedicated pool when [`RunConfig::threads`] is set, directly
    /// otherwise. Builds a fresh pool per call — for repeated solves,
    /// hold a [`Solver`], which caches the pool.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match self.build_pool() {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }
}

/// Record the scheduler-activity delta a run produced into its stats,
/// under the `sched_*` counter names. CI runs on one core, where
/// speedups are unobservable — these counters are how the scheduler's
/// *behavior* (lock traffic per task, steal balance, parking) stays
/// assertable anyway. The snapshot pair must be taken inside the same
/// pool `install` as the run, so the deltas come from the pool that
/// actually executed it.
fn record_sched_counters(stats: &mut ExecutionStats, delta: rayon::SchedulerCounters) {
    stats.set_counter("sched_queue_locks", delta.queue_locks);
    stats.set_counter("sched_steals", delta.steals);
    stats.set_counter("sched_parks", delta.parks);
    stats.set_counter("sched_injector_pushes", delta.injector_pushes);
    stats.set_counter("sched_jobs", delta.jobs_executed);
}

/// The result of a phase-parallel run: the algorithm's output plus the
/// unified execution statistics and the typed [`RunOutcome`].
#[derive(Clone, Debug)]
pub struct Report<T> {
    /// The algorithm's answer (identical to its sequential baseline's
    /// when [`Report::outcome`] is [`RunOutcome::Completed`]; partial
    /// state otherwise).
    pub output: T,
    /// Rounds, frontier sizes, wake-ups, and named per-algorithm
    /// counters.
    pub stats: ExecutionStats,
    /// Whether the run completed or stopped at a cancellation poll.
    /// [`RunOutcome::Completed`] unless the engine polled a tripped
    /// [`CancelToken`].
    pub outcome: RunOutcome,
}

impl<T> Report<T> {
    pub fn new(output: T, stats: ExecutionStats) -> Self {
        Self {
            output,
            stats,
            outcome: RunOutcome::Completed,
        }
    }

    /// A report with empty statistics, for algorithms (or sequential
    /// baselines) that do not meter their execution.
    pub fn plain(output: T) -> Self {
        Self::new(output, ExecutionStats::default())
    }

    /// Tag this report with an outcome (builder-style; engines that
    /// poll cancellation use it on the early-exit path).
    pub fn with_outcome(mut self, outcome: RunOutcome) -> Self {
        self.outcome = outcome;
        self
    }

    /// True iff the run finished (no cancellation poll tripped).
    pub fn is_complete(&self) -> bool {
        self.outcome.is_complete()
    }

    /// Transform the output, keeping the statistics and outcome.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Report<U> {
        Report {
            output: f(self.output),
            stats: self.stats,
            outcome: self.outcome,
        }
    }

    pub fn into_parts(self) -> (T, ExecutionStats) {
        (self.output, self.stats)
    }
}

/// One phase-parallelized algorithm family: a sequential baseline and a
/// phase-parallel execution that must produce the same output.
///
/// `solve_par(input, cfg).output == solve_seq(input)` is the paper's
/// sequential-equivalence contract; the workspace conformance suite
/// checks it for every registered implementation.
///
/// # Prepare/query
///
/// Families additionally split their execution into an amortizable
/// *prepare* step ([`PhaseAlgorithm::prepare`], building the instance's
/// dependence structure: CSR mirrors, precomputed weights, edge lists)
/// and a repeatable *query* step ([`PhaseAlgorithm::solve_prepared`],
/// running rounds against the prepared structure, drawing hot per-query
/// buffers from a [`Scratch`] workspace). The contract extends to:
/// `solve_prepared(&prepare(input), scratch, cfg).output ==
/// solve_par(input, cfg).output` for every `cfg` and any workspace
/// state — checked per registry entry by the conformance suite.
///
/// Simple families whose instances need no preprocessing opt in with
/// one line via [`impl_prepared_by_borrow!`](crate::impl_prepared_by_borrow),
/// which sets `Prepared<'i> = &'i Input` and routes queries to the
/// family's `solve_par`.
pub trait PhaseAlgorithm {
    /// Problem instance. `?Sized` so slice inputs (`[i64]`) work.
    type Input: ?Sized;
    /// Solution type (shared by both executions).
    type Output;
    /// The amortized form of an instance: everything `solve_prepared`
    /// needs that does not change between queries. Borrows the input
    /// (`'i`), so preparation never copies the instance's bulk data.
    type Prepared<'i>
    where
        Self: 'i,
        Self::Input: 'i;

    /// Stable, human-readable name (`"lis"`, `"sssp/delta"`, …) — the
    /// key used by string-keyed registries.
    fn name(&self) -> &'static str;

    /// The sequential iterative baseline.
    fn solve_seq(&self, input: &Self::Input) -> Self::Output;

    /// Build the amortized instance once; queries run against it via
    /// [`PhaseAlgorithm::solve_prepared`].
    fn prepare<'i>(&self, input: &'i Self::Input) -> Self::Prepared<'i>;

    /// One query against a prepared instance. Hot per-query buffers
    /// come from (and return to) `scratch`, so repeated queries on the
    /// same workspace run allocation-free in steady state. Output must
    /// equal `solve_par(input, cfg).output`.
    fn solve_prepared(
        &self,
        prepared: &Self::Prepared<'_>,
        scratch: &mut Scratch,
        cfg: &RunConfig,
    ) -> Report<Self::Output>;

    /// The one-shot phase-parallel execution under `cfg`. Kept a
    /// required method (not defaulted to `prepare` + `solve_prepared`)
    /// so that [`impl_prepared_by_borrow!`](crate::impl_prepared_by_borrow) —
    /// whose `solve_prepared` delegates here — can never silently form
    /// a mutual recursion with a defaulted body; forgetting `solve_par`
    /// is a compile error, not a runtime stack overflow.
    fn solve_par(&self, input: &Self::Input, cfg: &RunConfig) -> Report<Self::Output>;
}

/// Implements the prepare/query half of [`PhaseAlgorithm`] for a family
/// whose instances need no preprocessing: `Prepared<'i>` is just a
/// borrow of the input and `solve_prepared` delegates to `solve_par`.
///
/// Use inside the `impl PhaseAlgorithm for …` block.
///
/// ```
/// use phase_parallel::{PhaseAlgorithm, Report, RunConfig, Solver};
///
/// struct Doubler;
/// impl PhaseAlgorithm for Doubler {
///     type Input = [u64];
///     type Output = Vec<u64>;
///     phase_parallel::impl_prepared_by_borrow!();
///     fn name(&self) -> &'static str { "doubler" }
///     fn solve_seq(&self, input: &[u64]) -> Vec<u64> {
///         input.iter().map(|x| x * 2).collect()
///     }
///     fn solve_par(&self, input: &[u64], _cfg: &RunConfig) -> Report<Vec<u64>> {
///         Report::plain(self.solve_seq(input))
///     }
/// }
///
/// let solver = Solver::new(Doubler);
/// let mut prepared = solver.prepare(&[1, 2, 3]);
/// assert_eq!(prepared.solve().output, vec![2, 4, 6]);
/// ```
#[macro_export]
macro_rules! impl_prepared_by_borrow {
    () => {
        type Prepared<'i>
            = &'i Self::Input
        where
            Self: 'i,
            Self::Input: 'i;

        fn prepare<'i>(&self, input: &'i Self::Input) -> Self::Prepared<'i> {
            input
        }

        fn solve_prepared(
            &self,
            prepared: &Self::Prepared<'_>,
            _scratch: &mut $crate::Scratch,
            cfg: &$crate::RunConfig,
        ) -> $crate::Report<Self::Output> {
            self.solve_par(prepared, cfg)
        }
    };
}

/// An algorithm bound to a configuration: the reusable handle that
/// benches, CLIs and service layers drive.
///
/// ```
/// use phase_parallel::{PhaseAlgorithm, Report, RunConfig, Solver};
///
/// struct Doubler;
/// impl PhaseAlgorithm for Doubler {
///     type Input = [u64];
///     type Output = Vec<u64>;
///     phase_parallel::impl_prepared_by_borrow!();
///     fn name(&self) -> &'static str { "doubler" }
///     fn solve_seq(&self, input: &[u64]) -> Vec<u64> {
///         input.iter().map(|x| x * 2).collect()
///     }
///     fn solve_par(&self, input: &[u64], _cfg: &RunConfig) -> Report<Vec<u64>> {
///         Report::plain(self.solve_seq(input))
///     }
/// }
///
/// let solver = Solver::new(Doubler).with_config(RunConfig::seeded(9));
/// let report = solver.solve(&[1, 2, 3]);
/// assert_eq!(report.output, vec![2, 4, 6]);
/// assert_eq!(solver.solve_seq(&[5]), vec![10]);
/// ```
pub struct Solver<A: PhaseAlgorithm> {
    algo: A,
    cfg: RunConfig,
    /// Built once from `cfg.threads` so repeated solves reuse it;
    /// rebuilt only when the thread count actually changes.
    pool: Option<rayon::ThreadPool>,
    /// Number of dedicated pools built over this solver's lifetime
    /// (diagnostics; lets tests pin down that reconfiguration without a
    /// thread-count change does not thrash the pool). Building a pool
    /// spawns real worker threads now, so avoiding a rebuild saves
    /// actual OS work — this counter is the regression tripwire for
    /// that caching.
    pool_builds: u32,
}

impl<A: PhaseAlgorithm> Solver<A> {
    /// Bind `algo` to the default configuration.
    pub fn new(algo: A) -> Self {
        Self {
            algo,
            cfg: RunConfig::default(),
            pool: None,
            pool_builds: 0,
        }
    }

    /// Replace the configuration. The dedicated thread pool is rebuilt
    /// only if [`RunConfig::threads`] actually changed.
    pub fn with_config(mut self, cfg: RunConfig) -> Self {
        if cfg.threads != self.cfg.threads {
            self.pool = cfg.build_pool();
            self.pool_builds += u32::from(self.pool.is_some());
        }
        self.cfg = cfg;
        self
    }

    /// Edit the configuration in place via the builder methods.
    pub fn configure(self, f: impl FnOnce(RunConfig) -> RunConfig) -> Self {
        let cfg = f(self.cfg.clone());
        self.with_config(cfg)
    }

    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// How many dedicated pools this solver has built (diagnostics).
    /// Each build spawns `threads` OS workers, so repeated solves must
    /// reuse the cached pool; `with_config` rebuilds only on an actual
    /// thread-count change, and this counter proves it.
    pub fn pool_builds(&self) -> u32 {
        self.pool_builds
    }

    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Phase-parallel run under the bound configuration (inside the
    /// cached dedicated pool when `threads` is set).
    pub fn solve(&self, input: &A::Input) -> Report<A::Output>
    where
        A: Sync,
        A::Input: Sync,
        A::Output: Send,
    {
        self.solve_with(input, &self.cfg)
    }

    /// Phase-parallel run under a per-call configuration, still inside
    /// this solver's cached pool — the one-shot counterpart of
    /// [`PreparedSolver::solve_with`] (the per-call config's `threads`
    /// field does not re-pool; set threads on the solver).
    pub fn solve_with(&self, input: &A::Input, cfg: &RunConfig) -> Report<A::Output>
    where
        A: Sync,
        A::Input: Sync,
        A::Output: Send,
    {
        let algo = &self.algo;
        let run = || {
            let before = rayon::scheduler_counters();
            let mut report = algo.solve_par(input, cfg);
            let delta = rayon::scheduler_counters().since(&before);
            record_sched_counters(&mut report.stats, delta);
            report
        };
        match &self.pool {
            Some(pool) => pool.install(run),
            None => run(),
        }
    }

    /// Build the amortized instance for `input` and return a handle
    /// that serves repeated queries against it. The handle borrows this
    /// solver (configuration + cached pool) and the input.
    pub fn prepare<'s, 'i>(&'s self, input: &'i A::Input) -> PreparedSolver<'s, 'i, A>
    where
        A: 'i,
    {
        PreparedSolver {
            solver: self,
            prepared: self.algo.prepare(input),
            scratch: Scratch::new(),
            batch_scratch: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// The sequential baseline.
    pub fn solve_seq(&self, input: &A::Input) -> A::Output {
        self.algo.solve_seq(input)
    }

    /// Run both executions and assert sequential equivalence; returns
    /// the parallel report. Used by tests and sanity harnesses.
    pub fn solve_checked(&self, input: &A::Input) -> Report<A::Output>
    where
        A: Sync,
        A::Input: Sync,
        A::Output: Send + PartialEq + std::fmt::Debug,
    {
        let report = self.solve(input);
        let baseline = self.solve_seq(input);
        assert_eq!(
            report.output,
            baseline,
            "{}: parallel output diverged from the sequential baseline",
            self.algo.name()
        );
        report
    }
}

/// A [`Solver`] bound to one prepared instance: the handle a service
/// holds to answer repeated queries against a fixed input. Created by
/// [`Solver::prepare`].
///
/// Point queries ([`PreparedSolver::solve`], [`PreparedSolver::solve_with`])
/// reuse one internal [`Scratch`] workspace, so their hot buffers are
/// allocated once across the handle's lifetime. Batches
/// ([`PreparedSolver::solve_batch`]) fan out across the solver's cached
/// thread pool with one workspace per worker, drawn from (and returned
/// to) a pool that persists across batches.
pub struct PreparedSolver<'s, 'i, A>
where
    A: PhaseAlgorithm + 'i,
    A::Input: 'i,
{
    solver: &'s Solver<A>,
    prepared: A::Prepared<'i>,
    scratch: Scratch,
    /// Worker workspaces parked between `solve_batch` calls, so batch
    /// buffer reuse spans the handle's whole lifetime, not one batch.
    batch_scratch: std::sync::Mutex<Vec<Scratch>>,
}

/// Hands a pooled [`Scratch`] to one batch worker and returns it to the
/// pool when the worker's state is dropped (`map_init` drops each
/// chunk's state when its chunk completes). Workers run on distinct
/// threads, so checkout and return both go through the shared
/// `Mutex` — the workspaces themselves are never aliased: each lives
/// in exactly one chunk's state while checked out.
struct PooledScratch<'p> {
    scratch: Option<Scratch>,
    pool: &'p std::sync::Mutex<Vec<Scratch>>,
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let (Some(scratch), Ok(mut pool)) = (self.scratch.take(), self.pool.lock()) {
            pool.push(scratch);
        }
    }
}

impl<'s, 'i, A> PreparedSolver<'s, 'i, A>
where
    A: PhaseAlgorithm + 'i,
    A::Input: 'i,
{
    /// The configuration queries run under by default.
    pub fn config(&self) -> &RunConfig {
        self.solver.config()
    }

    /// The prepared instance (for callers that drive
    /// [`PhaseAlgorithm::solve_prepared`] themselves).
    pub fn prepared(&self) -> &A::Prepared<'i> {
        &self.prepared
    }

    /// The internal workspace (diagnostics: buffer-reuse counters).
    pub fn scratch(&self) -> &Scratch {
        &self.scratch
    }

    /// One query under the solver's bound configuration.
    pub fn solve(&mut self) -> Report<A::Output>
    where
        A: Sync,
        for<'q> A::Prepared<'q>: Sync,
        A::Output: Send,
    {
        let solver = self.solver;
        self.solve_with(&solver.cfg)
    }

    /// One query under a per-query configuration (seed, knobs, and —
    /// for SSSP-style families — [`RunConfig::source`]). The query runs
    /// inside the solver's cached pool; the per-query `threads` field
    /// does not re-pool.
    pub fn solve_with(&mut self, cfg: &RunConfig) -> Report<A::Output>
    where
        A: Sync,
        for<'q> A::Prepared<'q>: Sync,
        A::Output: Send,
    {
        let solver = self.solver;
        let algo = &solver.algo;
        let (prepared, scratch) = (&self.prepared, &mut self.scratch);
        let mut run = move || {
            let before = rayon::scheduler_counters();
            let mut report = algo.solve_prepared(prepared, scratch, cfg);
            let delta = rayon::scheduler_counters().since(&before);
            record_sched_counters(&mut report.stats, delta);
            report
        };
        match &solver.pool {
            Some(pool) => pool.install(run),
            None => run(),
        }
    }

    /// Answer a whole batch of queries against the prepared instance:
    /// queries genuinely fan out across the solver's cached thread
    /// pool (one [`Scratch`] per worker chunk, so the hot query path
    /// touches no locks — only checkout/return do) and the per-query
    /// reports come back, in query order, with an aggregated batch
    /// summary. Worker workspaces come from a pool that persists
    /// across `solve_batch` calls, so repeated batches on one handle
    /// stay allocation-free in steady state.
    pub fn solve_batch(&self, queries: &[RunConfig]) -> BatchReport<A::Output>
    where
        A: Sync,
        for<'q> A::Prepared<'q>: Sync,
        A::Output: Send,
    {
        use rayon::prelude::*;
        let solver = self.solver;
        let algo = &solver.algo;
        let prepared = &self.prepared;
        let pool = &self.batch_scratch;
        let run = move || {
            let before = rayon::scheduler_counters();
            let reports = queries
                .par_iter()
                .map_init(
                    || PooledScratch {
                        scratch: Some(
                            pool.lock()
                                .map(|mut p| p.pop())
                                .ok()
                                .flatten()
                                .unwrap_or_default(),
                        ),
                        pool,
                    },
                    |pooled, q| {
                        let scratch = pooled.scratch.as_mut().expect("present until drop");
                        algo.solve_prepared(prepared, scratch, q)
                    },
                )
                .collect::<Vec<Report<A::Output>>>();
            let delta = rayon::scheduler_counters().since(&before);
            (reports, delta)
        };
        let (reports, delta) = match &solver.pool {
            Some(thread_pool) => thread_pool.install(run),
            None => run(),
        };
        let mut batch = BatchReport::from_reports(reports);
        // Batch-level scheduler activity: measured across the whole
        // fan-out (the per-query reports inside carry no `sched_*`
        // counters of their own — `solve_prepared` is called directly
        // here — so the aggregate is not double-counted by `merge`).
        record_sched_counters(&mut batch.stats, delta);
        batch
    }

    /// Number of worker workspaces currently parked between batches
    /// (diagnostics).
    pub fn pooled_scratches(&self) -> usize {
        self.batch_scratch.lock().map(|p| p.len()).unwrap_or(0)
    }
}

/// The result of a batched solve: every per-query [`Report`] plus one
/// aggregated [`ExecutionStats`] (rounds and named counters summed,
/// frontier sizes concatenated — see [`ExecutionStats::merge`]).
#[derive(Clone, Debug)]
pub struct BatchReport<T> {
    /// Per-query reports, in query order.
    pub reports: Vec<Report<T>>,
    /// Batch-level summary statistics.
    pub stats: ExecutionStats,
}

impl<T> BatchReport<T> {
    /// Aggregate a batch from its per-query reports.
    pub fn from_reports(reports: Vec<Report<T>>) -> Self {
        let mut stats = ExecutionStats::default();
        for r in &reports {
            stats.merge(&r.stats);
        }
        Self { reports, stats }
    }

    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True iff the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Per-query outputs, in query order.
    pub fn outputs(&self) -> impl Iterator<Item = &T> {
        self.reports.iter().map(|r| &r.output)
    }

    /// Consume the batch into its outputs.
    pub fn into_outputs(self) -> Vec<T> {
        self.reports.into_iter().map(|r| r.output).collect()
    }

    /// Total rounds executed across the batch.
    pub fn total_rounds(&self) -> usize {
        self.stats.rounds
    }

    /// Largest frontier any query saw.
    pub fn max_frontier(&self) -> usize {
        self.stats.max_frontier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountUp;

    impl PhaseAlgorithm for CountUp {
        type Input = [u32];
        type Output = u64;
        crate::impl_prepared_by_borrow!();
        fn name(&self) -> &'static str {
            "count-up"
        }
        fn solve_seq(&self, input: &[u32]) -> u64 {
            input.iter().map(|&x| u64::from(x)).sum()
        }
        fn solve_par(&self, input: &[u32], cfg: &RunConfig) -> Report<u64> {
            let mut stats = ExecutionStats::default();
            stats.record_round(input.len());
            stats.set_counter("seed_echo", cfg.seed);
            Report::new(self.solve_seq(input), stats)
        }
    }

    #[test]
    fn builder_chains() {
        let cfg = RunConfig::seeded(5)
            .with_pivot_mode(PivotMode::RightMost)
            .with_delta(64)
            .with_rho(128)
            .with_threads(2)
            .with_priority_source(PrioritySource::LargestDegreeFirst);
        assert_eq!(cfg.seed, 5);
        assert_eq!(cfg.pivot_mode, PivotMode::RightMost);
        assert_eq!(cfg.delta, Some(64));
        assert_eq!(cfg.rho, Some(128));
        assert_eq!(cfg.threads, Some(2));
        assert_eq!(cfg.priority_source, PrioritySource::LargestDegreeFirst);
    }

    #[test]
    fn solver_runs_and_checks() {
        let solver = Solver::new(CountUp).with_config(RunConfig::seeded(9));
        let report = solver.solve_checked(&[1, 2, 3, 4]);
        assert_eq!(report.output, 10);
        assert_eq!(report.stats.counter("seed_echo"), Some(9));
        assert_eq!(report.stats.rounds, 1);
    }

    #[test]
    fn threads_config_installs_pool() {
        let solver = Solver::new(CountUp).configure(|c| c.with_threads(1));
        assert_eq!(solver.solve(&[7, 8]).output, 15);
    }

    #[test]
    fn pool_rebuilt_only_on_thread_change() {
        let solver = Solver::new(CountUp);
        assert_eq!(solver.pool_builds(), 0);
        let solver = solver.configure(|c| c.with_threads(2));
        assert_eq!(solver.pool_builds(), 1);
        // Reconfiguring without touching `threads` must not re-pool.
        let solver = solver.configure(|c| c.with_seed(9));
        let cfg = solver.config().clone().with_delta(4);
        let solver = solver.with_config(cfg);
        assert_eq!(solver.pool_builds(), 1);
        // Same thread count again: still cached.
        let solver = solver.configure(|c| c.with_threads(2));
        assert_eq!(solver.pool_builds(), 1);
        // A real change rebuilds.
        let solver = solver.configure(|c| c.with_threads(3));
        assert_eq!(solver.pool_builds(), 2);
        assert_eq!(solver.solve(&[1, 2]).output, 3);
    }

    #[test]
    fn prepared_solver_point_and_batch() {
        let solver = Solver::new(CountUp).with_config(RunConfig::seeded(4));
        let input = [1u32, 2, 3];
        let mut prepared = solver.prepare(&input);
        let r = prepared.solve();
        assert_eq!(r.output, 6);
        assert_eq!(r.stats.counter("seed_echo"), Some(4));
        let r = prepared.solve_with(&RunConfig::seeded(11));
        assert_eq!(r.stats.counter("seed_echo"), Some(11));

        let queries: Vec<RunConfig> = (0..5).map(RunConfig::seeded).collect();
        let batch = prepared.solve_batch(&queries);
        assert_eq!(batch.len(), 5);
        assert!(batch.outputs().all(|&o| o == 6));
        // Merged stats: one round of size 3 per query.
        assert_eq!(batch.total_rounds(), 5);
        assert_eq!(batch.max_frontier(), 3);
        assert_eq!(batch.stats.processed(), 15);
        assert_eq!(batch.into_outputs(), vec![6; 5]);

        // Worker workspaces return to the pool and survive into the
        // next batch (cross-batch buffer amortization).
        assert!(prepared.pooled_scratches() >= 1);
        let again = prepared.solve_batch(&queries);
        assert_eq!(again.len(), 5);
        assert!(prepared.pooled_scratches() >= 1, "workspaces must return");
    }

    #[test]
    fn sched_counters_recorded_on_solve_and_batch() {
        let solver = Solver::new(CountUp).configure(|c| c.with_threads(2));
        let report = solver.solve(&[1, 2, 3]);
        for name in [
            "sched_queue_locks",
            "sched_steals",
            "sched_parks",
            "sched_injector_pushes",
            "sched_jobs",
        ] {
            assert!(
                report.stats.counter(name).is_some(),
                "solve must record {name}"
            );
        }

        let input = [1u32, 2, 3];
        let prepared = solver.prepare(&input);
        let queries: Vec<RunConfig> = (0..3).map(RunConfig::seeded).collect();
        let batch = prepared.solve_batch(&queries);
        assert!(
            batch.stats.counter("sched_jobs").is_some_and(|j| j >= 1),
            "a 2-thread batch fan-out must execute pool jobs"
        );
        assert!(batch.stats.counter("sched_steals").is_some());
        assert!(batch.stats.counter("sched_parks").is_some());
    }

    #[test]
    fn report_map_keeps_stats() {
        let mut stats = ExecutionStats::default();
        stats.record_round(3);
        let r = Report::new(21u32, stats).map(|x| x * 2);
        assert_eq!(r.output, 42);
        assert_eq!(r.stats.rounds, 1);
    }
}
