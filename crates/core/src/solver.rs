//! The unified solver API: [`RunConfig`] / [`Report`] /
//! [`PhaseAlgorithm`] / [`Solver`].
//!
//! The paper presents *one* framework — rank-based phase-parallel
//! execution with Type 1 (frontier extraction) and Type 2 (pivot
//! wake-up) engines — so the workspace exposes *one* calling
//! convention for every algorithm family built on it:
//!
//! * [`RunConfig`] collects every execution knob (seed, pivot strategy,
//!   thread count, and the typed per-algorithm parameters like `delta`,
//!   `rho`, or the coloring priority source) behind a builder, replacing
//!   per-function positional argument lists.
//! * [`Report<T>`] pairs an algorithm's output with the unified
//!   [`ExecutionStats`], whose named-counter extension map absorbs what
//!   used to be a zoo of per-algorithm stats structs.
//! * [`PhaseAlgorithm`] is the trait every family implements:
//!   `solve_seq` is the sequential baseline the parallel execution must
//!   agree with (the paper's correctness yardstick), `solve_par` the
//!   phase-parallel run.
//! * [`Solver`] binds an algorithm to a configuration, for callers that
//!   want a reusable handle (benches, services, the conformance suite).
//!
//! ```
//! use phase_parallel::{PivotMode, RunConfig};
//!
//! let cfg = RunConfig::new().with_seed(7).with_pivot_mode(PivotMode::RightMost);
//! assert_eq!(cfg.seed, 7);
//! assert_eq!(cfg.pivot_mode, PivotMode::RightMost);
//! ```

use crate::stats::ExecutionStats;

/// How a Type 2 engine selects a pivot among unfinished predecessors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PivotMode {
    /// Uniformly random unfinished point (the strategy analyzed in
    /// Lemma 5.5: `O(log n)` wake-ups per object whp).
    #[default]
    Random,
    /// The unfinished point with the largest index — §6.4's heuristic:
    /// "points to the right are more likely to be processed in later
    /// rounds", so the right-most blocker is almost always the last.
    RightMost,
}

/// Priority source for the greedy graph algorithms (MIS, coloring,
/// matching): which ordering heuristic generates the per-vertex
/// priorities — Hasenplaugh et al.'s orderings for coloring, uniformly
/// random for the analyzed bounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PrioritySource {
    /// Uniformly random priorities (the analyzed setting: `O(log n)`
    /// dependence depth whp).
    #[default]
    Random,
    /// Largest-degree-first (LF).
    LargestDegreeFirst,
    /// Largest-log-degree-first (LLF).
    LargestLogDegreeFirst,
    /// Smallest-degree-last (SL).
    SmallestDegreeLast,
}

/// Execution configuration for a phase-parallel run: one struct carries
/// every knob any algorithm family reads, so call sites never pass bare
/// positional `(mode, seed)` pairs and adding a knob never breaks a
/// signature.
///
/// Build with chained setters:
///
/// ```
/// use phase_parallel::{PivotMode, RunConfig};
/// let cfg = RunConfig::new()
///     .with_seed(3)
///     .with_pivot_mode(PivotMode::Random)
///     .with_delta(1 << 20);
/// assert_eq!(cfg.delta, Some(1 << 20));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct RunConfig {
    /// Seed for every random choice the run makes (pivot sampling,
    /// generated priorities). Runs are deterministic in the seed.
    pub seed: u64,
    /// Pivot selection strategy for Type 2 engines.
    pub pivot_mode: PivotMode,
    /// Worker threads. `None` uses the ambient pool (all cores under
    /// real rayon); `Some(t)` asks for a dedicated `t`-thread pool.
    /// Applied by [`Solver::solve`] and the registry's `run_case` (via
    /// [`RunConfig::install`]); a family's free `*_par` function called
    /// directly runs on the ambient pool regardless.
    pub threads: Option<usize>,
    /// Δ-stepping bucket width. `None` lets SSSP default to Δ = w* (the
    /// paper's phase-parallel choice, Theorem 4.5).
    pub delta: Option<u64>,
    /// ρ-stepping batch size. `None` lets ρ-stepping use its default.
    pub rho: Option<usize>,
    /// Priority source for the greedy graph algorithms. The algorithms
    /// themselves take an explicit priority vector as input; driver
    /// layers (the registry's instance generators, benches, services)
    /// use this knob to pick the heuristic that derives it.
    pub priority_source: PrioritySource,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            pivot_mode: PivotMode::default(),
            threads: None,
            delta: None,
            rho: None,
            priority_source: PrioritySource::default(),
        }
    }
}

impl RunConfig {
    /// A default configuration: seed 1, random pivots, ambient pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A default configuration with the given seed — the most common
    /// construction.
    pub fn seeded(seed: u64) -> Self {
        Self::new().with_seed(seed)
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_pivot_mode(mut self, mode: PivotMode) -> Self {
        self.pivot_mode = mode;
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    pub fn with_delta(mut self, delta: u64) -> Self {
        self.delta = Some(delta);
        self
    }

    pub fn with_rho(mut self, rho: usize) -> Self {
        self.rho = Some(rho);
        self
    }

    pub fn with_priority_source(mut self, source: PrioritySource) -> Self {
        self.priority_source = source;
        self
    }

    /// Build the dedicated pool this configuration asks for, if any.
    fn build_pool(&self) -> Option<rayon::ThreadPool> {
        self.threads.map(|t| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("thread pool")
        })
    }

    /// Run `f` under this configuration's thread budget: inside a
    /// dedicated pool when [`RunConfig::threads`] is set, directly
    /// otherwise. Builds a fresh pool per call — for repeated solves,
    /// hold a [`Solver`], which caches the pool.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match self.build_pool() {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }
}

/// The result of a phase-parallel run: the algorithm's output plus the
/// unified execution statistics.
#[derive(Clone, Debug)]
pub struct Report<T> {
    /// The algorithm's answer (identical to its sequential baseline's).
    pub output: T,
    /// Rounds, frontier sizes, wake-ups, and named per-algorithm
    /// counters.
    pub stats: ExecutionStats,
}

impl<T> Report<T> {
    pub fn new(output: T, stats: ExecutionStats) -> Self {
        Self { output, stats }
    }

    /// A report with empty statistics, for algorithms (or sequential
    /// baselines) that do not meter their execution.
    pub fn plain(output: T) -> Self {
        Self {
            output,
            stats: ExecutionStats::default(),
        }
    }

    /// Transform the output, keeping the statistics.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Report<U> {
        Report {
            output: f(self.output),
            stats: self.stats,
        }
    }

    pub fn into_parts(self) -> (T, ExecutionStats) {
        (self.output, self.stats)
    }
}

/// One phase-parallelized algorithm family: a sequential baseline and a
/// phase-parallel execution that must produce the same output.
///
/// `solve_par(input, cfg).output == solve_seq(input)` is the paper's
/// sequential-equivalence contract; the workspace conformance suite
/// checks it for every registered implementation.
pub trait PhaseAlgorithm {
    /// Problem instance. `?Sized` so slice inputs (`[i64]`) work.
    type Input: ?Sized;
    /// Solution type (shared by both executions).
    type Output;

    /// Stable, human-readable name (`"lis"`, `"sssp/delta"`, …) — the
    /// key used by string-keyed registries.
    fn name(&self) -> &'static str;

    /// The sequential iterative baseline.
    fn solve_seq(&self, input: &Self::Input) -> Self::Output;

    /// The phase-parallel execution under `cfg`.
    fn solve_par(&self, input: &Self::Input, cfg: &RunConfig) -> Report<Self::Output>;
}

/// An algorithm bound to a configuration: the reusable handle that
/// benches, CLIs and service layers drive.
///
/// ```
/// use phase_parallel::{PhaseAlgorithm, Report, RunConfig, Solver};
///
/// struct Doubler;
/// impl PhaseAlgorithm for Doubler {
///     type Input = [u64];
///     type Output = Vec<u64>;
///     fn name(&self) -> &'static str { "doubler" }
///     fn solve_seq(&self, input: &[u64]) -> Vec<u64> {
///         input.iter().map(|x| x * 2).collect()
///     }
///     fn solve_par(&self, input: &[u64], _cfg: &RunConfig) -> Report<Vec<u64>> {
///         Report::plain(self.solve_seq(input))
///     }
/// }
///
/// let solver = Solver::new(Doubler).with_config(RunConfig::seeded(9));
/// let report = solver.solve(&[1, 2, 3]);
/// assert_eq!(report.output, vec![2, 4, 6]);
/// assert_eq!(solver.solve_seq(&[5]), vec![10]);
/// ```
pub struct Solver<A: PhaseAlgorithm> {
    algo: A,
    cfg: RunConfig,
    /// Built once from `cfg.threads` so repeated solves reuse it.
    pool: Option<rayon::ThreadPool>,
}

impl<A: PhaseAlgorithm> Solver<A> {
    /// Bind `algo` to the default configuration.
    pub fn new(algo: A) -> Self {
        Self {
            algo,
            cfg: RunConfig::default(),
            pool: None,
        }
    }

    /// Replace the configuration.
    pub fn with_config(mut self, cfg: RunConfig) -> Self {
        self.cfg = cfg;
        self.pool = self.cfg.build_pool();
        self
    }

    /// Edit the configuration in place via the builder methods.
    pub fn configure(mut self, f: impl FnOnce(RunConfig) -> RunConfig) -> Self {
        self.cfg = f(self.cfg);
        self.pool = self.cfg.build_pool();
        self
    }

    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Phase-parallel run under the bound configuration (inside the
    /// cached dedicated pool when `threads` is set).
    pub fn solve(&self, input: &A::Input) -> Report<A::Output>
    where
        A: Sync,
        A::Input: Sync,
        A::Output: Send,
    {
        let (algo, cfg) = (&self.algo, &self.cfg);
        match &self.pool {
            Some(pool) => pool.install(|| algo.solve_par(input, cfg)),
            None => algo.solve_par(input, cfg),
        }
    }

    /// The sequential baseline.
    pub fn solve_seq(&self, input: &A::Input) -> A::Output {
        self.algo.solve_seq(input)
    }

    /// Run both executions and assert sequential equivalence; returns
    /// the parallel report. Used by tests and sanity harnesses.
    pub fn solve_checked(&self, input: &A::Input) -> Report<A::Output>
    where
        A: Sync,
        A::Input: Sync,
        A::Output: Send + PartialEq + std::fmt::Debug,
    {
        let report = self.solve(input);
        let baseline = self.solve_seq(input);
        assert_eq!(
            report.output,
            baseline,
            "{}: parallel output diverged from the sequential baseline",
            self.algo.name()
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountUp;

    impl PhaseAlgorithm for CountUp {
        type Input = [u32];
        type Output = u64;
        fn name(&self) -> &'static str {
            "count-up"
        }
        fn solve_seq(&self, input: &[u32]) -> u64 {
            input.iter().map(|&x| u64::from(x)).sum()
        }
        fn solve_par(&self, input: &[u32], cfg: &RunConfig) -> Report<u64> {
            let mut stats = ExecutionStats::default();
            stats.record_round(input.len());
            stats.set_counter("seed_echo", cfg.seed);
            Report::new(self.solve_seq(input), stats)
        }
    }

    #[test]
    fn builder_chains() {
        let cfg = RunConfig::seeded(5)
            .with_pivot_mode(PivotMode::RightMost)
            .with_delta(64)
            .with_rho(128)
            .with_threads(2)
            .with_priority_source(PrioritySource::LargestDegreeFirst);
        assert_eq!(cfg.seed, 5);
        assert_eq!(cfg.pivot_mode, PivotMode::RightMost);
        assert_eq!(cfg.delta, Some(64));
        assert_eq!(cfg.rho, Some(128));
        assert_eq!(cfg.threads, Some(2));
        assert_eq!(cfg.priority_source, PrioritySource::LargestDegreeFirst);
    }

    #[test]
    fn solver_runs_and_checks() {
        let solver = Solver::new(CountUp).with_config(RunConfig::seeded(9));
        let report = solver.solve_checked(&[1, 2, 3, 4]);
        assert_eq!(report.output, 10);
        assert_eq!(report.stats.counter("seed_echo"), Some(9));
        assert_eq!(report.stats.rounds, 1);
    }

    #[test]
    fn threads_config_installs_pool() {
        let solver = Solver::new(CountUp).configure(|c| c.with_threads(1));
        assert_eq!(solver.solve(&[7, 8]).output, 15);
    }

    #[test]
    fn report_map_keeps_stats() {
        let mut stats = ExecutionStats::default();
        stats.record_round(3);
        let r = Report::new(21u32, stats).map(|x| x * 2);
        assert_eq!(r.output, 42);
        assert_eq!(r.stats.rounds, 1);
    }
}
