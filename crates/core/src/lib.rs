//! # `phase-parallel` — the phase-parallel framework (SPAA 2022)
//!
//! This crate implements the framework of Shen, Wan, Gu & Sun, *Many
//! Sequential Iterative Algorithms Can Be Parallel and (Nearly)
//! Work-efficient*: a recipe for parallelizing sequential iterative
//! algorithms by assigning each object a **rank** — the size of its
//! maximum feasible set, equivalently its depth in the dependence graph
//! (Theorem 3.4) — and processing all objects of rank `i` together in
//! round `i` (Algorithm 1).
//!
//! Two engine styles achieve work-efficiency on top of round-efficiency:
//!
//! * **Type 1** ([`type1`]): each round's frontier is *extracted* with a
//!   range query in polylogarithmic work (§4) — activity selection,
//!   unlimited knapsack, Dijkstra (relaxed rank), Huffman trees.
//! * **Type 2** ([`type2`]): objects are *woken up* when a chosen pivot
//!   (an object they depend on) finishes; a failed wake-up re-pivots
//!   (§5) — activity selection, LIS, and — with the [`tas_tree`]
//!   structure instead of pivots — greedy MIS, coloring and matching.
//!
//! The [`rank`] module holds the independence-system vocabulary
//! (Definition 3.1) with a checkable specification used by the
//! conformance tests; [`stats`] carries the execution counters the
//! paper's experiments report (rounds, frontier sizes, wake-up
//! attempts, and named per-algorithm counters); [`solver`] is the
//! unified calling convention every algorithm family exposes:
//! [`RunConfig`] in, [`Report`] out, via the [`PhaseAlgorithm`] trait
//! and the [`Solver`] handle.
//!
//! ```
//! use phase_parallel::TasTree;
//!
//! // Fig. 4(b): vertex 14 waits for blocking neighbors \[7, 11, 12, 13\].
//! let t = TasTree::new(4);
//! assert!(!t.mark(0)); // 7 removed — tree not complete
//! assert!(!t.mark(3)); // 13 removed
//! assert!(!t.mark(2)); // 12 removed
//! assert!(t.mark(1));  // 11 removed — last blocker: wake vertex 14
//! ```

#![forbid(unsafe_code)]

pub mod cancel;
pub mod frontier;
pub mod rank;
pub mod reservations;
pub mod scratch;
pub mod solver;
pub mod stats;
pub mod tas_tree;
pub mod type1;
pub mod type2;

pub use cancel::{deadline_tripped, CancelToken, RunOutcome};
pub use frontier::{Frontier, FrontierPolicy};
pub use rank::{IndependenceSystem, RankFn};
pub use reservations::{
    speculative_for, speculative_for_cancellable, ReservationProblem, ReservationTable,
    SpecForStats,
};
pub use scratch::{Scratch, ScratchLease};
pub use solver::{
    BatchReport, PhaseAlgorithm, PivotMode, PreparedSolver, PrioritySource, Report, RunConfig,
    Solver,
};
pub use stats::ExecutionStats;
pub use tas_tree::{TasForest, TasTree};
pub use type1::{run_type1, run_type1_cancellable, Type1Problem};
pub use type2::{run_type2, run_type2_cancellable, Type2Problem, WakeResult};
