//! [`Frontier`]: the adaptive sparse/dense frontier engine for
//! round-based algorithms.
//!
//! Every round loop in the workspace shares one shape: a *frontier* (the
//! objects processed this round) produces *candidates* for the next
//! round, with duplicates — a vertex improved by several neighbors, an
//! edge re-examined from both endpoints. The naive way to deduplicate is
//! a `sort` + `dedup` over the candidate list on every round, which is
//! `O(c log c)` work on the critical path of the inner loop (and was
//! exactly what Δ-stepping's substep loop paid before this engine
//! existed). `Frontier` replaces it with an **epoch-stamped membership
//! array**: inserting `v` atomically swaps `stamp[v]` to the current
//! epoch, and only the first copy of `v` to arrive observes a stale
//! stamp — `O(1)` per candidate, no sorting, no compaction passes.
//! Starting a new frontier is a single epoch increment (`O(1)` reset; a
//! full clear of the stamp array happens only on the ~4-billion-round
//! epoch wraparound).
//!
//! On top of the stamps the engine keeps **two representations** and
//! switches between them per round, the way direction-optimizing BFS
//! engines do:
//!
//! * **sparse** — an explicit vertex list, built by appending every
//!   first-arrival candidate. Cheap when the frontier is a small
//!   fraction of the universe.
//! * **dense** — the stamp array *is* the frontier (membership =
//!   `stamp[v] == epoch`); no list is materialized at all. Cheap when
//!   the frontier is a large fraction of the universe: consumers scan
//!   `0..n` with perfect locality and static work splitting, and the
//!   build skips list construction entirely.
//!
//! The switch heuristic is candidate-count based: a round whose
//! candidate set is at least `n / DENSE_DENOM` goes dense (see
//! [`FrontierPolicy`] to pin either representation, e.g. for
//! differential testing). The engine counts how many rounds ran in each
//! representation so algorithms can export `"dense_substeps"` /
//! `"sparse_substeps"` named counters through
//! [`ExecutionStats`](crate::ExecutionStats).
//!
//! All storage (stamps and both lists) is plain `Vec` capacity that
//! survives inside the engine, and the engine itself recycles through a
//! [`Scratch`] slot ([`Frontier::take`] / [`Frontier::release`]), so a
//! prepared query path performs no steady-state allocations.
//!
//! ```
//! use phase_parallel::Frontier;
//!
//! let mut f = Frontier::new();
//! f.reset(8);
//! f.fill(&[3, 5, 3, 5, 3]); // duplicates collapse, no sort
//! assert_eq!(f.len(), 2);
//! assert!(f.contains(3) && f.contains(5) && !f.contains(0));
//!
//! let mut members = Vec::new();
//! f.drain_into(&mut members);
//! members.sort_unstable();
//! assert_eq!(members, vec![3, 5]);
//! assert!(f.is_empty());
//! ```

use crate::scratch::Scratch;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Candidate sets at least `n / DENSE_DENOM` large are represented
/// densely (under [`FrontierPolicy::Adaptive`]).
pub const DENSE_DENOM: usize = 8;

/// Below this many candidates/members the engine's operations run as
/// tight sequential loops: fork-join (and parallel-iterator plumbing)
/// costs more than the work it would split. Mirrors the grain-size
/// convention of the parlay primitives.
const SEQ_GRAIN: usize = 256;

/// Minimum per-chunk candidate count for the engine's parallel scans
/// (`with_min_len` on every elementwise pass): a stamp swap is a few
/// nanoseconds, so chunks below this would be fork overhead.
const PAR_GRAIN: usize = 4 * SEQ_GRAIN;

/// Representation policy for a [`Frontier`]: adaptive by default, or
/// pinned to one representation (the differential-testing knob carried
/// by [`RunConfig::frontier`](crate::RunConfig::frontier)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FrontierPolicy {
    /// Dense when a round's candidate set is ≥ `n / DENSE_DENOM`,
    /// sparse otherwise.
    #[default]
    Adaptive,
    /// Always keep the explicit vertex list.
    Sparse,
    /// Always operate on the stamp bitmap alone.
    Dense,
}

/// An adaptive sparse/dense frontier over the universe `0..n`. See the
/// [module docs](self) for the representation and reset machinery.
///
/// The mutating round operations ([`Frontier::fill`],
/// [`Frontier::retain`], [`Frontier::insert_from`]) run their candidate
/// scans in parallel internally; the read-side helpers
/// ([`Frontier::for_each`], [`Frontier::collect_filtered_into`], …)
/// take `&self` and are safe to call from the consuming phase of a
/// round.
pub struct Frontier {
    /// Per-object epoch stamp: `stamps[v] == epoch` ⇔ `v` is a member.
    stamps: Vec<AtomicU32>,
    /// Current generation. Always ≥ 1 once `reset` ran, so `0` is a
    /// universally safe "not a member" stamp value.
    epoch: u32,
    /// Universe size for this query (`stamps.len()` may be larger,
    /// retaining capacity from an earlier, bigger query).
    n: usize,
    /// The member list (valid iff `!dense`).
    verts: Vec<u32>,
    /// Ping-pong buffer for in-place `retain`.
    spare: Vec<u32>,
    /// Member count (maintained in both representations).
    len: usize,
    /// Current representation.
    dense: bool,
    policy: FrontierPolicy,
    dense_rounds: u64,
    sparse_rounds: u64,
}

impl Default for Frontier {
    fn default() -> Self {
        Self::new()
    }
}

impl Frontier {
    /// An empty engine over the empty universe; call
    /// [`Frontier::reset`] before use.
    pub fn new() -> Self {
        Self {
            stamps: Vec::new(),
            epoch: 0,
            n: 0,
            verts: Vec::new(),
            spare: Vec::new(),
            len: 0,
            dense: false,
            policy: FrontierPolicy::Adaptive,
            dense_rounds: 0,
            sparse_rounds: 0,
        }
    }

    /// Take a recycled engine out of `scratch` (or a fresh one on a
    /// cold workspace). Pair with [`Frontier::release`]; callers must
    /// still [`Frontier::reset`] it for their universe size.
    pub fn take(scratch: &mut Scratch, name: &'static str) -> Self {
        scratch.take_any::<Frontier>(name).unwrap_or_default()
    }

    /// Park the engine back into `scratch` so the next query reuses its
    /// stamp array and list capacities.
    pub fn release(self, scratch: &mut Scratch, name: &'static str) {
        scratch.put_any(name, self);
    }

    /// Prepare for a new query over the universe `0..n`: the member set
    /// becomes empty (via one epoch increment — `O(1)`, no stamp
    /// clearing) and the per-query representation counters restart.
    /// Stamp storage only grows; capacity from earlier queries is kept.
    pub fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize_with(n, || AtomicU32::new(0));
        }
        self.n = n;
        self.advance_epoch();
        self.verts.clear();
        self.len = 0;
        self.dense = false;
        self.dense_rounds = 0;
        self.sparse_rounds = 0;
    }

    /// Set the representation policy (default
    /// [`FrontierPolicy::Adaptive`]). Takes effect from the next
    /// [`Frontier::fill`]/[`Frontier::retain`].
    pub fn set_policy(&mut self, policy: FrontierPolicy) {
        self.policy = policy;
    }

    /// Universe size of the current query.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the frontier has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff the current representation is the dense bitmap.
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// Membership test: `O(1)` in both representations.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.stamps[v as usize].load(Ordering::Relaxed) == self.epoch
    }

    /// The member list, when the representation is sparse (`None` in
    /// dense mode — scan the universe with [`Frontier::contains`], or
    /// use the shape-agnostic helpers).
    pub fn as_slice(&self) -> Option<&[u32]> {
        (!self.dense).then_some(self.verts.as_slice())
    }

    /// Rounds built densely since the last [`Frontier::reset`].
    pub fn dense_rounds(&self) -> u64 {
        self.dense_rounds
    }

    /// Rounds built sparsely since the last [`Frontier::reset`].
    pub fn sparse_rounds(&self) -> u64 {
        self.sparse_rounds
    }

    /// Insert one member from the driving thread (seeding a traversal).
    /// Returns true iff `v` was not already a member.
    pub fn insert(&mut self, v: u32) -> bool {
        debug_assert!((v as usize) < self.n);
        let fresh = self.stamps[v as usize].swap(self.epoch, Ordering::Relaxed) != self.epoch;
        if fresh {
            if !self.dense {
                self.verts.push(v);
            }
            self.len += 1;
        }
        fresh
    }

    /// Start a new frontier from `candidates`, deduplicating via the
    /// stamps — the replacement for per-round `sort` + `dedup`. The
    /// representation is chosen from `candidates.len()` (a pre-dedup
    /// upper bound on the member count).
    pub fn fill(&mut self, candidates: &[u32]) {
        self.fill_filtered(candidates, |_| true);
    }

    /// [`Frontier::fill`], admitting only candidates that pass `pred`.
    /// `pred` must be pure: duplicated candidates may be tested more
    /// than once, concurrently.
    pub fn fill_filtered(&mut self, candidates: &[u32], pred: impl Fn(u32) -> bool + Sync) {
        self.advance_epoch();
        let epoch = self.epoch;
        let stamps = &self.stamps;
        if self.pick_dense(candidates.len()) {
            self.dense = true;
            self.len = candidates
                .par_iter()
                .with_min_len(PAR_GRAIN)
                .filter(|&&v| pred(v) && stamps[v as usize].swap(epoch, Ordering::Relaxed) != epoch)
                .count();
            self.dense_rounds += 1;
        } else {
            self.dense = false;
            self.verts.clear();
            if candidates.len() <= SEQ_GRAIN {
                self.verts.extend(candidates.iter().copied().filter(|&v| {
                    pred(v) && stamps[v as usize].swap(epoch, Ordering::Relaxed) != epoch
                }));
            } else {
                self.verts.par_extend(
                    candidates
                        .par_iter()
                        .with_min_len(PAR_GRAIN)
                        .copied()
                        .filter(|&v| {
                            pred(v) && stamps[v as usize].swap(epoch, Ordering::Relaxed) != epoch
                        }),
                );
            }
            self.len = self.verts.len();
            self.sparse_rounds += 1;
        }
    }

    /// Start a frontier holding the whole universe `0..upto` (round
    /// loops that begin with every object live).
    pub fn fill_range(&mut self, upto: usize) {
        debug_assert!(upto <= self.n);
        self.advance_epoch();
        let epoch = self.epoch;
        if self.pick_dense(upto) {
            self.dense = true;
            self.stamps[..upto]
                .par_iter()
                .with_min_len(PAR_GRAIN)
                .for_each(|s| s.store(epoch, Ordering::Relaxed));
            self.dense_rounds += 1;
        } else {
            self.dense = false;
            self.verts.clear();
            self.verts
                .par_extend((0..upto as u32).into_par_iter().with_min_len(PAR_GRAIN));
            let stamps = &self.stamps;
            self.verts
                .par_iter()
                .with_min_len(PAR_GRAIN)
                .for_each(|&v| stamps[v as usize].store(epoch, Ordering::Relaxed));
            self.sparse_rounds += 1;
        }
        self.len = upto;
    }

    /// Add `items` to the current frontier, deduplicating against
    /// existing members and among themselves. Keeps the current
    /// representation (the next [`Frontier::fill`]/[`Frontier::retain`]
    /// re-decides).
    pub fn insert_from(&mut self, items: &[u32]) {
        let epoch = self.epoch;
        let stamps = &self.stamps;
        if self.dense {
            self.len += items
                .par_iter()
                .with_min_len(PAR_GRAIN)
                .filter(|&&v| stamps[v as usize].swap(epoch, Ordering::Relaxed) != epoch)
                .count();
        } else if items.len() <= SEQ_GRAIN {
            self.verts.extend(
                items
                    .iter()
                    .copied()
                    .filter(|&v| stamps[v as usize].swap(epoch, Ordering::Relaxed) != epoch),
            );
            self.len = self.verts.len();
        } else {
            self.verts.par_extend(
                items
                    .par_iter()
                    .with_min_len(PAR_GRAIN)
                    .copied()
                    .filter(|&v| stamps[v as usize].swap(epoch, Ordering::Relaxed) != epoch),
            );
            self.len = self.verts.len();
        }
    }

    /// Keep only members passing `pred`, re-deciding the representation
    /// from the survivor count (the dense → sparse downgrade as a round
    /// loop's live set shrinks). Counted as a round in the
    /// representation counters.
    pub fn retain(&mut self, pred: impl Fn(u32) -> bool + Sync) {
        if self.dense {
            let epoch = self.epoch;
            self.len = self.stamps[..self.n]
                .par_iter()
                .with_min_len(PAR_GRAIN)
                .enumerate()
                .filter(|(v, s)| {
                    if s.load(Ordering::Relaxed) != epoch {
                        return false;
                    }
                    if pred(*v as u32) {
                        true
                    } else {
                        // 0 can never equal a live epoch (epochs are ≥ 1
                        // and the wraparound zeroes every stamp).
                        s.store(0, Ordering::Relaxed);
                        false
                    }
                })
                .count();
            if !self.pick_dense(self.len) {
                // Downgrade: materialize the (now small) member list.
                let stamps = &self.stamps;
                self.verts.clear();
                self.verts.par_extend(
                    (0..self.n as u32)
                        .into_par_iter()
                        .with_min_len(PAR_GRAIN)
                        .filter(|&v| stamps[v as usize].load(Ordering::Relaxed) == epoch),
                );
                self.dense = false;
                self.sparse_rounds += 1;
            } else {
                self.dense_rounds += 1;
            }
        } else {
            // Survivors are re-marked under a fresh epoch so that
            // non-survivors genuinely leave the membership set.
            std::mem::swap(&mut self.verts, &mut self.spare);
            self.advance_epoch();
            let epoch = self.epoch;
            let stamps = &self.stamps;
            self.verts.clear();
            if self.spare.len() <= SEQ_GRAIN {
                self.verts.extend(self.spare.iter().copied().filter(|&v| {
                    pred(v) && stamps[v as usize].swap(epoch, Ordering::Relaxed) != epoch
                }));
            } else {
                self.verts.par_extend(
                    self.spare
                        .par_iter()
                        .with_min_len(PAR_GRAIN)
                        .copied()
                        .filter(|&v| {
                            pred(v) && stamps[v as usize].swap(epoch, Ordering::Relaxed) != epoch
                        }),
                );
            }
            self.len = self.verts.len();
            if self.pick_dense(self.len) {
                // Upgrade is free: every member already carries the
                // current epoch stamp.
                self.dense = true;
                self.dense_rounds += 1;
            } else {
                self.sparse_rounds += 1;
            }
        }
    }

    /// Fused extract + retain: append every member passing `pred` to
    /// `out` (in the same order [`Frontier::collect_filtered_into`]
    /// would produce) and remove it from the frontier; members failing
    /// `pred` stay. Semantically identical to
    /// `collect_filtered_into(out, &pred)` followed by
    /// `retain(|v| !pred(v))`, but in **one scan with one predicate
    /// evaluation per member** — the hot-path fusion for round loops
    /// that split a frontier into "process now" and "keep waiting"
    /// (Crauser/ρ-stepping threshold extraction, matching/MIS ready-set
    /// selection). Counted as one round in the representation counters.
    pub fn extract_retain(&mut self, out: &mut Vec<u32>, pred: impl Fn(u32) -> bool + Sync) {
        let before = out.len();
        if self.dense {
            let epoch = self.epoch;
            let stamps = &self.stamps;
            // One pass over the universe: extracted members leave the
            // bitmap (stamp cleared) as they are appended, so the
            // survivor set is exactly what remains stamped.
            out.par_extend(
                (0..self.n as u32)
                    .into_par_iter()
                    .with_min_len(PAR_GRAIN)
                    .filter(|&v| {
                        let s = &stamps[v as usize];
                        if s.load(Ordering::Relaxed) != epoch {
                            return false;
                        }
                        if pred(v) {
                            // 0 can never equal a live epoch (epochs are
                            // ≥ 1 and the wraparound zeroes every stamp).
                            s.store(0, Ordering::Relaxed);
                            true
                        } else {
                            false
                        }
                    }),
            );
            self.len -= out.len() - before;
            if !self.pick_dense(self.len) {
                // Downgrade: materialize the (now small) survivor list.
                let stamps = &self.stamps;
                self.verts.clear();
                self.verts.par_extend(
                    (0..self.n as u32)
                        .into_par_iter()
                        .with_min_len(PAR_GRAIN)
                        .filter(|&v| stamps[v as usize].load(Ordering::Relaxed) == epoch),
                );
                self.dense = false;
                self.sparse_rounds += 1;
            } else {
                self.dense_rounds += 1;
            }
        } else {
            // Survivors are re-marked under a fresh epoch (as in
            // `retain`) so extracted members genuinely leave the set.
            std::mem::swap(&mut self.verts, &mut self.spare);
            self.advance_epoch();
            let epoch = self.epoch;
            let stamps = &self.stamps;
            self.verts.clear();
            if self.spare.len() <= SEQ_GRAIN {
                for &v in &self.spare {
                    if pred(v) {
                        out.push(v);
                    } else if stamps[v as usize].swap(epoch, Ordering::Relaxed) != epoch {
                        self.verts.push(v);
                    }
                }
            } else {
                // Parallel partition: per-chunk (extracted, kept) pairs
                // come back in chunk order, so both output orders match
                // the sequential path's.
                let parts: Vec<(Vec<u32>, Vec<u32>)> = self
                    .spare
                    .par_iter()
                    .with_min_len(PAR_GRAIN)
                    .copied()
                    .fold(
                        || (Vec::new(), Vec::new()),
                        |(mut take, mut keep), v| {
                            if pred(v) {
                                take.push(v);
                            } else if stamps[v as usize].swap(epoch, Ordering::Relaxed) != epoch {
                                keep.push(v);
                            }
                            (take, keep)
                        },
                    )
                    .collect();
                for (take, keep) in parts {
                    out.extend_from_slice(&take);
                    self.verts.extend_from_slice(&keep);
                }
            }
            self.len = self.verts.len();
            if self.pick_dense(self.len) {
                // Upgrade is free: every survivor already carries the
                // current epoch stamp.
                self.dense = true;
                self.dense_rounds += 1;
            } else {
                self.sparse_rounds += 1;
            }
        }
    }

    /// Empty the frontier (`O(1)`: one epoch increment).
    pub fn clear_members(&mut self) {
        self.advance_epoch();
        self.verts.clear();
        self.len = 0;
        self.dense = false;
    }

    /// Apply `f` to every member, in parallel (sequentially below the
    /// grain size).
    pub fn for_each(&self, f: impl Fn(u32) + Sync) {
        match self.as_slice() {
            Some(members) if members.len() <= SEQ_GRAIN => members.iter().for_each(|&v| f(v)),
            Some(members) => members
                .par_iter()
                .with_min_len(PAR_GRAIN)
                .for_each(|&v| f(v)),
            None => (0..self.n as u32)
                .into_par_iter()
                .with_min_len(PAR_GRAIN)
                .filter(|&v| self.contains(v))
                .for_each(&f),
        }
    }

    /// Sum `f` over all members.
    pub fn sum_map(&self, f: impl Fn(u32) -> u64 + Sync) -> u64 {
        match self.as_slice() {
            Some(members) if members.len() <= SEQ_GRAIN => members.iter().map(|&v| f(v)).sum(),
            Some(members) => members
                .par_iter()
                .with_min_len(PAR_GRAIN)
                .map(|&v| f(v))
                .sum(),
            None => (0..self.n as u32)
                .into_par_iter()
                .with_min_len(PAR_GRAIN)
                .filter(|&v| self.contains(v))
                .map(&f)
                .sum(),
        }
    }

    /// Minimum of `f` over all members (`None` when empty).
    pub fn min_map(&self, f: impl Fn(u32) -> u64 + Sync) -> Option<u64> {
        match self.as_slice() {
            Some(members) if members.len() <= SEQ_GRAIN => members.iter().map(|&v| f(v)).min(),
            Some(members) => members
                .par_iter()
                .with_min_len(PAR_GRAIN)
                .map(|&v| f(v))
                .min(),
            None => (0..self.n as u32)
                .into_par_iter()
                .with_min_len(PAR_GRAIN)
                .filter(|&v| self.contains(v))
                .map(&f)
                .min(),
        }
    }

    /// Append `f(v)` for every member to `out` (e.g. the distance
    /// values a selection threshold is computed from).
    pub fn map_into<T: Send>(&self, out: &mut Vec<T>, f: impl Fn(u32) -> T + Sync) {
        match self.as_slice() {
            Some(members) if members.len() <= SEQ_GRAIN => {
                out.extend(members.iter().map(|&v| f(v)))
            }
            Some(members) => {
                out.par_extend(members.par_iter().with_min_len(PAR_GRAIN).map(|&v| f(v)))
            }
            None => out.par_extend(
                (0..self.n as u32)
                    .into_par_iter()
                    .with_min_len(PAR_GRAIN)
                    .filter(|&v| self.contains(v))
                    .map(&f),
            ),
        }
    }

    /// Append every member to `out` (dense members arrive in id order,
    /// sparse members in insertion order).
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        self.collect_filtered_into(out, |_| true);
    }

    /// Append the members passing `pred` to `out`.
    pub fn collect_filtered_into(&self, out: &mut Vec<u32>, pred: impl Fn(u32) -> bool + Sync) {
        match self.as_slice() {
            Some(members) if members.len() <= SEQ_GRAIN => {
                out.extend(members.iter().copied().filter(|&v| pred(v)))
            }
            Some(members) => out.par_extend(
                members
                    .par_iter()
                    .with_min_len(PAR_GRAIN)
                    .copied()
                    .filter(|&v| pred(v)),
            ),
            None => out.par_extend(
                (0..self.n as u32)
                    .into_par_iter()
                    .with_min_len(PAR_GRAIN)
                    .filter(|&v| self.contains(v) && pred(v)),
            ),
        }
    }

    /// Move every member into `out` and empty the frontier.
    pub fn drain_into(&mut self, out: &mut Vec<u32>) {
        self.collect_into(out);
        self.clear_members();
    }

    /// Pin the epoch counter (wraparound testing only).
    #[doc(hidden)]
    pub fn force_epoch_for_tests(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    fn pick_dense(&self, candidate_count: usize) -> bool {
        match self.policy {
            FrontierPolicy::Sparse => false,
            FrontierPolicy::Dense => true,
            FrontierPolicy::Adaptive => {
                self.n > 0 && candidate_count.saturating_mul(DENSE_DENOM) >= self.n
            }
        }
    }

    /// Bump the generation; on wraparound, zero every stamp so that no
    /// stale stamp can collide with a future epoch.
    fn advance_epoch(&mut self) {
        if self.epoch == u32::MAX {
            self.stamps
                .par_iter()
                .with_min_len(PAR_GRAIN)
                .for_each(|s| s.store(0, Ordering::Relaxed));
            self.epoch = 0;
        }
        self.epoch += 1;
    }
}

impl std::fmt::Debug for Frontier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frontier")
            .field("n", &self.n)
            .field("len", &self.len)
            .field("dense", &self.dense)
            .field("epoch", &self.epoch)
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_without_sort() {
        let mut f = Frontier::new();
        f.reset(100);
        f.fill(&[7, 3, 7, 7, 3, 9]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.as_slice(), Some(&[7, 3, 9][..]));
    }

    #[test]
    fn adaptive_switches_on_candidate_count() {
        let mut f = Frontier::new();
        f.reset(64);
        f.fill(&[1, 2, 3]); // 3 * 8 < 64 → sparse
        assert!(!f.is_dense());
        let big: Vec<u32> = (0..32).collect();
        f.fill(&big); // 32 * 8 ≥ 64 → dense
        assert!(f.is_dense());
        assert_eq!(f.len(), 32);
        assert_eq!(f.sparse_rounds(), 1);
        assert_eq!(f.dense_rounds(), 1);
    }

    #[test]
    fn policy_pins_representation() {
        let mut f = Frontier::new();
        f.reset(16);
        f.set_policy(FrontierPolicy::Dense);
        f.fill(&[1]);
        assert!(f.is_dense());
        assert!(f.contains(1) && !f.contains(2));
        f.set_policy(FrontierPolicy::Sparse);
        let all: Vec<u32> = (0..16).collect();
        f.fill(&all);
        assert!(!f.is_dense());
        assert_eq!(f.len(), 16);
    }

    #[test]
    fn retain_downgrades_and_upgrades() {
        let mut f = Frontier::new();
        f.reset(64);
        let all: Vec<u32> = (0..64).collect();
        f.fill(&all);
        assert!(f.is_dense());
        f.retain(|v| v < 4);
        assert!(!f.is_dense(), "4 * 8 < 64 must downgrade to sparse");
        assert_eq!(f.len(), 4);
        assert!((0..4).all(|v| f.contains(v)));
        assert!(!f.contains(4));
    }

    #[test]
    fn extract_retain_matches_collect_plus_retain() {
        // Both representations, several split points: the fused scan
        // must produce the exact batch collect_filtered_into would and
        // leave the exact survivors retain would.
        for n in [16usize, 64, 4096] {
            for modulus in [2u32, 3, 7] {
                let members: Vec<u32> = (0..n as u32).filter(|v| v % 5 != 0).collect();
                let pred = |v: u32| v.is_multiple_of(modulus);

                let mut reference = Frontier::new();
                reference.reset(n);
                reference.fill(&members);
                let mut want_batch = Vec::new();
                reference.collect_filtered_into(&mut want_batch, pred);
                reference.retain(|v| !pred(v));

                let mut fused = Frontier::new();
                fused.reset(n);
                fused.fill(&members);
                let mut got_batch = Vec::new();
                fused.extract_retain(&mut got_batch, pred);

                assert_eq!(got_batch, want_batch, "n={n} modulus={modulus}");
                assert_eq!(fused.len(), reference.len(), "n={n} modulus={modulus}");
                let mut got_rest = Vec::new();
                fused.collect_into(&mut got_rest);
                let mut want_rest = Vec::new();
                reference.collect_into(&mut want_rest);
                got_rest.sort_unstable();
                want_rest.sort_unstable();
                assert_eq!(got_rest, want_rest, "n={n} modulus={modulus}");
            }
        }
    }

    #[test]
    fn extract_retain_downgrades_like_retain() {
        let mut f = Frontier::new();
        f.reset(64);
        let all: Vec<u32> = (0..64).collect();
        f.fill(&all);
        assert!(f.is_dense());
        let mut batch = Vec::new();
        f.extract_retain(&mut batch, |v| v >= 4);
        assert_eq!(batch.len(), 60);
        assert!(!f.is_dense(), "4 * 8 < 64 must downgrade to sparse");
        assert_eq!(f.len(), 4);
        assert!((0..4).all(|v| f.contains(v)));
        assert!(!f.contains(4));
        // And the extracted members are genuinely gone: re-inserting
        // one must grow the set again.
        f.insert(63);
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn extract_retain_sparse_appends_in_insertion_order() {
        let mut f = Frontier::new();
        f.reset(1024);
        f.fill(&[9, 2, 30, 4, 17]);
        assert!(!f.is_dense());
        let mut batch = vec![99]; // appends, never clobbers
        f.extract_retain(&mut batch, |v| v % 2 == 0);
        assert_eq!(batch, vec![99, 2, 30, 4]);
        assert_eq!(f.len(), 2);
        assert!(f.contains(9) && f.contains(17));
    }

    #[test]
    fn insert_from_dedups_against_members() {
        let mut f = Frontier::new();
        f.reset(32);
        f.fill(&[1, 2]);
        f.insert_from(&[2, 3, 3, 1]);
        assert_eq!(f.len(), 3);
        let mut out = Vec::new();
        f.collect_into(&mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn reset_is_constant_time_epoch_bump() {
        let mut f = Frontier::new();
        f.reset(16);
        f.fill(&[5, 6]);
        f.reset(16);
        assert!(f.is_empty());
        assert!(!f.contains(5) && !f.contains(6));
    }

    #[test]
    fn epoch_wraparound_clears_stale_stamps() {
        let mut f = Frontier::new();
        f.reset(8);
        f.fill(&[3]);
        f.force_epoch_for_tests(u32::MAX);
        // Members stamped at u32::MAX would alias any stale stamp left
        // at that value; the wrap zeroes the array first.
        f.fill(&[1]);
        assert!(f.contains(1));
        assert!(!f.contains(3));
        f.fill(&[2]);
        assert!(f.contains(2) && !f.contains(1));
    }
}
