//! [`Scratch`]: a reusable per-query workspace for prepared solves.
//!
//! The prepare/query split amortizes *instance construction* across
//! queries; `Scratch` amortizes the *per-query buffers* — distance
//! arrays, frontier vectors, bucket queues, wake-up pools — that a
//! one-shot solve would allocate and free on every call. A query takes
//! the buffers it needs out of the workspace by name, uses them, and
//! puts them back; the next query on the same workspace finds them
//! already sized (capacity is retained, contents are cleared), so
//! steady-state query paths perform no heap growth at all.
//!
//! The workspace is untyped storage with typed accessors: a slot is
//! keyed by `(name, type)`, so the same name can even be reused at
//! different types without collision (though algorithms should not rely
//! on that). Taking a slot that was never put — or that a concurrent
//! family left at another type — simply yields an empty buffer, which
//! makes every algorithm correct on a fresh workspace by construction.
//!
//! ```
//! use phase_parallel::Scratch;
//!
//! let mut scratch = Scratch::new();
//! let mut dist = scratch.take_vec::<u64>("dist");
//! dist.resize(1024, u64::MAX);
//! scratch.put_vec("dist", dist);
//!
//! // The next take gets the same 1024-capacity buffer back, cleared.
//! let dist = scratch.take_vec::<u64>("dist");
//! assert!(dist.is_empty());
//! assert!(dist.capacity() >= 1024);
//! assert_eq!(scratch.reuses(), 1);
//! ```

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// A pool of named, typed buffers reused across prepared queries. See
/// the [module docs](self) for the take/put protocol.
///
/// `Scratch` is `Send` but deliberately not shared: batched solvers
/// hand one workspace to each worker (e.g. via `map_init`) rather than
/// synchronizing on a single one.
#[derive(Default)]
pub struct Scratch {
    slots: HashMap<(&'static str, TypeId), Box<dyn Any + Send>>,
    takes: u64,
    reuses: u64,
    puts: u64,
}

impl Scratch {
    /// An empty workspace. Every `take_*` on it returns an empty
    /// buffer; capacity accumulates as queries put buffers back.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the named `Vec<T>` buffer out of the workspace: cleared,
    /// with whatever capacity its last user left behind (empty if the
    /// slot was never filled). Pair with [`Scratch::put_vec`].
    pub fn take_vec<T: Send + 'static>(&mut self, name: &'static str) -> Vec<T> {
        self.takes += 1;
        match self.remove::<Vec<T>>(name) {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Return a buffer taken with [`Scratch::take_vec`] so the next
    /// query can reuse its capacity.
    pub fn put_vec<T: Send + 'static>(&mut self, name: &'static str, v: Vec<T>) {
        self.insert(name, v);
    }

    /// Take a named two-level buffer (e.g. a bucket queue). The outer
    /// spine keeps its length and every inner vector is cleared in
    /// place, so *inner* capacities survive too — `Vec::clear` on the
    /// outer vector would drop them. Pair with [`Scratch::put_nested`].
    pub fn take_nested<T: Send + 'static>(&mut self, name: &'static str) -> Vec<Vec<T>> {
        self.takes += 1;
        match self.remove::<Vec<Vec<T>>>(name) {
            Some(mut v) => {
                self.reuses += 1;
                for inner in &mut v {
                    inner.clear();
                }
                v
            }
            None => Vec::new(),
        }
    }

    /// Return a buffer taken with [`Scratch::take_nested`].
    pub fn put_nested<T: Send + 'static>(&mut self, name: &'static str, v: Vec<Vec<T>>) {
        self.insert(name, v);
    }

    /// Take an arbitrary value (a heap, a tree, a struct of buffers)
    /// out of the workspace. Unlike the `Vec` accessors this performs
    /// no clearing — the caller decides whether the previous state is
    /// reusable. Returns `None` on a fresh slot.
    pub fn take_any<T: Send + 'static>(&mut self, name: &'static str) -> Option<T> {
        self.takes += 1;
        let v = self.remove::<T>(name);
        if v.is_some() {
            self.reuses += 1;
        }
        v
    }

    /// Store an arbitrary value for a later [`Scratch::take_any`].
    pub fn put_any<T: Send + 'static>(&mut self, name: &'static str, v: T) {
        self.insert(name, v);
    }

    /// Number of `take_*` calls served from a previously put buffer —
    /// the reuse the workspace exists to provide. Tests use this to
    /// assert that hot paths actually recycle their buffers.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Total number of `take_*` calls.
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// Total number of `put_*` calls. A query that upholds the take/put
    /// protocol performs exactly as many puts as takes; the difference
    /// (`takes() - puts()`) is the number of buffers currently checked
    /// out — see [`Scratch::lease`].
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// Start a balance-checked scope: the returned [`ScratchLease`]
    /// derefs to this workspace, and on drop (in debug builds, outside
    /// unwinding) asserts that the scope performed matching `take_*` /
    /// `put_*` calls. A take with no matching put silently strands the
    /// buffer — capacity is rebuilt on every later query and memory
    /// grows monotonically — so the serve path wraps each query in a
    /// lease and the imbalance fails tests instead of shipping.
    pub fn lease(&mut self) -> ScratchLease<'_> {
        let (takes, puts) = (self.takes, self.puts);
        ScratchLease {
            scratch: self,
            takes_at_entry: takes,
            puts_at_entry: puts,
        }
    }

    /// Number of currently parked buffers.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff no buffers are parked.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Drop every parked buffer, releasing their memory. Counters are
    /// kept (they describe history, not contents).
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    fn remove<T: 'static>(&mut self, name: &'static str) -> Option<T> {
        self.slots
            .remove(&(name, TypeId::of::<T>()))
            .map(|b| *b.downcast::<T>().expect("slot keyed by TypeId"))
    }

    fn insert<T: Send + 'static>(&mut self, name: &'static str, v: T) {
        self.puts += 1;
        self.slots.insert((name, TypeId::of::<T>()), Box::new(v));
    }
}

/// A balance-checked borrow of a [`Scratch`], created by
/// [`Scratch::lease`]. Derefs to the workspace; on drop it
/// `debug_assert!`s that the scope's `take_*` and `put_*` counts match.
/// The check is skipped while unwinding — a panicking query legitimately
/// leaves buffers checked out, and the *driver* handles that case by
/// quarantining the whole workspace rather than trusting its state.
pub struct ScratchLease<'a> {
    scratch: &'a mut Scratch,
    takes_at_entry: u64,
    puts_at_entry: u64,
}

impl std::ops::Deref for ScratchLease<'_> {
    type Target = Scratch;
    fn deref(&self) -> &Scratch {
        self.scratch
    }
}

impl std::ops::DerefMut for ScratchLease<'_> {
    fn deref_mut(&mut self) -> &mut Scratch {
        self.scratch
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            return;
        }
        let taken = self.scratch.takes - self.takes_at_entry;
        let put = self.scratch.puts - self.puts_at_entry;
        debug_assert_eq!(
            taken, put,
            "scratch take/put imbalance: {taken} takes vs {put} puts in this \
             scope — a taken buffer was never returned (early return?), so its \
             capacity is stranded and will be re-allocated on every later query"
        );
    }
}

impl std::fmt::Debug for Scratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scratch")
            .field("slots", &self.slots.len())
            .field("takes", &self.takes)
            .field("reuses", &self.reuses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_keeps_capacity() {
        let mut s = Scratch::new();
        let mut v = s.take_vec::<u32>("buf");
        assert!(v.is_empty());
        v.extend(0..100);
        let cap = v.capacity();
        s.put_vec("buf", v);
        let v = s.take_vec::<u32>("buf");
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap);
        assert_eq!(s.reuses(), 1);
        assert_eq!(s.takes(), 2);
    }

    #[test]
    fn nested_keeps_inner_capacity() {
        let mut s = Scratch::new();
        let mut b = s.take_nested::<u32>("buckets");
        b.push(Vec::with_capacity(64));
        b.push(Vec::with_capacity(8));
        b[0].extend(0..50);
        let caps: Vec<usize> = b.iter().map(Vec::capacity).collect();
        s.put_nested("buckets", b);
        let b = s.take_nested::<u32>("buckets");
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(Vec::is_empty));
        let caps2: Vec<usize> = b.iter().map(Vec::capacity).collect();
        assert_eq!(caps, caps2);
    }

    #[test]
    fn types_do_not_collide() {
        let mut s = Scratch::new();
        let mut a = s.take_vec::<u32>("x");
        a.push(1);
        s.put_vec("x", a);
        // Same name, different type: fresh buffer, no panic.
        let b = s.take_vec::<u64>("x");
        assert!(b.is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn any_slot_roundtrip() {
        let mut s = Scratch::new();
        assert!(s.take_any::<String>("heap").is_none());
        s.put_any("heap", String::from("state"));
        assert_eq!(s.take_any::<String>("heap").as_deref(), Some("state"));
        assert!(s.take_any::<String>("heap").is_none());
    }

    #[test]
    fn puts_counted_and_balanced_lease_passes() {
        let mut s = Scratch::new();
        {
            let mut lease = s.lease();
            let v = lease.take_vec::<u32>("buf");
            lease.put_vec("buf", v);
        } // drop: balanced, no assert
        assert_eq!(s.takes(), 1);
        assert_eq!(s.puts(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scratch take/put imbalance")]
    fn unbalanced_lease_asserts_in_debug() {
        let mut s = Scratch::new();
        let mut lease = s.lease();
        let _leaked = lease.take_vec::<u32>("buf"); // no matching put
        drop(lease);
    }

    #[test]
    fn lease_skips_assert_while_unwinding() {
        // A panic *through* a lease must not double-panic (abort): the
        // drop check detects unwinding and stands down.
        let result = std::panic::catch_unwind(|| {
            let mut s = Scratch::new();
            let mut lease = s.lease();
            let _taken = lease.take_vec::<u32>("buf");
            panic!("query died mid-flight");
        });
        assert!(result.is_err());
    }

    #[test]
    fn clear_releases() {
        let mut s = Scratch::new();
        s.put_vec("a", vec![1u8]);
        s.put_vec("b", vec![1u16]);
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
    }
}
