//! The scenario catalog: the default-knob spec for every family, the
//! lists sweeps iterate, and the key listing error messages point at.

use crate::spec::{Family, ScenarioKind, ScenarioSpec};

/// Every family key, in catalog order (for error messages and CLIs).
pub fn families() -> Vec<&'static str> {
    Family::ALL.into_iter().map(Family::key).collect()
}

/// One default-knob spec per family, in catalog order.
pub fn all_scenarios() -> Vec<ScenarioSpec> {
    Family::ALL.into_iter().map(ScenarioSpec::new).collect()
}

/// The graph families with default knobs — what a graph-consuming
/// registry entry sweeps in the conformance matrix.
pub fn graph_scenarios() -> Vec<ScenarioSpec> {
    scenarios_of_kind(ScenarioKind::Graph)
}

/// The sequence families with default knobs — what a sequence-consuming
/// registry entry sweeps in the conformance matrix.
pub fn seq_scenarios() -> Vec<ScenarioSpec> {
    scenarios_of_kind(ScenarioKind::Seq)
}

/// Default-knob specs of one kind.
pub fn scenarios_of_kind(kind: ScenarioKind) -> Vec<ScenarioSpec> {
    all_scenarios()
        .into_iter()
        .filter(|s| s.kind() == kind)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_partitioned_and_unique() {
        let all = all_scenarios();
        assert_eq!(all.len(), graph_scenarios().len() + seq_scenarios().len());
        // Enough families for the conformance matrix's ≥3-per-entry bar.
        assert!(graph_scenarios().len() >= 4);
        assert!(seq_scenarios().len() >= 4);
        let mut keys: Vec<String> = all.iter().map(ScenarioSpec::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), all.len(), "scenario keys must be unique");
        assert_eq!(families().len(), all.len());
    }
}
