//! Deterministic Zipf-skewed query traces for the serving tier.
//!
//! A service in front of the prepared-instance cache does not see
//! uniform traffic: real users hit hub vertices, and real tenant mixes
//! hit a few hot scenarios plus a long tail. [`QueryTrace::generate`]
//! materializes that shape deterministically from a seed, with **two
//! independent Zipf axes**:
//!
//! * **scenario keys** — each query names one of the trace's scenario
//!   specs, rank-0 hottest. This is what exercises the instance cache:
//!   a skewed tenant mix keeps the hot instances resident while the
//!   tail churns through the LRU budget.
//! * **source vertices** — each query carries a Zipf *source rank*;
//!   [`TraceQuery::source_in`] maps a rank onto a concrete vertex
//!   universe so the same rank always lands on the same vertex (hubs
//!   stay hubs across the whole trace), without the generator needing
//!   to know any instance's size up front.
//!
//! The trace is a pure function of `(scenarios, config)` — two
//! generations are element-wise identical, which is what lets the
//! serving conformance suite replay a trace against both the cached and
//! the freshly-prepared path and compare digests.

use crate::spec::ScenarioSpec;
use pp_parlay::rng::{hash64, unit_f64};

/// Salt for the rank → vertex mapping: fixed, so one rank names one
/// vertex for the lifetime of an instance size.
const SOURCE_SALT: u64 = 0x5085_11ab;

/// Shape knobs for [`QueryTrace::generate`]. The defaults give the
/// heavy-head mix the serving bench measures: skew 2 over both axes,
/// 1024 distinct source ranks.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Number of queries in the trace.
    pub queries: usize,
    /// Zipf exponent over scenario ranks (≥ 1; larger = hotter head).
    pub scenario_skew: u32,
    /// Zipf exponent over source ranks (≥ 1).
    pub source_skew: u32,
    /// Distinct source ranks (the "user population"); ranks map onto a
    /// concrete vertex set via [`TraceQuery::source_in`].
    pub source_ranks: usize,
    /// Generation seed: same seed, same trace.
    pub seed: u64,
}

impl TraceConfig {
    pub fn new(queries: usize, seed: u64) -> Self {
        Self {
            queries,
            scenario_skew: 2,
            source_skew: 2,
            source_ranks: 1024,
            seed,
        }
    }

    pub fn with_scenario_skew(mut self, skew: u32) -> Self {
        self.scenario_skew = skew.max(1);
        self
    }

    pub fn with_source_skew(mut self, skew: u32) -> Self {
        self.source_skew = skew.max(1);
        self
    }

    pub fn with_source_ranks(mut self, ranks: usize) -> Self {
        self.source_ranks = ranks.max(1);
        self
    }
}

/// Inverse-CDF sampler for the Zipf distribution over ranks `0..k`
/// (`P(rank) ∝ 1/(rank+1)^skew`): a precomputed cumulative table and a
/// binary search per draw. Deterministic — draws come from caller
/// hashes, not an RNG stream.
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Table for `k` ranks at the given exponent. `k` must be ≥ 1.
    pub fn new(k: usize, skew: u32) -> Self {
        assert!(k >= 1, "Zipf sampler needs at least one rank");
        let mut cumulative = Vec::with_capacity(k);
        let mut total = 0.0f64;
        for rank in 0..k {
            total += 1.0 / ((rank + 1) as f64).powi(skew as i32);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    /// Map one 64-bit draw to a rank in `0..k`.
    pub fn sample(&self, draw: u64) -> usize {
        let total = *self.cumulative.last().expect("non-empty table");
        let x = unit_f64(draw) * total;
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }
}

/// One query of a [`QueryTrace`]: which scenario it hits, which source
/// rank it carries, and a per-query run seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceQuery {
    /// Index into [`QueryTrace::scenarios`].
    pub scenario: usize,
    /// Zipf source rank (0 = hottest).
    pub source_rank: u64,
    /// Per-query seed for the run configuration.
    pub seed: u64,
}

impl TraceQuery {
    /// The concrete source vertex for a universe of `n` vertices:
    /// deterministic in `(source_rank, n)` alone, so the same rank
    /// always hits the same vertex of the same instance.
    pub fn source_in(&self, n: usize) -> u32 {
        (hash64(SOURCE_SALT, self.source_rank) % n.max(1) as u64) as u32
    }
}

/// A deterministic serving trace: the scenario set plus the query
/// stream hitting it.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// The tenant set, in rank order (index 0 is the Zipf-hottest).
    pub scenarios: Vec<ScenarioSpec>,
    /// The query stream, in arrival order.
    pub queries: Vec<TraceQuery>,
}

impl QueryTrace {
    /// Generate the trace: `config.queries` draws, scenario and source
    /// rank sampled independently from their Zipf axes. Pure in
    /// `(scenarios, config)`.
    pub fn generate(scenarios: &[ScenarioSpec], config: &TraceConfig) -> Self {
        assert!(!scenarios.is_empty(), "a trace needs at least one scenario");
        let scenario_zipf = ZipfSampler::new(scenarios.len(), config.scenario_skew);
        let source_zipf = ZipfSampler::new(config.source_ranks, config.source_skew);
        let queries = (0..config.queries as u64)
            .map(|i| TraceQuery {
                scenario: scenario_zipf.sample(hash64(config.seed ^ 0xa11ce, i)),
                source_rank: source_zipf.sample(hash64(config.seed ^ 0xb0b, i)) as u64,
                seed: hash64(config.seed ^ 0xcafe, i),
            })
            .collect();
        Self {
            scenarios: scenarios.to_vec(),
            queries,
        }
    }

    pub fn len(&self) -> usize {
        self.queries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// How many distinct scenarios the stream actually touches — the
    /// trace's compulsory-miss count when every instance fits the
    /// cache budget.
    pub fn distinct_scenarios(&self) -> usize {
        let mut seen = vec![false; self.scenarios.len()];
        for q in &self.queries {
            seen[q.scenario] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Family;

    fn tenant_set() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::parse("graph/rmat+w/uniform").unwrap(),
            ScenarioSpec::parse("graph/grid2d+w/unit").unwrap(),
            ScenarioSpec::parse("graph/star-hub+w/uniform").unwrap(),
            ScenarioSpec::new(Family::GraphGeometric),
        ]
    }

    #[test]
    fn traces_are_deterministic() {
        let scenarios = tenant_set();
        let config = TraceConfig::new(200, 7);
        let a = QueryTrace::generate(&scenarios, &config);
        let b = QueryTrace::generate(&scenarios, &config);
        assert_eq!(a.queries, b.queries);
        let c = QueryTrace::generate(&scenarios, &TraceConfig::new(200, 8));
        assert_ne!(a.queries, c.queries, "seed must matter");
    }

    #[test]
    fn scenario_axis_is_head_heavy() {
        let scenarios = tenant_set();
        let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(1000, 3));
        let mut counts = vec![0usize; scenarios.len()];
        for q in &trace.queries {
            counts[q.scenario] += 1;
        }
        // Rank 0 carries ∝ 1 of the mass, rank 3 ∝ 1/16 (skew 2):
        // the head must clearly dominate the tail.
        assert!(
            counts[0] > 3 * counts[3],
            "expected Zipf head dominance, got {counts:?}"
        );
        assert_eq!(counts.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn source_axis_repeats_hot_vertices() {
        let scenarios = tenant_set();
        let trace = QueryTrace::generate(&scenarios, &TraceConfig::new(500, 11));
        let n = 300;
        let mut hits = std::collections::HashMap::new();
        for q in &trace.queries {
            *hits.entry(q.source_in(n)).or_insert(0usize) += 1;
        }
        let hottest = hits.values().copied().max().unwrap();
        assert!(
            hottest >= 25,
            "a Zipf source axis must concentrate on hubs (hottest vertex saw {hottest}/500)"
        );
        // And the mapping is stable: the same rank always lands on the
        // same vertex.
        let q = trace.queries[0];
        assert_eq!(q.source_in(n), q.source_in(n));
    }

    #[test]
    fn zipf_sampler_covers_all_ranks_at_low_skew() {
        let sampler = ZipfSampler::new(8, 1);
        let mut seen = vec![false; 8];
        for i in 0..4000u64 {
            seen[sampler.sample(hash64(3, i))] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
