//! # `pp-workloads` — string-keyed workload scenarios
//!
//! The paper evaluates the phase-parallel framework across qualitatively
//! different inputs — power-law social graphs, meshes and road-like
//! graphs, adversarial dependence chains. This crate turns that input
//! diversity into a first-class, *tested* axis: a [`ScenarioSpec`] names
//! a workload family by string key (`graph/rmat`, `seq/adversarial-chain`,
//! …), carries the family's typed knobs, and deterministically
//! materializes instances from a seed.
//!
//! Two kinds of family ([`ScenarioKind`]):
//!
//! * **`graph/…`** families materialize a [`pp_graph::Graph`]
//!   (optionally weighted via the `w/unit | w/uniform | w/exp`
//!   distributions) — consumed by the SSSP, MIS, coloring and matching
//!   registry entries.
//! * **`seq/…`** families materialize structured *draws* in a caller's
//!   span — consumed by the sequence entries (LIS, activity selection,
//!   Huffman, Whac-A-Mole, dominance chains, …), which map the draws
//!   into their own value space. Structure survives the mapping because
//!   it is monotone.
//!
//! The registry in `pp-algos` threads an `Option<ScenarioSpec>` through
//! its `CaseSpec`, so any entry can be exercised on any applicable
//! scenario; the conformance suite sweeps the full entry × scenario
//! matrix.
//!
//! A scenario can also drive a typed family directly — here, preparing
//! a grid road network once and serving a batch of per-source SSSP
//! queries through `PreparedSolver::solve_batch` (from the
//! `phase-parallel` core crate):
//!
//! ```
//! use phase_parallel::{RunConfig, Solver};
//! use pp_algos::api::{DeltaSssp, SsspInstance};
//! use pp_workloads::ScenarioSpec;
//!
//! let spec = ScenarioSpec::parse("graph/grid2d+w/uniform")?;
//! let road = spec.weighted_graph(100, 7)?; // 10×10 grid, weights in [1, 1000]
//! let n = road.num_vertices() as u32;
//! let instance = SsspInstance::new(road, 0);
//!
//! let solver = Solver::new(DeltaSssp);
//! let prepared = solver.prepare(&instance); // w*, min out-weights: built once
//! let queries: Vec<RunConfig> = (0..4u64)
//!     .map(|i| RunConfig::seeded(i).with_source((i as u32 * 23) % n))
//!     .collect();
//! let batch = prepared.solve_batch(&queries); // scratch recycled across queries
//! assert_eq!(batch.len(), 4);
//! # Ok::<(), pp_workloads::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]

pub mod catalog;
pub mod error;
pub mod spec;
pub mod trace;

pub use catalog::{all_scenarios, families, graph_scenarios, scenarios_of_kind, seq_scenarios};
pub use error::ScenarioError;
pub use spec::{Family, ScenarioKind, ScenarioSpec, WeightDist};
pub use trace::{QueryTrace, TraceConfig, TraceQuery, ZipfSampler};
