//! Scenario-layer errors: every malformed key or family/materializer
//! mismatch surfaces as a typed [`ScenarioError`] instead of a panic.

use crate::spec::ScenarioKind;
use pp_graph::GraphError;

/// Why a scenario key failed to parse or a spec failed to materialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The family segment of a key (`graph/…`, `seq/…`) is not
    /// registered. Carries the offending segment.
    UnknownFamily(String),
    /// The weight-distribution segment (`w/…`) is not registered.
    UnknownWeights(String),
    /// The key has a shape no scenario can have (e.g. three `+` parts,
    /// or a weight distribution on a sequence family).
    MalformedKey(String),
    /// A materializer was called on a family of the wrong kind (e.g.
    /// [`crate::ScenarioSpec::graph`] on a `seq/…` family). Carries the
    /// family key and the kind the caller needed.
    WrongKind {
        /// The family key of the spec that was asked.
        family: &'static str,
        /// The kind the materializer produces.
        needed: ScenarioKind,
    },
    /// A materialized graph failed CSR validation — every graph
    /// materializer re-checks its output through
    /// [`pp_graph::Graph::validate`] before handing it across the
    /// scenario boundary.
    Graph(GraphError),
    /// A materializer knob has a value no scenario can use (e.g. a
    /// zero draw span). Carries the knob name.
    InvalidKnob(&'static str),
}

impl From<GraphError> for ScenarioError {
    fn from(e: GraphError) -> Self {
        ScenarioError::Graph(e)
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::UnknownFamily(k) => {
                write!(
                    f,
                    "unknown scenario family {k:?} (see pp_workloads::families())"
                )
            }
            ScenarioError::UnknownWeights(k) => {
                write!(
                    f,
                    "unknown weight distribution {k:?} (w/unit, w/uniform, w/exp)"
                )
            }
            ScenarioError::MalformedKey(k) => write!(f, "malformed scenario key {k:?}"),
            ScenarioError::WrongKind { family, needed } => write!(
                f,
                "scenario family {family:?} cannot materialize a {needed:?} instance"
            ),
            ScenarioError::Graph(e) => write!(f, "materialized graph failed validation: {e}"),
            ScenarioError::InvalidKnob(knob) => write!(f, "invalid scenario knob: {knob}"),
        }
    }
}

impl std::error::Error for ScenarioError {}
