//! [`ScenarioSpec`]: string-keyed workload families with typed knobs,
//! deterministically materialized from a seed.

use crate::error::ScenarioError;
use pp_graph::{gen, Graph};
use pp_parlay::rng::{bounded, hash64, unit_f64};

/// What a scenario family materializes: a graph instance or a sequence
/// of draws. Registry entries accept scenarios of exactly one kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// `graph/…` families: produce a [`Graph`] (optionally weighted).
    Graph,
    /// `seq/…` families: produce structured draws a sequence-consuming
    /// family maps into its own value space.
    Seq,
}

/// A workload family, keyed by the strings in the table below.
///
/// | Key | Kind | Shape |
/// |---|---|---|
/// | `graph/uniform` | graph | Erdős–Rényi-style, ~`degree · n` edges |
/// | `graph/rmat` | graph | power-law (social-network stand-in) |
/// | `graph/grid2d` | graph | `⌈√n⌉ × ⌈√n⌉` grid (torus with the knob) |
/// | `graph/geometric` | graph | random geometric (mesh-like locality) |
/// | `graph/star-hub` | graph | hub-and-spoke (adversarial degree skew) |
/// | `seq/uniform` | seq | i.i.d. uniform draws |
/// | `seq/sorted` | seq | uniform draws, sorted (long dependence runs) |
/// | `seq/adversarial-chain` | seq | strictly increasing ramp (rank = n) |
/// | `seq/zipf` | seq | power-law-skewed draws (heavy head, long tail) |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    GraphUniform,
    GraphRmat,
    GraphGrid2d,
    GraphGeometric,
    GraphStarHub,
    SeqUniform,
    SeqSorted,
    SeqAdversarialChain,
    SeqZipf,
}

impl Family {
    /// Every family, in catalog order.
    pub const ALL: [Family; 9] = [
        Family::GraphUniform,
        Family::GraphRmat,
        Family::GraphGrid2d,
        Family::GraphGeometric,
        Family::GraphStarHub,
        Family::SeqUniform,
        Family::SeqSorted,
        Family::SeqAdversarialChain,
        Family::SeqZipf,
    ];

    /// The stable string key (`graph/rmat`, `seq/zipf`, …).
    pub fn key(self) -> &'static str {
        match self {
            Family::GraphUniform => "graph/uniform",
            Family::GraphRmat => "graph/rmat",
            Family::GraphGrid2d => "graph/grid2d",
            Family::GraphGeometric => "graph/geometric",
            Family::GraphStarHub => "graph/star-hub",
            Family::SeqUniform => "seq/uniform",
            Family::SeqSorted => "seq/sorted",
            Family::SeqAdversarialChain => "seq/adversarial-chain",
            Family::SeqZipf => "seq/zipf",
        }
    }

    /// Look a family up by its string key.
    pub fn parse(key: &str) -> Result<Family, ScenarioError> {
        Family::ALL
            .into_iter()
            .find(|f| f.key() == key)
            .ok_or_else(|| ScenarioError::UnknownFamily(key.to_string()))
    }

    /// Whether the family materializes a graph or a sequence.
    pub fn kind(self) -> ScenarioKind {
        match self {
            Family::GraphUniform
            | Family::GraphRmat
            | Family::GraphGrid2d
            | Family::GraphGeometric
            | Family::GraphStarHub => ScenarioKind::Graph,
            Family::SeqUniform
            | Family::SeqSorted
            | Family::SeqAdversarialChain
            | Family::SeqZipf => ScenarioKind::Seq,
        }
    }
}

/// Edge-weight distribution for graph scenarios (the `w/…` key segment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WeightDist {
    /// `w/unit` — every edge weight 1 (SSSP degenerates to BFS).
    Unit,
    /// `w/uniform` — weights uniform in `[min, max]` (the paper's §6.3
    /// scheme).
    Uniform { min: u64, max: u64 },
    /// `w/exp` — exponentially distributed weights with the given mean,
    /// floored at 1 (heavy small-weight mass, long tail).
    Exp { mean: u64 },
}

impl WeightDist {
    /// The stable string key (knob values are not part of the key).
    pub fn key(self) -> &'static str {
        match self {
            WeightDist::Unit => "w/unit",
            WeightDist::Uniform { .. } => "w/uniform",
            WeightDist::Exp { .. } => "w/exp",
        }
    }

    /// Look a distribution up by key, with default knobs.
    pub fn parse(key: &str) -> Result<WeightDist, ScenarioError> {
        match key {
            "w/unit" => Ok(WeightDist::Unit),
            "w/uniform" => Ok(WeightDist::Uniform { min: 1, max: 1000 }),
            "w/exp" => Ok(WeightDist::Exp { mean: 100 }),
            other => Err(ScenarioError::UnknownWeights(other.to_string())),
        }
    }

    /// Attach this distribution's weights to a graph.
    fn apply(self, g: &Graph, seed: u64) -> Graph {
        match self {
            WeightDist::Unit => gen::with_unit_weights(g),
            WeightDist::Uniform { min, max } => gen::with_uniform_weights(g, min, max, seed),
            WeightDist::Exp { mean } => gen::with_exp_weights(g, mean, seed),
        }
    }
}

/// A fully specified workload scenario: a [`Family`] plus the typed
/// knobs every family reads (each family uses the subset that applies
/// to it; the rest are inert). The same spec and seed always
/// materialize the identical instance.
///
/// Construct from a key (the `family[+w/dist]` format) or from a family
/// with builder knobs:
///
/// ```
/// use pp_workloads::{Family, ScenarioSpec, WeightDist};
///
/// let a = ScenarioSpec::parse("graph/rmat+w/exp").unwrap();
/// assert_eq!(a.family, Family::GraphRmat);
/// assert_eq!(a.key(), "graph/rmat+w/exp");
///
/// let b = ScenarioSpec::new(Family::GraphGrid2d).with_torus(true);
/// let g = b.graph(100, 7).unwrap();
/// assert!(g.num_vertices() >= 100);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScenarioSpec {
    /// The workload family.
    pub family: Family,
    /// Edge-weight distribution (graph families; used by
    /// [`ScenarioSpec::weighted_graph`]).
    pub weights: WeightDist,
    /// Target average degree (graph families except `grid2d`).
    pub degree: usize,
    /// Wrap the grid into a torus (`graph/grid2d`).
    pub torus: bool,
    /// Hub count (`graph/star-hub`).
    pub hubs: usize,
    /// Sort descending instead of ascending (`seq/sorted`).
    pub descending: bool,
    /// Power-law exponent (`seq/zipf`): larger = heavier skew.
    pub skew: u32,
}

impl ScenarioSpec {
    /// A spec for `family` with default knobs (degree 4, 8 hubs,
    /// ascending sort, skew 3, uniform `[1, 1000]` weights).
    pub fn new(family: Family) -> Self {
        Self {
            family,
            weights: WeightDist::Uniform { min: 1, max: 1000 },
            degree: 4,
            torus: false,
            hubs: 8,
            descending: false,
            skew: 3,
        }
    }

    /// Parse a scenario key: a family key optionally followed by
    /// `+w/dist` (graph families only), e.g. `"graph/grid2d+w/unit"`.
    ///
    /// Every byte must parse: an empty segment (trailing `+`, `++`), a
    /// third segment, or a weight suffix on a sequence family is a typed
    /// [`ScenarioError::MalformedKey`]; unknown family / weight segments
    /// keep their own variants. Nothing is silently defaulted.
    pub fn parse(key: &str) -> Result<Self, ScenarioError> {
        let malformed = || ScenarioError::MalformedKey(key.to_string());
        let mut parts = key.split('+');
        let family_key = parts.next().unwrap_or_default();
        if family_key.is_empty() && key.contains('+') {
            return Err(malformed());
        }
        let family = Family::parse(family_key)?;
        let mut spec = Self::new(family);
        if let Some(w) = parts.next() {
            if w.is_empty() || family.kind() != ScenarioKind::Graph {
                return Err(malformed());
            }
            spec.weights = WeightDist::parse(w)?;
        }
        if parts.next().is_some() {
            return Err(malformed());
        }
        Ok(spec)
    }

    /// The canonical key: the family key, plus the weight-distribution
    /// key for graph families.
    pub fn key(&self) -> String {
        match self.kind() {
            ScenarioKind::Graph => format!("{}+{}", self.family.key(), self.weights.key()),
            ScenarioKind::Seq => self.family.key().to_string(),
        }
    }

    /// The canonical **cache key**: [`ScenarioSpec::key`] extended with
    /// every knob value, in one fixed field order. Two specs have equal
    /// cache keys iff they materialize identical instances for every
    /// `(n, seed)`, so an instance cache keyed on this string can
    /// neither double-prepare one scenario (knob-setter order does not
    /// matter — the spec is a value type) nor conflate two scenarios
    /// that share a [`ScenarioSpec::key`] but differ in knob values
    /// (which `key()` deliberately omits).
    pub fn cache_key(&self) -> String {
        let weights = || match self.weights {
            WeightDist::Unit => "w=unit".to_string(),
            WeightDist::Uniform { min, max } => format!("w=uniform:{min}-{max}"),
            WeightDist::Exp { mean } => format!("w=exp:{mean}"),
        };
        // Only the knobs the family actually reads participate: an
        // inert knob (e.g. `degree` on `grid2d`) must not split one
        // materialized instance across two cache entries.
        let knobs = match self.family {
            Family::GraphUniform | Family::GraphRmat | Family::GraphGeometric => {
                format!("{}|deg={}", weights(), self.degree)
            }
            Family::GraphGrid2d => format!("{}|torus={}", weights(), self.torus),
            Family::GraphStarHub => format!("{}|hubs={}", weights(), self.hubs),
            Family::SeqUniform | Family::SeqAdversarialChain => String::new(),
            Family::SeqSorted => format!("desc={}", self.descending),
            Family::SeqZipf => format!("skew={}", self.skew),
        };
        if knobs.is_empty() {
            self.family.key().to_string()
        } else {
            format!("{}|{knobs}", self.family.key())
        }
    }

    /// Whether this spec materializes a graph or a sequence.
    pub fn kind(&self) -> ScenarioKind {
        self.family.kind()
    }

    pub fn with_weights(mut self, weights: WeightDist) -> Self {
        self.weights = weights;
        self
    }

    pub fn with_degree(mut self, degree: usize) -> Self {
        self.degree = degree.max(1);
        self
    }

    pub fn with_torus(mut self, torus: bool) -> Self {
        self.torus = torus;
        self
    }

    pub fn with_hubs(mut self, hubs: usize) -> Self {
        self.hubs = hubs.max(1);
        self
    }

    pub fn with_descending(mut self, descending: bool) -> Self {
        self.descending = descending;
        self
    }

    pub fn with_skew(mut self, skew: u32) -> Self {
        self.skew = skew.max(1);
        self
    }

    /// Materialize the unweighted graph for a graph family, over at
    /// least `n.max(1)` vertices (regular shapes round up: `rmat` to the
    /// next power of two, `grid2d` to the next square). Deterministic in
    /// `(self, n, seed)`. Every materialized graph is routed back
    /// through CSR validation ([`Graph::validate`]) before crossing the
    /// scenario boundary, so a generator bug surfaces as a typed
    /// [`ScenarioError::Graph`] here instead of a panic downstream.
    pub fn graph(&self, n: usize, seed: u64) -> Result<Graph, ScenarioError> {
        let n = n.max(1);
        let g = match self.family {
            Family::GraphUniform => gen::uniform(n, self.degree * n, seed),
            Family::GraphRmat => {
                let scale = usize::BITS - (n.max(2) - 1).leading_zeros();
                gen::rmat(scale, self.degree * n, seed)
            }
            Family::GraphGrid2d => {
                let side = (n as f64).sqrt().ceil() as usize;
                if self.torus {
                    gen::torus2d(side, side)
                } else {
                    gen::grid2d(side, side)
                }
            }
            Family::GraphGeometric => gen::random_geometric(n, self.degree, seed),
            Family::GraphStarHub => gen::star_hub(n, self.hubs, seed),
            _ => {
                return Err(ScenarioError::WrongKind {
                    family: self.family.key(),
                    needed: ScenarioKind::Graph,
                })
            }
        };
        g.validate()?;
        Ok(g)
    }

    /// Materialize the graph with this spec's edge-weight distribution
    /// applied (graph families only).
    pub fn weighted_graph(&self, n: usize, seed: u64) -> Result<Graph, ScenarioError> {
        let g = self.graph(n, seed)?;
        let wg = self.weights.apply(&g, seed ^ 0x77ed);
        wg.validate()?;
        Ok(wg)
    }

    /// Materialize `n` draws in `[0, span)` carrying the family's
    /// structure (seq families only): sequence-consuming algorithm
    /// families map these into their own value space. The mapping
    /// `[0, 2⁶⁴) → [0, span)` is monotone, so sortedness survives it;
    /// `seq/adversarial-chain` is strictly increasing whenever
    /// `span ≥ n`. Deterministic in `(self, n, span, seed)`.
    pub fn draws(&self, n: usize, span: u64, seed: u64) -> Result<Vec<u64>, ScenarioError> {
        if span == 0 {
            return Err(ScenarioError::InvalidKnob("draw span must be positive"));
        }
        let uniform = |salt: u64| -> Vec<u64> {
            (0..n as u64)
                .map(|i| bounded(hash64(seed ^ salt, i), span))
                .collect()
        };
        match self.family {
            Family::SeqUniform => Ok(uniform(0x11)),
            Family::SeqSorted => {
                let mut v = uniform(0x22);
                v.sort_unstable();
                if self.descending {
                    v.reverse();
                }
                Ok(v)
            }
            Family::SeqAdversarialChain => {
                let step = (span / n.max(1) as u64).max(1);
                Ok((0..n as u64).map(|i| (i * step).min(span - 1)).collect())
            }
            Family::SeqZipf => Ok((0..n as u64)
                .map(|i| {
                    let u = unit_f64(hash64(seed ^ 0x33, i));
                    ((span as f64 * u.powi(self.skew as i32)) as u64).min(span - 1)
                })
                .collect()),
            _ => Err(ScenarioError::WrongKind {
                family: self.family.key(),
                needed: ScenarioKind::Seq,
            }),
        }
    }
}

impl std::fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_roundtrip() {
        for family in Family::ALL {
            let spec = ScenarioSpec::new(family);
            let parsed = ScenarioSpec::parse(&spec.key()).unwrap();
            assert_eq!(parsed, spec, "{}", spec.key());
            assert_eq!(Family::parse(family.key()).unwrap(), family);
        }
        for w in ["w/unit", "w/uniform", "w/exp"] {
            let spec = ScenarioSpec::parse(&format!("graph/uniform+{w}")).unwrap();
            assert_eq!(spec.weights.key(), w);
        }
    }

    #[test]
    fn cache_keys_collide_for_equal_specs() {
        // Builder order must not matter: the two construction orders
        // describe the same spec, so an instance cache keyed on
        // cache_key() prepares it once.
        let a = ScenarioSpec::new(Family::GraphUniform)
            .with_degree(6)
            .with_weights(WeightDist::Exp { mean: 50 });
        let b = ScenarioSpec::new(Family::GraphUniform)
            .with_weights(WeightDist::Exp { mean: 50 })
            .with_degree(6);
        assert_eq!(a, b);
        assert_eq!(a.cache_key(), b.cache_key());

        // An inert knob must not split one instance across two entries:
        // grid2d never reads `degree` (or `hubs`), so these materialize
        // identically and must share a cache key.
        let c = ScenarioSpec::new(Family::GraphGrid2d).with_degree(4);
        let d = ScenarioSpec::new(Family::GraphGrid2d).with_degree(9);
        assert_eq!(c.cache_key(), d.cache_key());
        assert_eq!(
            c.graph(50, 3).unwrap().num_edges(),
            d.graph(50, 3).unwrap().num_edges()
        );
    }

    #[test]
    fn cache_keys_separate_knob_values_that_key_conflates() {
        // key() deliberately omits knob values; cache_key() must not,
        // or the cache would serve degree-4 instances to degree-8
        // requests.
        let a = ScenarioSpec::new(Family::GraphRmat).with_degree(4);
        let b = ScenarioSpec::new(Family::GraphRmat).with_degree(8);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.cache_key(), b.cache_key());

        let u = ScenarioSpec::new(Family::GraphUniform)
            .with_weights(WeightDist::Uniform { min: 1, max: 10 });
        let v = ScenarioSpec::new(Family::GraphUniform)
            .with_weights(WeightDist::Uniform { min: 1, max: 1000 });
        assert_eq!(u.key(), v.key());
        assert_ne!(u.cache_key(), v.cache_key());

        let s = ScenarioSpec::new(Family::SeqZipf).with_skew(2);
        let t = ScenarioSpec::new(Family::SeqZipf).with_skew(5);
        assert_eq!(s.key(), t.key());
        assert_ne!(s.cache_key(), t.cache_key());
    }

    #[test]
    fn cache_keys_are_unique_across_default_families() {
        let keys: Vec<String> = Family::ALL
            .into_iter()
            .map(|f| ScenarioSpec::new(f).cache_key())
            .collect();
        let mut deduped = keys.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), keys.len(), "{keys:?}");
    }

    #[test]
    fn parse_rejects_bad_keys() {
        assert!(matches!(
            ScenarioSpec::parse("graph/nope"),
            Err(ScenarioError::UnknownFamily(_))
        ));
        assert!(matches!(
            ScenarioSpec::parse("graph/uniform+w/nope"),
            Err(ScenarioError::UnknownWeights(_))
        ));
        assert!(matches!(
            ScenarioSpec::parse("seq/zipf+w/unit"),
            Err(ScenarioError::MalformedKey(_))
        ));
        assert!(matches!(
            ScenarioSpec::parse("graph/uniform+w/unit+w/exp"),
            Err(ScenarioError::MalformedKey(_))
        ));
        assert!(matches!(
            ScenarioSpec::parse(""),
            Err(ScenarioError::UnknownFamily(_))
        ));
    }

    #[test]
    fn parse_rejects_trailing_garbage_and_empty_segments() {
        // Every unparsed byte is a typed error — nothing defaults.
        for key in [
            "graph/uniform+",        // trailing '+': empty weight segment
            "graph/uniform++",       // double '+'
            "graph/uniform+w/unit+", // trailing '+' after valid weights
            "seq/zipf+",             // trailing '+' on a seq family
            "+w/unit",               // empty family segment
            "+",                     // nothing but a separator
        ] {
            assert!(
                matches!(
                    ScenarioSpec::parse(key),
                    Err(ScenarioError::MalformedKey(_))
                ),
                "{key:?} must be MalformedKey, got {:?}",
                ScenarioSpec::parse(key)
            );
        }
        for key in ["graph/uniformx", "graph/uniform x", " graph/uniform"] {
            assert!(
                matches!(
                    ScenarioSpec::parse(key),
                    Err(ScenarioError::UnknownFamily(_))
                ),
                "{key:?} must be UnknownFamily"
            );
        }
        assert!(matches!(
            ScenarioSpec::parse("graph/uniform+w/unitx"),
            Err(ScenarioError::UnknownWeights(_))
        ));
    }

    #[test]
    fn zero_span_draws_are_typed() {
        assert_eq!(
            ScenarioSpec::new(Family::SeqUniform).draws(5, 0, 1),
            Err(ScenarioError::InvalidKnob("draw span must be positive"))
        );
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let seq = ScenarioSpec::new(Family::SeqZipf);
        assert!(matches!(
            seq.graph(10, 1),
            Err(ScenarioError::WrongKind { .. })
        ));
        assert!(matches!(
            seq.weighted_graph(10, 1),
            Err(ScenarioError::WrongKind { .. })
        ));
        let graph = ScenarioSpec::new(Family::GraphRmat);
        assert!(matches!(
            graph.draws(10, 100, 1),
            Err(ScenarioError::WrongKind { .. })
        ));
    }

    #[test]
    fn graph_families_cover_n_and_symmetrize() {
        for family in Family::ALL
            .into_iter()
            .filter(|f| f.kind() == ScenarioKind::Graph)
        {
            let spec = ScenarioSpec::new(family);
            for n in [0usize, 1, 2, 7, 65] {
                let g = spec.graph(n, 3).unwrap();
                assert!(g.num_vertices() >= n.max(1), "{family:?} n={n}");
                assert!(g.is_symmetric(), "{family:?} n={n}");
                let wg = spec.weighted_graph(n, 3).unwrap();
                assert!(wg.is_weighted() || wg.num_edges() == 0);
                assert_eq!(wg.num_vertices(), g.num_vertices());
            }
        }
    }

    #[test]
    fn weight_dists_shape() {
        let spec = ScenarioSpec::new(Family::GraphUniform);
        let unit = spec
            .with_weights(WeightDist::Unit)
            .weighted_graph(50, 2)
            .unwrap();
        assert_eq!(unit.max_weight(), Some(1));
        let uni = spec
            .with_weights(WeightDist::Uniform { min: 10, max: 20 })
            .weighted_graph(50, 2)
            .unwrap();
        assert!(uni.min_weight().unwrap() >= 10 && uni.max_weight().unwrap() <= 20);
        let exp = spec
            .with_weights(WeightDist::Exp { mean: 50 })
            .weighted_graph(50, 2)
            .unwrap();
        assert!(exp.min_weight().unwrap() >= 1);
    }

    #[test]
    fn seq_families_structure() {
        let n = 200;
        let span = 5000;
        let sorted = ScenarioSpec::new(Family::SeqSorted)
            .draws(n, span, 9)
            .unwrap();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let desc = ScenarioSpec::new(Family::SeqSorted)
            .with_descending(true)
            .draws(n, span, 9)
            .unwrap();
        assert!(desc.windows(2).all(|w| w[0] >= w[1]));
        let chain = ScenarioSpec::new(Family::SeqAdversarialChain)
            .draws(n, span, 9)
            .unwrap();
        assert!(chain.windows(2).all(|w| w[0] < w[1]), "strict ramp");
        let zipf = ScenarioSpec::new(Family::SeqZipf)
            .draws(n, span, 9)
            .unwrap();
        // Heavy head: the bottom decile holds far more than its uniform
        // 10% share (P[u³ < 0.1] ≈ 46% at the default skew).
        let small = zipf.iter().filter(|&&v| v < span / 10).count();
        assert!(small > n / 3, "zipf head too light: {small}/{n}");
        for v in [sorted, desc, chain, zipf] {
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < span));
        }
    }

    #[test]
    fn empty_draws() {
        for family in Family::ALL
            .into_iter()
            .filter(|f| f.kind() == ScenarioKind::Seq)
        {
            assert!(ScenarioSpec::new(family)
                .draws(0, 10, 1)
                .unwrap()
                .is_empty());
        }
    }
}
