//! The Whac-A-Mole problem (Appendix B).
//!
//! Moles pop up at position `p_i` and time `t_i`; the hammer moves one
//! position per time unit and hits mole `i` after mole `j` iff
//! `|p_i - p_j|` is (strictly, per Eq. (5)/(6)) less than `t_i - t_j`'s
//! magnitude in both rotated coordinates:
//!
//! > `t_j + p_j < t_i + p_i` and `t_j - p_j < t_i - p_i`.
//!
//! Rotating to `(u, v) = (t + p, t - p)` turns the DP into *exactly* the
//! LIS problem on the `v`-sequence sorted by `u` — the appendix's point
//! that the pivoting idea transfers wholesale. We reuse both LIS
//! implementations. (Note the rotation also subsumes the time order:
//! `u_j < u_i ∧ v_j < v_i` implies `t_j < t_i`, which is why 1D moles
//! need only a 2D query.)
//!
//! **The 2D-grid setting** (appendix closing remark): with moles at 2D
//! positions, the reachability cone `|dx| + |dy| ≤ dt` has *four*
//! rotated halfspace constraints (`t ± (x+y)` and `t ± (x−y)`, using
//! `|dx| + |dy| = max(|d(x+y)|, |d(x−y)|)`), whose coordinates satisfy
//! one linear dependency — one more constraint than pure 3D dominance.
//! [`whac2d_par`] solves it exactly as a 4D dominance chain on
//! [`pp_ranges::RangeTree4d`] (via [`crate::chain4d`]), paying the one
//! extra `log` per tree level the appendix describes; [`whac2d_seq`]
//! is the sequential counterpart using the appendix's literal "3D range
//! query" (the fourth constraint handled by processing order).

use crate::chain4d::{chain4d_brute, chain4d_par, chain4d_seq, Point4};
use crate::lis::{lis_par, lis_seq};
use phase_parallel::{Report, RunConfig};

/// One mole: appears at position `p` at time `t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mole {
    /// Appearance time.
    pub t: i64,
    /// Position on the 1D number line.
    pub p: i64,
}

/// Rotate moles to `(u, v)` coordinates and produce the `v`-sequence in
/// `u`-order with ties arranged so that strict LIS = strict dominance
/// chains (equal `u`: descending `v`, so no two tie-mates chain).
fn rotated_v_sequence(moles: &[Mole]) -> Vec<i64> {
    let mut uv: Vec<(i64, i64)> = moles.iter().map(|m| (m.t + m.p, m.t - m.p)).collect();
    pp_parlay::par_sort_by(&mut uv, |a, b| {
        (a.0, std::cmp::Reverse(a.1)) < (b.0, std::cmp::Reverse(b.1))
    });
    uv.into_iter().map(|(_, v)| v).collect()
}

/// Maximum number of moles hittable — sequential DP (Eq. (4)).
pub fn whac_seq(moles: &[Mole]) -> u32 {
    lis_seq(&rotated_v_sequence(moles))
}

/// Maximum number of moles hittable — phase-parallel (Appendix B:
/// `O(n log^3 n)` work, `O(rank(S) log^2 n)` span).
pub fn whac_par(moles: &[Mole], cfg: &RunConfig) -> Report<u32> {
    lis_par(&rotated_v_sequence(moles), cfg)
}

/// Brute-force quadratic DP straight from Eq. (5)/(6) (tests only):
/// process moles in dominance-topological (`u`-sorted) order.
pub fn whac_brute(moles: &[Mole]) -> u32 {
    let n = moles.len();
    let uv: Vec<(i64, i64)> = moles.iter().map(|m| (m.t + m.p, m.t - m.p)).collect();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| uv[i]);
    let mut dp = vec![0u32; n];
    let mut best = 0;
    for &i in &idx {
        dp[i] = 1;
        for j in 0..n {
            if uv[j].0 < uv[i].0 && uv[j].1 < uv[i].1 {
                dp[i] = dp[i].max(dp[j] + 1);
            }
        }
        best = best.max(dp[i]);
    }
    best
}

/// One mole on the 2D grid: appears at `(x, y)` at time `t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mole2d {
    /// Appearance time.
    pub t: i64,
    /// Grid x-coordinate.
    pub x: i64,
    /// Grid y-coordinate.
    pub y: i64,
}

/// Rotate a 2D mole into the four halfspace coordinates: mole `j` can
/// precede mole `i` iff all four strictly increase (Eq. (5)/(6) one
/// dimension up: `|dx| + |dy| < dt` in every rotated direction).
fn rotate2d(m: &Mole2d) -> Point4 {
    Point4 {
        a: m.t + m.x + m.y,
        b: m.t + m.x - m.y,
        c: m.t - m.x + m.y,
        d: m.t - m.x - m.y,
    }
}

/// Maximum number of 2D-grid moles hittable — quadratic oracle straight
/// from the rotated constraints (tests only).
pub fn whac2d_brute(moles: &[Mole2d]) -> u32 {
    let pts: Vec<Point4> = moles.iter().map(rotate2d).collect();
    chain4d_brute(&pts)
}

/// Maximum number of 2D-grid moles hittable — sequential
/// `O(n log^3 n)` DP (sort on one rotated coordinate, 3D range queries
/// on the rest: the appendix's "requires a 3D range query").
pub fn whac2d_seq(moles: &[Mole2d]) -> u32 {
    let pts: Vec<Point4> = moles.iter().map(rotate2d).collect();
    chain4d_seq(&pts)
}

/// Maximum number of 2D-grid moles hittable — phase-parallel Type 2 over
/// the 4D dominance tree: `O(n log^5 n)` work, `O(rank(S) log^4 n)` span.
pub fn whac2d_par(moles: &[Mole2d], cfg: &RunConfig) -> Report<u32> {
    let pts: Vec<Point4> = moles.iter().map(rotate2d).collect();
    chain4d_par(&pts, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_parallel::PivotMode;
    use pp_parlay::rng::Rng;

    fn cfg(mode: PivotMode, seed: u64) -> RunConfig {
        RunConfig::seeded(seed).with_pivot_mode(mode)
    }

    #[test]
    fn simple_chain() {
        // Moles along a reachable diagonal: each +2 time, +1 position.
        let moles: Vec<Mole> = (0..10).map(|i| Mole { t: 2 * i, p: i }).collect();
        assert_eq!(whac_seq(&moles), 10);
        assert_eq!(whac_par(&moles, &cfg(PivotMode::Random, 1)).output, 10);
    }

    #[test]
    fn unreachable_moles() {
        // Same time, different positions: can hit only one.
        let moles = vec![
            Mole { t: 5, p: 0 },
            Mole { t: 5, p: 3 },
            Mole { t: 5, p: -2 },
        ];
        assert_eq!(whac_seq(&moles), 1);
        assert_eq!(whac_par(&moles, &cfg(PivotMode::RightMost, 0)).output, 1);
    }

    #[test]
    fn random_instances_match_brute() {
        let mut r = Rng::new(6);
        for trial in 0..20 {
            let n = 1 + r.range(150) as usize;
            let moles: Vec<Mole> = (0..n)
                .map(|_| Mole {
                    t: r.range(200) as i64,
                    p: r.range(100) as i64 - 50,
                })
                .collect();
            let want = whac_brute(&moles);
            assert_eq!(whac_seq(&moles), want, "seq trial {trial}");
            assert_eq!(
                whac_par(&moles, &cfg(PivotMode::Random, trial)).output,
                want,
                "par trial {trial}"
            );
        }
    }

    #[test]
    fn empty() {
        assert_eq!(whac_seq(&[]), 0);
        assert_eq!(whac_par(&[], &cfg(PivotMode::Random, 0)).output, 0);
        assert_eq!(whac2d_seq(&[]), 0);
        assert_eq!(whac2d_par(&[], &cfg(PivotMode::Random, 0)).output, 0);
    }

    #[test]
    fn grid_diagonal_chain() {
        // Moles spaced so each is comfortably reachable from the last:
        // +4 time, +1 in each grid direction (L1 distance 2 < 4).
        let moles: Vec<Mole2d> = (0..12)
            .map(|i| Mole2d {
                t: 4 * i,
                x: i,
                y: i,
            })
            .collect();
        assert_eq!(whac2d_brute(&moles), 12);
        assert_eq!(whac2d_seq(&moles), 12);
        assert_eq!(whac2d_par(&moles, &cfg(PivotMode::Random, 1)).output, 12);
    }

    #[test]
    fn grid_simultaneous_moles() {
        // All at the same time: only one hittable.
        let moles = vec![
            Mole2d { t: 3, x: 0, y: 0 },
            Mole2d { t: 3, x: 5, y: 1 },
            Mole2d { t: 3, x: -2, y: 4 },
        ];
        assert_eq!(whac2d_brute(&moles), 1);
        assert_eq!(whac2d_seq(&moles), 1);
        assert_eq!(whac2d_par(&moles, &cfg(PivotMode::RightMost, 0)).output, 1);
    }

    #[test]
    fn grid_l1_boundary_is_exclusive() {
        // Exactly |dx|+|dy| = dt: the rotated constraints are strict, so
        // the pair does not chain (matching the 1D Eq. (5)/(6) reading).
        let moles = vec![Mole2d { t: 0, x: 0, y: 0 }, Mole2d { t: 3, x: 2, y: 1 }];
        assert_eq!(whac2d_brute(&moles), 1);
        assert_eq!(whac2d_seq(&moles), 1);
        // And one unit of slack chains them.
        let moles = vec![Mole2d { t: 0, x: 0, y: 0 }, Mole2d { t: 4, x: 2, y: 1 }];
        assert_eq!(whac2d_brute(&moles), 2);
        assert_eq!(whac2d_seq(&moles), 2);
        assert_eq!(whac2d_par(&moles, &cfg(PivotMode::Random, 2)).output, 2);
    }

    #[test]
    fn grid_random_instances_match_brute() {
        let mut r = Rng::new(11);
        for trial in 0..15 {
            let n = 1 + r.range(120) as usize;
            let moles: Vec<Mole2d> = (0..n)
                .map(|_| Mole2d {
                    t: r.range(150) as i64,
                    x: r.range(40) as i64 - 20,
                    y: r.range(40) as i64 - 20,
                })
                .collect();
            let want = whac2d_brute(&moles);
            assert_eq!(whac2d_seq(&moles), want, "seq trial {trial}");
            assert_eq!(
                whac2d_par(&moles, &cfg(PivotMode::Random, trial)).output,
                want,
                "par trial {trial}"
            );
        }
    }

    #[test]
    fn grid_degenerates_to_line_when_y_fixed() {
        // Moles with y = 0 behave exactly like 1D moles... for the 4
        // rotated constraints, b = c = t + x − 0 etc. Check against the
        // 1D solver on the same (t, p=x) data.
        let mut r = Rng::new(23);
        for trial in 0..10 {
            let n = 1 + r.range(100) as usize;
            let line: Vec<Mole> = (0..n)
                .map(|_| Mole {
                    t: r.range(120) as i64,
                    p: r.range(60) as i64 - 30,
                })
                .collect();
            let grid: Vec<Mole2d> = line
                .iter()
                .map(|m| Mole2d {
                    t: m.t,
                    x: m.p,
                    y: 0,
                })
                .collect();
            assert_eq!(whac2d_seq(&grid), whac_seq(&line), "trial {trial}");
        }
    }
}
