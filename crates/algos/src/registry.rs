//! The string-keyed algorithm registry: every [`PhaseAlgorithm`] family
//! reachable behind one uniform, type-erased interface.
//!
//! Bench binaries, CLIs, conformance suites and future service layers
//! dispatch any algorithm by name without knowing its input type: each
//! [`AlgorithmEntry`] pairs a deterministic instance generator (driven
//! by a [`CaseSpec`]) with the family's typed [`crate::api`]
//! implementation, and reports results as output digests (FNV-1a over
//! the canonical output encoding — order-sensitive, so outputs must be
//! deterministic) plus the unified [`ExecutionStats`].
//!
//! Two type-erased execution shapes:
//!
//! * [`AlgorithmEntry::run_case`] — one-shot: generate the instance,
//!   run `solve_seq` and `solve_par`, digest both.
//! * [`AlgorithmEntry::run_batch`] — prepare/query: generate the
//!   instance, `prepare` it **once**, then answer each query config via
//!   `solve_prepared` on a shared scratch workspace, digesting each
//!   against a fresh one-shot `solve_par` reference.
//!
//! # Scenarios
//!
//! A [`CaseSpec`] optionally names a [`ScenarioSpec`] — a string-keyed
//! workload family from `pp-workloads` (`graph/rmat`, `graph/grid2d`,
//! `seq/adversarial-chain`, …). Each entry consumes scenarios of one
//! [`ScenarioKind`]: graph entries (SSSP, MIS, coloring, matching)
//! materialize the scenario's graph, sequence entries map the
//! scenario's structured draws into their own value space. Without a
//! scenario (or via the infallible `run_case`/`run_batch`, which ignore
//! a scenario of the wrong kind) the entry's default uniform generator
//! runs; the fallible [`AlgorithmEntry::try_run_case`] /
//! [`registry::run_named`](run_named) paths report unknown keys and
//! kind mismatches as [`RegistryError`]s.
//!
//! ```
//! use phase_parallel::RunConfig;
//! use pp_algos::registry::{self, CaseSpec};
//!
//! for entry in registry::registry() {
//!     let outcome = entry.run_case(&CaseSpec::new(80, 3), &RunConfig::seeded(3));
//!     assert_eq!(outcome.expected_digest, outcome.observed_digest, "{}", entry.name());
//!     // The same entry, on every workload family applicable to it:
//!     for scenario in entry.scenarios() {
//!         let case = CaseSpec::new(40, 3).with_scenario(scenario);
//!         assert!(entry.try_run_case(&case, &RunConfig::seeded(3)).unwrap().agrees());
//!     }
//! }
//! ```

use crate::activity::{self, Activity};
use crate::api::*;
use crate::chain3d::Point3;
use crate::chain4d::Point4;
use crate::knapsack::Item;
use crate::matching;
use crate::whac::{Mole, Mole2d};
use phase_parallel::{ExecutionStats, PhaseAlgorithm, RunConfig, Scratch};
use pp_graph::{gen, Graph, GraphError};
use pp_parlay::rng::Rng;
pub use pp_workloads::{ScenarioError, ScenarioKind, ScenarioSpec};

/// A deterministic test-case specification: instance size, generation
/// seed, and an optional workload scenario. The same spec always
/// generates the same instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CaseSpec {
    /// Nominal instance size (elements, vertices, or capacity units;
    /// size 0 produces the family's empty instance).
    pub size: usize,
    /// Seed for instance generation (independent of the run seed).
    pub seed: u64,
    /// Workload scenario the instance is drawn from; `None` uses the
    /// entry's default (uniform) generator.
    pub scenario: Option<ScenarioSpec>,
}

impl CaseSpec {
    pub fn new(size: usize, seed: u64) -> Self {
        Self {
            size,
            seed,
            scenario: None,
        }
    }

    /// Draw the instance from `scenario` instead of the entry default.
    pub fn with_scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Draw the instance from the scenario named by `key` (e.g.
    /// `"graph/rmat+w/exp"`); unknown or malformed keys surface as
    /// [`RegistryError::Scenario`].
    pub fn with_scenario_key(self, key: &str) -> Result<Self, RegistryError> {
        Ok(self.with_scenario(ScenarioSpec::parse(key)?))
    }
}

/// Why a registry-level run could not start: every string-keyed lookup
/// failure is a typed error, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// No entry with the given key (see [`names`]).
    UnknownEntry(String),
    /// The scenario key failed to parse or materialize.
    Scenario(ScenarioError),
    /// The case names a scenario of a kind the entry cannot consume
    /// (e.g. a `seq/…` scenario on an SSSP entry).
    IncompatibleScenario {
        /// The registry key of the entry that was asked.
        entry: &'static str,
        /// The canonical key of the offending scenario.
        scenario: String,
        /// The kind the entry consumes.
        expected: ScenarioKind,
        /// The kind the scenario materializes.
        got: ScenarioKind,
    },
    /// A graph input failed CSR validation ([`pp_graph::GraphError`]).
    Graph(GraphError),
    /// The query config names a source vertex the case's instance is
    /// not guaranteed to materialize. The bound is conservative: every
    /// graph scenario materializes at least `case.size.max(1)` vertices,
    /// so sources below that floor are always valid; sources at or
    /// above it are rejected up front instead of panicking inside a
    /// prepared instance.
    SourceOutOfRange {
        /// The registry key of the entry that was asked.
        entry: &'static str,
        /// The out-of-range source vertex.
        source: u32,
        /// The guaranteed vertex floor the source must stay under.
        vertices: usize,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownEntry(name) => {
                write!(f, "unknown registry entry {name:?} (see registry::names())")
            }
            RegistryError::Scenario(e) => write!(f, "scenario error: {e}"),
            RegistryError::IncompatibleScenario {
                entry,
                scenario,
                expected,
                got,
            } => write!(
                f,
                "entry {entry:?} consumes {expected:?} scenarios but {scenario:?} is {got:?}"
            ),
            RegistryError::Graph(e) => write!(f, "invalid graph input: {e}"),
            RegistryError::SourceOutOfRange {
                entry,
                source,
                vertices,
            } => write!(
                f,
                "entry {entry:?}: source vertex {source} is outside the guaranteed \
                 {vertices}-vertex instance floor"
            ),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Scenario(e) => Some(e),
            RegistryError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScenarioError> for RegistryError {
    fn from(e: ScenarioError) -> Self {
        RegistryError::Scenario(e)
    }
}

impl From<GraphError> for RegistryError {
    fn from(e: GraphError) -> Self {
        RegistryError::Graph(e)
    }
}

/// The outcome of one registry case: digests of the reference and
/// tested executions (equal iff the outputs are identical) and the
/// tested run's statistics.
///
/// For [`AlgorithmEntry::run_case`] the reference is `solve_seq` and
/// the tested execution `solve_par`; for [`AlgorithmEntry::run_batch`]
/// the reference is a fresh one-shot `solve_par` and the tested
/// execution `solve_prepared` (one-shot-vs-sequential agreement is
/// already covered by `run_case`, and per-query knobs like
/// [`RunConfig::source`] are invisible to config-less `solve_seq`).
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// FNV-1a digest of the reference execution's output.
    pub expected_digest: u64,
    /// FNV-1a digest of the tested execution's output.
    pub observed_digest: u64,
    /// Unified statistics from the tested run.
    pub stats: ExecutionStats,
}

impl CaseOutcome {
    /// Did the tested execution reproduce the reference output?
    pub fn agrees(&self) -> bool {
        self.expected_digest == self.observed_digest
    }
}

/// Which engine family (paper section) an entry belongs to — useful for
/// grouping in benches and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// §4 frontier extraction.
    Type1,
    /// §5 pivot wake-up (including TAS trees).
    Type2,
    /// §4.3 relaxed-rank SSSP family.
    RelaxedRank,
    /// Prior-work deterministic-reservation baselines.
    Reservations,
    /// Parallel but not phase-parallel (comparison baselines).
    Baseline,
}

/// Scratch-workspace behavior of one steady-state prepared query (the
/// probe behind the CI allocation tripwire): how many buffers the query
/// took from its [`Scratch`], and how many of those takes were served
/// from a previously parked buffer.
#[derive(Clone, Copy, Debug)]
pub struct ScratchProbe {
    /// `take_*` calls the steady-state query performed.
    pub takes: u64,
    /// Takes served from a parked buffer (no allocation).
    pub reuses: u64,
}

impl ScratchProbe {
    /// True iff the steady-state query allocated no scratch buffers:
    /// every take was a reuse. This is the per-entry invariant the
    /// `scratch_smoke` bench gate asserts.
    pub fn steady_state_reuse(&self) -> bool {
        self.takes == self.reuses
    }
}

/// One registered algorithm: a stable name, its engine class, the
/// scenario kind its instances are drawn from, and type-erased one-shot,
/// prepared-batch and scratch-probe runners.
pub struct AlgorithmEntry {
    name: &'static str,
    engine: Engine,
    kind: ScenarioKind,
    runner: fn(&CaseSpec, &RunConfig) -> CaseOutcome,
    batch_runner: fn(&CaseSpec, &[RunConfig], &RunConfig) -> Vec<CaseOutcome>,
    probe_runner: fn(&CaseSpec, &RunConfig) -> ScratchProbe,
    serve_runner: fn(&CaseSpec, &RunConfig) -> crate::serving::SharedPrepared,
}

impl AlgorithmEntry {
    /// The registry key (also the typed implementation's
    /// [`PhaseAlgorithm::name`]).
    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The scenario kind this entry's instance generator consumes.
    pub fn scenario_kind(&self) -> ScenarioKind {
        self.kind
    }

    /// Can this entry draw its instance from `scenario`?
    pub fn supports(&self, scenario: &ScenarioSpec) -> bool {
        scenario.kind() == self.kind
    }

    /// Every default-knob scenario applicable to this entry — the row
    /// set the conformance matrix sweeps (always ≥ 3 families).
    pub fn scenarios(&self) -> Vec<ScenarioSpec> {
        pp_workloads::scenarios_of_kind(self.kind)
    }

    fn check_case(&self, case: &CaseSpec) -> Result<(), RegistryError> {
        match &case.scenario {
            Some(s) if !self.supports(s) => Err(RegistryError::IncompatibleScenario {
                entry: self.name,
                scenario: s.key(),
                expected: self.kind,
                got: s.kind(),
            }),
            _ => Ok(()),
        }
    }

    /// Validate a `(case, cfg)` pair without generating anything:
    /// scenario-kind compatibility, plus the query knobs whose bad
    /// values would otherwise panic inside an engine. A graph-kind
    /// entry's explicit [`RunConfig::source`] must stay under the
    /// guaranteed vertex floor (`case.size.max(1)` — every graph
    /// scenario materializes at least that many vertices). This is the
    /// serve boundary's admission check: a failure here becomes a typed
    /// `InvalidInput` row, never a worker panic or a poison strike.
    pub fn validate_case(&self, case: &CaseSpec, cfg: &RunConfig) -> Result<(), RegistryError> {
        self.check_case(case)?;
        if self.kind == ScenarioKind::Graph {
            let floor = case.size.max(1);
            if let Some(source) = cfg.source {
                if source as usize >= floor {
                    return Err(RegistryError::SourceOutOfRange {
                        entry: self.name,
                        source,
                        vertices: floor,
                    });
                }
            }
        }
        Ok(())
    }

    /// Generate the instance for `case`, run both executions under
    /// `cfg`, and digest the outputs. A scenario of the wrong kind is
    /// ignored (the default generator runs); use
    /// [`AlgorithmEntry::try_run_case`] to surface that as an error.
    pub fn run_case(&self, case: &CaseSpec, cfg: &RunConfig) -> CaseOutcome {
        (self.runner)(case, cfg)
    }

    /// [`AlgorithmEntry::run_case`], but a case whose scenario this
    /// entry cannot consume is a [`RegistryError::IncompatibleScenario`]
    /// instead of a silent fallback, and hostile query knobs (e.g. an
    /// out-of-range source) are typed rejections instead of panics.
    pub fn try_run_case(
        &self,
        case: &CaseSpec,
        cfg: &RunConfig,
    ) -> Result<CaseOutcome, RegistryError> {
        self.validate_case(case, cfg)?;
        Ok((self.runner)(case, cfg))
    }

    /// Generate the instance for `case` once, `prepare` it once, and
    /// answer every query in `queries` via `solve_prepared` on a shared
    /// scratch workspace — each digested against a fresh one-shot
    /// `solve_par` under the same query config. `cfg` drives instance
    /// generation (e.g. the priority source) and the thread budget. As
    /// with [`AlgorithmEntry::run_case`], a wrong-kind scenario falls
    /// back to the default generator.
    pub fn run_batch(
        &self,
        case: &CaseSpec,
        queries: &[RunConfig],
        cfg: &RunConfig,
    ) -> Vec<CaseOutcome> {
        (self.batch_runner)(case, queries, cfg)
    }

    /// Measure the scratch behavior of one steady-state prepared query:
    /// the instance is generated and prepared once, two warm-up queries
    /// populate the workspace (and let amortized growth settle), and
    /// the third query's take/reuse delta is returned. An entry whose
    /// probe fails [`ScratchProbe::steady_state_reuse`] allocates fresh
    /// per-query scratch in steady state — the regression the
    /// `scratch_smoke` CI gate trips on.
    pub fn scratch_probe(&self, case: &CaseSpec, cfg: &RunConfig) -> ScratchProbe {
        (self.probe_runner)(case, cfg)
    }

    /// Generate the instance for `case`, pin and `prepare` it once, and
    /// hand back an owned, `Arc`-shared handle many workers can query
    /// concurrently — the serving tier's unit of caching. Generation is
    /// deterministic in `(case, cfg)`, so two calls with the same case
    /// produce interchangeable instances; the handle's cost estimate is
    /// [`crate::serving::estimated_cost_bytes`] of the case size.
    pub fn prepare_shared(
        &self,
        case: &CaseSpec,
        cfg: &RunConfig,
    ) -> crate::serving::SharedPrepared {
        (self.serve_runner)(case, cfg)
    }

    /// [`AlgorithmEntry::prepare_shared`] behind
    /// [`AlgorithmEntry::validate_case`]: an incompatible scenario or a
    /// hostile query knob is a typed [`RegistryError`] instead of a
    /// panic inside generation or preparation.
    pub fn try_prepare_shared(
        &self,
        case: &CaseSpec,
        cfg: &RunConfig,
    ) -> Result<crate::serving::SharedPrepared, RegistryError> {
        self.validate_case(case, cfg)?;
        Ok((self.serve_runner)(case, cfg))
    }

    /// [`AlgorithmEntry::run_batch`] with scenario-compatibility
    /// checking.
    pub fn try_run_batch(
        &self,
        case: &CaseSpec,
        queries: &[RunConfig],
        cfg: &RunConfig,
    ) -> Result<Vec<CaseOutcome>, RegistryError> {
        self.validate_case(case, cfg)?;
        for query in queries {
            self.validate_case(case, query)?;
        }
        Ok((self.batch_runner)(case, queries, cfg))
    }
}

/// Run one case through the entry named `name` — the fully string-keyed
/// entry point (entry key + optional scenario key via
/// [`CaseSpec::with_scenario_key`]). Unknown entries, unknown scenario
/// keys, and entry/scenario mismatches all come back as
/// [`RegistryError`]s.
pub fn run_named(
    name: &str,
    case: &CaseSpec,
    cfg: &RunConfig,
) -> Result<CaseOutcome, RegistryError> {
    lookup(name)
        .ok_or_else(|| RegistryError::UnknownEntry(name.to_string()))?
        .try_run_case(case, cfg)
}

/// Batched counterpart of [`run_named`].
pub fn run_named_batch(
    name: &str,
    case: &CaseSpec,
    queries: &[RunConfig],
    cfg: &RunConfig,
) -> Result<Vec<CaseOutcome>, RegistryError> {
    lookup(name)
        .ok_or_else(|| RegistryError::UnknownEntry(name.to_string()))?
        .try_run_batch(case, queries, cfg)
}

/// Every registered algorithm. Names are stable; new families append.
pub fn registry() -> &'static [AlgorithmEntry] {
    macro_rules! entry {
        ($name:literal, $engine:ident, $kind:ident, $algo:expr, $gen:expr) => {
            AlgorithmEntry {
                name: $name,
                engine: Engine::$engine,
                kind: ScenarioKind::$kind,
                runner: |case, cfg| {
                    let input = $gen(case, cfg);
                    run_typed(&$algo, &input, cfg)
                },
                batch_runner: |case, queries, cfg| {
                    let input = $gen(case, cfg);
                    run_typed_batch(&$algo, &input, queries, cfg)
                },
                probe_runner: |case, cfg| {
                    let input = $gen(case, cfg);
                    run_typed_probe(&$algo, &input, cfg)
                },
                serve_runner: |case, cfg| {
                    crate::serving::SharedPrepared::new(
                        $name,
                        $algo,
                        $gen(case, cfg),
                        crate::serving::estimated_cost_bytes(case.size),
                    )
                },
            }
        };
    }
    static ENTRIES: &[AlgorithmEntry] = &[
        entry!("lis", Type2, Seq, Lis, gen_series),
        entry!("lis/weighted", Type2, Seq, WeightedLis, gen_weighted_series),
        entry!("activity/type1", Type1, Seq, ActivityType1, gen_activities),
        entry!(
            "activity/type1-pam",
            Type1,
            Seq,
            ActivityType1Pam,
            gen_activities
        ),
        entry!("activity/type2", Type2, Seq, ActivityType2, gen_activities),
        entry!(
            "activity/unweighted",
            Type2,
            Seq,
            UnweightedActivity,
            gen_activities
        ),
        entry!("knapsack", Type1, Seq, Knapsack, gen_knapsack),
        entry!("huffman", Type1, Seq, Huffman, gen_freqs),
        entry!("sssp/delta", RelaxedRank, Graph, DeltaSssp, gen_sssp),
        entry!("sssp/dijkstra", Baseline, Graph, DijkstraSssp, gen_sssp),
        entry!("sssp/rho", RelaxedRank, Graph, RhoSssp, gen_sssp),
        entry!("sssp/crauser", RelaxedRank, Graph, CrauserSssp, gen_sssp),
        entry!("sssp/pam", RelaxedRank, Graph, PamSssp, gen_sssp),
        entry!(
            "sssp/bellman-ford",
            Baseline,
            Graph,
            BellmanFordSssp,
            gen_sssp
        ),
        entry!("mis/tas", Type2, Graph, GreedyMis, gen_vertex_priorities),
        entry!(
            "mis/rounds",
            Baseline,
            Graph,
            RoundsMis,
            gen_vertex_priorities
        ),
        entry!("coloring", Type2, Graph, Coloring, gen_vertex_priorities),
        entry!("matching", Type2, Graph, Matching, gen_edge_priorities),
        entry!(
            "matching/reservations",
            Reservations,
            Graph,
            MatchingReservations,
            gen_edge_priorities
        ),
        entry!("whac", Type2, Seq, Whac, gen_moles),
        entry!("whac/2d", Type2, Seq, Whac2d, gen_moles_2d),
        entry!("chain3d", Type2, Seq, Chain3d, gen_points3),
        entry!("chain4d", Type2, Seq, Chain4d, gen_points4),
        entry!("random-perm", Reservations, Seq, RandomPerm, gen_perm),
    ];
    ENTRIES
}

/// Look up an entry by its registry key.
pub fn lookup(name: &str) -> Option<&'static AlgorithmEntry> {
    registry().iter().find(|e| e.name == name)
}

/// All registry keys, in registration order.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|e| e.name).collect()
}

/// Run one typed algorithm on one instance (honoring the config's
/// thread budget) and digest both outputs.
fn run_typed<A>(algo: &A, input: &A::Input, cfg: &RunConfig) -> CaseOutcome
where
    A: PhaseAlgorithm + Sync,
    A::Input: Sync,
    A::Output: Digest + Send,
{
    let seq = algo.solve_seq(input);
    let report = cfg.install(|| algo.solve_par(input, cfg));
    CaseOutcome {
        expected_digest: seq.digest(),
        observed_digest: report.output.digest(),
        stats: report.stats,
    }
}

/// Prepare one typed instance once and run every query against it on a
/// shared scratch workspace, digesting each against a fresh one-shot
/// `solve_par` under the same query config.
fn run_typed_batch<A>(
    algo: &A,
    input: &A::Input,
    queries: &[RunConfig],
    cfg: &RunConfig,
) -> Vec<CaseOutcome>
where
    A: PhaseAlgorithm + Sync,
    A::Input: Sync,
    A::Output: Digest + Send,
{
    cfg.install(|| {
        let prepared = algo.prepare(input);
        let mut scratch = Scratch::new();
        queries
            .iter()
            .map(|query| {
                let one_shot = algo.solve_par(input, query);
                let report = algo.solve_prepared(&prepared, &mut scratch, query);
                CaseOutcome {
                    expected_digest: one_shot.output.digest(),
                    observed_digest: report.output.digest(),
                    stats: report.stats,
                }
            })
            .collect()
    })
}

/// Prepare one typed instance, warm the workspace with two queries,
/// then measure the take/reuse delta of a third (steady-state) query.
fn run_typed_probe<A>(algo: &A, input: &A::Input, cfg: &RunConfig) -> ScratchProbe
where
    A: PhaseAlgorithm + Sync,
    A::Input: Sync,
    A::Output: Send,
{
    cfg.install(|| {
        let prepared = algo.prepare(input);
        let mut scratch = Scratch::new();
        for _ in 0..2 {
            algo.solve_prepared(&prepared, &mut scratch, cfg);
        }
        let (takes, reuses) = (scratch.takes(), scratch.reuses());
        algo.solve_prepared(&prepared, &mut scratch, cfg);
        ScratchProbe {
            takes: scratch.takes() - takes,
            reuses: scratch.reuses() - reuses,
        }
    })
}

/// FNV-1a output digest — enough to compare two executions' outputs
/// without holding both in a type-erased box.
pub trait Digest {
    fn digest(&self) -> u64;
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_step(h: u64, byte: u8) -> u64 {
    (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME)
}

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = fnv_step(h, b);
    }
    h
}

impl Digest for u32 {
    fn digest(&self) -> u64 {
        fnv_u64(FNV_OFFSET, u64::from(*self))
    }
}

impl Digest for u64 {
    fn digest(&self) -> u64 {
        fnv_u64(FNV_OFFSET, *self)
    }
}

impl Digest for Vec<u32> {
    fn digest(&self) -> u64 {
        self.iter()
            .fold(fnv_u64(FNV_OFFSET, self.len() as u64), |h, &v| {
                fnv_u64(h, u64::from(v))
            })
    }
}

impl Digest for Vec<u64> {
    fn digest(&self) -> u64 {
        self.iter()
            .fold(fnv_u64(FNV_OFFSET, self.len() as u64), |h, &v| {
                fnv_u64(h, v)
            })
    }
}

impl Digest for Vec<bool> {
    fn digest(&self) -> u64 {
        self.iter()
            .fold(fnv_u64(FNV_OFFSET, self.len() as u64), |h, &v| {
                fnv_u64(h, u64::from(v))
            })
    }
}

// ---- deterministic instance generators ----
//
// All driven by (case.size, case.seed, case.scenario) alone. Size 0 is
// the empty instance for sequence families; graph families floor at one
// vertex (an SSSP source must exist, and a 0-vertex graph has no
// instance to speak of). A case without a scenario (or with one of the
// wrong kind) runs the family's original uniform generator, so default
// behavior is unchanged.

/// The case's scenario, if it is one a graph-consuming entry can use.
fn graph_scenario(case: &CaseSpec) -> Option<ScenarioSpec> {
    case.scenario.filter(|s| s.kind() == ScenarioKind::Graph)
}

/// `n` scenario draws in `[0, span)`, if the case names a seq scenario.
fn seq_draws(case: &CaseSpec, n: usize, span: u64, salt: u64) -> Option<Vec<u64>> {
    case.scenario
        .filter(|s| s.kind() == ScenarioKind::Seq)
        .map(|s| s.draws(n, span, case.seed ^ salt).expect("seq scenario"))
}

fn gen_series(case: &CaseSpec, _cfg: &RunConfig) -> Vec<i64> {
    let span = 3 * case.size as u64 + 10;
    let offset = case.size as i64;
    if let Some(draws) = seq_draws(case, case.size, span, 0x5e71e5) {
        return draws.into_iter().map(|v| v as i64 - offset).collect();
    }
    let mut r = Rng::new(case.seed ^ 0x5e71e5);
    (0..case.size)
        .map(|_| r.range(span) as i64 - offset)
        .collect()
}

fn gen_weighted_series(case: &CaseSpec, _cfg: &RunConfig) -> (Vec<i64>, Vec<u32>) {
    let mut r = Rng::new(case.seed ^ 0x3e16);
    let values = gen_series(case, _cfg);
    let weights = (0..case.size).map(|_| 1 + r.range(40) as u32).collect();
    (values, weights)
}

fn gen_activities(case: &CaseSpec, _cfg: &RunConfig) -> Vec<Activity> {
    let mut r = Rng::new(case.seed ^ 0xac7);
    let span = 4 * case.size as u64 + 20;
    // The scenario shapes the start times (the dependence-defining
    // coordinate); lengths and weights stay uniform.
    if let Some(starts) = seq_draws(case, case.size, span, 0xac7) {
        return activity::sort_by_end(
            starts
                .into_iter()
                .map(|s| Activity::new(s, s + 1 + r.range(span / 8 + 4), 1 + r.range(100)))
                .collect(),
        );
    }
    activity::sort_by_end(
        (0..case.size)
            .map(|_| {
                let s = r.range(span);
                Activity::new(s, s + 1 + r.range(span / 8 + 4), 1 + r.range(100))
            })
            .collect(),
    )
}

fn gen_knapsack(case: &CaseSpec, _cfg: &RunConfig) -> (Vec<Item>, u64) {
    let mut r = Rng::new(case.seed ^ 0x14a9);
    // Item count grows slowly; capacity tracks `size` so rank ≈ size / w*.
    let n_items = (case.size / 8).clamp(usize::from(case.size > 0), 40);
    // The scenario shapes the item values; weights stay uniform.
    if let Some(values) = seq_draws(case, n_items, 500, 0x14a9) {
        let items = values
            .into_iter()
            .map(|v| Item::new(2 + r.range(30), v))
            .collect();
        return (items, case.size as u64);
    }
    let items = (0..n_items)
        .map(|_| Item::new(2 + r.range(30), r.range(500)))
        .collect();
    (items, case.size as u64)
}

fn gen_freqs(case: &CaseSpec, _cfg: &RunConfig) -> Vec<u64> {
    // Huffman needs at least one symbol.
    let n = case.size.max(1);
    if let Some(draws) = seq_draws(case, n, 1000, 0x1f) {
        return draws.into_iter().map(|v| 1 + v).collect();
    }
    let mut r = Rng::new(case.seed ^ 0x1f);
    (0..n).map(|_| 1 + r.range(1000)).collect()
}

fn gen_graph(case: &CaseSpec) -> Graph {
    let n = case.size.max(1);
    if let Some(s) = graph_scenario(case) {
        return s.graph(n, case.seed ^ 0x9a4).expect("graph scenario");
    }
    gen::uniform(n, 4 * n, case.seed ^ 0x9a4)
}

fn gen_sssp(case: &CaseSpec, _cfg: &RunConfig) -> SsspInstance {
    if let Some(s) = graph_scenario(case) {
        let wg = s
            .weighted_graph(case.size.max(1), case.seed ^ 0x9a4)
            .expect("graph scenario");
        return SsspInstance::new(wg, 0);
    }
    let g = gen_graph(case);
    let wg = gen::with_uniform_weights(&g, 1, 1000, case.seed ^ 0x55);
    SsspInstance::new(wg, 0)
}

fn gen_vertex_priorities(case: &CaseSpec, cfg: &RunConfig) -> GraphPriorityInstance {
    let g = gen_graph(case);
    // The priority_source knob picks the ordering heuristic; the
    // instance seed keeps generation independent of the run seed.
    let ordering_cfg =
        RunConfig::seeded(case.seed ^ 0x7a11).with_priority_source(cfg.priority_source);
    let pri = crate::coloring_orders::priorities_from_config(&g, &ordering_cfg);
    GraphPriorityInstance::new(g, pri)
}

fn gen_edge_priorities(case: &CaseSpec, _cfg: &RunConfig) -> GraphPriorityInstance {
    let g = gen_graph(case);
    let pri = matching::random_edge_priorities(&g, case.seed ^ 0xed6e);
    GraphPriorityInstance::new(g, pri)
}

fn gen_moles(case: &CaseSpec, _cfg: &RunConfig) -> Vec<Mole> {
    let mut r = Rng::new(case.seed ^ 0x301e);
    let t_span = 6 * case.size as u64 + 12;
    let p_of = |r: &mut Rng| r.range(case.size as u64 + 6) as i64 - (case.size / 2) as i64;
    // The scenario shapes the appearance times; positions stay uniform.
    if let Some(ts) = seq_draws(case, case.size, t_span, 0x301e) {
        return ts
            .into_iter()
            .map(|t| Mole {
                t: t as i64,
                p: p_of(&mut r),
            })
            .collect();
    }
    (0..case.size)
        .map(|_| Mole {
            t: r.range(t_span) as i64,
            p: p_of(&mut r),
        })
        .collect()
}

fn gen_moles_2d(case: &CaseSpec, _cfg: &RunConfig) -> Vec<Mole2d> {
    let mut r = Rng::new(case.seed ^ 0x3d2);
    let side = (case.size as u64 / 4).max(4);
    let t_span = 8 * case.size as u64 + 16;
    let coord = |r: &mut Rng| r.range(side) as i64 - (side / 2) as i64;
    if let Some(ts) = seq_draws(case, case.size, t_span, 0x3d2) {
        return ts
            .into_iter()
            .map(|t| Mole2d {
                t: t as i64,
                x: coord(&mut r),
                y: coord(&mut r),
            })
            .collect();
    }
    (0..case.size)
        .map(|_| Mole2d {
            t: r.range(t_span) as i64,
            x: coord(&mut r),
            y: coord(&mut r),
        })
        .collect()
}

fn gen_points3(case: &CaseSpec, _cfg: &RunConfig) -> Vec<Point3> {
    let range = 2 * case.size as u64 + 8;
    // Every coordinate is scenario-shaped: under `seq/adversarial-chain`
    // all three ramp together, producing the full n-deep dominance chain.
    if let (Some(a), Some(b), Some(c)) = (
        seq_draws(case, case.size, range, 0x9d3),
        seq_draws(case, case.size, range, 0x9d3 ^ 0x10000),
        seq_draws(case, case.size, range, 0x9d3 ^ 0x20000),
    ) {
        return (0..case.size)
            .map(|i| Point3 {
                a: a[i] as i64,
                b: b[i] as i64,
                c: c[i] as i64,
            })
            .collect();
    }
    let mut r = Rng::new(case.seed ^ 0x9d3);
    (0..case.size)
        .map(|_| Point3 {
            a: r.range(range) as i64,
            b: r.range(range) as i64,
            c: r.range(range) as i64,
        })
        .collect()
}

fn gen_points4(case: &CaseSpec, _cfg: &RunConfig) -> Vec<Point4> {
    let range = 2 * case.size as u64 + 8;
    if let (Some(a), Some(b), Some(c), Some(d)) = (
        seq_draws(case, case.size, range, 0x9d4),
        seq_draws(case, case.size, range, 0x9d4 ^ 0x10000),
        seq_draws(case, case.size, range, 0x9d4 ^ 0x20000),
        seq_draws(case, case.size, range, 0x9d4 ^ 0x30000),
    ) {
        return (0..case.size)
            .map(|i| Point4 {
                a: a[i] as i64,
                b: b[i] as i64,
                c: c[i] as i64,
                d: d[i] as i64,
            })
            .collect();
    }
    let mut r = Rng::new(case.seed ^ 0x9d4);
    (0..case.size)
        .map(|_| Point4 {
            a: r.range(range) as i64,
            b: r.range(range) as i64,
            c: r.range(range) as i64,
            d: r.range(range) as i64,
        })
        .collect()
}

fn gen_perm(case: &CaseSpec, _cfg: &RunConfig) -> (usize, u64) {
    // The permutation instance is fully described by (n, target_seed);
    // a seq scenario picks the swap-target stream by folding its draws
    // into the seed, so each family yields a distinct, deterministic
    // permutation workload.
    match seq_draws(case, case.size, 4 * case.size as u64 + 4, 0x9e12) {
        Some(draws) => {
            let seed = draws
                .iter()
                .fold(fnv_u64(FNV_OFFSET, case.seed), |h, &v| fnv_u64(h, v));
            (case.size, seed)
        }
        None => (case.size, case.seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_names() {
        assert!(lookup("lis").is_some());
        assert!(lookup("sssp/delta").is_some());
        assert!(lookup("nope").is_none());
        let names = names();
        assert!(names.len() >= 20);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "registry names must be unique");
    }

    #[test]
    fn entries_agree_on_a_small_case() {
        let case = CaseSpec::new(60, 5);
        let cfg = RunConfig::seeded(5);
        for entry in registry() {
            let outcome = entry.run_case(&case, &cfg);
            assert!(outcome.agrees(), "{} diverged", entry.name());
        }
    }

    #[test]
    fn batch_entries_agree_with_one_shot() {
        let case = CaseSpec::new(80, 9);
        let queries: Vec<RunConfig> = vec![
            RunConfig::seeded(1),
            RunConfig::seeded(2).with_delta(5),
            RunConfig::seeded(3).with_rho(4),
            RunConfig::seeded(4).with_source(7),
        ];
        for entry in registry() {
            let outcomes = entry.run_batch(&case, &queries, &RunConfig::seeded(9));
            assert_eq!(outcomes.len(), queries.len());
            for (i, o) in outcomes.iter().enumerate() {
                assert!(o.agrees(), "{} diverged on query {i}", entry.name());
            }
        }
    }

    #[test]
    fn digests_are_order_sensitive() {
        assert_ne!(vec![1u32, 2].digest(), vec![2u32, 1].digest());
        assert_ne!(vec![0u64].digest(), vec![0u64, 0].digest());
        assert_ne!(vec![true, false].digest(), vec![false, true].digest());
    }

    #[test]
    fn every_entry_has_at_least_three_scenarios() {
        for entry in registry() {
            let scenarios = entry.scenarios();
            assert!(
                scenarios.len() >= 3,
                "{}: only {} applicable scenario families",
                entry.name(),
                scenarios.len()
            );
            assert!(scenarios.iter().all(|s| entry.supports(s)));
        }
    }

    #[test]
    fn scenarios_change_the_instance() {
        // Different scenario families must actually generate different
        // instances (different reference digests) for the same
        // (size, seed) — otherwise the matrix would re-test one input.
        let cfg = RunConfig::seeded(3);
        for entry in [lookup("lis").unwrap(), lookup("sssp/delta").unwrap()] {
            let mut digests: Vec<u64> = entry
                .scenarios()
                .iter()
                .map(|&s| {
                    let case = CaseSpec::new(90, 3).with_scenario(s);
                    entry.try_run_case(&case, &cfg).unwrap().expected_digest
                })
                .collect();
            digests.sort_unstable();
            digests.dedup();
            assert!(
                digests.len() >= entry.scenarios().len() - 1,
                "{}: scenario families collapse to {} distinct instances",
                entry.name(),
                digests.len()
            );
        }
    }

    #[test]
    fn unknown_entry_key_is_an_error() {
        let err = run_named("nope", &CaseSpec::new(10, 1), &RunConfig::seeded(1)).unwrap_err();
        assert!(matches!(err, RegistryError::UnknownEntry(ref k) if k == "nope"));
        assert!(err.to_string().contains("nope"));
        let err = run_named_batch(
            "sssp/nope",
            &CaseSpec::new(10, 1),
            &[],
            &RunConfig::seeded(1),
        )
        .unwrap_err();
        assert!(matches!(err, RegistryError::UnknownEntry(_)));
    }

    #[test]
    fn unknown_scenario_key_is_an_error() {
        let err = CaseSpec::new(10, 1)
            .with_scenario_key("graph/nope")
            .unwrap_err();
        assert!(matches!(
            err,
            RegistryError::Scenario(ScenarioError::UnknownFamily(_))
        ));
        assert!(err.to_string().contains("graph/nope"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn incompatible_scenario_is_an_error_not_a_panic() {
        let seq_case = CaseSpec::new(10, 1).with_scenario_key("seq/zipf").unwrap();
        let entry = lookup("sssp/delta").unwrap();
        let err = entry
            .try_run_case(&seq_case, &RunConfig::seeded(1))
            .unwrap_err();
        assert!(matches!(
            err,
            RegistryError::IncompatibleScenario {
                entry: "sssp/delta",
                expected: ScenarioKind::Graph,
                got: ScenarioKind::Seq,
                ..
            }
        ));
        assert!(err.to_string().contains("sssp/delta"));

        let graph_case = CaseSpec::new(10, 1)
            .with_scenario_key("graph/rmat")
            .unwrap();
        let entry = lookup("lis").unwrap();
        assert!(entry
            .try_run_batch(&graph_case, &[RunConfig::seeded(1)], &RunConfig::seeded(1))
            .is_err());
        // The infallible paths fall back to the default generator
        // instead of erroring (documented behavior).
        let fallback = entry.run_case(&graph_case, &RunConfig::seeded(1));
        let plain = entry.run_case(&CaseSpec::new(10, 1), &RunConfig::seeded(1));
        assert_eq!(fallback.expected_digest, plain.expected_digest);
    }

    #[test]
    fn run_named_dispatches_with_scenarios() {
        let case = CaseSpec::new(70, 2)
            .with_scenario_key("graph/grid2d+w/unit")
            .unwrap();
        let outcome = run_named("sssp/rho", &case, &RunConfig::seeded(2)).unwrap();
        assert!(outcome.agrees());
        let outcomes = run_named_batch(
            "sssp/rho",
            &case,
            &[RunConfig::seeded(1), RunConfig::seeded(2).with_source(5)],
            &RunConfig::seeded(2),
        )
        .unwrap();
        assert!(outcomes.iter().all(CaseOutcome::agrees));
    }
}
